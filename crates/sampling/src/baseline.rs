//! Baseline samplers the paper compares against.
//!
//! * [`PerVertexSageSampler`] — a Quiver/DGL-style per-vertex GraphSAGE
//!   sampler: it walks each frontier vertex's neighbor list and draws `s`
//!   neighbors directly, one minibatch at a time, with no matrix operations
//!   and no bulk amortization.  It produces the same [`MinibatchSample`]
//!   structure as the matrix samplers so the training pipeline can run on
//!   either.
//! * [`MemoryModel`] — charges a modeled access cost per touched adjacency
//!   row, emulating the difference between GPU-resident graph sampling and
//!   Quiver's UVA sampling (graph in host DRAM accessed over PCIe), which is
//!   what Figure 5 compares.
//! * [`ladies_reference`] — a straightforward per-batch CPU LADIES
//!   implementation, the reference the paper's §8.2.2 compares its
//!   distributed LADIES against.

use crate::its::its_without_replacement;
use crate::plan::{BulkSampleOutput, LayerSample, MinibatchSample};
use crate::sampler::{validate_batches, BulkSamplerConfig, Sampler};
use crate::{Result, SamplingError};
use dmbs_comm::{Phase, PhaseProfile};
use dmbs_matrix::{CooMatrix, CsrMatrix};
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

/// Where the graph topology lives for the baseline sampler, and what each
/// random row access costs.
///
/// The numbers are modeled seconds per accessed adjacency row and follow the
/// bandwidth ratio between HBM (GPU-resident sampling) and PCIe-attached host
/// memory (UVA sampling): roughly 1550 GB/s vs 25 GB/s in the paper's
/// Perlmutter nodes, i.e. a ~60× gap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemoryModel {
    /// Graph fully resident in device memory (Quiver-GPU).
    DeviceResident,
    /// Graph in host DRAM accessed through a unified address space over PCIe
    /// (Quiver-UVA).
    UnifiedVirtualAddressing,
}

impl MemoryModel {
    /// Modeled seconds charged per adjacency row touched during sampling.
    pub fn seconds_per_row_access(&self) -> f64 {
        match self {
            MemoryModel::DeviceResident => 25.0e-9,
            MemoryModel::UnifiedVirtualAddressing => 1.5e-6,
        }
    }
}

/// A Quiver-style per-vertex GraphSAGE sampler: no matrices, no bulk
/// amortization — each minibatch is sampled on its own by walking neighbor
/// lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerVertexSageSampler {
    fanouts: Vec<usize>,
    memory: MemoryModel,
    include_self_loops: bool,
}

impl PerVertexSageSampler {
    /// Creates a per-vertex sampler with the given per-step fanouts
    /// (outermost first) and a device-resident graph.
    ///
    /// # Panics
    ///
    /// Panics if `fanouts` is empty or contains zero.
    pub fn new(fanouts: Vec<usize>) -> Self {
        assert!(!fanouts.is_empty(), "per-vertex SAGE needs at least one layer fanout");
        assert!(fanouts.iter().all(|&s| s > 0), "fanouts must be positive");
        PerVertexSageSampler {
            fanouts,
            memory: MemoryModel::DeviceResident,
            include_self_loops: false,
        }
    }

    /// Uses the given memory model (Figure 5's GPU vs UVA comparison).
    pub fn with_memory_model(mut self, memory: MemoryModel) -> Self {
        self.memory = memory;
        self
    }

    /// Adds self-loops like [`crate::GraphSageSampler::with_self_loops`].
    pub fn with_self_loops(mut self) -> Self {
        self.include_self_loops = true;
        self
    }

    /// The memory model in effect.
    pub fn memory_model(&self) -> MemoryModel {
        self.memory
    }

    /// Modeled memory-access seconds accumulated for `rows_touched` adjacency
    /// rows.
    pub fn modeled_access_time(&self, rows_touched: usize) -> f64 {
        self.memory.seconds_per_row_access() * rows_touched as f64
    }
}

impl Sampler for PerVertexSageSampler {
    fn name(&self) -> &'static str {
        "per-vertex-sage"
    }

    fn num_layers(&self) -> usize {
        self.fanouts.len()
    }

    fn fanout(&self, step: usize) -> usize {
        self.fanouts[step]
    }

    fn sample_minibatch(
        &self,
        adjacency: &CsrMatrix,
        batch: &[usize],
        rng: &mut dyn RngCore,
    ) -> Result<MinibatchSample> {
        let n = adjacency.rows();
        validate_batches(std::slice::from_ref(&batch.to_vec()), n)?;

        let mut frontier: Vec<usize> = batch.to_vec();
        let mut layers = Vec::with_capacity(self.fanouts.len());
        for &s in &self.fanouts {
            // Per-vertex neighbor sampling (hash-set based, like Quiver/DGL).
            let mut next: Vec<usize> = Vec::new();
            let mut col_of: std::collections::HashMap<usize, usize> =
                std::collections::HashMap::new();
            let mut edges: Vec<(usize, usize)> = Vec::new();
            for (i, &v) in frontier.iter().enumerate() {
                let neighbors = adjacency.row_indices(v);
                let picked: Vec<usize> = if neighbors.len() <= s {
                    (0..neighbors.len()).collect()
                } else {
                    // Uniform without replacement by index.
                    let weights = vec![1.0; neighbors.len()];
                    its_without_replacement(&weights, s, rng)?
                };
                for pos in picked {
                    let u = neighbors[pos];
                    let col = *col_of.entry(u).or_insert_with(|| {
                        next.push(u);
                        next.len() - 1
                    });
                    edges.push((i, col));
                }
                if self.include_self_loops {
                    let col = *col_of.entry(v).or_insert_with(|| {
                        next.push(v);
                        next.len() - 1
                    });
                    edges.push((i, col));
                }
            }
            let coo = CooMatrix::from_triples(
                frontier.len(),
                next.len(),
                edges.iter().map(|&(r, c)| (r, c, 1.0)),
            )?;
            let mut a_l = CsrMatrix::from_coo(&coo);
            a_l.map_values_inplace(|_| 1.0);
            layers.push(LayerSample::new(frontier.clone(), next.clone(), a_l));
            frontier = next;
        }
        layers.reverse();
        Ok(MinibatchSample { batch: batch.to_vec(), layers })
    }

    fn sample_bulk(
        &self,
        adjacency: &CsrMatrix,
        batches: &[Vec<usize>],
        config: &BulkSamplerConfig,
        rng: &mut dyn RngCore,
    ) -> Result<BulkSampleOutput> {
        config.validate()?;
        validate_batches(batches, adjacency.rows())?;
        let mut profile = PhaseProfile::new();
        let mut minibatches = Vec::with_capacity(batches.len());
        let mut rows_touched = 0usize;
        for batch in batches {
            let mb = profile
                .time_compute(Phase::Sampling, || self.sample_minibatch(adjacency, batch, rng))?;
            rows_touched += mb.layers.iter().map(|l| l.rows.len()).sum::<usize>();
            minibatches.push(mb);
        }
        // Charge the modeled memory-access time (the UVA / GPU distinction).
        profile.add_compute(Phase::Sampling, self.modeled_access_time(rows_touched));
        Ok(BulkSampleOutput { minibatches, profile, comm_stats: Default::default() })
    }
}

/// Reference per-batch CPU LADIES implementation (no matrices, no bulk): for
/// each batch it accumulates neighbor counts with a hash map, squares and
/// normalizes them, samples `s` support vertices and gathers the induced
/// bipartite edges.
///
/// # Errors
///
/// Returns [`SamplingError::InvalidConfig`] for empty/out-of-range batches or
/// `s == 0`.
pub fn ladies_reference<R: Rng + ?Sized>(
    adjacency: &CsrMatrix,
    batches: &[Vec<usize>],
    num_layers: usize,
    s: usize,
    rng: &mut R,
) -> Result<BulkSampleOutput> {
    if s == 0 {
        return Err(SamplingError::InvalidConfig("samples per layer must be positive".into()));
    }
    if num_layers == 0 {
        return Err(SamplingError::InvalidConfig("num_layers must be positive".into()));
    }
    let n = adjacency.rows();
    validate_batches(batches, n)?;
    let mut profile = PhaseProfile::new();
    let mut minibatches = Vec::with_capacity(batches.len());
    for batch in batches {
        let mut frontier = batch.clone();
        let mut layers = Vec::with_capacity(num_layers);
        for _ in 0..num_layers {
            // Aggregated neighborhood counts e_v.
            let counts = profile.time_compute(Phase::Probability, || {
                let mut counts: std::collections::HashMap<usize, f64> =
                    std::collections::HashMap::new();
                for &v in &frontier {
                    for &u in adjacency.row_indices(v) {
                        *counts.entry(u).or_insert(0.0) += 1.0;
                    }
                }
                counts
            });
            let (support, weights): (Vec<usize>, Vec<f64>) =
                counts.iter().map(|(&v, &e)| (v, e * e)).unzip();
            if support.is_empty() {
                layers.push(LayerSample::new(
                    frontier.clone(),
                    Vec::new(),
                    CsrMatrix::zeros(frontier.len(), 0),
                ));
                continue;
            }
            let picked = profile
                .time_compute(Phase::Sampling, || its_without_replacement(&weights, s, rng))?;
            let mut sampled: Vec<usize> = picked.into_iter().map(|i| support[i]).collect();
            sampled.sort_unstable();
            let layer = profile.time_compute(Phase::Extraction, || -> Result<LayerSample> {
                let rows = adjacency.gather_rows(&frontier)?;
                let a_s = rows.select_columns(&sampled)?;
                Ok(LayerSample::new(frontier.clone(), sampled.clone(), a_s))
            })?;
            frontier = layer.cols.clone();
            layers.push(layer);
        }
        layers.reverse();
        minibatches.push(MinibatchSample { batch: batch.clone(), layers });
    }
    Ok(BulkSampleOutput { minibatches, profile, comm_stats: Default::default() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphSageSampler, LadiesSampler};
    use dmbs_graph::generators::figure1_example;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn adjacency() -> CsrMatrix {
        figure1_example().adjacency().clone()
    }

    #[test]
    fn memory_model_gap_matches_hbm_vs_pcie() {
        let fast = MemoryModel::DeviceResident.seconds_per_row_access();
        let slow = MemoryModel::UnifiedVirtualAddressing.seconds_per_row_access();
        assert!(slow / fast > 20.0, "UVA accesses should be much slower than HBM");
    }

    #[test]
    fn per_vertex_sampler_respects_fanout_and_edges() {
        let a = adjacency();
        let sampler = PerVertexSageSampler::new(vec![2, 2]);
        let mut rng = StdRng::seed_from_u64(1);
        let sample = sampler.sample_minibatch(&a, &[1, 5], &mut rng).unwrap();
        assert_eq!(sample.num_layers(), 2);
        assert!(sample.frontiers_are_chained());
        for layer in &sample.layers {
            for r in 0..layer.adjacency.rows() {
                assert!(layer.adjacency.row_nnz(r) <= 2);
            }
            for (r, c, _) in layer.adjacency.iter() {
                assert_eq!(a.get(layer.rows[r], layer.cols[c]), 1.0);
            }
        }
    }

    #[test]
    fn per_vertex_matches_matrix_sampler_structure() {
        // With fanout larger than every degree both samplers must return the
        // full 1-hop neighborhood (identical column sets).
        let a = adjacency();
        let mut rng1 = StdRng::seed_from_u64(2);
        let mut rng2 = StdRng::seed_from_u64(3);
        let matrix =
            GraphSageSampler::new(vec![10]).sample_minibatch(&a, &[1, 5], &mut rng1).unwrap();
        let pervertex =
            PerVertexSageSampler::new(vec![10]).sample_minibatch(&a, &[1, 5], &mut rng2).unwrap();
        let mut m_cols = matrix.layers[0].cols.clone();
        let mut p_cols = pervertex.layers[0].cols.clone();
        m_cols.sort_unstable();
        p_cols.sort_unstable();
        assert_eq!(m_cols, p_cols);
        assert_eq!(matrix.layers[0].num_edges(), pervertex.layers[0].num_edges());
    }

    #[test]
    fn uva_model_is_slower_than_device() {
        let a = adjacency();
        let batches = vec![vec![1, 5], vec![0, 3]];
        let cfg = BulkSamplerConfig::new(2, 2);
        let gpu = PerVertexSageSampler::new(vec![2]);
        let uva = PerVertexSageSampler::new(vec![2])
            .with_memory_model(MemoryModel::UnifiedVirtualAddressing);
        assert_eq!(uva.memory_model(), MemoryModel::UnifiedVirtualAddressing);
        // Modeled access time for the same number of touched rows is larger.
        assert!(uva.modeled_access_time(1000) > gpu.modeled_access_time(1000));
        // Both still sample successfully.
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(gpu.sample_bulk(&a, &batches, &cfg, &mut rng).unwrap().num_batches(), 2);
    }

    #[test]
    fn per_vertex_self_loops() {
        let a = adjacency();
        let sampler = PerVertexSageSampler::new(vec![1]).with_self_loops();
        let mut rng = StdRng::seed_from_u64(5);
        let sample = sampler.sample_minibatch(&a, &[1, 5], &mut rng).unwrap();
        for layer in &sample.layers {
            for r in &layer.rows {
                assert!(layer.cols.contains(r));
            }
        }
    }

    #[test]
    fn per_vertex_validation_and_metadata() {
        let a = adjacency();
        let sampler = PerVertexSageSampler::new(vec![2]);
        let mut rng = StdRng::seed_from_u64(6);
        assert!(sampler.sample_minibatch(&a, &[99], &mut rng).is_err());
        assert!(sampler.sample_bulk(&a, &[], &BulkSamplerConfig::default(), &mut rng).is_err());
        assert_eq!(sampler.name(), "per-vertex-sage");
        assert_eq!(sampler.num_layers(), 1);
        assert_eq!(sampler.fanout(0), 2);
    }

    #[test]
    fn ladies_reference_matches_matrix_ladies_support() {
        // With s covering the whole aggregated neighborhood, both the
        // reference and the matrix implementation must return the same
        // support set and the same edges.
        let a = adjacency();
        let mut rng1 = StdRng::seed_from_u64(7);
        let mut rng2 = StdRng::seed_from_u64(8);
        let reference = ladies_reference(&a, &[vec![1, 5]], 1, 10, &mut rng1).unwrap();
        let matrix = LadiesSampler::new(1, 10).sample_minibatch(&a, &[1, 5], &mut rng2).unwrap();
        let mut ref_cols = reference.minibatches[0].layers[0].cols.clone();
        let mut mat_cols = matrix.layers[0].cols.clone();
        ref_cols.sort_unstable();
        mat_cols.sort_unstable();
        assert_eq!(ref_cols, mat_cols);
        assert_eq!(reference.minibatches[0].layers[0].num_edges(), matrix.layers[0].num_edges());
    }

    #[test]
    fn ladies_reference_validation() {
        let a = adjacency();
        let mut rng = StdRng::seed_from_u64(9);
        assert!(ladies_reference(&a, &[vec![1]], 1, 0, &mut rng).is_err());
        assert!(ladies_reference(&a, &[vec![1]], 0, 2, &mut rng).is_err());
        assert!(ladies_reference(&a, &[vec![77]], 1, 2, &mut rng).is_err());
        assert!(ladies_reference(&a, &[], 1, 2, &mut rng).is_err());
    }
}

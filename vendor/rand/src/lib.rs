//! A self-contained, dependency-free stand-in for the parts of the `rand`
//! crate that the `dmbs` workspace uses.
//!
//! The build environment has no network access, so the real `rand` crate
//! cannot be fetched; this shim provides API-compatible (not bit-compatible)
//! replacements: [`RngCore`], [`Rng`], [`SeedableRng`] and
//! [`rngs::StdRng`] backed by xoshiro256++ seeded with SplitMix64.  All
//! sampling in the workspace is seeded explicitly, so determinism — not
//! compatibility with upstream `rand` streams — is the contract.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level random number generation: a source of `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a value uniformly from `[lo, hi)` (or `[lo, hi]` when
    /// `inclusive`).
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, width: u64) -> u64 {
    // `width == 0` encodes the full 2^64 range.
    if width == 0 {
        return rng.next_u64();
    }
    // Multiply-shift (Lemire) mapping: deterministic, negligible bias.
    ((rng.next_u64() as u128 * width as u128) >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "cannot sample from an empty range");
                } else {
                    assert!(lo < hi, "cannot sample from an empty range");
                }
                let span = (hi as i128 - lo as i128) as u128 as u64;
                let width = if inclusive { span.wrapping_add(1) } else { span };
                let offset = uniform_u64(rng, width);
                ((lo as i128) + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(lo <= hi, "cannot sample from an empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f64, f32);

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

/// Distributions that [`Rng::gen`] can draw from; only the `Standard`
/// distribution exists in this shim.
pub trait StandardSample {
    /// Draws one value from the standard distribution of the type.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience methods on top of [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T` (uniform in
    /// `[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed, mirroring
/// `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (dst, src) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator of this shim: xoshiro256++.
    ///
    /// Not stream-compatible with upstream `rand::rngs::StdRng` (ChaCha12),
    /// but a high-quality, seedable, reproducible generator with the same
    /// API.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = rotl(self.s[3], 45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state would be a fixed point; nudge it.
            if s.iter().all(|&w| w == 0) {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_and_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..10 should appear");
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&v));
            let f = rng.gen_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
        }
        // Degenerate inclusive range.
        assert_eq!(rng.gen_range(4usize..=4), 4);
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(3);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x: f64 = dyn_rng.gen();
        assert!((0.0..1.0).contains(&x));
        let v = dyn_rng.gen_range(0usize..4);
        assert!(v < 4);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        rng.gen_range(5usize..5);
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}

//! Cross-backend transport equivalence sweep: the real multi-process
//! Unix-socket transport must be a drop-in replacement for the in-process
//! rank simulator.
//!
//! The contract under test: selecting
//! [`TransportSelect::UnixSocket`](dmbs::comm::TransportSelect) on a
//! [`TrainingSession`] changes *how* bytes move (OS processes, socketpairs,
//! length-prefixed frames) but nothing observable about the training run —
//! every deterministic counter (words, messages, cache hits/misses, saved
//! words) and every per-epoch mean loss is **bit-identical** to the
//! simulator, swept over p ∈ {1, 2, 4} × every c dividing p × all three
//! feature-cache modes.
//!
//! The sweep also pins that [`CommStats`](dmbs::comm::CommStats) aggregation
//! survives the process boundary: per-rank stats are serialized back from
//! real child processes and merged by the same code path the simulator
//! uses, so the cache-balance identity
//! `words_sent(cached) + words_saved == words_sent(uncached)` must hold on
//! the real backend too.

mod common;

use common::GRID_SHAPES;
use dmbs::comm::{run_if_worker, Codec, SocketLaunch, TransportSelect};
use dmbs::gnn::{FeatureCacheConfig, TrainingReport, TrainingSession};
use dmbs::graph::datasets::Dataset;
use dmbs::sampling::{BulkSamplerConfig, DistConfig, GraphSageSampler, ReplicatedBackend};
use std::sync::Arc;

/// Rank-process entry point.  When the parent re-executes this test binary
/// with the rendezvous environment set, libtest routes execution here (via
/// `--exact socket_worker_shim`) and `run_if_worker` takes over the process;
/// in an ordinary `cargo test` run the environment is unset and this is an
/// empty passing test.
#[test]
fn socket_worker_shim() {
    run_if_worker(&dmbs::gnn::worker::registry());
}

fn launch() -> SocketLaunch {
    common::socket_launch()
}

fn tiny_dataset() -> Arc<Dataset> {
    common::arc_products_dataset(6, 8, 3, 0.5, Some(0.6), 11)
}

fn train(
    dataset: &Arc<Dataset>,
    p: usize,
    c: usize,
    cache: FeatureCacheConfig,
    transport: TransportSelect,
) -> TrainingReport {
    let dist = DistConfig::new(p, c, BulkSamplerConfig::new(8, 2));
    let backend = ReplicatedBackend::new(dist).expect("backend");
    TrainingSession::builder()
        .dataset(Arc::clone(dataset))
        .sampler(GraphSageSampler::new(vec![4, 3]).with_self_loops())
        .backend(backend)
        .hidden_dim(8)
        .learning_rate(0.1)
        .epochs(2)
        .seed(33)
        .feature_cache(cache)
        .transport(transport)
        .without_evaluation()
        .build()
        .expect("session")
        .train()
        .expect("training")
}

/// The tentpole sweep: for every grid shape and cache mode, the socket
/// transport reproduces the simulator's losses and deterministic counters
/// bit for bit.
#[test]
fn socket_transport_is_byte_identical_to_simulator_across_the_sweep() {
    let dataset = tiny_dataset();
    for &(p, c) in &GRID_SHAPES {
        for cache in common::cache_modes(2_048) {
            let sim = train(&dataset, p, c, cache, TransportSelect::Simulator);
            let sock = train(&dataset, p, c, cache, TransportSelect::UnixSocket(launch()));
            let label = format!("p={p} c={c} cache={cache:?}");
            assert_eq!(sim.epochs.len(), sock.epochs.len(), "{label}: epoch count diverged");
            for (a, b) in sim.epochs.iter().zip(&sock.epochs) {
                assert_eq!(
                    a.mean_loss.to_bits(),
                    b.mean_loss.to_bits(),
                    "{label} epoch {}: losses not bit-identical ({} vs {})",
                    a.epoch,
                    a.mean_loss,
                    b.mean_loss
                );
                assert_eq!(a.comm.words_sent, b.comm.words_sent, "{label}: words diverged");
                assert_eq!(a.comm.messages, b.comm.messages, "{label}: messages diverged");
                assert_eq!(a.comm.cache_hits, b.comm.cache_hits, "{label}: hits diverged");
                assert_eq!(a.comm.cache_misses, b.comm.cache_misses, "{label}: misses diverged");
                assert_eq!(a.comm.words_saved, b.comm.words_saved, "{label}: saved diverged");
            }
        }
    }
}

/// Satellite: `CommStats` merged across real process boundaries still obey
/// the cache-balance identity — every word the cache claims to save is a
/// word the uncached run actually sent.
#[test]
fn cache_balance_holds_across_process_boundaries() {
    let dataset = tiny_dataset();
    for &(p, c) in &[(2, 1), (4, 2)] {
        let uncached =
            train(&dataset, p, c, FeatureCacheConfig::Off, TransportSelect::UnixSocket(launch()));
        let cached = train(
            &dataset,
            p,
            c,
            FeatureCacheConfig::EpochPinned,
            TransportSelect::UnixSocket(launch()),
        );
        let words =
            |r: &TrainingReport| -> usize { r.epochs.iter().map(|e| e.comm.words_sent).sum() };
        let saved: usize = cached.epochs.iter().map(|e| e.comm.words_saved).sum();
        assert_eq!(
            words(&cached) + saved,
            words(&uncached),
            "p={p} c={c}: cache balance broke across the process boundary"
        );
        assert!(saved > 0, "p={p} c={c}: pinned cache saved nothing; the identity is vacuous");
    }
}

/// Wire-compression sweep: under every codec (and under top-k gradient
/// compression), the socket transport still reproduces the simulator bit for
/// bit — losses, words, messages, and both byte books.  The codecs are
/// deterministic little-endian transforms applied once at the sender, so the
/// transport never sees (or alters) unquantized values.
#[test]
fn socket_transport_matches_simulator_under_every_codec() {
    let dataset = tiny_dataset();
    let run = |p: usize,
               c: usize,
               cache: FeatureCacheConfig,
               codec: Codec,
               top_k: Option<usize>,
               transport: TransportSelect|
     -> TrainingReport {
        let dist = DistConfig::new(p, c, BulkSamplerConfig::new(8, 2));
        let backend = ReplicatedBackend::new(dist).expect("backend");
        let mut builder = TrainingSession::builder()
            .dataset(Arc::clone(&dataset))
            .sampler(GraphSageSampler::new(vec![4, 3]).with_self_loops())
            .backend(backend)
            .hidden_dim(8)
            .learning_rate(0.1)
            .epochs(2)
            .seed(33)
            .feature_cache(cache)
            .wire_codec(codec)
            .transport(transport)
            .without_evaluation();
        if let Some(k) = top_k {
            builder = builder.grad_top_k(k);
        }
        builder.build().expect("session").train().expect("training")
    };
    for &(p, c) in &[(2usize, 1usize), (4, 2)] {
        for (codec, top_k) in [
            (Codec::Exact, Some(16)),
            (Codec::Fp16, None),
            (Codec::Int8, None),
            (Codec::Int8, Some(16)),
        ] {
            for cache in [FeatureCacheConfig::Off, FeatureCacheConfig::EpochPinned] {
                let sim = run(p, c, cache, codec, top_k, TransportSelect::Simulator);
                let sock = run(p, c, cache, codec, top_k, TransportSelect::UnixSocket(launch()));
                let label = format!("p={p} c={c} codec={codec} top_k={top_k:?} cache={cache:?}");
                for (a, b) in sim.epochs.iter().zip(&sock.epochs) {
                    assert_eq!(
                        a.mean_loss.to_bits(),
                        b.mean_loss.to_bits(),
                        "{label}: losses not bit-identical"
                    );
                    assert_eq!(a.comm.words_sent, b.comm.words_sent, "{label}: words diverged");
                    assert_eq!(a.comm.messages, b.comm.messages, "{label}: messages diverged");
                    assert_eq!(
                        a.comm.bytes_on_wire, b.comm.bytes_on_wire,
                        "{label}: bytes-on-wire book diverged"
                    );
                    assert_eq!(
                        a.comm.bytes_saved, b.comm.bytes_saved,
                        "{label}: bytes-saved book diverged"
                    );
                }
            }
        }
    }
}

/// Satellite: the averaged model parameters also survive the wire codec —
/// evaluation (which runs in the parent over the decoded, rank-averaged
/// parameters) scores bit-identically on both transports.  A parameter
/// codec bug would not show in per-epoch losses, so this closes that gap.
#[test]
fn evaluation_over_decoded_parameters_matches_simulator() {
    let dataset = tiny_dataset();
    let evaluated = |transport: TransportSelect| -> TrainingReport {
        let dist = DistConfig::new(2, 1, BulkSamplerConfig::new(8, 2));
        let backend = ReplicatedBackend::new(dist).expect("backend");
        TrainingSession::builder()
            .dataset(Arc::clone(&dataset))
            .sampler(GraphSageSampler::new(vec![4, 3]).with_self_loops())
            .backend(backend)
            .hidden_dim(8)
            .learning_rate(0.1)
            .epochs(2)
            .seed(33)
            .feature_cache(FeatureCacheConfig::EpochPinned)
            .transport(transport)
            .build()
            .expect("session")
            .train()
            .expect("training")
    };
    let sim = evaluated(TransportSelect::Simulator);
    let sock = evaluated(TransportSelect::UnixSocket(launch()));
    let accuracy = |r: &TrainingReport| r.test_accuracy.expect("evaluation ran").to_bits();
    assert_eq!(
        accuracy(&sim),
        accuracy(&sock),
        "test accuracy diverged: the parameter matrices did not survive the codec bit-exactly"
    );
}

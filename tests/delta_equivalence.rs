//! Dynamic-graph equivalence sweep: incremental delta-CSR ingest must be a
//! pure representation choice, and precise cache invalidation a pure
//! accounting choice.
//!
//! Three contracts are pinned here:
//!
//! * **Delta ≡ rebuild.**  Folding scheduled edge batches into the adjacency
//!   lazily ([`IngestMode::Delta`]) or by eager rebuild
//!   ([`IngestMode::Rebuild`]) is observationally invisible: per-epoch loss
//!   bits, every communication counter and both invalidation books are
//!   bit-identical across p ∈ {1, 2, 4} × every c dividing p × all three
//!   feature-cache modes × both transports (in-process simulator and real
//!   Unix-socket processes).
//! * **Ingest is not a no-op.**  The same schedule really changes what the
//!   post-ingest epochs sample — the loss trajectory diverges from the
//!   static-graph run after the first batch lands (and never before), so the
//!   equivalence above is non-vacuous.
//! * **The invalidation books balance exactly.**  For one ingest against
//!   identical resident state, the brute-force flush pays precisely what
//!   precise invalidation pays plus what it retained:
//!   `invalidation_words(FlushAll) == invalidation_words(Precise) +
//!   retained_words(Precise)` (and the same identity over row counts), while
//!   training losses do not move by a bit between the two policies.

mod common;

use common::GRID_SHAPES;
use dmbs::comm::{run_if_worker, TransportSelect};
use dmbs::gnn::{
    ensure_plan_fresh, FeatureCacheConfig, GnnError, InvalidationPolicy, ServeError, ServeRequest,
    ServingConfig, ServingSession, TrainingReport, TrainingSession,
};
use dmbs::graph::datasets::Dataset;
use dmbs::graph::IngestMode;
use dmbs::matrix::DeltaBatch;
use dmbs::sampling::{
    BulkSamplerConfig, DistConfig, FetchPlan, GraphSageSampler, LocalBackend, ReplicatedBackend,
};
use std::sync::Arc;

/// Rank-process entry point for the Unix-socket legs of the sweep (the
/// `run_if_worker` re-exec pattern; see `tests/transport_equivalence.rs`).
#[test]
fn socket_worker_shim() {
    run_if_worker(&dmbs::gnn::worker::registry());
}

fn tiny_dataset() -> Arc<Dataset> {
    common::arc_products_dataset(6, 8, 3, 0.5, Some(0.6), 11)
}

/// Two edge batches derived deterministically from the dataset itself:
/// the first (after epoch 0) deletes real edges and fans new ones out of the
/// low-index vertices, the second (after epoch 1) retracts some of those
/// inserts and grows the upper half.  Touching many rows keeps both the
/// trajectory divergence and the invalidation books non-vacuous.
fn schedule(dataset: &Dataset) -> [(usize, DeltaBatch); 2] {
    let a = dataset.graph.adjacency();
    let n = dataset.graph.num_vertices();
    let existing: Vec<(usize, usize)> = a.iter().map(|(r, c, _)| (r, c)).take(6).collect();
    assert!(existing.len() == 6, "dataset too sparse for the schedule");
    let mut missing = Vec::new();
    'scan: for r in 0..n {
        for c in 0..n {
            if r != c && a.get(r, c) == 0.0 {
                missing.push((r, c));
                if missing.len() == 24 {
                    break 'scan;
                }
            }
        }
    }
    let mut first = DeltaBatch::new();
    for &(r, c) in &existing[..4] {
        first.delete(r, c);
    }
    for &(r, c) in &missing[..16] {
        first.insert(r, c, 1.0);
    }
    let mut second = DeltaBatch::new();
    for &(r, c) in &existing[4..] {
        second.delete(r, c);
    }
    for &(r, c) in &missing[..2] {
        second.delete(r, c); // retract two first-batch inserts: LWW overlay
    }
    for &(r, c) in &missing[16..] {
        second.insert(r, c, 1.5);
    }
    [(0, first), (1, second)]
}

#[allow(clippy::too_many_arguments)]
fn train(
    dataset: &Arc<Dataset>,
    p: usize,
    c: usize,
    cache: FeatureCacheConfig,
    mode: IngestMode,
    policy: InvalidationPolicy,
    events: &[(usize, DeltaBatch)],
    transport: TransportSelect,
) -> TrainingReport {
    let dist = DistConfig::new(p, c, BulkSamplerConfig::new(8, 2));
    let mut builder = TrainingSession::builder()
        .dataset(Arc::clone(dataset))
        .sampler(GraphSageSampler::new(vec![4, 3]).with_self_loops())
        .backend(ReplicatedBackend::new(dist).expect("backend"))
        .hidden_dim(8)
        .learning_rate(0.1)
        .epochs(3)
        .seed(33)
        .feature_cache(cache)
        .ingest_mode(mode)
        .invalidation(policy)
        .transport(transport)
        .without_evaluation();
    for (after_epoch, batch) in events {
        builder = builder.ingest(*after_epoch, batch.clone());
    }
    builder.build().expect("session").train().expect("training")
}

/// Every deterministic per-epoch counter, including both invalidation books.
fn assert_reports_identical(a: &TrainingReport, b: &TrainingReport, label: &str) {
    assert_eq!(a.epochs.len(), b.epochs.len(), "{label}: epoch count diverged");
    for (x, y) in a.epochs.iter().zip(&b.epochs) {
        assert_eq!(
            x.mean_loss.to_bits(),
            y.mean_loss.to_bits(),
            "{label} epoch {}: losses not bit-identical ({} vs {})",
            x.epoch,
            x.mean_loss,
            y.mean_loss
        );
        assert_eq!(x.comm.words_sent, y.comm.words_sent, "{label}: words diverged");
        assert_eq!(x.comm.messages, y.comm.messages, "{label}: messages diverged");
        assert_eq!(x.comm.cache_hits, y.comm.cache_hits, "{label}: hits diverged");
        assert_eq!(x.comm.cache_misses, y.comm.cache_misses, "{label}: misses diverged");
        assert_eq!(x.comm.words_saved, y.comm.words_saved, "{label}: saved diverged");
        assert_eq!(
            x.comm.rows_invalidated, y.comm.rows_invalidated,
            "{label}: invalidated-row book diverged"
        );
        assert_eq!(
            x.comm.rows_retained, y.comm.rows_retained,
            "{label}: retained-row book diverged"
        );
        assert_eq!(
            x.comm.invalidation_words, y.comm.invalidation_words,
            "{label}: invalidation-word book diverged"
        );
        assert_eq!(
            x.comm.retained_words, y.comm.retained_words,
            "{label}: retained-word book diverged"
        );
    }
}

/// The tentpole sweep: for every grid shape, cache mode and transport, a
/// session that folds the schedule through the lazy delta overlay is
/// bit-identical — losses, comm counters, invalidation books — to one that
/// eagerly rebuilds the CSR after every batch; and the socket transport
/// reproduces the simulator's delta run bit for bit, so the dynamic path
/// survives the v3 job codec and the process boundary unchanged.
#[test]
fn delta_ingest_is_byte_identical_to_rebuild_across_the_sweep() {
    let dataset = tiny_dataset();
    let events = schedule(&dataset);
    for &(p, c) in &GRID_SHAPES {
        for cache in common::cache_modes(2_048) {
            let label = format!("p={p} c={c} cache={cache:?}");
            let policy = InvalidationPolicy::Precise;
            let run = |mode: IngestMode, transport: TransportSelect| {
                train(&dataset, p, c, cache, mode, policy, &events, transport)
            };
            let sim_delta = run(IngestMode::Delta, TransportSelect::Simulator);
            let sim_rebuild = run(IngestMode::Rebuild, TransportSelect::Simulator);
            assert_reports_identical(&sim_delta, &sim_rebuild, &format!("{label} [simulator]"));
            let sock_delta =
                run(IngestMode::Delta, TransportSelect::UnixSocket(common::socket_launch()));
            let sock_rebuild =
                run(IngestMode::Rebuild, TransportSelect::UnixSocket(common::socket_launch()));
            assert_reports_identical(&sock_delta, &sock_rebuild, &format!("{label} [socket]"));
            assert_reports_identical(&sim_delta, &sock_delta, &format!("{label} [cross]"));
        }
    }
}

/// The divergence guard that keeps the sweep honest: the schedule really
/// changes what post-ingest epochs sample.  Epoch 0 (trained before the
/// first batch lands) is bit-identical to the static-graph run; at least one
/// later epoch is not.
#[test]
fn ingest_changes_the_trajectory_and_only_after_it_lands() {
    let dataset = tiny_dataset();
    let events = schedule(&dataset);
    let run = |events: &[(usize, DeltaBatch)]| {
        train(
            &dataset,
            4,
            2,
            FeatureCacheConfig::EpochPinned,
            IngestMode::Delta,
            InvalidationPolicy::Precise,
            events,
            TransportSelect::Simulator,
        )
    };
    let dynamic = run(&events);
    let static_run = run(&[]);
    assert_eq!(
        dynamic.epochs[0].mean_loss.to_bits(),
        static_run.epochs[0].mean_loss.to_bits(),
        "epoch 0 trains before any batch lands and must match the static run"
    );
    assert!(
        dynamic.epochs[1..]
            .iter()
            .zip(&static_run.epochs[1..])
            .any(|(d, s)| d.mean_loss.to_bits() != s.mean_loss.to_bits()),
        "the ingest schedule changed nothing: the delta-equivalence sweep is vacuous"
    );
}

/// The exact invalidation ledger.  One batch against identical resident
/// state: flush-all books every resident row as invalidated; precise books
/// the dirty intersection as invalidated and every survivor as retained —
/// and the two ledgers reconcile to the word.  Losses are policy-invariant
/// (invalidation is work accounting, never approximation), and both cached
/// runs still balance against the uncached run's words.
#[test]
fn precise_and_flush_all_books_balance_exactly() {
    let dataset = tiny_dataset();
    let events = schedule(&dataset);
    let single = &events[..1]; // identical resident state at the one ingest
    let cache = FeatureCacheConfig::Lru { byte_budget: 1 << 16 };
    let run = |cache: FeatureCacheConfig, policy: InvalidationPolicy| {
        train(&dataset, 4, 2, cache, IngestMode::Delta, policy, single, TransportSelect::Simulator)
    };
    let precise = run(cache, InvalidationPolicy::Precise);
    let flush = run(cache, InvalidationPolicy::FlushAll);

    for (p, f) in precise.epochs.iter().zip(&flush.epochs) {
        assert_eq!(
            p.mean_loss.to_bits(),
            f.mean_loss.to_bits(),
            "epoch {}: invalidation policy changed a loss",
            p.epoch
        );
    }

    let sum = |r: &TrainingReport, field: fn(&dmbs::comm::CommStats) -> usize| -> usize {
        r.epochs.iter().map(|e| field(&e.comm)).sum()
    };
    let p_inv_rows = sum(&precise, |s| s.rows_invalidated);
    let p_ret_rows = sum(&precise, |s| s.rows_retained);
    let p_inv_words = sum(&precise, |s| s.invalidation_words);
    let p_ret_words = sum(&precise, |s| s.retained_words);
    assert!(p_inv_rows > 0, "no resident row was dirty; the ledger identity is vacuous");
    assert!(p_ret_rows > 0, "no resident row survived; precise == flush-all here");
    assert_eq!(sum(&flush, |s| s.rows_retained), 0, "flush-all must retain nothing");
    assert_eq!(sum(&flush, |s| s.retained_words), 0, "flush-all must retain nothing");
    assert_eq!(
        sum(&flush, |s| s.rows_invalidated),
        p_inv_rows + p_ret_rows,
        "row ledgers do not reconcile"
    );
    assert_eq!(
        sum(&flush, |s| s.invalidation_words),
        p_inv_words + p_ret_words,
        "word ledgers do not reconcile"
    );

    // The cache-balance identity survives ingest under both policies: every
    // word a cached run did not send is a word it claims as saved.
    let uncached = run(FeatureCacheConfig::Off, InvalidationPolicy::Precise);
    let words = |r: &TrainingReport| sum(r, |s| s.words_sent);
    let saved = |r: &TrainingReport| sum(r, |s| s.words_saved);
    assert_eq!(words(&precise) + saved(&precise), words(&uncached), "precise balance broke");
    assert_eq!(words(&flush) + saved(&flush), words(&uncached), "flush-all balance broke");
}

/// Flaky-guard for the dynamic path: two identically-seeded runs of the same
/// ingest schedule agree bit for bit on every loss and exactly on every
/// counter — including the invalidation books, which a scheduling race in
/// the post-epoch apply would smear across epochs.
#[test]
fn seeded_ingest_training_is_run_to_run_deterministic() {
    let dataset = tiny_dataset();
    let events = schedule(&dataset);
    let run = || {
        train(
            &dataset,
            4,
            2,
            FeatureCacheConfig::Lru { byte_budget: 2_048 },
            IngestMode::Delta,
            InvalidationPolicy::Precise,
            &events,
            TransportSelect::Simulator,
        )
    };
    assert_reports_identical(&run(), &run(), "two identically-seeded ingest runs");
}

/// Negative path: a [`FetchPlan`] stamped before the latest ingest is
/// refused with the typed [`GnnError::StalePlan`] — never silently served.
#[test]
fn stale_fetch_plan_is_refused_with_a_typed_error() {
    let plan = FetchPlan::from_minibatches(&[]).with_version(1);
    assert_eq!(ensure_plan_fresh(&plan, 1), Ok(()));
    assert_eq!(
        ensure_plan_fresh(&plan, 3),
        Err(GnnError::StalePlan { plan_version: 1, graph_version: 3 })
    );
}

/// Negative path at the serving tier: after an ingest touches vertices the
/// hot tier pinned, serving them fails with the typed stale-plan error until
/// an explicit [`ServingSession::rewarm`] — and the rewarmed answers are
/// bit-identical to the pre-ingest ones (edge batches never change feature
/// rows, so staleness here is purely about derived pinned state).
#[test]
fn serving_hot_tier_goes_stale_on_ingest_and_rewarm_discharges_it() {
    let dataset = common::arc_products_dataset(6, 8, 4, 0.5, None, 3);
    let n = dataset.num_vertices();
    let session = TrainingSession::builder()
        .dataset(Arc::clone(&dataset))
        .sampler(GraphSageSampler::new(vec![3, 3]).with_self_loops())
        .backend(LocalBackend::new(BulkSamplerConfig::new(8, 2)).unwrap())
        .hidden_dim(8)
        .learning_rate(0.05)
        .epochs(1)
        .seed(13)
        .without_evaluation()
        .build()
        .unwrap();
    let (_, snapshot) = session.train_and_export().unwrap();
    let config = ServingConfig {
        hot_capacity: 16,
        hot_warm_interval: 1,
        seed: 9,
        ..ServingConfig::default()
    };
    let mut serving = ServingSession::new(
        Arc::clone(&dataset),
        GraphSageSampler::new(vec![3, 3]).with_self_loops(),
        snapshot,
        config,
    )
    .unwrap();

    let requests: Vec<ServeRequest> =
        (0..6u64).map(|id| ServeRequest { id, vertex: (id as usize * 7) % n }).collect();
    let before = serving.serve(&requests).unwrap();
    for _ in 0..4 {
        serving.serve(&requests).unwrap();
    }
    assert!(serving.hot_resident() > 0, "hot tier never warmed");

    let dirty: Vec<usize> = (0..n).collect();
    let marked = serving.notify_ingest(&dirty);
    assert!(marked > 0, "ingest marked no pinned row; the negative path is vacuous");
    match serving.serve(&requests) {
        Err(ServeError::Gnn(GnnError::StalePlan { plan_version, graph_version })) => {
            assert!(plan_version < graph_version);
        }
        other => panic!("expected StalePlan on a stale pinned row, got {other:?}"),
    }

    serving.rewarm();
    let after = serving.serve(&requests).unwrap();
    for (a, b) in before.iter().zip(&after) {
        assert_eq!(a.prediction, b.prediction);
        for (x, y) in a.logits.iter().zip(&b.logits) {
            assert_eq!(x.to_bits(), y.to_bits(), "rewarm changed an answer");
        }
    }
}

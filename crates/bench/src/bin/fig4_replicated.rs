//! Figure 4: end-to-end per-epoch time of the Graph-Replicated pipeline vs a
//! Quiver-like baseline, broken into sampling / feature fetching /
//! propagation, across simulated GPU (rank) counts.
//!
//! The Quiver stand-in uses per-vertex sampling (no bulk amortization) and a
//! non-replication-aware feature store (every rank fetches from the whole
//! world), which are the two properties the paper attributes to Quiver's
//! scaling behaviour.

use dmbs_bench::{
    dataset, print_table, replication_for, sage_training_config, secs, train_replicated, Scale,
};
use dmbs_gnn::trainer::SamplerChoice;
use dmbs_graph::datasets::DatasetKind;

fn main() {
    let scale = Scale::from_env();
    for kind in [DatasetKind::Products, DatasetKind::Papers, DatasetKind::Protein] {
        let ds = std::sync::Arc::new(dataset(kind, scale));
        let mut config = sage_training_config(&ds);
        config.epochs = 1;
        let mut rows = Vec::new();
        for &p in &scale.rank_counts() {
            let c = replication_for(p).min(p);

            let ours = train_replicated(&ds, &config, p, c, true, SamplerChoice::MatrixSage);
            let quiver = train_replicated(&ds, &config, p, 1, false, SamplerChoice::PerVertexSage);
            let o = &ours[0];
            let q = &quiver[0];
            rows.push(vec![
                format!("{p}"),
                format!("c={c}"),
                secs(o.sampling_time()),
                secs(o.feature_fetch_time()),
                secs(o.propagation_time()),
                secs(o.total_time()),
                secs(q.total_time()),
                format!("{:.2}x", q.total_time() / o.total_time().max(1e-12)),
            ]);
        }
        print_table(
            &format!(
                "Figure 4 — {} (Graph Replicated pipeline vs Quiver-like baseline)",
                kind.name()
            ),
            &[
                "ranks",
                "repl",
                "sampling",
                "feat fetch",
                "propagation",
                "ours total",
                "quiver total",
                "speedup",
            ],
            &rows,
        );
    }
    println!("\nPaper reference points: 2.5x over Quiver on Products (16 GPUs), 3.4x on Papers (64 GPUs), 8.5x on Protein (128 GPUs).");
}

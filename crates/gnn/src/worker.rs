//! The multi-process training worker: ships a whole [`TrainingSession`]
//! across a process boundary.
//!
//! The Unix-socket transport runs each rank in its own OS process, and
//! closures cannot cross processes — so the session layer registers a *named
//! worker* here.  The parent encodes everything a rank needs — the dataset
//! (adjacency, features, labels, train set), the sampler and backend **specs**
//! ([`dmbs_sampling::SamplerSpec`] / [`dmbs_sampling::BackendSpec`]) and the
//! resolved session hyper-parameters — into a job with the
//! [`dmbs_comm::wire`] codec; each rank process decodes it, rebuilds the
//! identical session with `TrainingSession::from_parts`, runs the same
//! per-rank loop (`distributed_rank_main`) the simulator runs on threads, and
//! wire-encodes its per-epoch results back.
//!
//! Everything in the round-trip is bit-exact (`f64` travels as raw bits), so
//! losses and the deterministic communication counters are identical across
//! transports — the invariant `tests/transport_equivalence.rs` pins.
//!
//! Binaries that may be re-executed as rank processes must call
//! [`dmbs_comm::run_if_worker`] with [`registry`] before doing anything else;
//! see that function's docs for the env-var protocol.

use crate::features::{FeatureCacheConfig, InvalidationPolicy};
use crate::session::{IngestEvent, RankEpochs, SessionConfig, TrainingSession};
use crate::{GnnError, Result};
use dmbs_comm::wire::{
    get_f64, get_f64s, get_u64, get_usize, get_usizes, put_f64, put_f64s, put_u64, put_usize,
    put_usizes,
};
use dmbs_comm::{
    Codec, Communicator, Payload, Phase, PhaseProfile, TransportSelect, WorkerRegistry,
};
use dmbs_graph::datasets::{Dataset, DatasetKind};
use dmbs_graph::{Graph, IngestMode};
use dmbs_matrix::pool::Parallelism;
use dmbs_matrix::{CsrMatrix, DeltaBatch, DenseMatrix};
use dmbs_sampling::{
    BackendSpec, BulkSamplerConfig, DistConfig, FastGcnSampler, GraphSageSampler, LadiesSampler,
    Partitioned1p5dBackend, ReplicatedBackend, Sampler, SamplerSpec, SamplingBackend,
};
use std::sync::Arc;

/// Name of the distributed-training worker in [`registry`].
pub const TRAIN_WORKER: &str = "dmbs.gnn.train";

/// Job format version, rejected on mismatch so a stale binary fails fast
/// instead of misdecoding.  v2 added the wire codec and the top-k gradient
/// compression knob to the session config; v3 added the dynamic-graph ingest
/// schedule (per-epoch edge batches, ingest mode, invalidation policy).
const JOB_VERSION: u64 = 3;

/// The worker registry of this crate: currently the single
/// [`TRAIN_WORKER`].  Pass it to [`dmbs_comm::run_if_worker`] at the top of
/// any binary (or test shim) that dispatches socket-transport training, and
/// to [`dmbs_comm::Runtime::run_worker`] when launching.
pub fn registry() -> WorkerRegistry {
    WorkerRegistry::new().with(TRAIN_WORKER, train_worker)
}

/// Everything a rank process needs to rebuild the parent's session.
#[derive(Debug)]
struct TrainJob {
    dataset: Dataset,
    sampler: SamplerSpec,
    backend: BackendSpec,
    config: SessionConfig,
}

fn codec_err(what: &str) -> GnnError {
    GnnError::InvalidConfig(format!("train job codec: truncated or malformed {what}"))
}

fn put_bool(out: &mut Vec<u8>, b: bool) {
    put_u64(out, u64::from(b));
}

fn get_bool(input: &mut &[u8]) -> Option<bool> {
    match get_u64(input)? {
        0 => Some(false),
        1 => Some(true),
        _ => None,
    }
}

/// Encodes the session's dataset, sampler/backend specs and resolved
/// configuration into a [`TRAIN_WORKER`] job.
///
/// # Errors
///
/// Returns [`GnnError::InvalidConfig`] if the sampler or backend has no spec
/// (`spec()` returned `None`) — such objects cannot cross process boundaries
/// — or if the dataset lacks features or labels.
pub(crate) fn encode_train_job<S, B>(session: &TrainingSession<S, B>) -> Result<Vec<u8>>
where
    S: Sampler,
    B: SamplingBackend,
{
    let sampler_spec = session.sampler().spec().ok_or_else(|| {
        GnnError::InvalidConfig(format!(
            "sampler '{}' has no spec; it cannot run on the Unix-socket transport",
            session.sampler().name()
        ))
    })?;
    let backend_spec = session.backend().spec().ok_or_else(|| {
        GnnError::InvalidConfig(format!(
            "backend '{}' has no spec; it cannot run on the Unix-socket transport",
            session.backend().name()
        ))
    })?;
    let dataset = session.dataset();
    let features = dataset
        .graph
        .features()
        .ok_or_else(|| GnnError::InvalidConfig("dataset has no feature matrix".into()))?;
    let labels = dataset
        .graph
        .labels()
        .ok_or_else(|| GnnError::InvalidConfig("dataset has no labels".into()))?;

    let mut out = Vec::new();
    put_u64(&mut out, JOB_VERSION);

    // Dataset: adjacency CSR raw parts, dense features, labels, train set.
    // The validation/test sets stay with the parent (evaluation never runs
    // in a rank process).
    put_u64(
        &mut out,
        match dataset.kind {
            DatasetKind::Products => 0,
            DatasetKind::Protein => 1,
            DatasetKind::Papers => 2,
        },
    );
    let adj = dataset.graph.adjacency();
    put_usize(&mut out, adj.rows());
    put_usize(&mut out, adj.cols());
    put_usizes(&mut out, adj.indptr());
    put_usizes(&mut out, adj.indices());
    put_f64s(&mut out, adj.values());
    put_usize(&mut out, features.rows());
    put_usize(&mut out, features.cols());
    put_f64s(&mut out, features.as_slice());
    put_usizes(&mut out, labels);
    put_usize(&mut out, dataset.graph.num_classes());
    put_usizes(&mut out, &dataset.train_set);

    encode_sampler_spec(&mut out, &sampler_spec);
    encode_backend_spec(&mut out, &backend_spec);
    encode_session_config(&mut out, session.config());
    Ok(out)
}

fn encode_sampler_spec(out: &mut Vec<u8>, spec: &SamplerSpec) {
    match spec {
        SamplerSpec::GraphSage { fanouts, self_loops } => {
            put_u64(out, 0);
            put_usizes(out, fanouts);
            put_bool(out, *self_loops);
        }
        SamplerSpec::Ladies { num_layers, samples_per_layer, include_previous } => {
            put_u64(out, 1);
            put_usize(out, *num_layers);
            put_usize(out, *samples_per_layer);
            put_bool(out, *include_previous);
        }
        SamplerSpec::FastGcn { num_layers, samples_per_layer } => {
            put_u64(out, 2);
            put_usize(out, *num_layers);
            put_usize(out, *samples_per_layer);
        }
    }
}

fn decode_sampler_spec(input: &mut &[u8]) -> Option<SamplerSpec> {
    Some(match get_u64(input)? {
        0 => SamplerSpec::GraphSage { fanouts: get_usizes(input)?, self_loops: get_bool(input)? },
        1 => SamplerSpec::Ladies {
            num_layers: get_usize(input)?,
            samples_per_layer: get_usize(input)?,
            include_previous: get_bool(input)?,
        },
        2 => SamplerSpec::FastGcn {
            num_layers: get_usize(input)?,
            samples_per_layer: get_usize(input)?,
        },
        _ => return None,
    })
}

fn encode_backend_spec(out: &mut Vec<u8>, spec: &BackendSpec) {
    let (tag, dist) = match spec {
        BackendSpec::Replicated { dist } => (0u64, dist),
        BackendSpec::Partitioned1p5d { dist } => (1u64, dist),
    };
    put_u64(out, tag);
    put_usize(out, dist.ranks);
    put_usize(out, dist.replication_c);
    put_usize(out, dist.bulk.batch_size);
    put_usize(out, dist.bulk.bulk_size);
    put_usize(out, dist.bulk.parallelism.threads());
    put_bool(out, dist.bulk.workspace_reuse);
}

fn decode_backend_spec(input: &mut &[u8]) -> Option<BackendSpec> {
    let tag = get_u64(input)?;
    let ranks = get_usize(input)?;
    let replication_c = get_usize(input)?;
    let bulk = BulkSamplerConfig {
        batch_size: get_usize(input)?,
        bulk_size: get_usize(input)?,
        parallelism: Parallelism::new(get_usize(input)?),
        workspace_reuse: get_bool(input)?,
    };
    let dist = DistConfig::new(ranks, replication_c, bulk);
    Some(match tag {
        0 => BackendSpec::Replicated { dist },
        1 => BackendSpec::Partitioned1p5d { dist },
        _ => return None,
    })
}

fn encode_session_config(out: &mut Vec<u8>, config: &SessionConfig) {
    put_usize(out, config.batch_size);
    put_usize(out, config.bulk_size);
    put_usize(out, config.hidden_dim);
    put_f64(out, config.learning_rate);
    put_usize(out, config.epochs);
    put_u64(out, config.seed);
    put_bool(out, config.replicate_features);
    match config.feature_replication {
        Some(c) => {
            put_bool(out, true);
            put_usize(out, c);
        }
        None => put_bool(out, false),
    }
    put_bool(out, config.evaluate);
    put_usize(out, config.parallelism.threads());
    match config.feature_cache {
        FeatureCacheConfig::Off => put_u64(out, 0),
        FeatureCacheConfig::EpochPinned => put_u64(out, 1),
        FeatureCacheConfig::Lru { byte_budget } => {
            put_u64(out, 2);
            put_usize(out, byte_budget);
        }
    }
    put_bool(out, config.overlap);
    put_u64(out, config.wire_codec.tag());
    match config.grad_top_k {
        Some(k) => {
            put_bool(out, true);
            put_usize(out, k);
        }
        None => put_bool(out, false),
    }
    // v3: the dynamic-graph ingest schedule.  Rank processes replay the
    // identical edge batches at the identical epoch boundaries, so both
    // transports walk the same sequence of graph versions.
    put_usize(out, config.ingest.len());
    for event in &config.ingest {
        put_usize(out, event.after_epoch);
        put_usize(out, event.batch.len());
        for (row, col, op) in event.batch.ops() {
            put_usize(out, row);
            put_usize(out, col);
            match op {
                Some(weight) => {
                    put_bool(out, true);
                    put_f64(out, weight);
                }
                None => put_bool(out, false),
            }
        }
    }
    put_u64(
        out,
        match config.ingest_mode {
            IngestMode::Delta => 0,
            IngestMode::Rebuild => 1,
        },
    );
    put_u64(
        out,
        match config.invalidation {
            InvalidationPolicy::Precise => 0,
            InvalidationPolicy::FlushAll => 1,
        },
    );
}

fn decode_ingest_schedule(input: &mut &[u8]) -> Option<Vec<IngestEvent>> {
    let n = get_usize(input)?;
    let mut events = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let after_epoch = get_usize(input)?;
        let ops = get_usize(input)?;
        let mut batch = DeltaBatch::new();
        for _ in 0..ops {
            let row = get_usize(input)?;
            let col = get_usize(input)?;
            if get_bool(input)? {
                batch.insert(row, col, get_f64(input)?);
            } else {
                batch.delete(row, col);
            }
        }
        events.push(IngestEvent { after_epoch, batch });
    }
    Some(events)
}

fn decode_session_config(input: &mut &[u8]) -> Option<SessionConfig> {
    Some(SessionConfig {
        batch_size: get_usize(input)?,
        bulk_size: get_usize(input)?,
        hidden_dim: get_usize(input)?,
        learning_rate: get_f64(input)?,
        epochs: get_usize(input)?,
        seed: get_u64(input)?,
        replicate_features: get_bool(input)?,
        feature_replication: if get_bool(input)? { Some(get_usize(input)?) } else { None },
        evaluate: get_bool(input)?,
        parallelism: Parallelism::new(get_usize(input)?),
        feature_cache: match get_u64(input)? {
            0 => FeatureCacheConfig::Off,
            1 => FeatureCacheConfig::EpochPinned,
            2 => FeatureCacheConfig::Lru { byte_budget: get_usize(input)? },
            _ => return None,
        },
        // A rank process never re-dispatches: its communicator is already on
        // the socket transport, and `distributed_rank_main` runs in place.
        overlap: get_bool(input)?,
        transport: TransportSelect::Simulator,
        wire_codec: Codec::from_tag(get_u64(input)?)?,
        grad_top_k: if get_bool(input)? { Some(get_usize(input)?) } else { None },
        ingest: decode_ingest_schedule(input)?,
        ingest_mode: match get_u64(input)? {
            0 => IngestMode::Delta,
            1 => IngestMode::Rebuild,
            _ => return None,
        },
        invalidation: match get_u64(input)? {
            0 => InvalidationPolicy::Precise,
            1 => InvalidationPolicy::FlushAll,
            _ => return None,
        },
    })
}

fn decode_train_job(job: &[u8]) -> Result<TrainJob> {
    let input = &mut &job[..];
    match get_u64(input) {
        Some(JOB_VERSION) => {}
        Some(v) => {
            return Err(GnnError::InvalidConfig(format!(
                "train job version {v} does not match this binary's {JOB_VERSION}"
            )))
        }
        None => return Err(codec_err("version")),
    }
    let kind = match get_u64(input) {
        Some(0) => DatasetKind::Products,
        Some(1) => DatasetKind::Protein,
        Some(2) => DatasetKind::Papers,
        _ => return Err(codec_err("dataset kind")),
    };
    let rows = get_usize(input).ok_or_else(|| codec_err("adjacency"))?;
    let cols = get_usize(input).ok_or_else(|| codec_err("adjacency"))?;
    let indptr = get_usizes(input).ok_or_else(|| codec_err("adjacency"))?;
    let indices = get_usizes(input).ok_or_else(|| codec_err("adjacency"))?;
    let values = get_f64s(input).ok_or_else(|| codec_err("adjacency"))?;
    let adjacency = CsrMatrix::from_raw(rows, cols, indptr, indices, values)?;
    let frows = get_usize(input).ok_or_else(|| codec_err("features"))?;
    let fcols = get_usize(input).ok_or_else(|| codec_err("features"))?;
    let fdata = get_f64s(input).ok_or_else(|| codec_err("features"))?;
    let features = DenseMatrix::from_vec(frows, fcols, fdata)?;
    let labels = get_usizes(input).ok_or_else(|| codec_err("labels"))?;
    let num_classes = get_usize(input).ok_or_else(|| codec_err("num_classes"))?;
    let train_set = get_usizes(input).ok_or_else(|| codec_err("train_set"))?;
    let graph = Graph::from_adjacency(adjacency)?
        .with_features(features)?
        .with_labels(labels, num_classes)?;
    let dataset = Dataset { kind, graph, train_set, val_set: Vec::new(), test_set: Vec::new() };
    let sampler = decode_sampler_spec(input).ok_or_else(|| codec_err("sampler spec"))?;
    let backend = decode_backend_spec(input).ok_or_else(|| codec_err("backend spec"))?;
    let config = decode_session_config(input).ok_or_else(|| codec_err("session config"))?;
    if !input.is_empty() {
        return Err(codec_err("trailing bytes"));
    }
    Ok(TrainJob { dataset, sampler, backend, config })
}

/// Encodes one rank's [`RankEpochs`] for the trip back to the parent.
pub(crate) fn encode_rank_epochs(out: &mut Vec<u8>, epochs: &RankEpochs) {
    let (per_epoch, params) = epochs;
    put_usize(out, per_epoch.len());
    for (profile, stats, loss) in per_epoch {
        for phase in Phase::ALL {
            put_f64(out, profile.compute(phase));
            put_f64(out, profile.comm(phase));
            put_f64(out, profile.overlap(phase));
        }
        stats.encode(out);
        put_f64(out, *loss);
    }
    put_usize(out, params.len());
    for m in params {
        put_usize(out, m.rows());
        put_usize(out, m.cols());
        put_f64s(out, m.as_slice());
    }
}

/// Decodes one rank's wire-encoded [`RankEpochs`].
///
/// # Errors
///
/// Returns [`GnnError::InvalidConfig`] on truncation or trailing bytes.
pub(crate) fn decode_rank_epochs(bytes: &[u8]) -> Result<RankEpochs> {
    let input = &mut &bytes[..];
    let n = get_usize(input).ok_or_else(|| codec_err("epoch count"))?;
    let mut per_epoch = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let mut profile = PhaseProfile::new();
        for phase in Phase::ALL {
            let compute = get_f64(input).ok_or_else(|| codec_err("profile"))?;
            let comm = get_f64(input).ok_or_else(|| codec_err("profile"))?;
            let overlap = get_f64(input).ok_or_else(|| codec_err("profile"))?;
            profile.add_compute(phase, compute);
            profile.add_comm(phase, comm);
            profile.add_overlap(phase, overlap);
        }
        let stats = dmbs_comm::CommStats::decode(input).ok_or_else(|| codec_err("comm stats"))?;
        let loss = get_f64(input).ok_or_else(|| codec_err("loss"))?;
        per_epoch.push((profile, stats, loss));
    }
    let m = get_usize(input).ok_or_else(|| codec_err("param count"))?;
    let mut params = Vec::with_capacity(m.min(1 << 16));
    for _ in 0..m {
        let rows = get_usize(input).ok_or_else(|| codec_err("param matrix"))?;
        let cols = get_usize(input).ok_or_else(|| codec_err("param matrix"))?;
        let data = get_f64s(input).ok_or_else(|| codec_err("param matrix"))?;
        params.push(DenseMatrix::from_vec(rows, cols, data)?);
    }
    if !input.is_empty() {
        return Err(codec_err("trailing bytes"));
    }
    Ok((per_epoch, params))
}

/// The [`TRAIN_WORKER`] body: rebuild the session, run this rank's loop,
/// encode the results.  Dispatches over the (sampler × backend) spec product
/// to recover concrete types for the generic session.
fn train_worker(comm: &mut Communicator, job: &[u8]) -> std::result::Result<Vec<u8>, String> {
    let job = decode_train_job(job).map_err(|e| e.to_string())?;
    let dataset = Arc::new(job.dataset);
    let config = job.config;

    fn run<S, B>(
        comm: &mut Communicator,
        dataset: Arc<Dataset>,
        sampler: S,
        backend: B,
        config: SessionConfig,
    ) -> std::result::Result<Vec<u8>, String>
    where
        S: Sampler + Send + Sync + 'static,
        B: SamplingBackend + Send + Sync + 'static,
    {
        let session = TrainingSession::from_parts(dataset, sampler, backend, config);
        let epochs = session.distributed_rank_main(comm).map_err(|e| e.to_string())?;
        let mut out = Vec::new();
        encode_rank_epochs(&mut out, &epochs);
        Ok(out)
    }

    macro_rules! with_backend {
        ($sampler:expr) => {
            match &job.backend {
                BackendSpec::Replicated { dist } => {
                    let backend = ReplicatedBackend::new(*dist).map_err(|e| e.to_string())?;
                    run(comm, dataset, $sampler, backend, config)
                }
                BackendSpec::Partitioned1p5d { dist } => {
                    let backend = Partitioned1p5dBackend::new(*dist).map_err(|e| e.to_string())?;
                    run(comm, dataset, $sampler, backend, config)
                }
            }
        };
    }

    match &job.sampler {
        SamplerSpec::GraphSage { fanouts, self_loops } => {
            let mut sampler = GraphSageSampler::new(fanouts.clone());
            if *self_loops {
                sampler = sampler.with_self_loops();
            }
            with_backend!(sampler)
        }
        SamplerSpec::Ladies { num_layers, samples_per_layer, include_previous } => {
            let mut sampler = LadiesSampler::new(*num_layers, *samples_per_layer);
            if *include_previous {
                sampler = sampler.with_previous_included();
            }
            with_backend!(sampler)
        }
        SamplerSpec::FastGcn { num_layers, samples_per_layer } => {
            with_backend!(FastGcnSampler::new(*num_layers, *samples_per_layer))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmbs_graph::datasets::{build_dataset, DatasetConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_dataset(seed: u64) -> Dataset {
        let mut cfg = DatasetConfig::products_like(7);
        cfg.feature_dim = 8;
        cfg.num_classes = 4;
        cfg.train_fraction = 0.5;
        build_dataset(&cfg, &mut StdRng::seed_from_u64(seed)).unwrap()
    }

    fn session(seed: u64) -> TrainingSession<GraphSageSampler, ReplicatedBackend> {
        let mut batch = DeltaBatch::new();
        batch.insert(0, 1, 0.5);
        batch.delete(2, 3);
        TrainingSession::builder()
            .dataset(tiny_dataset(seed))
            .sampler(GraphSageSampler::new(vec![3, 3]).with_self_loops())
            .backend(
                ReplicatedBackend::new(DistConfig::new(2, 1, BulkSamplerConfig::new(8, 2)))
                    .unwrap(),
            )
            .hidden_dim(8)
            .epochs(2)
            .seed(seed)
            .wire_codec(Codec::Int8)
            .grad_top_k(5)
            .ingest(0, batch)
            .invalidation(InvalidationPolicy::FlushAll)
            .build()
            .unwrap()
    }

    #[test]
    fn train_job_round_trips_exactly() {
        let session = session(5);
        let job = encode_train_job(&session).unwrap();
        let decoded = decode_train_job(&job).unwrap();
        let adj = session.dataset().graph.adjacency();
        let dadj = decoded.dataset.graph.adjacency();
        assert_eq!(adj.indptr(), dadj.indptr());
        assert_eq!(adj.indices(), dadj.indices());
        assert_eq!(adj.values(), dadj.values());
        assert_eq!(
            session.dataset().graph.features().unwrap().as_slice(),
            decoded.dataset.graph.features().unwrap().as_slice()
        );
        assert_eq!(decoded.dataset.train_set, session.dataset().train_set);
        assert_eq!(decoded.sampler, session.sampler().spec().unwrap());
        assert_eq!(decoded.backend, session.backend().spec().unwrap());
        assert_eq!(decoded.config.seed, 5);
        assert_eq!(decoded.config.epochs, 2);
        assert_eq!(decoded.config.wire_codec, Codec::Int8);
        assert_eq!(decoded.config.grad_top_k, Some(5));
        // v3 fields: the ingest schedule (batch ops included), mode and
        // invalidation policy survive the trip op for op.
        assert_eq!(decoded.config.ingest, session.config().ingest);
        assert_eq!(decoded.config.ingest[0].after_epoch, 0);
        assert_eq!(
            decoded.config.ingest[0].batch.ops().collect::<Vec<_>>(),
            vec![(0, 1, Some(0.5)), (2, 3, None)]
        );
        assert_eq!(decoded.config.ingest_mode, IngestMode::Delta);
        assert_eq!(decoded.config.invalidation, InvalidationPolicy::FlushAll);
    }

    #[test]
    fn corrupt_jobs_are_typed_errors_not_panics() {
        let session = session(6);
        let job = encode_train_job(&session).unwrap();
        // Wrong version.
        let mut bad = job.clone();
        bad[0] ^= 0xFF;
        assert!(decode_train_job(&bad).is_err());
        // Truncations at every prefix length must error, never panic.
        for len in 0..job.len().min(64) {
            assert!(decode_train_job(&job[..len]).is_err(), "prefix {len}");
        }
        // Trailing garbage.
        let mut bad = job.clone();
        bad.extend_from_slice(&[0; 3]);
        assert!(decode_train_job(&bad).is_err());
    }

    #[test]
    fn rank_epochs_round_trip_bit_exactly() {
        let mut profile = PhaseProfile::new();
        profile.add_compute(Phase::Sampling, 0.125);
        profile.add_comm(Phase::FeatureFetch, 1.0 / 3.0);
        profile.add_overlap(Phase::Propagation, 1e-9);
        let stats = dmbs_comm::CommStats {
            messages: 7,
            words_sent: 41,
            modeled_time: 0.1 + 0.2, // deliberately non-representable
            ..Default::default()
        };
        let params = vec![DenseMatrix::from_vec(2, 2, vec![1.0, -0.0, f64::MIN, 0.3]).unwrap()];
        let epochs: RankEpochs = (vec![(profile, stats, 2.5f64)], params);
        let mut bytes = Vec::new();
        encode_rank_epochs(&mut bytes, &epochs);
        let back = decode_rank_epochs(&bytes).unwrap();
        let (per_epoch, params) = &back;
        assert_eq!(per_epoch.len(), 1);
        let (p, s, l) = &per_epoch[0];
        assert_eq!(p.compute(Phase::Sampling).to_bits(), 0.125f64.to_bits());
        assert_eq!(p.comm(Phase::FeatureFetch).to_bits(), (1.0f64 / 3.0).to_bits());
        assert_eq!(p.overlap(Phase::Propagation).to_bits(), 1e-9f64.to_bits());
        assert_eq!(s.modeled_time.to_bits(), (0.1f64 + 0.2).to_bits());
        assert_eq!((s.messages, s.words_sent), (7, 41));
        assert_eq!(l.to_bits(), 2.5f64.to_bits());
        assert_eq!(params[0].as_slice()[1].to_bits(), (-0.0f64).to_bits());
        // Truncations error.
        for len in 0..bytes.len() {
            assert!(decode_rank_epochs(&bytes[..len]).is_err(), "prefix {len}");
        }
    }

    #[test]
    fn registry_contains_the_train_worker() {
        let registry = registry();
        assert!(registry.find(TRAIN_WORKER).is_some());
    }

    #[test]
    fn simulator_run_worker_matches_in_process_training() {
        // Dispatching the encoded job through the worker on the simulator
        // must reproduce in-process training bit for bit — the first half of
        // the cross-transport equivalence argument.
        let session = session(9);
        let direct = session.train().unwrap();
        let job = encode_train_job(&session).unwrap();
        let runtime = session.backend().runtime().unwrap();
        let outs = runtime.run_worker(&registry(), TRAIN_WORKER, &job).unwrap();
        assert_eq!(outs.len(), 2);
        let (epochs, _) = decode_rank_epochs(&outs[0].value).unwrap();
        assert_eq!(epochs.len(), direct.epochs.len());
        // Per-rank loss on rank 0 matches what the direct run averaged in
        // (2 ranks, both training): the aggregate is the mean of per-rank
        // means, so compare the deterministic counters instead.
        let mut words = 0;
        let mut messages = 0;
        for o in &outs {
            let (epochs, _) = decode_rank_epochs(&o.value).unwrap();
            for (_, stats, _) in &epochs {
                words += stats.words_sent;
                messages += stats.messages;
            }
        }
        let direct_words: usize = direct.epochs.iter().map(|e| e.comm.words_sent).sum();
        let direct_messages: usize = direct.epochs.iter().map(|e| e.comm.messages).sum();
        assert_eq!(words, direct_words);
        assert_eq!(messages, direct_messages);
    }
}

//! Optimizers operating on flat lists of parameter matrices.

use crate::error::GnnError;
use crate::Result;
use dmbs_matrix::DenseMatrix;

/// An optimizer updates parameters in place given matching gradients.
pub trait Optimizer {
    /// Applies one update step.  `params[i]` is updated using `grads[i]`.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::InvalidConfig`] if the parameter and gradient
    /// lists have different lengths or mismatched shapes.
    fn step(&mut self, params: &mut [DenseMatrix], grads: &[DenseMatrix]) -> Result<()>;
}

fn check_shapes(params: &[DenseMatrix], grads: &[DenseMatrix]) -> Result<()> {
    if params.len() != grads.len() {
        return Err(GnnError::InvalidConfig(format!(
            "{} parameters but {} gradients",
            params.len(),
            grads.len()
        )));
    }
    for (i, (p, g)) in params.iter().zip(grads).enumerate() {
        if p.shape() != g.shape() {
            return Err(GnnError::InvalidConfig(format!(
                "parameter {i} has shape {:?} but gradient has {:?}",
                p.shape(),
                g.shape()
            )));
        }
    }
    Ok(())
}

/// Plain stochastic gradient descent: `p ← p − lr · g`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sgd {
    /// Learning rate.
    pub learning_rate: f64,
}

impl Sgd {
    /// Creates an SGD optimizer with the given learning rate.
    pub fn new(learning_rate: f64) -> Self {
        Sgd { learning_rate }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [DenseMatrix], grads: &[DenseMatrix]) -> Result<()> {
        check_shapes(params, grads)?;
        for (p, g) in params.iter_mut().zip(grads) {
            p.axpy(-self.learning_rate, g)?;
        }
        Ok(())
    }
}

/// Adam optimizer (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub learning_rate: f64,
    /// Exponential decay for the first moment.
    pub beta1: f64,
    /// Exponential decay for the second moment.
    pub beta2: f64,
    /// Numerical stabilizer.
    pub epsilon: f64,
    step_count: u64,
    first_moment: Vec<DenseMatrix>,
    second_moment: Vec<DenseMatrix>,
}

impl Adam {
    /// Creates an Adam optimizer with standard defaults
    /// (`β1 = 0.9`, `β2 = 0.999`, `ε = 1e-8`).
    pub fn new(learning_rate: f64) -> Self {
        Adam {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            step_count: 0,
            first_moment: Vec::new(),
            second_moment: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [DenseMatrix], grads: &[DenseMatrix]) -> Result<()> {
        check_shapes(params, grads)?;
        if self.first_moment.is_empty() {
            self.first_moment =
                params.iter().map(|p| DenseMatrix::zeros(p.rows(), p.cols())).collect();
            self.second_moment = self.first_moment.clone();
        }
        if self.first_moment.len() != params.len() {
            return Err(GnnError::InvalidConfig(
                "optimizer state does not match the number of parameters".into(),
            ));
        }
        self.step_count += 1;
        let t = self.step_count as f64;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);
        for ((p, g), (m, v)) in params
            .iter_mut()
            .zip(grads)
            .zip(self.first_moment.iter_mut().zip(self.second_moment.iter_mut()))
        {
            for ((pv, gv), (mv, vv)) in p
                .as_mut_slice()
                .iter_mut()
                .zip(g.as_slice())
                .zip(m.as_mut_slice().iter_mut().zip(v.as_mut_slice().iter_mut()))
            {
                *mv = self.beta1 * *mv + (1.0 - self.beta1) * gv;
                *vv = self.beta2 * *vv + (1.0 - self.beta2) * gv * gv;
                let m_hat = *mv / bias1;
                let v_hat = *vv / bias2;
                *pv -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_grad(p: &DenseMatrix) -> DenseMatrix {
        // d/dp of 0.5 * ||p - 3||^2 is (p - 3).
        p.map(|v| v - 3.0)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut params = vec![DenseMatrix::filled(2, 2, 10.0)];
        let mut opt = Sgd::new(0.2);
        for _ in 0..100 {
            let g = quadratic_grad(&params[0]);
            opt.step(&mut params, &[g]).unwrap();
        }
        assert!(params[0].as_slice().iter().all(|v| (v - 3.0).abs() < 1e-3));
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut params = vec![DenseMatrix::filled(1, 3, -5.0)];
        let mut opt = Adam::new(0.3);
        for _ in 0..300 {
            let g = quadratic_grad(&params[0]);
            opt.step(&mut params, &[g]).unwrap();
        }
        assert!(params[0].as_slice().iter().all(|v| (v - 3.0).abs() < 1e-2));
    }

    #[test]
    fn shape_validation() {
        let mut params = vec![DenseMatrix::zeros(2, 2)];
        let mut opt = Sgd::new(0.1);
        assert!(opt.step(&mut params, &[]).is_err());
        assert!(opt.step(&mut params, &[DenseMatrix::zeros(1, 2)]).is_err());
        let mut adam = Adam::new(0.1);
        assert!(adam.step(&mut params, &[DenseMatrix::zeros(3, 3)]).is_err());
    }

    #[test]
    fn sgd_moves_against_gradient() {
        let mut params = vec![DenseMatrix::filled(1, 1, 1.0)];
        let grads = vec![DenseMatrix::filled(1, 1, 2.0)];
        Sgd::new(0.5).step(&mut params, &grads).unwrap();
        assert_eq!(params[0].get(0, 0), 0.0);
    }
}

//! Transport calibration: the α–β probe behind `perf_baseline --calibrate`.
//!
//! The simulator charges communication through a *configured*
//! [`CostModel`](dmbs_comm::CostModel); the Unix-socket transport pays real
//! wall-clock time.  This module measures what the real transport's α and β
//! actually are, so `BENCH_transport.json` can put the modeled epoch bill
//! next to a fitted one:
//!
//! 1. [`PING_WORKER`] is a 2-rank ping-pong worker: rank 0 sends a `words`-
//!    long `Vec<f64>` to rank 1, rank 1 echoes it back, `rounds` times.
//!    Rank 0 times the whole loop; both ranks report their own
//!    [`CommStats`](dmbs_comm::CommStats) bill (messages and words, counted
//!    by the same accounting the cost model charges).
//! 2. The harness runs the probe at several message sizes and hands the
//!    `(messages, words, seconds)` triples to [`fit_alpha_beta`], a
//!    two-parameter least-squares fit of `seconds ≈ α·messages + β·words` —
//!    the α–β model in its own units, no unit conversion step.
//!
//! [`registry`] bundles the probe with the training worker from
//! [`dmbs_gnn::worker`] so one `run_if_worker` call at the top of
//! `perf_baseline::main` serves both phases of the calibration sweep.

use dmbs_comm::{wire, Communicator, WorkerRegistry};

/// Registry name of the ping-pong probe worker.
pub const PING_WORKER: &str = "dmbs.bench.pingpong";

/// Every worker the `perf_baseline` binary can be re-executed as: the GNN
/// training worker plus the ping-pong probe.  Pass this to
/// [`dmbs_comm::run_if_worker`] first thing in `main`.
pub fn registry() -> WorkerRegistry {
    dmbs_gnn::worker::registry().with(PING_WORKER, ping_worker)
}

/// One probe measurement: the α–β bill both ranks paid and the wall-clock
/// seconds rank 0's loop took to pay it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeSample {
    /// Point-to-point messages sent, summed over both ranks.
    pub messages: f64,
    /// Words sent, summed over both ranks.
    pub words: f64,
    /// Measured wall seconds of rank 0's ping-pong loop.
    pub seconds: f64,
}

/// Encodes a ping-pong job: payload length in `f64` words, and the number
/// of round trips.
pub fn encode_ping_job(words: usize, rounds: usize) -> Vec<u8> {
    let mut out = Vec::new();
    wire::put_usize(&mut out, words);
    wire::put_usize(&mut out, rounds);
    out
}

/// Decodes one rank's probe result: `(seconds, words_sent, messages)`.
/// Returns `None` on a truncated or trailing-garbage payload.
pub fn decode_ping_result(bytes: &[u8]) -> Option<(f64, usize, usize)> {
    let mut input = bytes;
    let seconds = wire::get_f64(&mut input)?;
    let words = wire::get_usize(&mut input)?;
    let messages = wire::get_usize(&mut input)?;
    if input.is_empty() {
        Some((seconds, words, messages))
    } else {
        None
    }
}

/// The ping-pong probe body (see the module doc).  Fails with a typed
/// message on a malformed job or a grid that is not exactly 2 ranks.
fn ping_worker(comm: &mut Communicator, job: &[u8]) -> Result<Vec<u8>, String> {
    let mut input = job;
    let (Some(words), Some(rounds)) = (wire::get_usize(&mut input), wire::get_usize(&mut input))
    else {
        return Err("truncated ping-pong job".to_string());
    };
    if !input.is_empty() {
        return Err(format!("{} trailing bytes after ping-pong job", input.len()));
    }
    if comm.size() != 2 {
        return Err(format!("ping-pong probe needs exactly 2 ranks, got {}", comm.size()));
    }
    let me = comm.rank();
    let peer = 1 - me;
    let payload: Vec<f64> = (0..words).map(|i| i as f64).collect();
    let start = std::time::Instant::now();
    for _ in 0..rounds {
        if me == 0 {
            comm.send(peer, payload.clone()).map_err(|e| e.to_string())?;
            let _echo: Vec<f64> = comm.recv(peer).map_err(|e| e.to_string())?;
        } else {
            let echo: Vec<f64> = comm.recv(peer).map_err(|e| e.to_string())?;
            comm.send(peer, echo).map_err(|e| e.to_string())?;
        }
    }
    let seconds = start.elapsed().as_secs_f64();
    let stats = comm.stats();
    let mut out = Vec::new();
    wire::put_f64(&mut out, seconds);
    wire::put_usize(&mut out, stats.words_sent);
    wire::put_usize(&mut out, stats.messages);
    Ok(out)
}

/// Least-squares fit of `seconds ≈ α·messages + β·words` over the probe
/// samples (normal equations of the two-column design matrix).  Samples are
/// weighted by `1 / seconds²` — relative rather than absolute error — so the
/// small-message samples that pin α are not drowned out by the
/// bandwidth-bound large ones (unweighted, the largest size dominates and
/// the tiny absolute residuals at small sizes routinely drive α negative).
/// Negative solutions are still clamped to zero — a measured latency cannot
/// charge a negative per-word cost.  Returns `None` when the system is
/// degenerate: fewer than two samples, or all samples proportional (a
/// single message size cannot separate α from β).
pub fn fit_alpha_beta(samples: &[ProbeSample]) -> Option<(f64, f64)> {
    if samples.len() < 2 {
        return None;
    }
    let (mut mm, mut mw, mut ww, mut my, mut wy) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for s in samples {
        let weight = if s.seconds > 0.0 { 1.0 / (s.seconds * s.seconds) } else { 1.0 };
        mm += weight * s.messages * s.messages;
        mw += weight * s.messages * s.words;
        ww += weight * s.words * s.words;
        my += weight * s.messages * s.seconds;
        wy += weight * s.words * s.seconds;
    }
    let det = mm * ww - mw * mw;
    // Relative threshold: the determinant scales with mm·ww, so compare
    // against that product rather than an absolute epsilon.
    if !det.is_finite() || det.abs() <= 1e-12 * mm * ww {
        return None;
    }
    let alpha = (my * ww - wy * mw) / det;
    let beta = (wy * mm - my * mw) / det;
    Some((alpha.max(0.0), beta.max(0.0)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmbs_comm::Runtime;

    #[test]
    fn registry_bundles_training_and_probe_workers() {
        let reg = registry();
        assert!(reg.find(PING_WORKER).is_some());
        assert!(reg.find(dmbs_gnn::worker::TRAIN_WORKER).is_some());
    }

    #[test]
    fn ping_job_round_trips_and_rejects_garbage() {
        let job = encode_ping_job(128, 5);
        let mut input = job.as_slice();
        assert_eq!(wire::get_usize(&mut input), Some(128));
        assert_eq!(wire::get_usize(&mut input), Some(5));
        assert!(decode_ping_result(&job[..4]).is_none());
        let mut result = Vec::new();
        wire::put_f64(&mut result, 0.25);
        wire::put_usize(&mut result, 10);
        wire::put_usize(&mut result, 2);
        assert_eq!(decode_ping_result(&result), Some((0.25, 10, 2)));
        result.push(0);
        assert_eq!(decode_ping_result(&result), None, "trailing bytes must be rejected");
    }

    #[test]
    fn fit_recovers_a_known_alpha_beta_exactly() {
        let (alpha, beta) = (2.5e-4, 4.0e-8);
        let samples: Vec<ProbeSample> = [(10.0, 100.0), (10.0, 10_000.0), (10.0, 1_000_000.0)]
            .iter()
            .map(|&(m, w)| ProbeSample { messages: m, words: w, seconds: alpha * m + beta * w })
            .collect();
        let (a, b) = fit_alpha_beta(&samples).unwrap();
        assert!((a - alpha).abs() < 1e-12, "alpha {a} != {alpha}");
        assert!((b - beta).abs() < 1e-18, "beta {b} != {beta}");
    }

    #[test]
    fn fit_rejects_degenerate_systems_and_clamps_negatives() {
        assert_eq!(fit_alpha_beta(&[]), None);
        let one = ProbeSample { messages: 4.0, words: 100.0, seconds: 1.0 };
        assert_eq!(fit_alpha_beta(&[one]), None);
        // Proportional samples: words/messages constant, α and β inseparable.
        let two = ProbeSample { messages: 8.0, words: 200.0, seconds: 2.0 };
        assert_eq!(fit_alpha_beta(&[one, two]), None);
        // A decreasing time-vs-size series drives β negative; it must clamp.
        let falling = [
            ProbeSample { messages: 2.0, words: 10.0, seconds: 1.0 },
            ProbeSample { messages: 2.0, words: 1_000.0, seconds: 0.5 },
        ];
        let (_, b) = fit_alpha_beta(&falling).unwrap();
        assert_eq!(b, 0.0);
    }

    #[test]
    fn probe_worker_runs_on_the_simulator_and_counts_both_ranks() {
        let runtime = Runtime::new(2).unwrap();
        let rounds = 3;
        let outs =
            runtime.run_worker(&registry(), PING_WORKER, &encode_ping_job(64, rounds)).unwrap();
        assert_eq!(outs.len(), 2);
        for o in &outs {
            let (seconds, words, messages) = decode_ping_result(&o.value).expect("probe result");
            assert!(seconds >= 0.0);
            assert_eq!(messages, rounds, "each rank sends one message per round");
            assert!(words >= 64 * rounds, "payload words must be billed");
        }
    }

    #[test]
    fn probe_worker_rejects_bad_grids_and_bad_jobs() {
        let runtime = Runtime::new(3).unwrap();
        let err = runtime.run_worker(&registry(), PING_WORKER, &encode_ping_job(8, 1)).unwrap_err();
        assert!(err.to_string().contains("exactly 2 ranks"), "got: {err}");
        let runtime = Runtime::new(2).unwrap();
        let err = runtime.run_worker(&registry(), PING_WORKER, &[1, 2, 3]).unwrap_err();
        assert!(err.to_string().contains("truncated"), "got: {err}");
    }
}

//! Delta overlay over a base [`CsrMatrix`]: batched edge inserts/deletes
//! merged lazily by an explicit [`DeltaCsr::compact`].
//!
//! Dynamic-graph workloads mutate the adjacency between training epochs.
//! Rebuilding the CSR from scratch on every edge event would be wasteful and
//! — worse for this repo's discipline — would make incremental ingest a
//! *different numerical artifact* from a full rebuild.  The delta layer is
//! built around the opposite contract:
//!
//! * a [`DeltaBatch`] is a sorted, deduplicated set of edge operations with
//!   deterministic **last-write-wins** semantics (the last `insert`/`delete`
//!   recorded for an `(row, col)` pair is the one that counts);
//! * a [`DeltaCsr`] overlays pending operations on a base matrix and merges
//!   them into a rebuilt base only when [`DeltaCsr::compact`] is called;
//! * the compacted matrix is **byte-identical** (same `indptr`/`indices`/
//!   `values` buffers) to eagerly rebuilding a CSR from the final edge set —
//!   the property the `tests/delta_equivalence.rs` sweep and the proptests in
//!   this module pin.
//!
//! Stored-zero policy: inserting an edge with weight `0.0` stores an explicit
//! zero, exactly as [`CsrMatrix::from_coo`] does when converting an edge
//! list.  Deleting removes the entry entirely.  The two are distinct — an
//! explicit zero still occupies a slot in the sparsity pattern (and the CSC
//! formulation of the sampler treats pattern, not value, as structure).
//!
//! # Example
//!
//! ```
//! use dmbs_matrix::{CooMatrix, CsrMatrix, DeltaBatch, DeltaCsr};
//!
//! # fn main() -> Result<(), dmbs_matrix::MatrixError> {
//! let coo = CooMatrix::from_triples(3, 3, vec![(0, 1, 1.0), (2, 0, 1.0)])?;
//! let base = CsrMatrix::from_coo(&coo);
//!
//! let mut delta = DeltaCsr::new(base);
//! let mut batch = DeltaBatch::new();
//! batch.insert(1, 2, 1.0);
//! batch.delete(2, 0);
//! delta.apply(&batch)?;
//!
//! assert_eq!(delta.pending_ops(), 2);
//! let merged = delta.compact();
//! assert_eq!(merged.nnz(), 2); // (0,1) survives, (1,2) added, (2,0) gone
//! # Ok(())
//! # }
//! ```

use crate::csr::CsrMatrix;
use crate::error::MatrixError;
use crate::Result;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One edge operation: `Some(w)` inserts (or overwrites) the edge with
/// weight `w`; `None` deletes it.
pub type EdgeOp = Option<f64>;

/// A sorted, deduplicated batch of edge inserts and deletes with
/// deterministic last-write-wins semantics.
///
/// The batch is dimension-free: bounds are checked when it is applied to a
/// [`DeltaCsr`] (whose base matrix fixes the shape).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DeltaBatch {
    /// `(row, col) -> op`, last write wins by map semantics.
    ops: BTreeMap<(usize, usize), EdgeOp>,
}

impl DeltaBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        DeltaBatch::default()
    }

    /// Records an edge insert (or weight overwrite).  A later `insert` or
    /// [`DeltaBatch::delete`] of the same `(row, col)` wins.
    pub fn insert(&mut self, row: usize, col: usize, weight: f64) -> &mut Self {
        self.ops.insert((row, col), Some(weight));
        self
    }

    /// Records an edge delete.  Deleting an edge the base does not contain is
    /// a no-op at compaction time.
    pub fn delete(&mut self, row: usize, col: usize) -> &mut Self {
        self.ops.insert((row, col), None);
        self
    }

    /// Number of distinct `(row, col)` operations recorded.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if no operations are recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Iterator over `(row, col, op)` in sorted `(row, col)` order.
    pub fn ops(&self) -> impl Iterator<Item = (usize, usize, EdgeOp)> + '_ {
        self.ops.iter().map(|(&(r, c), &op)| (r, c, op))
    }

    /// The sorted, deduplicated set of vertices touched by the batch — both
    /// endpoints of every operation.  This is the dirty set precise cache
    /// invalidation works from.
    pub fn dirty_vertices(&self) -> Vec<usize> {
        let mut dirty: Vec<usize> = self.ops.keys().flat_map(|&(r, c)| [r, c]).collect();
        dirty.sort_unstable();
        dirty.dedup();
        dirty
    }

    /// Folds `other` into `self`; on conflicting `(row, col)` pairs, `other`
    /// wins (it is the later write).
    pub fn merge(&mut self, other: &DeltaBatch) {
        for (k, v) in &other.ops {
            self.ops.insert(*k, *v);
        }
    }
}

impl FromIterator<(usize, usize, EdgeOp)> for DeltaBatch {
    fn from_iter<T: IntoIterator<Item = (usize, usize, EdgeOp)>>(iter: T) -> Self {
        let mut batch = DeltaBatch::new();
        for (r, c, op) in iter {
            batch.ops.insert((r, c), op);
        }
        batch
    }
}

/// A base [`CsrMatrix`] plus a pending overlay of edge operations, merged
/// lazily by [`DeltaCsr::compact`].
///
/// Reads ([`DeltaCsr::get`]) see the overlay; the structural buffers only
/// change at compaction, and the compacted result is byte-identical to an
/// eager rebuild from the final edge set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeltaCsr {
    base: CsrMatrix,
    overlay: BTreeMap<(usize, usize), EdgeOp>,
}

impl DeltaCsr {
    /// Wraps a base matrix with an empty overlay.
    pub fn new(base: CsrMatrix) -> Self {
        DeltaCsr { base, overlay: BTreeMap::new() }
    }

    /// The current base matrix (pending operations not included).
    pub fn base(&self) -> &CsrMatrix {
        &self.base
    }

    /// Number of pending (uncompacted) operations.
    pub fn pending_ops(&self) -> usize {
        self.overlay.len()
    }

    /// Returns `true` if operations are pending.
    pub fn is_dirty(&self) -> bool {
        !self.overlay.is_empty()
    }

    /// Applies a batch to the overlay (last write wins over earlier pending
    /// operations), without compacting.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::IndexOutOfBounds`] if any operation lies
    /// outside the base matrix; the overlay is untouched in that case.
    pub fn apply(&mut self, batch: &DeltaBatch) -> Result<()> {
        for (r, c, _) in batch.ops() {
            if r >= self.base.rows() || c >= self.base.cols() {
                return Err(MatrixError::IndexOutOfBounds {
                    row: r,
                    col: c,
                    rows: self.base.rows(),
                    cols: self.base.cols(),
                });
            }
        }
        for (r, c, op) in batch.ops() {
            self.overlay.insert((r, c), op);
        }
        Ok(())
    }

    /// The effective value at `(row, col)`: pending operations first, then
    /// the base.  Deleted entries and absent entries both read `0.0` (use the
    /// compacted pattern to distinguish stored zeros).
    ///
    /// # Panics
    ///
    /// Panics if the position lies outside the matrix (as
    /// [`CsrMatrix::get`] does).
    pub fn get(&self, row: usize, col: usize) -> f64 {
        match self.overlay.get(&(row, col)) {
            Some(Some(w)) => *w,
            Some(None) => {
                assert!(row < self.base.rows() && col < self.base.cols(), "index out of bounds");
                0.0
            }
            None => self.base.get(row, col),
        }
    }

    /// Merges pending operations into the base and returns the rebuilt
    /// matrix.  The result is byte-identical to rebuilding a CSR eagerly from
    /// the final edge set (the delta-equivalence contract); with no pending
    /// operations this is a cheap no-op.
    pub fn compact(&mut self) -> &CsrMatrix {
        if self.overlay.is_empty() {
            return &self.base;
        }
        let rows = self.base.rows();
        let cols = self.base.cols();
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::with_capacity(self.base.nnz() + self.overlay.len());
        let mut values = Vec::with_capacity(self.base.nnz() + self.overlay.len());
        indptr.push(0);
        let mut overlay = self.overlay.iter().peekable();
        for r in 0..rows {
            let base_cols = self.base.row_indices(r);
            let base_vals = self.base.row_values(r);
            let mut bi = 0;
            // Merge-walk the sorted base row with the sorted overlay run for
            // this row; both are strictly increasing in column, so the output
            // is too.
            loop {
                let next_overlay_col = match overlay.peek() {
                    Some(&(&(or, oc), _)) if or == r => Some(oc),
                    _ => None,
                };
                match (base_cols.get(bi), next_overlay_col) {
                    (Some(&bc), Some(oc)) if bc < oc => {
                        indices.push(bc);
                        values.push(base_vals[bi]);
                        bi += 1;
                    }
                    (Some(&bc), Some(oc)) if bc == oc => {
                        // Overlay overrides the base entry.
                        let (_, op) = overlay.next().expect("peeked");
                        if let Some(w) = op {
                            indices.push(bc);
                            values.push(*w);
                        }
                        bi += 1;
                    }
                    (_, Some(oc)) => {
                        let (_, op) = overlay.next().expect("peeked");
                        if let Some(w) = op {
                            indices.push(oc);
                            values.push(*w);
                        }
                    }
                    (Some(&bc), None) => {
                        indices.push(bc);
                        values.push(base_vals[bi]);
                        bi += 1;
                    }
                    (None, None) => break,
                }
            }
            indptr.push(indices.len());
        }
        self.overlay.clear();
        self.base = CsrMatrix::from_raw_unchecked(rows, cols, indptr, indices, values);
        &self.base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    fn base_3x3() -> CsrMatrix {
        let coo =
            CooMatrix::from_triples(3, 3, vec![(0, 1, 1.0), (1, 0, 2.0), (1, 2, 3.0), (2, 2, 4.0)])
                .unwrap();
        CsrMatrix::from_coo(&coo)
    }

    /// Eagerly rebuilds the final matrix from the base edge set plus a
    /// sequence of batches — the independent second code path every
    /// compaction result is held against.
    fn eager_rebuild(base: &CsrMatrix, batches: &[DeltaBatch]) -> CsrMatrix {
        let mut edges: BTreeMap<(usize, usize), f64> =
            base.iter().map(|(r, c, v)| ((r, c), v)).collect();
        for batch in batches {
            for (r, c, op) in batch.ops() {
                match op {
                    Some(w) => {
                        edges.insert((r, c), w);
                    }
                    None => {
                        edges.remove(&(r, c));
                    }
                }
            }
        }
        let coo = CooMatrix::from_triples(
            base.rows(),
            base.cols(),
            edges.into_iter().map(|((r, c), v)| (r, c, v)),
        )
        .unwrap();
        CsrMatrix::from_coo(&coo)
    }

    fn assert_byte_identical(a: &CsrMatrix, b: &CsrMatrix) {
        assert_eq!(a.shape(), b.shape());
        assert_eq!(a.indptr(), b.indptr(), "indptr diverged");
        assert_eq!(a.indices(), b.indices(), "indices diverged");
        let bits = |m: &CsrMatrix| m.values().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(a), bits(b), "values not bit-identical");
    }

    #[test]
    fn batch_last_write_wins() {
        let mut b = DeltaBatch::new();
        b.insert(0, 1, 1.0);
        b.delete(0, 1);
        b.insert(0, 1, 7.0);
        assert_eq!(b.len(), 1);
        assert_eq!(b.ops().next(), Some((0, 1, Some(7.0))));
    }

    #[test]
    fn batch_dirty_vertices_sorted_dedup() {
        let mut b = DeltaBatch::new();
        b.insert(4, 1, 1.0);
        b.delete(1, 4);
        b.insert(2, 2, 1.0);
        assert_eq!(b.dirty_vertices(), vec![1, 2, 4]);
    }

    #[test]
    fn batch_merge_later_wins() {
        let mut a = DeltaBatch::new();
        a.insert(0, 0, 1.0);
        a.insert(1, 1, 2.0);
        let mut b = DeltaBatch::new();
        b.delete(0, 0);
        a.merge(&b);
        assert_eq!(a.ops().next(), Some((0, 0, None)));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn apply_bounds_checked_and_atomic() {
        let mut d = DeltaCsr::new(base_3x3());
        let mut bad = DeltaBatch::new();
        bad.insert(0, 0, 1.0);
        bad.insert(3, 0, 1.0);
        assert!(matches!(d.apply(&bad), Err(MatrixError::IndexOutOfBounds { .. })));
        // The in-bounds half of the failed batch must not leak in.
        assert_eq!(d.pending_ops(), 0);
    }

    #[test]
    fn get_sees_overlay_before_compaction() {
        let mut d = DeltaCsr::new(base_3x3());
        let mut b = DeltaBatch::new();
        b.insert(0, 0, 9.0);
        b.delete(1, 2);
        d.apply(&b).unwrap();
        assert_eq!(d.get(0, 0), 9.0);
        assert_eq!(d.get(1, 2), 0.0);
        assert_eq!(d.get(2, 2), 4.0); // untouched base entry
        assert_eq!(d.base().get(0, 0), 0.0); // base unchanged until compact
    }

    #[test]
    fn compact_matches_eager_rebuild_simple() {
        let base = base_3x3();
        let mut b = DeltaBatch::new();
        b.insert(0, 0, 5.0); // new edge before existing (0,1)
        b.insert(1, 2, -1.0); // overwrite
        b.delete(2, 2); // delete existing
        b.delete(0, 2); // delete-of-absent: no-op
        let mut d = DeltaCsr::new(base.clone());
        d.apply(&b).unwrap();
        let compacted = d.compact().clone();
        let rebuilt = eager_rebuild(&base, std::slice::from_ref(&b));
        assert_byte_identical(&compacted, &rebuilt);
        assert!(!d.is_dirty());
    }

    #[test]
    fn compact_with_empty_overlay_is_identity() {
        let base = base_3x3();
        let mut d = DeltaCsr::new(base.clone());
        assert_byte_identical(d.compact(), &base);
    }

    #[test]
    fn stored_zero_insert_keeps_pattern_slot() {
        // Weight-0.0 inserts store an explicit zero, matching from_coo's
        // edge-list semantics (PR 3's CSC formulation treats pattern as
        // structure).
        let base = base_3x3();
        let mut b = DeltaBatch::new();
        b.insert(0, 0, 0.0);
        b.insert(1, 0, 0.0); // overwrite existing with explicit zero
        let mut d = DeltaCsr::new(base.clone());
        d.apply(&b).unwrap();
        let compacted = d.compact().clone();
        assert_eq!(compacted.nnz(), base.nnz() + 1);
        assert_eq!(compacted.row_indices(0), &[0, 1]);
        assert_eq!(compacted.get(1, 0), 0.0);
        let rebuilt = eager_rebuild(&base, std::slice::from_ref(&b));
        assert_byte_identical(&compacted, &rebuilt);
    }

    #[test]
    fn sequential_batches_match_one_eager_rebuild() {
        let base = base_3x3();
        let mut b1 = DeltaBatch::new();
        b1.insert(0, 2, 1.5);
        b1.delete(1, 0);
        let mut b2 = DeltaBatch::new();
        b2.insert(1, 0, 2.5); // resurrect the edge b1 deleted
        b2.delete(0, 2); // delete the edge b1 inserted
        let mut d = DeltaCsr::new(base.clone());
        d.apply(&b1).unwrap();
        d.compact();
        d.apply(&b2).unwrap();
        let compacted = d.compact().clone();
        let rebuilt = eager_rebuild(&base, &[b1, b2]);
        assert_byte_identical(&compacted, &rebuilt);
    }

    /// Random operation sequences for the round-trip proptests.  Roughly a
    /// quarter of the operations are deletes (including deletes of absent
    /// edges); the rest insert, some with weight collisions on the same
    /// `(row, col)` within and across batches.
    fn arb_batches(n: usize) -> impl Strategy<Value = Vec<DeltaBatch>> {
        let op = ((0..n, 0..n), (0usize..4, -4.0f64..4.0));
        let batch = proptest::collection::vec(op, 0..12).prop_map(|ops| {
            ops.into_iter()
                .map(|((r, c), (tag, w))| (r, c, (tag != 0).then_some(w)))
                .collect::<DeltaBatch>()
        });
        proptest::collection::vec(batch, 0..5)
    }

    proptest! {
        /// The tentpole property: lazy compaction over any batch sequence —
        /// duplicate edges, delete-of-absent, empty batches, stored zeros —
        /// is byte-identical to an eager rebuild from the final edge set.
        #[test]
        fn prop_compact_equals_eager_rebuild(
            (n, batches) in (2usize..8)
                .prop_flat_map(|n| (n..n + 1, arb_batches(n))),
            base_edges in
                proptest::collection::vec((0usize..8, 0usize..8, -4.0f64..4.0), 0..20),
        ) {
            let edges: Vec<_> =
                base_edges.into_iter().filter(|&(r, c, _)| r < n && c < n).collect();
            let coo = CooMatrix::from_triples(n, n, edges).unwrap();
            let base = CsrMatrix::from_coo(&coo);
            let mut d = DeltaCsr::new(base.clone());
            for b in &batches {
                d.apply(b).unwrap();
            }
            let compacted = d.compact().clone();
            let rebuilt = eager_rebuild(&base, &batches);
            prop_assert_eq!(compacted.indptr(), rebuilt.indptr());
            prop_assert_eq!(compacted.indices(), rebuilt.indices());
            let bits = |m: &CsrMatrix| m.values().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            prop_assert_eq!(bits(&compacted), bits(&rebuilt));
        }

        /// Compacting after every batch gives the same final matrix as one
        /// compaction at the end (compaction points are unobservable).
        #[test]
        fn prop_compaction_points_unobservable(
            (n, batches) in (2usize..8)
                .prop_flat_map(|n| (n..n + 1, arb_batches(n))),
        ) {
            let base = CsrMatrix::identity(n);
            let mut eager = DeltaCsr::new(base.clone());
            let mut lazy = DeltaCsr::new(base);
            for b in &batches {
                eager.apply(b).unwrap();
                eager.compact();
                lazy.apply(b).unwrap();
            }
            let a = eager.compact().clone();
            let b = lazy.compact().clone();
            prop_assert_eq!(a.indptr(), b.indptr());
            prop_assert_eq!(a.indices(), b.indices());
            let bits = |m: &CsrMatrix| m.values().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            prop_assert_eq!(bits(&a), bits(&b));
        }
    }
}

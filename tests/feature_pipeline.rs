//! Negative-path and flaky-guard tests for the communication-avoiding
//! feature pipeline (§6.2).
//!
//! * The feature store and cache must fail with **typed** error variants —
//!   never panics — for mismatched fetch-group sizes, oversized vertex ids
//!   and uncovered pinned lookups, and the runtime must reject a zero-rank
//!   configuration the same way.
//! * The rank simulator must be deterministic: two `train()` runs of the
//!   same distributed session produce bit-identical losses *and* identical
//!   communication word counts, with and without the cache — the regression
//!   guard that keeps scheduling races from hiding behind averages.

mod common;

use dmbs::comm::{CommError, Group, Runtime};
use dmbs::gnn::{FeatureCache, FeatureCacheConfig, FeatureStore, GnnError, TrainingSession};
use dmbs::graph::datasets::Dataset;
use dmbs::matrix::DenseMatrix;
use dmbs::sampling::{
    BulkSamplerConfig, DistConfig, GraphSageSampler, ReplicatedBackend, SamplingError,
};

fn features(n: usize, f: usize) -> DenseMatrix {
    DenseMatrix::from_rows(
        &(0..n).map(|v| (0..f).map(|j| (v + j) as f64).collect()).collect::<Vec<_>>(),
    )
    .unwrap()
}

#[test]
fn fetch_with_mismatched_group_size_is_typed() {
    let h = features(8, 2);
    let runtime = Runtime::new(2).unwrap();
    let outs = runtime
        .run(|comm| {
            // Two feature blocks, but a singleton fetch group.
            let store = FeatureStore::from_full(&h, 2, comm.rank()).unwrap();
            let wrong = Group::new(&[comm.rank()]).unwrap();
            store.fetch(comm, &wrong, &[0]).unwrap_err()
        })
        .unwrap();
    for o in outs {
        assert_eq!(o.value, GnnError::FetchGroupMismatch { blocks: 2, group: 1 });
    }
}

#[test]
fn fetch_with_oversized_vertex_id_is_typed() {
    let h = features(8, 2);
    let runtime = Runtime::new(2).unwrap();
    let outs = runtime
        .run(|comm| {
            let store = FeatureStore::from_full(&h, comm.size(), comm.rank()).unwrap();
            let world = comm.world();
            // The validation fires before any collective is issued, so a
            // single rank erroring cannot deadlock its peers.
            store.fetch(comm, &world, &[3, 99]).unwrap_err()
        })
        .unwrap();
    for o in outs {
        assert_eq!(o.value, GnnError::VertexOutOfRange { vertex: 99, limit: 8 });
    }
}

#[test]
fn cache_prefetch_propagates_typed_fetch_errors() {
    let h = features(8, 2);
    let runtime = Runtime::new(2).unwrap();
    let outs = runtime
        .run(|comm| {
            let store = FeatureStore::from_full(&h, comm.size(), comm.rank()).unwrap();
            let world = comm.world();
            let mut cache = FeatureCache::new(FeatureCacheConfig::EpochPinned, 2);
            let oversized = cache.prefetch(&store, comm, &world, &[1, 42]).unwrap_err();
            let wrong = Group::new(&[comm.rank()]).unwrap();
            let mismatched = cache.prefetch(&store, comm, &wrong, &[1]).unwrap_err();
            (oversized, mismatched)
        })
        .unwrap();
    for o in outs {
        assert_eq!(o.value.0, GnnError::VertexOutOfRange { vertex: 42, limit: 8 });
        assert_eq!(o.value.1, GnnError::FetchGroupMismatch { blocks: 2, group: 1 });
    }
}

#[test]
fn pinned_cache_miss_is_typed_not_a_panic() {
    let h = features(8, 2);
    let runtime = Runtime::new(1).unwrap();
    let outs = runtime
        .run(|comm| {
            let store = FeatureStore::from_full(&h, 1, 0).unwrap();
            let world = comm.world();
            let mut cache = FeatureCache::new(FeatureCacheConfig::EpochPinned, 2);
            cache.prefetch(&store, comm, &world, &[0, 1]).unwrap();
            cache.gather_pinned(&store, &[0, 7]).unwrap_err()
        })
        .unwrap();
    assert_eq!(outs[0].value, GnnError::CacheMiss { vertex: 7 });
}

#[test]
fn runtime_rejects_zero_ranks_with_typed_error() {
    assert!(matches!(Runtime::new(0), Err(CommError::InvalidConfig(_))));
    // The same zero-rank mistake at the backend layer is typed too.
    assert_eq!(
        ReplicatedBackend::new(DistConfig::new(0, 1, BulkSamplerConfig::new(4, 2))).unwrap_err(),
        SamplingError::InvalidDistConfig { field: "ranks", value: 0 }
    );
}

#[test]
fn feature_store_rejects_out_of_range_block_index() {
    let h = features(9, 2);
    assert!(FeatureStore::from_full(&h, 3, 3).is_err());
    assert!(FeatureStore::from_full(&h, 3, 2).is_ok());
}

fn determinism_dataset(seed: u64) -> Dataset {
    common::products_dataset(7, 12, 4, 0.5, Some(0.6), seed) // 128 vertices
}

/// Flaky-guard for the rank simulator: the distributed pipeline runs one OS
/// thread per rank, so any dependence on thread scheduling would show up as
/// run-to-run divergence.  Two identically-seeded runs must agree bit for
/// bit on every loss and exactly on every communication counter.
#[test]
fn seeded_distributed_training_is_run_to_run_deterministic() {
    let dataset = std::sync::Arc::new(determinism_dataset(50));
    for mode in common::cache_modes(1 << 18) {
        let build = || {
            TrainingSession::<GraphSageSampler, ReplicatedBackend>::builder()
                .dataset(std::sync::Arc::clone(&dataset))
                .sampler(GraphSageSampler::new(vec![4, 3]).with_self_loops())
                .backend(
                    ReplicatedBackend::new(DistConfig::new(4, 2, BulkSamplerConfig::new(16, 4)))
                        .unwrap(),
                )
                .hidden_dim(12)
                .learning_rate(0.05)
                .epochs(2)
                .seed(77)
                .feature_cache(mode)
                .build()
                .unwrap()
        };
        let first = build().train().unwrap();
        let second = build().train().unwrap();
        assert_eq!(first.epochs.len(), second.epochs.len());
        for (a, b) in first.epochs.iter().zip(&second.epochs) {
            assert_eq!(
                a.mean_loss.to_bits(),
                b.mean_loss.to_bits(),
                "{mode:?}: losses diverged between identically-seeded runs"
            );
            assert_eq!(a.comm.messages, b.comm.messages, "{mode:?}");
            assert_eq!(a.comm.words_sent, b.comm.words_sent, "{mode:?}");
            assert_eq!(a.comm.cache_hits, b.comm.cache_hits, "{mode:?}");
            assert_eq!(a.comm.cache_misses, b.comm.cache_misses, "{mode:?}");
            assert_eq!(a.comm.words_saved, b.comm.words_saved, "{mode:?}");
        }
        assert_eq!(
            first.test_accuracy.unwrap().to_bits(),
            second.test_accuracy.unwrap().to_bits(),
            "{mode:?}"
        );
    }
}

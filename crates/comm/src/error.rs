//! Error types for the simulated distributed runtime.

use std::error::Error;
use std::fmt;

/// Errors produced by the runtime, communicators and collectives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// The runtime or grid was configured with invalid parameters.
    InvalidConfig(String),
    /// A rank referenced a peer outside `0..size`.
    RankOutOfRange {
        /// The offending rank.
        rank: usize,
        /// World or group size.
        size: usize,
    },
    /// A collective was invoked on a group that does not contain the caller.
    NotInGroup {
        /// The calling rank.
        rank: usize,
    },
    /// A receive failed because the sending side disconnected (a peer rank
    /// panicked or returned early).
    Disconnected {
        /// The peer the message was expected from.
        from: usize,
    },
    /// A received message had a different type than expected, indicating
    /// mismatched collective calls across ranks.
    TypeMismatch {
        /// The peer the message came from.
        from: usize,
    },
    /// A rank's closure panicked during [`crate::Runtime::run`].
    RankPanicked {
        /// The rank whose thread panicked.
        rank: usize,
        /// The panic's payload message (the `&str`/`String` passed to
        /// `panic!`), so CI failures in the rank simulator are diagnosable
        /// from the log alone.  Non-string payloads are summarized.
        message: String,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::InvalidConfig(msg) => write!(f, "invalid communicator configuration: {msg}"),
            CommError::RankOutOfRange { rank, size } => {
                write!(f, "rank {rank} out of range for size {size}")
            }
            CommError::NotInGroup { rank } => write!(f, "rank {rank} is not a member of the group"),
            CommError::Disconnected { from } => {
                write!(f, "channel from rank {from} disconnected before a message arrived")
            }
            CommError::TypeMismatch { from } => write!(
                f,
                "message from rank {from} had an unexpected type (mismatched collectives?)"
            ),
            CommError::RankPanicked { rank, message } => {
                write!(f, "rank {rank} panicked during execution: {message}")
            }
        }
    }
}

impl Error for CommError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CommError::InvalidConfig("p must be > 0".into()).to_string().contains("p must"));
        assert!(CommError::RankOutOfRange { rank: 9, size: 4 }.to_string().contains("rank 9"));
        assert!(CommError::NotInGroup { rank: 2 }.to_string().contains("not a member"));
        assert!(CommError::Disconnected { from: 1 }.to_string().contains("disconnected"));
        assert!(CommError::TypeMismatch { from: 3 }.to_string().contains("unexpected type"));
        let panicked =
            CommError::RankPanicked { rank: 0, message: "index out of bounds".into() }.to_string();
        assert!(panicked.contains("panicked"));
        assert!(panicked.contains("index out of bounds"), "payload must reach the log: {panicked}");
    }

    #[test]
    fn is_send_sync_error() {
        fn check<T: std::error::Error + Send + Sync>() {}
        check::<CommError>();
    }
}

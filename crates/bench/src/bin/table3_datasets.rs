//! Table 3: dataset statistics.
//!
//! Prints the statistics of the scaled-down stand-in datasets next to the
//! full-scale numbers reported in the paper, so the scaling factor of the
//! reproduction is explicit.

use dmbs_bench::{dataset, print_table, Scale};
use dmbs_graph::datasets::DatasetKind;

fn main() {
    let scale = Scale::from_env();
    let batch_size = 1024;
    let mut rows = Vec::new();
    for kind in [DatasetKind::Products, DatasetKind::Protein, DatasetKind::Papers] {
        let ds = dataset(kind, scale);
        rows.push(vec![
            kind.name().to_string(),
            format!("{}", ds.num_vertices()),
            format!("{}", ds.num_edges()),
            format!("{:.1}", ds.graph.average_degree()),
            format!("{}", kind.paper_num_vertices()),
            format!("{}", kind.paper_average_degree()),
            format!("{}", ds.num_batches(batch_size.min(ds.train_set.len().max(1)))),
            format!("{}", kind.feature_dim()),
        ]);
    }
    print_table(
        "Table 3 — datasets (stand-in vs paper)",
        &[
            "name",
            "vertices",
            "edges",
            "avg deg",
            "paper vertices",
            "paper avg deg",
            "batches",
            "features",
        ],
        &rows,
    );
    println!("\nStand-ins are R-MAT graphs with the paper's average degree; see DESIGN.md §1.");
}

//! Quickstart: build a synthetic graph, bulk-sample minibatches with the
//! matrix-based GraphSAGE sampler, and train a small GraphSAGE model.
//!
//! Run with `cargo run --release --example quickstart`.

use dmbs::gnn::trainer::{train_single_device, SamplerChoice};
use dmbs::gnn::TrainingConfig;
use dmbs::graph::datasets::{build_dataset, DatasetConfig};
use dmbs::sampling::{BulkSamplerConfig, GraphSageSampler, Sampler};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A scaled-down stand-in for OGB Products: an R-MAT graph with average
    //    degree ~53, planted-partition labels and learnable features.
    let mut config = DatasetConfig::products_like(10); // 1024 vertices
    config.feature_dim = 32;
    config.num_classes = 8;
    config.train_fraction = 0.5;
    let dataset = build_dataset(&config, &mut StdRng::seed_from_u64(1))?;
    println!(
        "dataset: {} vertices, {} edges, average degree {:.1}",
        dataset.num_vertices(),
        dataset.num_edges(),
        dataset.graph.average_degree()
    );

    // 2. Bulk-sample four minibatches at once with the matrix formulation of
    //    GraphSAGE (Algorithm 1 of the paper).
    let sampler = GraphSageSampler::new(vec![10, 5]);
    let batches: Vec<Vec<usize>> = dataset.train_set.chunks(32).take(4).map(<[usize]>::to_vec).collect();
    let bulk = BulkSamplerConfig::new(32, batches.len());
    let mut rng = StdRng::seed_from_u64(2);
    let output = sampler.sample_bulk(dataset.graph.adjacency(), &batches, &bulk, &mut rng)?;
    println!(
        "bulk-sampled {} minibatches, {} edges total, sampling compute {:.4}s",
        output.num_batches(),
        output.total_edges(),
        output.profile.total_compute()
    );

    // 3. Train a 2-layer GraphSAGE model end to end and report test accuracy.
    let training = TrainingConfig {
        fanouts: vec![10, 5],
        hidden_dim: 32,
        batch_size: 32,
        bulk_size: 4,
        learning_rate: 0.05,
        epochs: 3,
        seed: 3,
    };
    let report = train_single_device(&dataset, &training, SamplerChoice::MatrixSage)?;
    for epoch in &report.epochs {
        println!(
            "epoch {}: loss {:.3}, sampling {:.4}s, feature fetch {:.4}s, propagation {:.4}s",
            epoch.epoch,
            epoch.mean_loss,
            epoch.sampling_time(),
            epoch.feature_fetch_time(),
            epoch.propagation_time()
        );
    }
    println!("test accuracy: {:.3}", report.test_accuracy.unwrap_or(0.0));
    Ok(())
}

//! Phase profiling.
//!
//! The paper's figures break epoch time into pipeline phases (sampling,
//! feature fetching, propagation — Figure 4/6) and break sampling time into
//! probability generation, sampling and extraction, each split into
//! computation and communication (Figure 7).  [`PhaseProfile`] accumulates
//! wall-clock (computation) and modeled (communication) seconds per
//! [`Phase`] and merges across ranks.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Instant;

/// The pipeline / sampling phases reported by the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Probability-distribution generation (`P ← Q·A` and normalization).
    Probability,
    /// Inverse-transform sampling from the probability rows.
    Sampling,
    /// Row/column extraction building the sampled adjacency matrices.
    Extraction,
    /// Fetching feature-vector rows (all-to-allv across process columns).
    FeatureFetch,
    /// Forward and backward propagation.
    Propagation,
    /// Anything else (setup, bookkeeping).
    Other,
}

impl Phase {
    /// All phases in display order.
    pub const ALL: [Phase; 6] = [
        Phase::Probability,
        Phase::Sampling,
        Phase::Extraction,
        Phase::FeatureFetch,
        Phase::Propagation,
        Phase::Other,
    ];

    /// Human-readable name used by the benchmark harness output.
    pub fn name(&self) -> &'static str {
        match self {
            Phase::Probability => "probability",
            Phase::Sampling => "sampling",
            Phase::Extraction => "extraction",
            Phase::FeatureFetch => "feature_fetch",
            Phase::Propagation => "propagation",
            Phase::Other => "other",
        }
    }

    /// The three phases that make up the sampling step (Figure 7).
    pub fn sampling_phases() -> [Phase; 3] {
        [Phase::Probability, Phase::Sampling, Phase::Extraction]
    }
}

/// Per-phase accumulation of computation (measured) and communication
/// (modeled) time, in seconds — plus, for pipelined schedules, the modeled
/// communication seconds each phase hid behind another phase's computation
/// (see [`PhaseProfile::add_overlap`]).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseProfile {
    compute: BTreeMap<Phase, f64>,
    comm: BTreeMap<Phase, f64>,
    overlap: BTreeMap<Phase, f64>,
}

impl PhaseProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        PhaseProfile::default()
    }

    /// Adds `seconds` of computation time to `phase`.
    pub fn add_compute(&mut self, phase: Phase, seconds: f64) {
        *self.compute.entry(phase).or_insert(0.0) += seconds;
    }

    /// Adds `seconds` of (modeled) communication time to `phase`.
    pub fn add_comm(&mut self, phase: Phase, seconds: f64) {
        *self.comm.entry(phase).or_insert(0.0) += seconds;
    }

    /// Records `seconds` of `phase`'s modeled communication as overlapped
    /// with (hidden behind) another phase's computation by a pipelined
    /// schedule.  The communication itself stays in the `comm` books — the
    /// α–β bill is schedule-independent — so
    /// `effective_total == compute + comm - overlap` balances exactly.
    /// Callers must never credit more than the phase's recorded
    /// communication (see [`crate::CostModel::overlap_credit`]).
    pub fn add_overlap(&mut self, phase: Phase, seconds: f64) {
        *self.overlap.entry(phase).or_insert(0.0) += seconds;
    }

    /// Runs `f`, measuring its wall-clock duration as computation time for
    /// `phase`, and returns its result.
    pub fn time_compute<T>(&mut self, phase: Phase, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let result = f();
        self.add_compute(phase, start.elapsed().as_secs_f64());
        result
    }

    /// Computation seconds recorded for `phase`.
    pub fn compute(&self, phase: Phase) -> f64 {
        self.compute.get(&phase).copied().unwrap_or(0.0)
    }

    /// Communication seconds recorded for `phase`.
    pub fn comm(&self, phase: Phase) -> f64 {
        self.comm.get(&phase).copied().unwrap_or(0.0)
    }

    /// Overlapped (hidden) communication seconds recorded for `phase`.
    pub fn overlap(&self, phase: Phase) -> f64 {
        self.overlap.get(&phase).copied().unwrap_or(0.0)
    }

    /// Total (computation + communication) seconds for `phase` under a
    /// serial schedule — overlap does not change what was spent, only what
    /// the pipelined schedule pays (see [`PhaseProfile::effective_total`]).
    pub fn total(&self, phase: Phase) -> f64 {
        self.compute(phase) + self.comm(phase)
    }

    /// Seconds the pipelined schedule pays for `phase`:
    /// `compute + comm - overlap`.
    pub fn effective_total(&self, phase: Phase) -> f64 {
        self.total(phase) - self.overlap(phase)
    }

    /// Sum of computation time across all phases.
    pub fn total_compute(&self) -> f64 {
        self.compute.values().sum()
    }

    /// Sum of communication time across all phases.
    pub fn total_comm(&self) -> f64 {
        self.comm.values().sum()
    }

    /// Sum of overlapped (hidden) communication time across all phases.
    pub fn total_overlap(&self) -> f64 {
        // fold, not sum: an empty iterator's f64 sum is -0.0, which leaks an
        // ugly "-0.000000" into every synchronous-schedule report.
        self.overlap.values().fold(0.0, |acc, s| acc + s)
    }

    /// Grand total across all phases under a serial schedule.
    pub fn grand_total(&self) -> f64 {
        self.total_compute() + self.total_comm()
    }

    /// Grand total the pipelined schedule pays:
    /// `grand_total - total_overlap`.  Equal to [`PhaseProfile::grand_total`]
    /// whenever nothing was overlapped, so the two trajectories are directly
    /// comparable.
    pub fn effective_grand_total(&self) -> f64 {
        self.grand_total() - self.total_overlap()
    }

    /// Element-wise sum with another profile (aggregating epochs or bulk
    /// groups on one rank).
    pub fn merge_sum(&mut self, other: &PhaseProfile) {
        for (phase, secs) in &other.compute {
            *self.compute.entry(*phase).or_insert(0.0) += secs;
        }
        for (phase, secs) in &other.comm {
            *self.comm.entry(*phase).or_insert(0.0) += secs;
        }
        for (phase, secs) in &other.overlap {
            *self.overlap.entry(*phase).or_insert(0.0) += secs;
        }
    }

    /// Element-wise maximum with another profile.  Used to combine per-rank
    /// profiles into the bulk-synchronous epoch time (the slowest rank
    /// determines each phase's duration).
    pub fn merge_max(&mut self, other: &PhaseProfile) {
        for (phase, secs) in &other.compute {
            let entry = self.compute.entry(*phase).or_insert(0.0);
            *entry = entry.max(*secs);
        }
        for (phase, secs) in &other.comm {
            let entry = self.comm.entry(*phase).or_insert(0.0);
            *entry = entry.max(*secs);
        }
        for (phase, secs) in &other.overlap {
            let entry = self.overlap.entry(*phase).or_insert(0.0);
            *entry = entry.max(*secs);
        }
    }

    /// Combines a list of per-rank profiles with [`PhaseProfile::merge_max`].
    pub fn max_across_ranks(profiles: &[PhaseProfile]) -> PhaseProfile {
        let mut out = PhaseProfile::new();
        for p in profiles {
            out.merge_max(p);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_names_are_unique() {
        let names: std::collections::HashSet<_> = Phase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), Phase::ALL.len());
        assert_eq!(Phase::sampling_phases().len(), 3);
    }

    #[test]
    fn add_and_query() {
        let mut p = PhaseProfile::new();
        p.add_compute(Phase::Sampling, 1.0);
        p.add_compute(Phase::Sampling, 0.5);
        p.add_comm(Phase::Probability, 0.25);
        assert_eq!(p.compute(Phase::Sampling), 1.5);
        assert_eq!(p.comm(Phase::Probability), 0.25);
        assert_eq!(p.total(Phase::Probability), 0.25);
        assert_eq!(p.compute(Phase::Extraction), 0.0);
        assert_eq!(p.total_compute(), 1.5);
        assert_eq!(p.total_comm(), 0.25);
        assert_eq!(p.grand_total(), 1.75);
    }

    #[test]
    fn time_compute_measures_something() {
        let mut p = PhaseProfile::new();
        let out = p.time_compute(Phase::Propagation, || {
            let mut acc = 0u64;
            for i in 0..10_000 {
                acc = acc.wrapping_add(i);
            }
            acc
        });
        assert!(out > 0);
        assert!(p.compute(Phase::Propagation) >= 0.0);
    }

    #[test]
    fn overlap_books_balance() {
        let mut p = PhaseProfile::new();
        p.add_compute(Phase::Propagation, 4.0);
        p.add_comm(Phase::FeatureFetch, 1.5);
        p.add_overlap(Phase::FeatureFetch, 1.0);
        assert_eq!(p.overlap(Phase::FeatureFetch), 1.0);
        assert_eq!(p.overlap(Phase::Propagation), 0.0);
        assert_eq!(p.total(Phase::FeatureFetch), 1.5);
        assert_eq!(p.effective_total(Phase::FeatureFetch), 0.5);
        assert_eq!(p.total_overlap(), 1.0);
        assert_eq!(p.grand_total(), 5.5);
        assert_eq!(p.effective_grand_total(), 4.5);
        // grand_total == compute + comm regardless of overlap: the bill is
        // schedule-independent, only the effective totals move.
        assert_eq!(p.grand_total(), p.total_compute() + p.total_comm());

        let mut q = PhaseProfile::new();
        q.add_overlap(Phase::FeatureFetch, 0.25);
        let mut sum = p.clone();
        sum.merge_sum(&q);
        assert_eq!(sum.total_overlap(), 1.25);
        let mut max = p.clone();
        max.merge_max(&q);
        assert_eq!(max.overlap(Phase::FeatureFetch), 1.0);
    }

    #[test]
    fn merge_sum_and_max() {
        let mut a = PhaseProfile::new();
        a.add_compute(Phase::Sampling, 1.0);
        a.add_comm(Phase::Probability, 2.0);
        let mut b = PhaseProfile::new();
        b.add_compute(Phase::Sampling, 3.0);
        b.add_comm(Phase::Probability, 1.0);

        let mut sum = a.clone();
        sum.merge_sum(&b);
        assert_eq!(sum.compute(Phase::Sampling), 4.0);
        assert_eq!(sum.comm(Phase::Probability), 3.0);

        let mut max = a.clone();
        max.merge_max(&b);
        assert_eq!(max.compute(Phase::Sampling), 3.0);
        assert_eq!(max.comm(Phase::Probability), 2.0);

        let across = PhaseProfile::max_across_ranks(&[a, b]);
        assert_eq!(across.compute(Phase::Sampling), 3.0);
    }
}

//! Output types of the sampling step.
//!
//! Sampling a minibatch for an `L`-layer GNN produces one sampled adjacency
//! matrix per layer (§4, Algorithm 1).  In this reproduction each layer's
//! matrix is kept together with the *global vertex ids* of its rows and
//! columns, which downstream feature fetching (§6.2) needs to know which rows
//! of the feature matrix `H` to gather.
//!
//! Because bulk sampling materializes *every* frontier of a group (or epoch)
//! up front, the feature-fetching phase can be planned ahead of time: a
//! [`FetchPlan`] deduplicates the union of the layer-0 frontiers so each
//! distinct feature row is moved at most once, which is the basis of the
//! communication-avoiding feature pipeline (epoch prefetch + per-rank cache).

use dmbs_comm::{CommStats, PhaseProfile};
use dmbs_graph::partition::OneDPartition;
use dmbs_matrix::CsrMatrix;
use serde::{Deserialize, Serialize};

/// One layer's sampled adjacency matrix together with the global vertex ids
/// of its rows and columns.
///
/// `adjacency` has shape `rows.len() x cols.len()`; entry `(i, j)` is an edge
/// from global vertex `rows[i]` to global vertex `cols[j]` that survived
/// sampling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerSample {
    /// Global vertex ids of the adjacency rows (the layer-`l` frontier).
    pub rows: Vec<usize>,
    /// Global vertex ids of the adjacency columns (the layer-`l-1` frontier).
    pub cols: Vec<usize>,
    /// The sampled adjacency matrix for this layer.
    pub adjacency: CsrMatrix,
}

impl LayerSample {
    /// Creates a layer sample, checking that the matrix shape matches the
    /// vertex id lists.
    ///
    /// # Panics
    ///
    /// Panics if `adjacency.shape() != (rows.len(), cols.len())`.
    pub fn new(rows: Vec<usize>, cols: Vec<usize>, adjacency: CsrMatrix) -> Self {
        assert_eq!(
            adjacency.shape(),
            (rows.len(), cols.len()),
            "sampled adjacency shape must match frontier sizes"
        );
        LayerSample { rows, cols, adjacency }
    }

    /// Number of sampled edges in this layer.
    pub fn num_edges(&self) -> usize {
        self.adjacency.nnz()
    }
}

/// The complete sample for one minibatch: one [`LayerSample`] per GNN layer.
///
/// `layers[0]` is the **innermost** layer (layer 1 in the paper's numbering:
/// the one whose columns are furthest from the batch) and
/// `layers.last()` is the outermost layer `L`, whose rows are exactly the
/// batch vertices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MinibatchSample {
    /// The batch vertices this sample was drawn for.
    pub batch: Vec<usize>,
    /// Per-layer samples, innermost first.
    pub layers: Vec<LayerSample>,
}

impl MinibatchSample {
    /// Number of GNN layers covered by the sample.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Global vertex ids whose input features are needed to train this
    /// minibatch: the columns of the innermost layer.
    pub fn input_vertices(&self) -> &[usize] {
        self.layers.first().map(|l| l.cols.as_slice()).unwrap_or(&[])
    }

    /// Total number of sampled edges across all layers.
    pub fn total_edges(&self) -> usize {
        self.layers.iter().map(LayerSample::num_edges).sum()
    }

    /// Checks the frontier chaining invariant: the rows of layer `l` equal
    /// the columns of layer `l+1`, and the rows of the outermost layer equal
    /// the batch.  Returns `true` when the invariant holds.
    pub fn frontiers_are_chained(&self) -> bool {
        if let Some(last) = self.layers.last() {
            if last.rows != self.batch {
                return false;
            }
        }
        self.layers.windows(2).all(|pair| pair[0].rows == pair[1].cols)
    }
}

/// A communication-avoiding plan for the feature-fetching phase (§6.2) of a
/// bulk group or a whole epoch.
///
/// Bulk sampling (§4) materializes every minibatch's layer-0 frontier before
/// training starts, so instead of re-requesting feature rows minibatch by
/// minibatch — paying for every duplicate — the pipeline can compute the
/// *union* of all input vertices once, prefetch each distinct row a single
/// time, and serve the per-minibatch gathers from a local cache.  A
/// `FetchPlan` is that union plus the bookkeeping needed to size the saving:
/// the number of raw (non-deduplicated) requests the planned minibatches
/// would otherwise have issued.
///
/// # Example
///
/// ```
/// use dmbs_sampling::{BulkSamplerConfig, FetchPlan, GraphSageSampler, LocalBackend,
///     SamplingBackend};
/// use dmbs_graph::generators::figure1_example;
///
/// # fn main() -> Result<(), dmbs_sampling::SamplingError> {
/// let graph = figure1_example();
/// let backend = LocalBackend::new(BulkSamplerConfig::new(2, 2))?;
/// let sampler = GraphSageSampler::new(vec![2]);
/// let epoch = backend.sample_epoch(&sampler, graph.adjacency(), &[vec![1, 5], vec![0, 3]], 7)?;
/// let plan = FetchPlan::from_minibatches(epoch.minibatches());
/// // Every distinct input vertex appears exactly once.
/// assert!(plan.unique_vertices().windows(2).all(|w| w[0] < w[1]));
/// assert!(plan.unique_len() <= plan.total_requests());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FetchPlan {
    /// Sorted, deduplicated union of the planned layer-0 frontiers.
    unique: Vec<usize>,
    /// Total input-vertex requests before deduplication.
    total_requests: usize,
    /// Number of minibatches the plan covers.
    num_minibatches: usize,
    /// Graph version the plan was computed against (see
    /// `dmbs_graph::ingest::GraphIngest::version`); 0 for static graphs.  A
    /// plan is *stale* — and must not gate a prefetch — once the graph has
    /// ingested a batch past this version.
    version: u64,
}

impl FetchPlan {
    /// Builds the plan for a slice of sampled minibatches: the sorted union
    /// of their [`MinibatchSample::input_vertices`].
    pub fn from_minibatches(minibatches: &[MinibatchSample]) -> Self {
        Self::from_sample_iter(minibatches.iter())
    }

    /// Builds the plan from any iterator of sampled minibatches (e.g. a
    /// rank's shard of `(index, sample)` pairs).
    pub fn from_sample_iter<'a>(
        minibatches: impl IntoIterator<Item = &'a MinibatchSample>,
    ) -> Self {
        let mut unique: Vec<usize> = Vec::new();
        let mut total_requests = 0;
        let mut num_minibatches = 0;
        for mb in minibatches {
            let inputs = mb.input_vertices();
            total_requests += inputs.len();
            unique.extend_from_slice(inputs);
            num_minibatches += 1;
        }
        unique.sort_unstable();
        unique.dedup();
        FetchPlan { unique, total_requests, num_minibatches, version: 0 }
    }

    /// Stamps the graph version the plan was computed against (0, the
    /// static-graph default, if never stamped).
    pub fn with_version(mut self, version: u64) -> Self {
        self.version = version;
        self
    }

    /// The graph version the plan was computed against.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The sorted, deduplicated union of input vertices.
    pub fn unique_vertices(&self) -> &[usize] {
        &self.unique
    }

    /// Number of distinct input vertices.
    pub fn unique_len(&self) -> usize {
        self.unique.len()
    }

    /// Total input-vertex requests before deduplication.
    pub fn total_requests(&self) -> usize {
        self.total_requests
    }

    /// Number of minibatches the plan covers.
    pub fn num_minibatches(&self) -> usize {
        self.num_minibatches
    }

    /// Requests the per-minibatch path would issue redundantly — the rows a
    /// prefetch-once pipeline never moves again.
    pub fn duplicate_requests(&self) -> usize {
        self.total_requests - self.unique.len()
    }

    /// True when the plan covers no input vertices at all.
    pub fn is_empty(&self) -> bool {
        self.unique.is_empty()
    }

    /// Splits the unique vertices by owning block of `partition` (the block
    /// rows of the 1.5D feature layout): `result[b]` holds, in ascending
    /// order, the planned vertices owned by block `b`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SamplingError::InvalidConfig`] naming the first
    /// vertex that lies outside the partition.
    pub fn by_owner_block(&self, partition: &OneDPartition) -> crate::Result<Vec<Vec<usize>>> {
        let mut per_block: Vec<Vec<usize>> = vec![Vec::new(); partition.num_parts()];
        for &v in &self.unique {
            if v >= partition.len() {
                return Err(crate::SamplingError::InvalidConfig(format!(
                    "fetch-plan vertex {v} out of range for a partition of {} vertices",
                    partition.len()
                )));
            }
            per_block[partition.owner_of(v)].push(v);
        }
        Ok(per_block)
    }

    /// α–β words the plan saves for a `feature_dim`-wide feature matrix when
    /// every duplicate request would otherwise have crossed the wire: one
    /// request id plus one feature row per duplicate.  An upper bound for
    /// replicated layouts (locally-owned rows never travel), exact for the
    /// fully-remote case.
    pub fn words_avoided_upper_bound(&self, feature_dim: usize) -> usize {
        self.duplicate_requests() * (feature_dim + 1)
    }

    /// Merges another plan into this one (e.g. the next bulk group of the
    /// epoch), keeping the union sorted and deduplicated.
    pub fn merge(&mut self, other: &FetchPlan) {
        self.unique.extend_from_slice(&other.unique);
        self.unique.sort_unstable();
        self.unique.dedup();
        self.total_requests += other.total_requests;
        self.num_minibatches += other.num_minibatches;
        // An accumulator (often `FetchPlan::default()`, version 0) adopts the
        // newest constituent version.  Merging plans that straddle an ingest
        // is a caller bug: stale constituents must be invalidated, not
        // merged.
        self.version = self.version.max(other.version);
    }
}

/// The result of bulk-sampling `k` minibatches, together with the phase
/// breakdown and communication statistics the benchmark harnesses report.
#[derive(Debug, Clone, Default)]
pub struct BulkSampleOutput {
    /// The sampled minibatches, in the order the batches were supplied.
    pub minibatches: Vec<MinibatchSample>,
    /// Per-phase timing breakdown (probability / sampling / extraction).
    pub profile: PhaseProfile,
    /// Communication volume and modeled time spent during sampling (zero for
    /// single-device and graph-replicated sampling).
    pub comm_stats: CommStats,
}

impl BulkSampleOutput {
    /// Number of minibatches sampled.
    pub fn num_batches(&self) -> usize {
        self.minibatches.len()
    }

    /// Total number of sampled edges across all minibatches and layers.
    pub fn total_edges(&self) -> usize {
        self.minibatches.iter().map(MinibatchSample::total_edges).sum()
    }

    /// Concatenates another bulk output (e.g. the next bulk group of `k`
    /// minibatches), summing profiles and communication statistics.
    pub fn merge(&mut self, other: BulkSampleOutput) {
        self.minibatches.extend(other.minibatches);
        self.profile.merge_sum(&other.profile);
        self.comm_stats.merge(&other.comm_stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmbs_matrix::CooMatrix;

    fn layer(rows: Vec<usize>, cols: Vec<usize>, edges: &[(usize, usize)]) -> LayerSample {
        let coo = CooMatrix::from_triples(
            rows.len(),
            cols.len(),
            edges.iter().map(|&(r, c)| (r, c, 1.0)),
        )
        .unwrap();
        LayerSample::new(rows, cols, CsrMatrix::from_coo(&coo))
    }

    #[test]
    fn layer_sample_counts_edges() {
        let l = layer(vec![1, 5], vec![0, 4], &[(0, 0), (0, 1), (1, 1)]);
        assert_eq!(l.num_edges(), 3);
        assert_eq!(l.rows, vec![1, 5]);
    }

    #[test]
    #[should_panic(expected = "shape must match")]
    fn layer_sample_shape_mismatch_panics() {
        let m = CsrMatrix::zeros(2, 3);
        LayerSample::new(vec![0], vec![1, 2, 3], m);
    }

    #[test]
    fn minibatch_invariants() {
        let inner = layer(vec![0, 4], vec![2, 3], &[(0, 0), (1, 1)]);
        let outer = layer(vec![1, 5], vec![0, 4], &[(0, 0), (1, 1)]);
        let mb = MinibatchSample { batch: vec![1, 5], layers: vec![inner.clone(), outer.clone()] };
        assert_eq!(mb.num_layers(), 2);
        assert_eq!(mb.input_vertices(), &[2, 3]);
        assert_eq!(mb.total_edges(), 4);
        assert!(mb.frontiers_are_chained());

        // Break the chain: outer cols no longer match inner rows.
        let bad_outer = layer(vec![1, 5], vec![9, 4], &[(0, 0)]);
        let bad = MinibatchSample { batch: vec![1, 5], layers: vec![inner, bad_outer] };
        assert!(!bad.frontiers_are_chained());

        // Batch mismatch.
        let outer2 = layer(vec![1, 5], vec![0, 4], &[(0, 0)]);
        let bad2 = MinibatchSample { batch: vec![2, 5], layers: vec![outer2] };
        assert!(!bad2.frontiers_are_chained());
    }

    #[test]
    fn empty_minibatch_is_consistent() {
        let mb = MinibatchSample { batch: vec![3], layers: vec![] };
        assert_eq!(mb.input_vertices(), &[] as &[usize]);
        assert!(mb.frontiers_are_chained());
    }

    #[test]
    fn fetch_plan_deduplicates_and_counts() {
        let a = layer(vec![0, 4], vec![2, 3], &[(0, 0), (1, 1)]);
        let b = layer(vec![1, 5], vec![3, 7], &[(0, 0), (1, 1)]);
        let mb_a = MinibatchSample { batch: vec![0, 4], layers: vec![a] };
        let mb_b = MinibatchSample { batch: vec![1, 5], layers: vec![b] };
        let plan = FetchPlan::from_minibatches(&[mb_a.clone(), mb_b.clone()]);
        assert_eq!(plan.unique_vertices(), &[2, 3, 7]);
        assert_eq!(plan.total_requests(), 4);
        assert_eq!(plan.duplicate_requests(), 1);
        assert_eq!(plan.num_minibatches(), 2);
        assert!(!plan.is_empty());
        // One duplicate row of width f saves f feature words + 1 request id.
        assert_eq!(plan.words_avoided_upper_bound(16), 17);

        // Merging two single-minibatch plans equals planning both at once.
        let mut merged = FetchPlan::from_minibatches(&[mb_a]);
        merged.merge(&FetchPlan::from_minibatches(&[mb_b]));
        assert_eq!(merged, plan);

        assert!(FetchPlan::from_minibatches(&[]).is_empty());
    }

    #[test]
    fn fetch_plan_groups_by_owner_block() {
        let l = layer(vec![0], vec![1, 5, 9], &[(0, 0)]);
        let mb = MinibatchSample { batch: vec![0], layers: vec![l] };
        let plan = FetchPlan::from_minibatches(&[mb]);
        let partition = OneDPartition::new(12, 3).unwrap();
        let per_block = plan.by_owner_block(&partition).unwrap();
        assert_eq!(per_block, vec![vec![1], vec![5], vec![9]]);
        // An undersized partition surfaces a typed error, not a panic.
        let small = OneDPartition::new(6, 3).unwrap();
        assert!(matches!(plan.by_owner_block(&small), Err(crate::SamplingError::InvalidConfig(_))));
    }

    #[test]
    fn bulk_output_merge() {
        let l = layer(vec![0], vec![1], &[(0, 0)]);
        let mb = MinibatchSample { batch: vec![0], layers: vec![l] };
        let mut a = BulkSampleOutput { minibatches: vec![mb.clone()], ..Default::default() };
        let b = BulkSampleOutput { minibatches: vec![mb.clone(), mb], ..Default::default() };
        a.merge(b);
        assert_eq!(a.num_batches(), 3);
        assert_eq!(a.total_edges(), 3);
    }
}

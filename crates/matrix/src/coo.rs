//! Coordinate-format (COO) sparse matrices.
//!
//! COO is the natural construction format: edges, sampler nonzeros and
//! extraction matrices are all accumulated as `(row, col, value)` triples and
//! then converted to [`CsrMatrix`](crate::CsrMatrix) for the SpGEMM kernels.

use crate::error::MatrixError;
use crate::Result;
use serde::{Deserialize, Serialize};

/// A sparse matrix stored as unsorted `(row, col, value)` triples.
///
/// Duplicate entries are allowed; [`CsrMatrix::from_coo`](crate::CsrMatrix::from_coo)
/// sums them during conversion (matching the semantics of building an
/// adjacency matrix from an edge list with repeated edges).
///
/// # Example
///
/// ```
/// use dmbs_matrix::CooMatrix;
///
/// # fn main() -> Result<(), dmbs_matrix::MatrixError> {
/// let mut coo = CooMatrix::new(3, 3);
/// coo.push(0, 1, 1.0)?;
/// coo.push(2, 0, 2.0)?;
/// assert_eq!(coo.nnz(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl CooMatrix {
    /// Creates an empty `rows x cols` COO matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        CooMatrix { rows, cols, entries: Vec::new() }
    }

    /// Creates an empty COO matrix with pre-allocated capacity for `cap`
    /// entries.
    pub fn with_capacity(rows: usize, cols: usize, cap: usize) -> Self {
        CooMatrix { rows, cols, entries: Vec::with_capacity(cap) }
    }

    /// Builds a COO matrix directly from a list of triples.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::IndexOutOfBounds`] if any triple lies outside
    /// the matrix.
    pub fn from_triples(
        rows: usize,
        cols: usize,
        triples: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> Result<Self> {
        let mut m = CooMatrix::new(rows, cols);
        for (r, c, v) in triples {
            m.push(r, c, v)?;
        }
        Ok(m)
    }

    /// Appends an entry.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::IndexOutOfBounds`] if `(row, col)` lies outside
    /// the matrix.
    pub fn push(&mut self, row: usize, col: usize, value: f64) -> Result<()> {
        if row >= self.rows || col >= self.cols {
            return Err(MatrixError::IndexOutOfBounds {
                row,
                col,
                rows: self.rows,
                cols: self.cols,
            });
        }
        self.entries.push((row, col, value));
        Ok(())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored entries (including duplicates).
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterator over stored `(row, col, value)` triples.
    pub fn iter(&self) -> impl Iterator<Item = &(usize, usize, f64)> {
        self.entries.iter()
    }

    /// Borrow of the underlying triples.
    pub fn entries(&self) -> &[(usize, usize, f64)] {
        &self.entries
    }

    /// Consumes the matrix and returns its triples.
    pub fn into_entries(self) -> Vec<(usize, usize, f64)> {
        self.entries
    }

    /// Returns the transpose (rows and columns swapped) as a new COO matrix.
    pub fn transpose(&self) -> CooMatrix {
        CooMatrix {
            rows: self.cols,
            cols: self.rows,
            entries: self.entries.iter().map(|&(r, c, v)| (c, r, v)).collect(),
        }
    }
}

impl Extend<(usize, usize, f64)> for CooMatrix {
    /// Extends the matrix with triples, skipping out-of-bounds entries is
    /// **not** silent: out-of-bounds entries panic, because `Extend` cannot
    /// report errors.  Use [`CooMatrix::push`] for fallible insertion.
    fn extend<T: IntoIterator<Item = (usize, usize, f64)>>(&mut self, iter: T) {
        for (r, c, v) in iter {
            self.push(r, c, v).expect("out-of-bounds entry in CooMatrix::extend");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_empty() {
        let m = CooMatrix::new(4, 5);
        assert_eq!(m.shape(), (4, 5));
        assert_eq!(m.nnz(), 0);
        assert!(m.is_empty());
    }

    #[test]
    fn push_and_iter() {
        let mut m = CooMatrix::new(2, 2);
        m.push(0, 0, 1.0).unwrap();
        m.push(1, 1, 2.0).unwrap();
        let collected: Vec<_> = m.iter().cloned().collect();
        assert_eq!(collected, vec![(0, 0, 1.0), (1, 1, 2.0)]);
    }

    #[test]
    fn push_out_of_bounds() {
        let mut m = CooMatrix::new(2, 2);
        assert!(matches!(m.push(2, 0, 1.0), Err(MatrixError::IndexOutOfBounds { .. })));
        assert!(matches!(m.push(0, 2, 1.0), Err(MatrixError::IndexOutOfBounds { .. })));
    }

    #[test]
    fn from_triples_roundtrip() {
        let m = CooMatrix::from_triples(3, 3, vec![(0, 1, 1.0), (2, 2, 3.0)]).unwrap();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.entries()[1], (2, 2, 3.0));
    }

    #[test]
    fn from_triples_rejects_out_of_bounds() {
        assert!(CooMatrix::from_triples(2, 2, vec![(3, 0, 1.0)]).is_err());
    }

    #[test]
    fn transpose_swaps_indices() {
        let m = CooMatrix::from_triples(2, 3, vec![(0, 2, 5.0), (1, 0, 7.0)]).unwrap();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.entries(), &[(2, 0, 5.0), (0, 1, 7.0)]);
    }

    #[test]
    fn extend_collects() {
        let mut m = CooMatrix::new(2, 2);
        m.extend(vec![(0, 0, 1.0), (1, 0, 2.0)]);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    #[should_panic(expected = "out-of-bounds")]
    fn extend_panics_out_of_bounds() {
        let mut m = CooMatrix::new(1, 1);
        m.extend(vec![(1, 1, 1.0)]);
    }
}

//! The α–β communication cost model and per-rank communication statistics.
//!
//! The paper analyses its algorithms in the α–β model (§2.4): sending a
//! message of `k` words costs `α + β·k` time units.  Because this
//! reproduction runs ranks as threads on one machine, *measured* network time
//! does not exist; instead every message records its size and the modeled
//! cost, which the harnesses use for the communication component of the
//! Figure 7 breakdowns and for checking the analytical bound of §5.2.1:
//!
//! ```text
//! T_prob = α (p/c² + log c) + β (k·b·d / c + c·k·b·d / p)
//! ```

use serde::{Deserialize, Serialize};

/// α–β cost model: `cost(words) = alpha + beta * words` seconds.
///
/// The defaults approximate the paper's Perlmutter testbed: a few
/// microseconds of latency and 25 GB/s of per-NIC injection bandwidth
/// (3.125 G words/s for 8-byte words).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Per-message latency in seconds.
    pub alpha: f64,
    /// Per-word (8 bytes) transfer time in seconds.
    pub beta: f64,
}

impl CostModel {
    /// Creates a cost model with explicit latency (seconds) and inverse
    /// bandwidth (seconds per 8-byte word).
    pub fn new(alpha: f64, beta: f64) -> Self {
        CostModel { alpha, beta }
    }

    /// A model of the paper's Slingshot-11 network: ~2 µs latency,
    /// 25 GB/s injection bandwidth.
    pub fn slingshot() -> Self {
        CostModel { alpha: 2.0e-6, beta: 8.0 / 25.0e9 }
    }

    /// A model of NVLink 3.0 (intra-node GPU pairs): ~1 µs latency,
    /// 100 GB/s unidirectional bandwidth.
    pub fn nvlink() -> Self {
        CostModel { alpha: 1.0e-6, beta: 8.0 / 100.0e9 }
    }

    /// A model of a PCIe 4.0 x16 link (~25 GB/s but with host-involved
    /// latency), used for the Quiver-UVA comparison of Figure 5.
    pub fn pcie() -> Self {
        CostModel { alpha: 10.0e-6, beta: 8.0 / 25.0e9 }
    }

    /// Modeled time in seconds to send one message of `words` 8-byte words.
    pub fn message_cost(&self, words: usize) -> f64 {
        self.alpha + self.beta * words as f64
    }

    /// Modeled time in seconds to send one message of `bytes` wire bytes:
    /// the β charge is `beta · bytes / 8` since β is per 8-byte word.  For a
    /// payload of exactly `8 × words` bytes this is bit-identical to
    /// [`CostModel::message_cost`] (division by the power of two is exact),
    /// which is what keeps `Codec::Exact` runs byte-identical to the
    /// pre-compression pipeline; compressed payloads are charged the bytes
    /// they actually move.
    pub fn message_cost_bytes(&self, bytes: usize) -> f64 {
        self.alpha + self.beta * (bytes as f64 / 8.0)
    }

    /// Modeled wall time of `comm_s` seconds of communication fully
    /// overlapped with `compute_s` seconds of computation: a pipelined
    /// schedule pays `max(comm, compute)` where the serial schedule pays
    /// `comm + compute`.
    pub fn overlapped_cost(&self, comm_s: f64, compute_s: f64) -> f64 {
        comm_s.max(compute_s)
    }

    /// The communication seconds *hidden* when `comm_s` of modeled traffic
    /// overlaps `compute_s` of computation: `min(comm, compute)`.  By
    /// construction `comm + compute - overlap_credit == overlapped_cost`, so
    /// the books balance exactly — the credit is recorded in
    /// [`CommStats::overlapped_time`] / [`PhaseProfile::add_overlap`] while
    /// `modeled_time` keeps the full (schedule-independent) α–β bill.
    ///
    /// [`PhaseProfile::add_overlap`]: crate::PhaseProfile::add_overlap
    pub fn overlap_credit(&self, comm_s: f64, compute_s: f64) -> f64 {
        comm_s.min(compute_s)
    }

    /// Modeled per-request share of one coalesced message serving `requests`
    /// requests: the α latency is paid once for the whole micro-bulk and
    /// amortizes over its members, while each request's share of the β term
    /// is its share of the words.  `per_request_cost(words, 1)` equals
    /// [`CostModel::message_cost`]; `requests = 0` is treated as one request
    /// so the bill never divides by zero.
    pub fn per_request_cost(&self, words: usize, requests: usize) -> f64 {
        self.message_cost(words) / requests.max(1) as f64
    }

    /// Modeled time of the probability-generation SpGEMM of the 1.5D
    /// algorithm, `T_prob` from §5.2.1 of the paper.
    ///
    /// * `p` — number of processes,
    /// * `c` — replication factor,
    /// * `k` — minibatches sampled in bulk,
    /// * `b` — batch size,
    /// * `d` — average degree of the graph.
    pub fn predict_prob_cost(&self, p: usize, c: usize, k: usize, b: usize, d: f64) -> f64 {
        let p_f = p as f64;
        let c_f = c as f64;
        let kbd = k as f64 * b as f64 * d;
        let latency_terms = p_f / (c_f * c_f) + c_f.ln().max(0.0) / 2f64.ln().max(1e-12);
        let bandwidth_terms = kbd / c_f + c_f * kbd / p_f;
        self.alpha * latency_terms + self.beta * bandwidth_terms
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::slingshot()
    }
}

/// Per-rank communication statistics accumulated by a
/// [`Communicator`](crate::Communicator).
///
/// Besides the words that actually crossed the (simulated) wire, the struct
/// carries the *work-avoidance* counters of the communication-avoiding
/// feature pipeline (§6.2): per-rank feature-cache hits and misses, and the
/// α–β words those hits kept off the wire.  The communicator itself never
/// touches the cache fields — they are folded in by the cache layer via
/// [`CommStats::record_cache_hit`] / [`CommStats::record_cache_miss`] and
/// travel through the same [`CommStats::merge`] aggregation as the wire
/// counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CommStats {
    /// Number of point-to-point messages sent (collectives decompose into
    /// point-to-point messages).
    pub messages: usize,
    /// Total words (8-byte units) sent.
    pub words_sent: usize,
    /// Modeled communication time in seconds under the α–β model.
    pub modeled_time: f64,
    /// Feature-cache hits: rows served locally instead of being re-fetched.
    pub cache_hits: usize,
    /// Feature-cache misses: rows that had to be fetched (or read) fresh.
    pub cache_misses: usize,
    /// Words that would have crossed the wire without the cache (request ids
    /// plus feature rows of remote-owned hits) — the β term of the saving.
    pub words_saved: usize,
    /// Modeled communication seconds that a pipelined schedule hid behind
    /// computation (nonblocking collectives posted before a compute region
    /// and waited after it).  Always `<= modeled_time`, which keeps the full
    /// schedule-independent α–β bill; the *effective* communication cost of
    /// the schedule is [`CommStats::exposed_time`].
    pub overlapped_time: f64,
    /// Requests whose traffic was billed through coalesced messages via
    /// [`CommStats::record_amortized`] — the denominator of
    /// [`CommStats::modeled_time_per_request`].  Zero outside the serving
    /// tier.
    pub amortized_requests: usize,
    /// Exact bytes that crossed the wire.  Plain word-counted messages book
    /// `8 × words`; compressed payloads book their encoded size via
    /// [`CommStats::record_wire`].  Under the bit-exact codec this is always
    /// `8 × words_sent`.
    pub bytes_on_wire: usize,
    /// Bytes a wire codec kept off the wire: `8 × words − wire bytes`,
    /// summed per compressed message, so the balance identity
    /// `bytes_on_wire + bytes_saved == 8 × words_sent` holds by construction
    /// (per message, hence per epoch).  Distinct from [`words_saved`], the
    /// *cache* work-avoidance book: saved words never entered a message at
    /// all, saved bytes crossed as a smaller encoding.
    ///
    /// [`words_saved`]: CommStats::words_saved
    pub bytes_saved: usize,
    /// Cached feature rows evicted by a graph-ingest invalidation (their
    /// layer-0 vertex landed in a dirty set).
    pub rows_invalidated: usize,
    /// Cached feature rows that *survived* a precise invalidation (resident
    /// at ingest time, not dirty).  A flush-all policy books these as
    /// invalidated instead, which is what makes the invalidation books
    /// double-entry: `rows_invalidated(flush) ==
    /// rows_invalidated(precise) + rows_retained(precise)` for the same
    /// ingest schedule.
    pub rows_retained: usize,
    /// α–β words the invalidated rows will cost to refetch (request id plus
    /// feature row per remote-owned row, zero for locally-owned rows) — the
    /// refetch bill an ingest actually incurs.
    pub invalidation_words: usize,
    /// α–β words the retained rows would have cost to refetch — the bill
    /// precise invalidation avoided relative to a flush-all policy.  Balances
    /// exactly: `invalidation_words(flush) == invalidation_words(precise) +
    /// retained_words(precise)`.
    pub retained_words: usize,
}

impl CommStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        CommStats::default()
    }

    /// Records one message of `words` words under `model`, shipped
    /// uncompressed (`8 × words` bytes on the wire).
    pub fn record(&mut self, words: usize, model: &CostModel) {
        self.record_wire(words, words * 8, model);
    }

    /// Records one message of `words` *logical* words that crossed the wire
    /// as `bytes` encoded bytes (a compressed payload — or `8 × words` for
    /// an uncompressed one, in which case this is exactly
    /// [`CommStats::record`]).  The β term of the modeled time is charged on
    /// the real bytes; the word book keeps the codec-independent logical
    /// volume, and the difference lands in [`CommStats::bytes_saved`] so the
    /// books balance per message.
    pub fn record_wire(&mut self, words: usize, bytes: usize, model: &CostModel) {
        self.messages += 1;
        self.words_sent += words;
        self.bytes_on_wire += bytes;
        self.bytes_saved += (words * 8).saturating_sub(bytes);
        self.modeled_time += model.message_cost_bytes(bytes);
    }

    /// Records one cache hit that kept `words_saved` words off the wire
    /// (zero for hits on locally-owned rows, which never travel anyway).
    pub fn record_cache_hit(&mut self, words_saved: usize) {
        self.cache_hits += 1;
        self.words_saved += words_saved;
    }

    /// Records one cache miss (the row was fetched or read fresh).
    pub fn record_cache_miss(&mut self) {
        self.cache_misses += 1;
    }

    /// Records one *coalesced* message of `words` words that serves
    /// `requests` requests at once (the serving tier's micro-bulk fetch):
    /// the wire counters take one message and the full α–β bill exactly as
    /// [`CommStats::record`] would, and `requests` is added to
    /// [`CommStats::amortized_requests`] so the per-request amortized cost
    /// can be read back with [`CommStats::modeled_time_per_request`].
    pub fn record_amortized(&mut self, words: usize, model: &CostModel, requests: usize) {
        self.record(words, model);
        self.amortized_requests += requests.max(1);
    }

    /// Average modeled α–β seconds billed per amortized request, or `None`
    /// when no request traffic was recorded.  With perfect coalescing the
    /// α term divides by the micro-bulk size, which is exactly what this
    /// reports (see [`CostModel::per_request_cost`]).
    pub fn modeled_time_per_request(&self) -> Option<f64> {
        (self.amortized_requests > 0).then(|| self.modeled_time / self.amortized_requests as f64)
    }

    /// Records one cached row evicted by a graph-ingest invalidation, whose
    /// refetch will cost `words` α–β words (zero for locally-owned rows).
    pub fn record_invalidation(&mut self, words: usize) {
        self.rows_invalidated += 1;
        self.invalidation_words += words;
    }

    /// Records one cached row a precise invalidation kept, whose refetch
    /// would have cost `words` α–β words had it been flushed.
    pub fn record_retention(&mut self, words: usize) {
        self.rows_retained += 1;
        self.retained_words += words;
    }

    /// Records `seconds` of modeled communication as overlapped with compute
    /// (hidden by a pipelined schedule).  Callers must never credit more than
    /// the modeled time actually spent — see
    /// [`CostModel::overlap_credit`].
    pub fn record_overlap(&mut self, seconds: f64) {
        self.overlapped_time += seconds;
    }

    /// The communication seconds a pipelined schedule actually pays:
    /// `modeled_time - overlapped_time` (clamped at zero against float
    /// round-off).  Equal to `modeled_time` for any non-overlapped schedule.
    pub fn exposed_time(&self) -> f64 {
        (self.modeled_time - self.overlapped_time).max(0.0)
    }

    /// Fraction of cache lookups that hit, or `None` when nothing was looked
    /// up (so callers can distinguish "no cache" from "cold cache").
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let lookups = self.cache_hits + self.cache_misses;
        (lookups > 0).then(|| self.cache_hits as f64 / lookups as f64)
    }

    /// Combines statistics from another rank or phase (summing).
    pub fn merge(&mut self, other: &CommStats) {
        self.messages += other.messages;
        self.words_sent += other.words_sent;
        self.modeled_time += other.modeled_time;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.words_saved += other.words_saved;
        self.overlapped_time += other.overlapped_time;
        self.amortized_requests += other.amortized_requests;
        self.bytes_on_wire += other.bytes_on_wire;
        self.bytes_saved += other.bytes_saved;
        self.rows_invalidated += other.rows_invalidated;
        self.rows_retained += other.rows_retained;
        self.invalidation_words += other.invalidation_words;
        self.retained_words += other.retained_words;
    }

    /// Bytes sent — read from the bytes-on-wire book, so the answer stays
    /// truthful for payloads that do not ship as 8 bytes per word
    /// (compressed feature rows).  Equal to `8 × words_sent` whenever every
    /// message traveled uncompressed.
    pub fn bytes_sent(&self) -> usize {
        self.bytes_on_wire
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_cost_is_affine() {
        let m = CostModel::new(1.0, 0.5);
        assert_eq!(m.message_cost(0), 1.0);
        assert_eq!(m.message_cost(4), 3.0);
    }

    #[test]
    fn presets_are_ordered_sensibly() {
        // NVLink is faster than Slingshot which is faster than PCIe for a
        // large message.
        let words = 1_000_000;
        assert!(
            CostModel::nvlink().message_cost(words) < CostModel::slingshot().message_cost(words)
        );
        assert!(
            CostModel::slingshot().message_cost(words) <= CostModel::pcie().message_cost(words)
        );
    }

    #[test]
    fn default_is_slingshot() {
        assert_eq!(CostModel::default(), CostModel::slingshot());
    }

    #[test]
    fn predict_prob_cost_decreases_with_replication() {
        // For fixed p, increasing c reduces the dominant kbd/c bandwidth term
        // (the paper's observation that communication scales with c).
        let m = CostModel::slingshot();
        let t_c1 = m.predict_prob_cost(64, 1, 512, 1024, 50.0);
        let t_c4 = m.predict_prob_cost(64, 4, 512, 1024, 50.0);
        let t_c8 = m.predict_prob_cost(64, 8, 512, 1024, 50.0);
        assert!(t_c4 < t_c1);
        assert!(t_c8 < t_c4);
    }

    #[test]
    fn predict_prob_cost_harmonic_behaviour() {
        // With c fixed, increasing p only shrinks the (smaller) all-reduce
        // term, so the total should not increase.
        let m = CostModel::slingshot();
        let t_p16 = m.predict_prob_cost(16, 2, 128, 1024, 50.0);
        let t_p64 = m.predict_prob_cost(64, 2, 128, 1024, 50.0);
        assert!(t_p64 <= t_p16);
    }

    #[test]
    fn stats_record_and_merge() {
        let model = CostModel::new(1.0, 1.0);
        let mut a = CommStats::new();
        a.record(10, &model);
        a.record(5, &model);
        assert_eq!(a.messages, 2);
        assert_eq!(a.words_sent, 15);
        assert_eq!(a.bytes_sent(), 120);
        assert!((a.modeled_time - 17.0).abs() < 1e-12);

        let mut b = CommStats::new();
        b.record(1, &model);
        b.merge(&a);
        assert_eq!(b.messages, 3);
        assert_eq!(b.words_sent, 16);
    }

    #[test]
    fn bytes_sent_reads_the_wire_book_not_eight_times_words() {
        // A compressed message: 16 logical words crossing as 40 bytes.
        let model = CostModel::new(0.0, 8.0);
        let mut s = CommStats::new();
        s.record_wire(16, 40, &model);
        assert_eq!(s.words_sent, 16);
        assert_eq!(s.bytes_on_wire, 40);
        assert_eq!(s.bytes_sent(), 40); // NOT 16 * 8
        assert_eq!(s.bytes_saved, 16 * 8 - 40);
        // β is charged on the real bytes: 8.0 s/word × 40/8 words.
        assert!((s.modeled_time - 40.0).abs() < 1e-12);
        // Balance identity, per message and after merging.
        assert_eq!(s.bytes_on_wire + s.bytes_saved, s.words_sent * 8);
        let mut t = CommStats::new();
        t.record(3, &model); // uncompressed: books 24 bytes, saves nothing
        t.merge(&s);
        assert_eq!(t.bytes_on_wire, 24 + 40);
        assert_eq!(t.bytes_saved, 88);
        assert_eq!(t.bytes_sent(), 64);
        assert_eq!(t.bytes_on_wire + t.bytes_saved, t.words_sent * 8);
    }

    #[test]
    fn byte_charging_is_bit_identical_to_word_charging_when_uncompressed() {
        // The β move from words to bytes must not perturb a single bit of
        // the modeled time for uncompressed traffic.
        let model = CostModel::slingshot();
        for words in [0usize, 1, 7, 120, 1 << 20] {
            assert_eq!(
                model.message_cost(words).to_bits(),
                model.message_cost_bytes(words * 8).to_bits()
            );
        }
    }

    #[test]
    fn overlap_accounting_balances_exactly() {
        let m = CostModel::new(1.0, 0.0);
        // comm-bound region: 5s comm over 3s compute → 3s hidden, 2s exposed.
        assert_eq!(m.overlapped_cost(5.0, 3.0), 5.0);
        assert_eq!(m.overlap_credit(5.0, 3.0), 3.0);
        // compute-bound region: the whole bill hides.
        assert_eq!(m.overlapped_cost(1.0, 4.0), 4.0);
        assert_eq!(m.overlap_credit(1.0, 4.0), 1.0);
        // comm + compute - credit == overlapped cost, both regimes.
        for (comm, compute) in [(5.0, 3.0), (1.0, 4.0), (0.0, 2.0), (2.0, 0.0)] {
            assert_eq!(
                comm + compute - m.overlap_credit(comm, compute),
                m.overlapped_cost(comm, compute)
            );
        }

        let mut s = CommStats::new();
        s.record(10, &m); // modeled_time = 1.0
        s.record_overlap(0.25);
        assert!((s.exposed_time() - 0.75).abs() < 1e-12);
        let mut t = CommStats::new();
        t.record_overlap(0.5);
        t.merge(&s);
        assert!((t.overlapped_time - 0.75).abs() < 1e-12);
    }

    #[test]
    fn amortized_accounting_divides_alpha_across_the_micro_bulk() {
        let m = CostModel::new(1.0, 0.5);
        // One coalesced message of 8 words serving 4 requests: one α, full β.
        let mut s = CommStats::new();
        s.record_amortized(8, &m, 4);
        assert_eq!(s.messages, 1);
        assert_eq!(s.words_sent, 8);
        assert_eq!(s.amortized_requests, 4);
        let per_req = s.modeled_time_per_request().unwrap();
        assert!((per_req - 5.0 / 4.0).abs() < 1e-12);
        assert_eq!(per_req, m.per_request_cost(8, 4));
        // Four singleton messages of 2 words each: four αs for the same β
        // volume — strictly more expensive per request.
        let mut singles = CommStats::new();
        for _ in 0..4 {
            singles.record_amortized(2, &m, 1);
        }
        assert_eq!(singles.amortized_requests, 4);
        assert!(singles.modeled_time_per_request().unwrap() > per_req);
        // Degenerate inputs never divide by zero.
        assert_eq!(m.per_request_cost(8, 1), m.message_cost(8));
        assert_eq!(m.per_request_cost(8, 0), m.message_cost(8));
        assert_eq!(CommStats::new().modeled_time_per_request(), None);
        // The request denominator merges like every other counter.
        let mut t = CommStats::new();
        t.record_amortized(2, &m, 3);
        t.merge(&s);
        assert_eq!(t.amortized_requests, 7);
    }

    #[test]
    fn cache_counters_record_and_merge() {
        let mut a = CommStats::new();
        assert_eq!(a.cache_hit_rate(), None);
        a.record_cache_hit(17); // remote-owned row: 16 feature words + 1 id
        a.record_cache_hit(0); // locally-owned row: nothing saved
        a.record_cache_miss();
        assert_eq!(a.cache_hits, 2);
        assert_eq!(a.cache_misses, 1);
        assert_eq!(a.words_saved, 17);
        assert!((a.cache_hit_rate().unwrap() - 2.0 / 3.0).abs() < 1e-12);

        let mut b = CommStats::new();
        b.record_cache_miss();
        b.merge(&a);
        assert_eq!(b.cache_hits, 2);
        assert_eq!(b.cache_misses, 2);
        assert_eq!(b.words_saved, 17);
        // The wire counters are untouched by cache bookkeeping.
        assert_eq!(b.messages, 0);
        assert_eq!(b.words_sent, 0);
    }
}

//! Distributed end-to-end training (Figure 3 pipeline) on simulated ranks:
//! graph-replicated bulk sampling through `ReplicatedBackend`, a
//! 1.5D-partitioned feature store fetched with all-to-allv across process
//! columns, and data-parallel propagation — all driven by `TrainingSession`.
//!
//! Run with `cargo run --release --example distributed_training`.

use dmbs::gnn::TrainingSession;
use dmbs::graph::datasets::{build_dataset, DatasetConfig};
use dmbs::sampling::{BulkSamplerConfig, DistConfig, GraphSageSampler, ReplicatedBackend};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = DatasetConfig::papers_like(10); // 1024 vertices, sparse like Papers
    config.feature_dim = 32;
    config.num_classes = 8;
    config.train_fraction = 0.25;
    let dataset = Arc::new(build_dataset(&config, &mut StdRng::seed_from_u64(11))?);

    // Sweep simulated "GPU" counts like Figure 4, comparing the replicated
    // feature store against the NoRep configuration of Figure 6.
    for p in [4usize, 8] {
        let c = 2;
        let bulk = BulkSamplerConfig::new(32, 8);
        let base = TrainingSession::builder()
            .dataset(Arc::clone(&dataset))
            .sampler(GraphSageSampler::new(vec![10, 5]).with_self_loops())
            .hidden_dim(32)
            .learning_rate(0.05)
            .epochs(2)
            .seed(5)
            .without_evaluation();

        let replicated = base
            .clone()
            .backend(ReplicatedBackend::new(DistConfig::new(p, c, bulk))?)
            .build()?
            .train()?;
        let norep = base
            .backend(ReplicatedBackend::new(DistConfig::new(p, 1, bulk))?)
            .without_feature_replication()
            .build()?
            .train()?;

        let r = replicated.epochs.last().expect("at least one epoch");
        let n = norep.epochs.last().expect("at least one epoch");
        println!(
            "p={p:>2} c={c}: replicated epoch {:.4}s (sampling {:.4}s, fetch {:.4}s, prop {:.4}s, {} words moved) | NoRep epoch {:.4}s ({} words moved)",
            r.total_time(),
            r.sampling_time(),
            r.feature_fetch_time(),
            r.propagation_time(),
            r.comm.words_sent,
            n.total_time(),
            n.comm.words_sent,
        );
    }
    Ok(())
}

//! Perf-trajectory harness for the shared-memory hot paths.
//!
//! Runs the three parallelized kernels — SpGEMM (`P ← Q · A`), per-row ITS
//! (`SAMPLE`), and a full bulk sampling epoch through `LocalBackend` — at
//! 1..N threads on a synthetic RMAT workload, verifies that every parallel
//! result is byte-identical to the serial one, and writes one JSON record
//! file per kernel (`BENCH_spgemm.json`, `BENCH_its.json`,
//! `BENCH_epoch.json`) with wall time, throughput and speedup-vs-serial so
//! future PRs have a recorded trajectory to beat.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --bin perf_baseline [output_dir]
//! ```
//!
//! `output_dir` defaults to the current directory.  `DMBS_SCALE=large`
//! roughly quadruples the workload; `DMBS_PERF_THREADS` (comma-separated,
//! default `1,2,4,8`) overrides the thread sweep.

use dmbs_graph::generators::{rmat, RmatConfig};
use dmbs_matrix::pool::Parallelism;
use dmbs_matrix::spgemm::{spgemm, spgemm_parallel};
use dmbs_sampling::its::{sample_rows_par, sample_rows_seeded};
use dmbs_sampling::{BulkSamplerConfig, GraphSageSampler, LocalBackend, SamplingBackend};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// One measured configuration of one kernel.
struct Record {
    threads: usize,
    wall_s: f64,
    throughput: f64,
    speedup: f64,
    identical: bool,
}

/// Workload description embedded in each JSON file.
struct Workload {
    name: &'static str,
    detail: String,
    /// Work items per run — nonzeros touched for the matrix kernels,
    /// minibatches for the epoch — used for the throughput field.
    items: usize,
    throughput_unit: &'static str,
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6e}")
    } else {
        "null".to_string()
    }
}

fn write_json(path: &std::path::Path, workload: &Workload, records: &[Record]) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"bench\": \"{}\",\n", workload.name));
    out.push_str(&format!("  \"workload\": \"{}\",\n", workload.detail));
    out.push_str(&format!("  \"items_per_run\": {},\n", workload.items));
    out.push_str(&format!("  \"throughput_unit\": \"{}\",\n", workload.throughput_unit));
    out.push_str(&format!(
        "  \"host_threads\": {},\n",
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
    ));
    out.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"threads\": {}, \"wall_s\": {}, \"throughput\": {}, \
             \"speedup_vs_serial\": {}, \"identical_to_serial\": {}}}{}\n",
            r.threads,
            json_f64(r.wall_s),
            json_f64(r.throughput),
            json_f64(r.speedup),
            r.identical,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!("wrote {}", path.display());
}

/// Best-of-`reps` wall time of `f`.
fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..reps {
        let start = Instant::now();
        let value = f();
        best = best.min(start.elapsed().as_secs_f64());
        result = Some(value);
    }
    (best, result.expect("reps >= 1"))
}

/// Turns raw `(threads, wall, identical)` measurements into records.  The
/// speedup baseline is the 1-thread wall, which [`thread_sweep`] guarantees
/// is always measured; it runs the serial code path inside the same
/// measurement loop as the other thread counts (measuring the baseline in a
/// separate earlier phase proved systematically biased).
fn finish_records(walls: &[(usize, f64, bool)], throughput: impl Fn(f64) -> f64) -> Vec<Record> {
    let baseline = walls
        .iter()
        .find(|&&(t, _, _)| t == 1)
        .map(|&(_, wall, _)| wall)
        .expect("thread_sweep always includes 1");
    walls
        .iter()
        .map(|&(t, wall, identical)| Record {
            threads: t,
            wall_s: wall,
            throughput: throughput(wall),
            speedup: baseline / wall,
            identical,
        })
        .collect()
}

/// The thread counts to measure.  Always contains `1` (the serial speedup
/// baseline); an unparsable or empty `DMBS_PERF_THREADS` falls back to the
/// default sweep rather than silently producing empty BENCH records.
fn thread_sweep() -> Vec<usize> {
    const DEFAULT: [usize; 4] = [1, 2, 4, 8];
    let mut sweep: Vec<usize> = match std::env::var("DMBS_PERF_THREADS") {
        Ok(spec) => spec
            .split(',')
            .filter_map(|t| t.trim().parse::<usize>().ok())
            .filter(|&t| t > 0)
            .collect(),
        Err(_) => DEFAULT.to_vec(),
    };
    if sweep.is_empty() {
        eprintln!("DMBS_PERF_THREADS parsed to an empty sweep; using the default {DEFAULT:?}");
        sweep = DEFAULT.to_vec();
    }
    if !sweep.contains(&1) {
        sweep.insert(0, 1);
    }
    sweep
}

/// Fails the run when any parallel result diverged from the serial kernel —
/// the determinism contract the committed BENCH files advertise.  Called
/// after the JSON is written so the diverging record is preserved on disk.
fn assert_identical(bench: &str, records: &[Record]) {
    for r in records {
        assert!(
            r.identical,
            "{bench}: parallel output at {} threads diverged from the serial kernel",
            r.threads
        );
    }
}

fn print_records(title: &str, unit: &str, records: &[Record]) {
    println!("\n== {title} ==");
    println!("{:>7}  {:>12}  {:>14}  {:>8}  identical", "threads", "wall_s", unit, "speedup");
    for r in records {
        println!(
            "{:>7}  {:>12.6}  {:>14.3e}  {:>7.2}x  {}",
            r.threads, r.wall_s, r.throughput, r.speedup, r.identical
        );
    }
}

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let large = matches!(std::env::var("DMBS_SCALE").as_deref(), Ok("large") | Ok("LARGE"));
    let (scale, degree, q_rows, reps) =
        if large { (15, 20, 131_072, 5) } else { (13, 16, 32_768, 3) };
    let threads = thread_sweep();

    // ---- Shared synthetic workload: an RMAT graph and a stacked Q of
    // frontier rows, the shape of the paper's P ← Q^l · A probability step.
    let graph = rmat(&RmatConfig::new(scale, degree), &mut StdRng::seed_from_u64(99))
        .expect("valid RMAT config");
    let a = graph.adjacency().clone();
    let n = a.rows();
    let stacked: Vec<usize> = (0..q_rows).map(|i| (i * 2_654_435_761) % n).collect();
    let q = dmbs_matrix::ops::row_selection_matrix(&stacked, n).expect("valid selection");

    // ---- SpGEMM: P = Q · A at each thread count.  The serial reference is
    // computed once (untimed) for the byte-identity check; the speedup
    // baseline is the *timed* 1-thread record, which runs the identical
    // serial code path inside the same measurement loop (measuring the
    // baseline in a separate earlier phase proved systematically biased).
    let serial_p = spgemm(&q, &a).expect("spgemm");
    let flops: usize = stacked.iter().map(|&v| a.row_nnz(v)).sum();
    let mut walls = Vec::new();
    for &t in &threads {
        let par = Parallelism::new(t);
        let (wall, p) = time_best(reps, || spgemm_parallel(&q, &a, par).expect("spgemm_parallel"));
        walls.push((t, wall, p == serial_p));
    }
    let records = finish_records(&walls, |wall| flops as f64 / wall);
    let workload = Workload {
        name: "spgemm",
        detail: format!(
            "P = Q*A, rmat scale {scale} deg {degree} (n = {n}, nnz(A) = {}), Q = {q_rows} \
             stacked frontier rows",
            a.nnz()
        ),
        items: flops,
        throughput_unit: "multiply-adds/s",
    };
    print_records("SpGEMM P = Q*A", "flops/s", &records);
    write_json(&out_dir.join("BENCH_spgemm.json"), &workload, &records);
    assert_identical("spgemm", &records);

    // ---- Per-row ITS over the normalized probability rows.
    let mut p_norm = serial_p.clone();
    p_norm.normalize_rows();
    let fanout = 10;
    let its_serial = sample_rows_seeded(&p_norm, fanout, 4242).expect("its");
    let mut walls = Vec::new();
    for &t in &threads {
        let par = Parallelism::new(t);
        let (wall, sampled) =
            time_best(reps, || sample_rows_par(&p_norm, fanout, 4242, par).expect("its par"));
        walls.push((t, wall, sampled == its_serial));
    }
    let records = finish_records(&walls, |wall| p_norm.rows() as f64 / wall);
    let workload = Workload {
        name: "its",
        detail: format!(
            "per-row ITS without replacement, s = {fanout}, over {} probability rows \
             (nnz(P) = {})",
            p_norm.rows(),
            p_norm.nnz()
        ),
        items: p_norm.rows(),
        throughput_unit: "rows/s",
    };
    print_records("Per-row ITS", "rows/s", &records);
    write_json(&out_dir.join("BENCH_its.json"), &workload, &records);
    assert_identical("its", &records);

    // ---- Bulk epoch: GraphSAGE through LocalBackend.
    let batch_size = 256;
    let num_batches = 16;
    let batches: Vec<Vec<usize>> = (0..num_batches)
        .map(|i| (0..batch_size).map(|j| (i * batch_size + j * 7) % n).collect())
        .collect();
    let sampler = GraphSageSampler::new(vec![15, 10, 5]);
    let epoch_of = |t: usize| {
        let backend = LocalBackend::new(BulkSamplerConfig::new(batch_size, 4))
            .expect("valid bulk config")
            .with_parallelism(Parallelism::new(t));
        backend.sample_epoch(&sampler, &a, &batches, 7).expect("epoch")
    };
    let epoch_serial = epoch_of(1);
    let mut walls = Vec::new();
    for &t in &threads {
        let (wall, epoch) = time_best(reps, || epoch_of(t));
        walls.push((t, wall, epoch.output.minibatches == epoch_serial.output.minibatches));
    }
    let records = finish_records(&walls, |wall| num_batches as f64 / wall);
    let workload = Workload {
        name: "bulk_epoch",
        detail: format!(
            "GraphSAGE [15,10,5] bulk epoch via LocalBackend: {num_batches} batches of \
             {batch_size} on rmat scale {scale} (bulk k = 4)"
        ),
        items: num_batches,
        throughput_unit: "minibatches/s",
    };
    print_records("Bulk sampling epoch", "batches/s", &records);
    write_json(&out_dir.join("BENCH_epoch.json"), &workload, &records);
    assert_identical("bulk_epoch", &records);

    println!(
        "\nAll parallel results byte-identical to serial; records written to {}",
        out_dir.display()
    );
}

//! Evaluation metrics.

use crate::error::GnnError;
use crate::Result;

/// Fraction of predictions matching the labels.
///
/// # Errors
///
/// Returns [`GnnError::InvalidConfig`] if the slices have different lengths
/// or are empty.
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> Result<f64> {
    if predictions.len() != labels.len() {
        return Err(GnnError::InvalidConfig(format!(
            "{} predictions but {} labels",
            predictions.len(),
            labels.len()
        )));
    }
    if predictions.is_empty() {
        return Err(GnnError::InvalidConfig("cannot compute accuracy on an empty set".into()));
    }
    let correct = predictions.iter().zip(labels).filter(|(p, l)| p == l).count();
    Ok(correct as f64 / predictions.len() as f64)
}

/// Running mean helper used to aggregate per-minibatch losses into an epoch
/// loss.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningMean {
    sum: f64,
    count: usize,
}

impl RunningMean {
    /// Creates an empty running mean.
    pub fn new() -> Self {
        RunningMean::default()
    }

    /// Adds an observation.
    pub fn push(&mut self, value: f64) {
        self.sum += value;
        self.count += 1;
    }

    /// Current mean, or 0.0 if no observations were pushed.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 0, 3]).unwrap(), 2.0 / 3.0);
        assert_eq!(accuracy(&[0], &[0]).unwrap(), 1.0);
        assert!(accuracy(&[], &[]).is_err());
        assert!(accuracy(&[1], &[1, 2]).is_err());
    }

    #[test]
    fn running_mean() {
        let mut m = RunningMean::new();
        assert_eq!(m.mean(), 0.0);
        m.push(2.0);
        m.push(4.0);
        assert_eq!(m.mean(), 3.0);
        assert_eq!(m.count(), 2);
    }
}

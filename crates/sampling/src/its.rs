//! Distribution sampling kernels.
//!
//! All GNN sampling algorithms reduce to drawing `s` elements from discrete
//! probability distributions (§2.3).  The paper uses **inverse transform
//! sampling (ITS)**: a prefix sum over the probability row followed by binary
//! searches of uniform random numbers.  Rejection sampling is provided as the
//! alternative the paper argues against (it may take many iterations), and is
//! used by the `ablation_its_vs_rejection` bench.

use crate::error::SamplingError;
use crate::Result;
use dmbs_matrix::pool::Parallelism;
use dmbs_matrix::prefix::{inclusive_scan, upper_bound};
use dmbs_matrix::CsrMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws up to `s` *distinct* positions (indices into `weights`) without
/// replacement using inverse transform sampling.
///
/// If the row has `nnz <= s` candidates, every candidate is returned (the
/// neighborhood is smaller than the fanout, so GraphSAGE keeps it whole).
/// Weights must be non-negative; zero-weight candidates are never selected
/// unless every weight is zero, in which case candidates are taken uniformly.
///
/// The returned positions are sorted in ascending order.
///
/// # Errors
///
/// Returns [`SamplingError::InvalidConfig`] if `s == 0`.
pub fn its_without_replacement<R: Rng + ?Sized>(
    weights: &[f64],
    s: usize,
    rng: &mut R,
) -> Result<Vec<usize>> {
    if s == 0 {
        return Err(SamplingError::InvalidConfig("sample count s must be positive".into()));
    }
    let candidates: Vec<usize> = (0..weights.len()).collect();
    if weights.len() <= s {
        return Ok(candidates);
    }
    // Work on a mutable copy: each selected position has its weight zeroed and
    // the prefix sum is rebuilt.  s is small (the fanout), so the rebuild cost
    // is acceptable and mirrors the "repeat to select s distinct nonzeros"
    // description in §4.1.2 of the paper.
    let mut working: Vec<f64> = weights.to_vec();
    let all_zero = working.iter().all(|&w| w <= 0.0);
    if all_zero {
        working.fill(1.0);
    }
    let mut selected = Vec::with_capacity(s);
    for _ in 0..s {
        let scan = inclusive_scan(&working);
        let total = *scan.last().expect("weights are non-empty");
        if total <= 0.0 {
            break;
        }
        let target = rng.gen::<f64>() * total;
        let pos = upper_bound(&scan, target);
        selected.push(pos);
        working[pos] = 0.0;
    }
    selected.sort_unstable();
    selected.dedup();
    Ok(selected)
}

/// Draws `s` positions *with* replacement using inverse transform sampling
/// (a single prefix sum, `s` binary searches).  Used by samplers that allow
/// repeated picks (e.g. FastGCN-style importance sampling).
///
/// # Errors
///
/// Returns [`SamplingError::InvalidConfig`] if `s == 0` or `weights` is empty,
/// or [`SamplingError::InvalidConfig`] if all weights are zero.
pub fn its_with_replacement<R: Rng + ?Sized>(
    weights: &[f64],
    s: usize,
    rng: &mut R,
) -> Result<Vec<usize>> {
    if s == 0 {
        return Err(SamplingError::InvalidConfig("sample count s must be positive".into()));
    }
    if weights.is_empty() {
        return Err(SamplingError::InvalidConfig(
            "cannot sample from an empty distribution".into(),
        ));
    }
    let scan = inclusive_scan(weights);
    let total = *scan.last().expect("non-empty");
    if total <= 0.0 {
        return Err(SamplingError::InvalidConfig("all weights are zero".into()));
    }
    Ok((0..s).map(|_| upper_bound(&scan, rng.gen::<f64>() * total)).collect())
}

/// Draws up to `s` distinct positions without replacement using **rejection
/// sampling**: repeatedly draw from the full distribution and discard
/// duplicates.  Provided for the ITS-vs-rejection ablation; may loop many
/// times when `s` approaches the support size, which is exactly the
/// disadvantage the paper cites.
///
/// # Errors
///
/// Returns [`SamplingError::InvalidConfig`] if `s == 0`.
pub fn rejection_without_replacement<R: Rng + ?Sized>(
    weights: &[f64],
    s: usize,
    rng: &mut R,
) -> Result<Vec<usize>> {
    if s == 0 {
        return Err(SamplingError::InvalidConfig("sample count s must be positive".into()));
    }
    let support: Vec<usize> = (0..weights.len()).filter(|&i| weights[i] > 0.0).collect();
    if support.len() <= s {
        return Ok(support);
    }
    let scan = inclusive_scan(weights);
    let total = *scan.last().expect("non-empty");
    let mut chosen = std::collections::BTreeSet::new();
    // Cap iterations to avoid pathological loops; fall back to ITS if hit.
    let max_draws = 64 * s.max(1);
    let mut draws = 0;
    while chosen.len() < s && draws < max_draws {
        let pos = upper_bound(&scan, rng.gen::<f64>() * total);
        chosen.insert(pos);
        draws += 1;
    }
    if chosen.len() < s {
        return its_without_replacement(weights, s, rng);
    }
    Ok(chosen.into_iter().collect())
}

/// Samples `s` nonzero columns from every row of a CSR probability matrix
/// `P`, returning the sampler matrix `Q` with (up to) `s` nonzeros of value
/// `1.0` per row — the `SAMPLE` step of Algorithm 1.
///
/// Rows with no nonzeros stay empty.
///
/// # Errors
///
/// Returns [`SamplingError::InvalidConfig`] if `s == 0`.
pub fn sample_rows<R: Rng + ?Sized>(p: &CsrMatrix, s: usize, rng: &mut R) -> Result<CsrMatrix> {
    if s == 0 {
        return Err(SamplingError::InvalidConfig("sample count s must be positive".into()));
    }
    let mut row_data: Vec<Vec<(usize, f64)>> = Vec::with_capacity(p.rows());
    for r in 0..p.rows() {
        let cols = p.row_indices(r);
        let vals = p.row_values(r);
        if cols.is_empty() {
            row_data.push(Vec::new());
            continue;
        }
        let picked = its_without_replacement(vals, s, rng)?;
        row_data.push(picked.into_iter().map(|pos| (cols[pos], 1.0)).collect());
    }
    Ok(CsrMatrix::from_rows(p.rows(), p.cols(), row_data)?)
}

/// The RNG seed of `row`'s private stream under `base_seed` — a splitmix64
/// finalizer over the row index, so adjacent rows get decorrelated streams.
///
/// Every row owning its own seeded stream (rather than all rows sharing one
/// sequential stream) is what makes per-row ITS parallelizable **and**
/// reproducible: the draw for row `r` depends only on `(base_seed, r)`,
/// never on which thread processed it or how many threads ran.
pub fn row_stream_seed(base_seed: u64, row: usize) -> u64 {
    crate::seed::stream_seed(base_seed, row as u64)
}

/// Serial reference for [`sample_rows_par`]: samples `s` nonzero columns from
/// every row of `p` with a per-row RNG stream seeded by
/// [`row_stream_seed`]`(base_seed, row)`.
///
/// # Errors
///
/// Returns [`SamplingError::InvalidConfig`] if `s == 0`.
pub fn sample_rows_seeded(p: &CsrMatrix, s: usize, base_seed: u64) -> Result<CsrMatrix> {
    sample_rows_par(p, s, base_seed, Parallelism::serial())
}

/// Samples `s` nonzero columns from every row of a CSR probability matrix on
/// a scoped worker pool — the parallel `SAMPLE` step of Algorithm 1.
///
/// Rows are processed in contiguous blocks across `parallelism` threads;
/// each row draws from its own [`row_stream_seed`]-seeded RNG stream, so the
/// output is **byte-identical at any thread count** (and identical to
/// [`sample_rows_seeded`]).  Rows with no nonzeros stay empty.
///
/// # Errors
///
/// Returns [`SamplingError::InvalidConfig`] if `s == 0`.
///
/// # Example
///
/// ```
/// use dmbs_matrix::pool::Parallelism;
/// use dmbs_matrix::{CooMatrix, CsrMatrix};
/// use dmbs_sampling::its::sample_rows_par;
///
/// # fn main() -> Result<(), dmbs_sampling::SamplingError> {
/// let p = CsrMatrix::from_coo(&CooMatrix::from_triples(
///     2, 4, vec![(0, 0, 0.5), (0, 2, 0.5), (1, 1, 1.0)],
/// ).unwrap());
/// let serial = sample_rows_par(&p, 1, 42, Parallelism::serial())?;
/// let parallel = sample_rows_par(&p, 1, 42, Parallelism::new(8))?;
/// assert_eq!(serial, parallel); // reproducible independent of thread count
/// # Ok(())
/// # }
/// ```
pub fn sample_rows_par(
    p: &CsrMatrix,
    s: usize,
    base_seed: u64,
    parallelism: Parallelism,
) -> Result<CsrMatrix> {
    if s == 0 {
        return Err(SamplingError::InvalidConfig("sample count s must be positive".into()));
    }
    type SparseRows = Vec<Vec<(usize, f64)>>;
    let block_rows: Vec<Result<SparseRows>> = parallelism.map_blocks(p.rows(), |range| {
        let mut rows = Vec::with_capacity(range.len());
        for r in range {
            let cols = p.row_indices(r);
            let vals = p.row_values(r);
            if cols.is_empty() {
                rows.push(Vec::new());
                continue;
            }
            let mut rng = StdRng::seed_from_u64(row_stream_seed(base_seed, r));
            let picked = its_without_replacement(vals, s, &mut rng)?;
            rows.push(picked.into_iter().map(|pos| (cols[pos], 1.0)).collect());
        }
        Ok(rows)
    });
    let mut row_data: Vec<Vec<(usize, f64)>> = Vec::with_capacity(p.rows());
    for block in block_rows {
        row_data.extend(block?);
    }
    Ok(CsrMatrix::from_rows(p.rows(), p.cols(), row_data)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmbs_matrix::CooMatrix;
    use proptest::prelude::*;

    #[test]
    fn without_replacement_returns_distinct_in_support() {
        let weights = vec![0.0, 1.0, 2.0, 0.0, 3.0, 1.0, 4.0];
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let picked = its_without_replacement(&weights, 3, &mut rng).unwrap();
            assert_eq!(picked.len(), 3);
            let mut sorted = picked.clone();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "duplicates in {picked:?}");
            assert!(picked.iter().all(|&i| weights[i] > 0.0));
        }
    }

    #[test]
    fn without_replacement_small_support_returns_all() {
        let weights = vec![1.0, 2.0];
        let mut rng = StdRng::seed_from_u64(2);
        let picked = its_without_replacement(&weights, 5, &mut rng).unwrap();
        assert_eq!(picked, vec![0, 1]);
    }

    #[test]
    fn without_replacement_zero_weights_fall_back_to_uniform() {
        let weights = vec![0.0; 6];
        let mut rng = StdRng::seed_from_u64(3);
        let picked = its_without_replacement(&weights, 3, &mut rng).unwrap();
        assert_eq!(picked.len(), 3);
    }

    #[test]
    fn without_replacement_rejects_zero_s() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(its_without_replacement(&[1.0], 0, &mut rng).is_err());
    }

    #[test]
    fn frequencies_track_probabilities() {
        // Column 2 has 10x the weight of column 0; over many single draws it
        // must be picked roughly 10x as often.
        let weights = vec![1.0, 0.0, 10.0];
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 3];
        for _ in 0..20_000 {
            let picked = its_without_replacement(&weights, 1, &mut rng).unwrap();
            counts[picked[0]] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0].max(1) as f64;
        assert!(ratio > 7.0 && ratio < 13.0, "ratio {ratio} outside expected band");
    }

    #[test]
    fn with_replacement_allows_duplicates_and_validates() {
        let mut rng = StdRng::seed_from_u64(4);
        let picked = its_with_replacement(&[1.0, 1.0], 10, &mut rng).unwrap();
        assert_eq!(picked.len(), 10);
        assert!(its_with_replacement(&[], 2, &mut rng).is_err());
        assert!(its_with_replacement(&[0.0, 0.0], 2, &mut rng).is_err());
        assert!(its_with_replacement(&[1.0], 0, &mut rng).is_err());
    }

    #[test]
    fn rejection_matches_its_semantics() {
        let weights = vec![1.0, 2.0, 3.0, 4.0, 5.0, 0.0];
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let picked = rejection_without_replacement(&weights, 3, &mut rng).unwrap();
            assert_eq!(picked.len(), 3);
            assert!(picked.iter().all(|&i| weights[i] > 0.0));
            assert!(picked.windows(2).all(|w| w[0] < w[1]));
        }
        // Small support returns everything.
        let few = rejection_without_replacement(&[1.0, 0.0, 1.0], 5, &mut rng).unwrap();
        assert_eq!(few, vec![0, 2]);
        assert!(rejection_without_replacement(&[1.0], 0, &mut rng).is_err());
    }

    #[test]
    fn sample_rows_respects_fanout_and_support() {
        // Figure 2a: P has the neighborhoods of vertices 1 and 5.
        let p = CsrMatrix::from_coo(
            &CooMatrix::from_triples(
                2,
                6,
                vec![
                    (0, 0, 1.0 / 3.0),
                    (0, 2, 1.0 / 3.0),
                    (0, 4, 1.0 / 3.0),
                    (1, 3, 0.5),
                    (1, 4, 0.5),
                ],
            )
            .unwrap(),
        );
        let mut rng = StdRng::seed_from_u64(6);
        let q = sample_rows(&p, 2, &mut rng).unwrap();
        assert_eq!(q.shape(), (2, 6));
        assert_eq!(q.row_nnz(0), 2);
        assert_eq!(q.row_nnz(1), 2);
        // Sampled columns are a subset of the row's support.
        assert!(q.row_indices(0).iter().all(|c| [0, 2, 4].contains(c)));
        assert_eq!(q.row_indices(1), &[3, 4]);
        assert!(q.values().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn sample_rows_keeps_empty_rows_empty() {
        let p = CsrMatrix::zeros(3, 4);
        let mut rng = StdRng::seed_from_u64(7);
        let q = sample_rows(&p, 2, &mut rng).unwrap();
        assert_eq!(q.nnz(), 0);
        assert!(sample_rows(&p, 0, &mut rng).is_err());
    }

    #[test]
    fn sample_rows_par_is_thread_count_invariant() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut coo = CooMatrix::new(50, 64);
        for _ in 0..400 {
            coo.push(rng.gen_range(0..50), rng.gen_range(0..64), rng.gen_range(0.1..3.0)).ok();
        }
        let p = CsrMatrix::from_coo(&coo);
        for seed in [0u64, 9, 0xDEAD_BEEF] {
            let serial = sample_rows_seeded(&p, 3, seed).unwrap();
            for threads in [1usize, 2, 8] {
                let par = sample_rows_par(&p, 3, seed, Parallelism::new(threads)).unwrap();
                assert_eq!(par, serial, "seed = {seed}, threads = {threads}");
            }
        }
    }

    #[test]
    fn sample_rows_par_respects_support_and_fanout() {
        let p = CsrMatrix::from_coo(
            &CooMatrix::from_triples(
                2,
                6,
                vec![
                    (0, 0, 1.0 / 3.0),
                    (0, 2, 1.0 / 3.0),
                    (0, 4, 1.0 / 3.0),
                    (1, 3, 0.5),
                    (1, 4, 0.5),
                ],
            )
            .unwrap(),
        );
        let q = sample_rows_par(&p, 2, 7, Parallelism::new(4)).unwrap();
        assert_eq!(q.shape(), (2, 6));
        assert_eq!(q.row_nnz(0), 2);
        assert!(q.row_indices(0).iter().all(|c| [0, 2, 4].contains(c)));
        assert_eq!(q.row_indices(1), &[3, 4]);
        assert!(sample_rows_par(&p, 0, 7, Parallelism::new(4)).is_err());
        // Empty rows stay empty.
        let empty = CsrMatrix::zeros(3, 4);
        assert_eq!(sample_rows_par(&empty, 2, 1, Parallelism::new(2)).unwrap().nnz(), 0);
    }

    #[test]
    fn row_stream_seeds_are_decorrelated() {
        // Adjacent rows and adjacent base seeds must give distinct streams.
        let a = row_stream_seed(1, 0);
        let b = row_stream_seed(1, 1);
        let c = row_stream_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    proptest! {
        #[test]
        fn prop_sample_rows_par_thread_invariant(
            entries in proptest::collection::vec((0usize..8, 0usize..12, 0.1f64..5.0), 1..60),
            s in 1usize..5,
            seed in 0u64..100,
            thread_choice in 0usize..3,
        ) {
            let p = CsrMatrix::from_coo(&CooMatrix::from_triples(8, 12, entries).unwrap());
            let threads = [1usize, 2, 8][thread_choice];
            let serial = sample_rows_seeded(&p, s, seed).unwrap();
            let par = sample_rows_par(&p, s, seed, Parallelism::new(threads)).unwrap();
            prop_assert_eq!(par, serial);
        }
    }

    proptest! {
        #[test]
        fn prop_its_without_replacement_invariants(
            weights in proptest::collection::vec(0.0f64..5.0, 1..40),
            s in 1usize..10,
            seed in 0u64..1000,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let picked = its_without_replacement(&weights, s, &mut rng).unwrap();
            // Distinct and sorted.
            prop_assert!(picked.windows(2).all(|w| w[0] < w[1]));
            // Never more than requested (unless the whole support is returned).
            prop_assert!(picked.len() <= s.max(weights.len()));
            if weights.len() > s {
                prop_assert!(picked.len() <= s);
            }
            // All indices valid.
            prop_assert!(picked.iter().all(|&i| i < weights.len()));
        }

        #[test]
        fn prop_sample_rows_subset_of_support(
            entries in proptest::collection::vec((0usize..8, 0usize..12, 0.1f64..5.0), 1..60),
            s in 1usize..5,
            seed in 0u64..100,
        ) {
            let p = CsrMatrix::from_coo(&CooMatrix::from_triples(8, 12, entries).unwrap());
            let mut rng = StdRng::seed_from_u64(seed);
            let q = sample_rows(&p, s, &mut rng).unwrap();
            prop_assert_eq!(q.shape(), p.shape());
            for r in 0..p.rows() {
                let support: std::collections::HashSet<usize> = p.row_indices(r).iter().copied().collect();
                prop_assert!(q.row_nnz(r) <= s.min(p.row_nnz(r)).max(p.row_nnz(r).min(s)));
                prop_assert!(q.row_indices(r).iter().all(|c| support.contains(c)));
                // Exactly min(s, nnz) picked.
                prop_assert_eq!(q.row_nnz(r), s.min(p.row_nnz(r)));
            }
        }
    }
}

//! GraphSAGE and linear layers with explicit forward/backward passes.

use crate::activations::{relu, relu_backward};
use crate::Result;
use dmbs_matrix::pool::Parallelism;
use dmbs_matrix::spmm::{spmm_parallel, spmm_transpose_parallel};
use dmbs_matrix::{CsrMatrix, DenseMatrix};

/// Cache of intermediate values produced by [`sage_forward`] and consumed by
/// [`sage_backward`].
#[derive(Debug, Clone)]
pub struct SageCache {
    /// Row-normalized sampled adjacency used for mean aggregation.
    pub a_norm: CsrMatrix,
    /// Neighbor-side input embeddings (`cols × in_dim`).
    pub h_neigh: DenseMatrix,
    /// Self-side input embeddings (`rows × in_dim`).
    pub h_self: DenseMatrix,
    /// Aggregated neighbor embeddings (`rows × in_dim`).
    pub aggregated: DenseMatrix,
    /// Pre-activation output (`rows × out_dim`).
    pub pre_activation: DenseMatrix,
    /// Whether ReLU was applied.
    pub applied_relu: bool,
}

/// Gradients produced by [`sage_backward`].
#[derive(Debug, Clone)]
pub struct SageGrads {
    /// Gradient of the self weight matrix.
    pub d_w_self: DenseMatrix,
    /// Gradient of the neighbor weight matrix.
    pub d_w_neigh: DenseMatrix,
    /// Gradient flowing to the neighbor-side inputs (`cols × in_dim`).
    pub d_h_neigh: DenseMatrix,
    /// Gradient flowing to the self-side inputs (`rows × in_dim`).
    pub d_h_self: DenseMatrix,
}

/// Forward pass of a mean-aggregator GraphSAGE layer:
///
/// ```text
/// Z = act( Â · H_neigh · W_neigh  +  H_self · W_self )
/// ```
///
/// where `Â` is the row-normalized sampled adjacency matrix (neighborhood
/// mean) produced by the sampling step, `H_neigh` holds embeddings for the
/// layer's column vertices and `H_self` embeddings for its row vertices.
///
/// The aggregation SpMM runs on `parallelism` worker threads
/// (byte-identical to serial at any thread count).
///
/// # Errors
///
/// Returns [`crate::GnnError::Matrix`] on dimension mismatches.
pub fn sage_forward(
    adjacency: &CsrMatrix,
    h_neigh: &DenseMatrix,
    h_self: &DenseMatrix,
    w_self: &DenseMatrix,
    w_neigh: &DenseMatrix,
    apply_relu: bool,
    parallelism: Parallelism,
) -> Result<(DenseMatrix, SageCache)> {
    let mut a_norm = adjacency.clone();
    a_norm.normalize_rows();
    let aggregated = spmm_parallel(&a_norm, h_neigh, parallelism)?;
    let pre = h_self.matmul(w_self)?.add(&aggregated.matmul(w_neigh)?)?;
    let out = if apply_relu { relu(&pre) } else { pre.clone() };
    Ok((
        out,
        SageCache {
            a_norm,
            h_neigh: h_neigh.clone(),
            h_self: h_self.clone(),
            aggregated,
            pre_activation: pre,
            applied_relu: apply_relu,
        },
    ))
}

/// Backward pass of the GraphSAGE layer.  `w_self` and `w_neigh` must be the
/// same weights used in the forward pass.  The transposed-aggregation SpMM
/// runs on `parallelism` worker threads.
///
/// # Errors
///
/// Returns [`crate::GnnError::Matrix`] on dimension mismatches.
pub fn sage_backward(
    cache: &SageCache,
    w_self: &DenseMatrix,
    w_neigh: &DenseMatrix,
    upstream: &DenseMatrix,
    parallelism: Parallelism,
) -> Result<SageGrads> {
    let d_pre = if cache.applied_relu {
        relu_backward(&cache.pre_activation, upstream)
    } else {
        upstream.clone()
    };
    // Weight gradients.
    let d_w_self = cache.h_self.transpose_matmul(&d_pre)?;
    let d_w_neigh = cache.aggregated.transpose_matmul(&d_pre)?;
    // Input gradients.
    let d_h_self = d_pre.matmul_transpose(w_self)?;
    let d_aggregated = d_pre.matmul_transpose(w_neigh)?;
    let d_h_neigh = spmm_transpose_parallel(&cache.a_norm, &d_aggregated, parallelism)?;
    Ok(SageGrads { d_w_self, d_w_neigh, d_h_neigh, d_h_self })
}

/// Cache for the final linear classifier.
#[derive(Debug, Clone)]
pub struct LinearCache {
    /// Input embeddings (`rows × in_dim`).
    pub input: DenseMatrix,
}

/// Forward pass of the linear classifier `logits = H · W`.
///
/// # Errors
///
/// Returns [`crate::GnnError::Matrix`] on dimension mismatches.
pub fn linear_forward(
    input: &DenseMatrix,
    weight: &DenseMatrix,
) -> Result<(DenseMatrix, LinearCache)> {
    let logits = input.matmul(weight)?;
    Ok((logits, LinearCache { input: input.clone() }))
}

/// Backward pass of the linear classifier: returns `(dW, dH)`.
///
/// # Errors
///
/// Returns [`crate::GnnError::Matrix`] on dimension mismatches.
pub fn linear_backward(
    cache: &LinearCache,
    weight: &DenseMatrix,
    upstream: &DenseMatrix,
) -> Result<(DenseMatrix, DenseMatrix)> {
    let d_weight = cache.input.transpose_matmul(upstream)?;
    let d_input = upstream.matmul_transpose(weight)?;
    Ok((d_weight, d_input))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmbs_matrix::CooMatrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_adjacency() -> CsrMatrix {
        // 2 rows (frontier), 3 cols (sampled vertices).
        CsrMatrix::from_coo(
            &CooMatrix::from_triples(2, 3, vec![(0, 0, 1.0), (0, 1, 1.0), (1, 2, 1.0)]).unwrap(),
        )
    }

    #[test]
    fn sage_forward_is_mean_aggregation_plus_self() {
        let a = tiny_adjacency();
        let h_neigh = DenseMatrix::from_rows(&[vec![1.0], vec![3.0], vec![5.0]]).unwrap();
        let h_self = DenseMatrix::from_rows(&[vec![10.0], vec![20.0]]).unwrap();
        let w_self = DenseMatrix::identity(1);
        let w_neigh = DenseMatrix::identity(1);
        let (out, cache) =
            sage_forward(&a, &h_neigh, &h_self, &w_self, &w_neigh, false, Parallelism::serial())
                .unwrap();
        // Row 0 aggregates mean(1, 3) = 2 plus self 10 = 12; row 1: 5 + 20 = 25.
        assert_eq!(out.get(0, 0), 12.0);
        assert_eq!(out.get(1, 0), 25.0);
        assert_eq!(cache.aggregated.get(0, 0), 2.0);
    }

    #[test]
    fn sage_relu_clamps_negative_outputs() {
        let a = tiny_adjacency();
        let h_neigh = DenseMatrix::from_rows(&[vec![1.0], vec![1.0], vec![1.0]]).unwrap();
        let h_self = DenseMatrix::from_rows(&[vec![-10.0], vec![10.0]]).unwrap();
        let (out, _) = sage_forward(
            &a,
            &h_neigh,
            &h_self,
            &DenseMatrix::identity(1),
            &DenseMatrix::identity(1),
            true,
            Parallelism::serial(),
        )
        .unwrap();
        assert_eq!(out.get(0, 0), 0.0);
        assert_eq!(out.get(1, 0), 11.0);
    }

    /// Finite-difference check of every gradient the SAGE layer produces.
    #[test]
    fn sage_backward_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = tiny_adjacency();
        let h_neigh = DenseMatrix::random_uniform(3, 2, 1.0, &mut rng);
        let h_self = DenseMatrix::random_uniform(2, 2, 1.0, &mut rng);
        let w_self = DenseMatrix::random_uniform(2, 2, 1.0, &mut rng);
        let w_neigh = DenseMatrix::random_uniform(2, 2, 1.0, &mut rng);

        // Scalar objective: sum of outputs (upstream gradient of ones).
        let objective = |hn: &DenseMatrix, hs: &DenseMatrix, ws: &DenseMatrix, wn: &DenseMatrix| {
            sage_forward(&a, hn, hs, ws, wn, true, Parallelism::serial()).unwrap().0.sum()
        };
        let (out, cache) =
            sage_forward(&a, &h_neigh, &h_self, &w_self, &w_neigh, true, Parallelism::serial())
                .unwrap();
        let upstream = DenseMatrix::filled(out.rows(), out.cols(), 1.0);
        let grads =
            sage_backward(&cache, &w_self, &w_neigh, &upstream, Parallelism::serial()).unwrap();

        let eps = 1e-6;
        let check = |analytic: &DenseMatrix,
                     mut perturb: Box<dyn FnMut(usize, usize, f64) -> f64>| {
            for r in 0..analytic.rows() {
                for c in 0..analytic.cols() {
                    let num = (perturb(r, c, eps) - perturb(r, c, -eps)) / (2.0 * eps);
                    assert!(
                        (num - analytic.get(r, c)).abs() < 1e-5,
                        "finite difference mismatch at ({r}, {c}): {num} vs {}",
                        analytic.get(r, c)
                    );
                }
            }
        };

        let (hn, hs, ws, wn) = (h_neigh.clone(), h_self.clone(), w_self.clone(), w_neigh.clone());
        check(
            &grads.d_w_self,
            Box::new(move |r, c, d| {
                let mut w = ws.clone();
                w.set(r, c, w.get(r, c) + d);
                objective(&hn, &hs, &w, &wn)
            }),
        );
        let (hn, hs, ws, wn) = (h_neigh.clone(), h_self.clone(), w_self.clone(), w_neigh.clone());
        check(
            &grads.d_w_neigh,
            Box::new(move |r, c, d| {
                let mut w = wn.clone();
                w.set(r, c, w.get(r, c) + d);
                objective(&hn, &hs, &ws, &w)
            }),
        );
        let (hn, hs, ws, wn) = (h_neigh.clone(), h_self.clone(), w_self.clone(), w_neigh.clone());
        check(
            &grads.d_h_neigh,
            Box::new(move |r, c, d| {
                let mut h = hn.clone();
                h.set(r, c, h.get(r, c) + d);
                objective(&h, &hs, &ws, &wn)
            }),
        );
        let (hn, hs, ws, wn) = (h_neigh, h_self, w_self, w_neigh);
        check(
            &grads.d_h_self,
            Box::new(move |r, c, d| {
                let mut h = hs.clone();
                h.set(r, c, h.get(r, c) + d);
                objective(&hn, &h, &ws, &wn)
            }),
        );
    }

    #[test]
    fn linear_forward_backward_consistency() {
        let mut rng = StdRng::seed_from_u64(9);
        let input = DenseMatrix::random_uniform(3, 4, 1.0, &mut rng);
        let weight = DenseMatrix::random_uniform(4, 2, 1.0, &mut rng);
        let (logits, cache) = linear_forward(&input, &weight).unwrap();
        assert_eq!(logits.shape(), (3, 2));
        let upstream = DenseMatrix::filled(3, 2, 1.0);
        let (d_w, d_h) = linear_backward(&cache, &weight, &upstream).unwrap();
        assert_eq!(d_w.shape(), weight.shape());
        assert_eq!(d_h.shape(), input.shape());
        // d/dW of sum(H W) = H^T 1.
        let expected_dw = input.transpose_matmul(&upstream).unwrap();
        assert!(d_w.approx_eq(&expected_dw, 1e-12));
    }

    #[test]
    fn dimension_mismatches_are_errors() {
        let a = tiny_adjacency();
        let bad_h_neigh = DenseMatrix::zeros(2, 2); // needs 3 rows
        let h_self = DenseMatrix::zeros(2, 2);
        let w = DenseMatrix::identity(2);
        assert!(
            sage_forward(&a, &bad_h_neigh, &h_self, &w, &w, true, Parallelism::serial()).is_err()
        );
        let input = DenseMatrix::zeros(2, 3);
        let weight = DenseMatrix::zeros(4, 2);
        assert!(linear_forward(&input, &weight).is_err());
    }
}

//! Cross-crate integration tests: the distributed sampling backends must
//! produce the same samples as the single-device matrix formulation, and all
//! sampler outputs must satisfy the structural invariants the GNN layer
//! relies on.

mod common;

use dmbs::graph::generators::{figure1_example, rmat, RmatConfig};
use dmbs::sampling::{
    BulkSamplerConfig, DistConfig, GraphSageSampler, LadiesSampler, LocalBackend,
    Partitioned1p5dBackend, ReplicatedBackend, Sampler, SamplingBackend,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// This suite's historical batch stream uses the (257, 31) multipliers.
fn random_batches(n: usize, k: usize, b: usize) -> Vec<Vec<usize>> {
    common::strided_batches(n, k, b, 257, 31)
}

#[test]
fn replicated_backend_equals_single_device_with_full_fanout() {
    // With fanout >= max degree nothing is random: the replicated strategy
    // must agree exactly with a single-device run on the same batches.
    let graph = figure1_example();
    let batches = vec![vec![1, 5], vec![0, 3], vec![2, 4], vec![5, 0]];
    let bulk = BulkSamplerConfig::new(2, batches.len());

    let sampler = GraphSageSampler::new(vec![10, 10]);
    let single = LocalBackend::new(bulk)
        .unwrap()
        .sample_epoch(&sampler, graph.adjacency(), &batches, 1)
        .unwrap();

    for p in [1usize, 2, 3, 4] {
        let backend = ReplicatedBackend::new(DistConfig::new(p, 1, bulk)).unwrap();
        let distributed = backend.sample_epoch(&sampler, graph.adjacency(), &batches, 99).unwrap();
        assert_eq!(distributed.num_batches(), single.num_batches());
        for (d, s) in distributed.minibatches().iter().zip(single.minibatches()) {
            assert_eq!(d.batch, s.batch);
            for (dl, sl) in d.layers.iter().zip(&s.layers) {
                assert_eq!(dl.rows, sl.rows);
                assert_eq!(dl.cols, sl.cols);
                assert_eq!(dl.adjacency, sl.adjacency);
            }
        }
    }
}

#[test]
fn partitioned_backend_equals_single_device_with_full_fanout() {
    let graph = rmat(&RmatConfig::new(7, 4), &mut StdRng::seed_from_u64(3)).unwrap();
    let n = graph.num_vertices();
    let batches = random_batches(n, 6, 8);
    let bulk = BulkSamplerConfig::new(8, batches.len());
    let sampler = GraphSageSampler::new(vec![n]); // keep whole neighborhoods: deterministic
    let single = LocalBackend::new(bulk)
        .unwrap()
        .sample_epoch(&sampler, graph.adjacency(), &batches, 5)
        .unwrap();

    for (p, c) in [(4usize, 2usize), (6, 2), (8, 4)] {
        let backend = Partitioned1p5dBackend::new(DistConfig::new(p, c, bulk)).unwrap();
        let flat = backend.sample_epoch(&sampler, graph.adjacency(), &batches, 7).unwrap();
        for (d, s) in flat.minibatches().iter().zip(single.minibatches()) {
            assert_eq!(d.layers[0].rows, s.layers[0].rows, "p={p} c={c}");
            assert_eq!(d.layers[0].cols, s.layers[0].cols, "p={p} c={c}");
            assert_eq!(d.layers[0].adjacency, s.layers[0].adjacency, "p={p} c={c}");
        }
    }
}

#[test]
fn partitioned_ladies_equals_single_device_when_sample_covers_support() {
    let graph = figure1_example();
    let batches = vec![vec![1, 5], vec![0, 2], vec![3, 4]];
    let bulk = BulkSamplerConfig::new(2, batches.len());
    let sampler = LadiesSampler::new(1, 10);
    let single = LocalBackend::new(bulk)
        .unwrap()
        .sample_epoch(&sampler, graph.adjacency(), &batches, 2)
        .unwrap();
    let backend = Partitioned1p5dBackend::new(DistConfig::new(6, 2, bulk)).unwrap();
    let flat = backend.sample_epoch(&sampler, graph.adjacency(), &batches, 17).unwrap();
    for (d, s) in flat.minibatches().iter().zip(single.minibatches()) {
        assert_eq!(d.layers[0].rows, s.layers[0].rows);
        assert_eq!(d.layers[0].cols, s.layers[0].cols);
        assert!(d.layers[0].adjacency.approx_eq(&s.layers[0].adjacency, 1e-12));
    }
}

#[test]
fn all_samplers_produce_valid_edges_and_chained_frontiers() {
    let graph = rmat(&RmatConfig::new(8, 6), &mut StdRng::seed_from_u64(9)).unwrap();
    let a = graph.adjacency();
    let batches = random_batches(graph.num_vertices(), 4, 16);
    let config = BulkSamplerConfig::new(16, 4);
    let mut rng = StdRng::seed_from_u64(10);

    let samplers: Vec<Box<dyn Sampler>> = vec![
        Box::new(GraphSageSampler::new(vec![5, 3])),
        Box::new(GraphSageSampler::new(vec![5, 3]).with_self_loops()),
        Box::new(LadiesSampler::new(2, 12)),
        Box::new(dmbs::sampling::FastGcnSampler::new(2, 12)),
    ];
    for sampler in samplers {
        let out = sampler.sample_bulk(a, &batches, &config, &mut rng).unwrap();
        assert_eq!(out.num_batches(), 4, "{}", sampler.name());
        for mb in &out.minibatches {
            assert!(mb.frontiers_are_chained(), "{}", sampler.name());
            for layer in &mb.layers {
                for (r, c, _) in layer.adjacency.iter() {
                    let from = layer.rows[r];
                    let to = layer.cols[c];
                    assert!(
                        a.get(from, to) > 0.0 || from == to,
                        "{}: sampled edge ({from}, {to}) not in the graph",
                        sampler.name()
                    );
                }
            }
        }
    }
}

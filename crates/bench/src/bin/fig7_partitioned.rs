//! Figure 7: the Graph-Partitioned algorithm — sampling-time breakdown
//! (probability / sampling / extraction and computation / communication) for
//! GraphSAGE (top row of the figure) and LADIES (bottom row), across rank
//! counts and replication factors.  Also prints the reference CPU LADIES time
//! the paper compares against (§8.2.2).

use dmbs_bench::{dataset, print_table, secs, Scale};
use dmbs_comm::{Phase, Runtime};
use dmbs_graph::datasets::DatasetKind;
use dmbs_graph::minibatch::MinibatchPlan;
use dmbs_sampling::baseline::ladies_reference;
use dmbs_sampling::partitioned::{run_partitioned_ladies, run_partitioned_sage};
use dmbs_sampling::plan::BulkSampleOutput;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn breakdown_row(p: usize, c: usize, per_row: &[BulkSampleOutput]) -> Vec<String> {
    // Bulk-synchronous: each phase is as slow as the slowest process row.
    let max = |f: &dyn Fn(&BulkSampleOutput) -> f64| {
        per_row.iter().map(f).fold(0.0f64, f64::max)
    };
    let prob = max(&|o| o.profile.total(Phase::Probability));
    let samp = max(&|o| o.profile.total(Phase::Sampling));
    let extr = max(&|o| o.profile.total(Phase::Extraction));
    let comp = max(&|o| o.profile.total_compute());
    let comm = max(&|o| o.profile.total_comm());
    vec![
        format!("{p}"),
        format!("{c}"),
        secs(prob),
        secs(samp),
        secs(extr),
        secs(comp),
        secs(comm),
        secs(comp + comm),
    ]
}

fn main() {
    let scale = Scale::from_env();
    let header = ["ranks", "c", "probability", "sampling", "extraction", "computation", "communication", "total"];
    for kind in [DatasetKind::Protein, DatasetKind::Papers] {
        let ds = dataset(kind, scale);
        let a = ds.graph.adjacency();
        let batch_size = (ds.train_set.len() / 16).clamp(8, 128);
        let plan = MinibatchPlan::sequential(&ds.train_set, batch_size).expect("non-empty training set");
        let batches = plan.batches().to_vec();

        // --- GraphSAGE (fanout 15,10,5) on the partitioned graph.
        let mut sage_rows = Vec::new();
        for &p in &scale.rank_counts() {
            for &c in &[1usize, 2, 4] {
                if p % c != 0 || c > p {
                    continue;
                }
                let runtime = Runtime::new(p).expect("rank count is positive");
                let per_row = run_partitioned_sage(&runtime, c, a, &batches, &[15, 10, 5], false, 13)
                    .expect("partitioned GraphSAGE failed");
                sage_rows.push(breakdown_row(p, c, &per_row));
            }
        }
        print_table(
            &format!("Figure 7 (top) — {} GraphSAGE partitioned sampling breakdown", kind.name()),
            &header,
            &sage_rows,
        );

        // --- LADIES (1 layer, s = 512 scaled down) on the partitioned graph.
        let s = 64.min(ds.num_vertices() / 4);
        let mut ladies_rows = Vec::new();
        for &p in &scale.rank_counts() {
            for &c in &[1usize, 2, 4] {
                if p % c != 0 || c > p {
                    continue;
                }
                let runtime = Runtime::new(p).expect("rank count is positive");
                let per_row = run_partitioned_ladies(&runtime, c, a, &batches, 1, s, 13)
                    .expect("partitioned LADIES failed");
                ladies_rows.push(breakdown_row(p, c, &per_row));
            }
        }
        print_table(
            &format!("Figure 7 (bottom) — {} LADIES partitioned sampling breakdown (s = {s})", kind.name()),
            &header,
            &ladies_rows,
        );

        // --- Reference CPU LADIES (§8.2.2).
        let start = std::time::Instant::now();
        let mut rng = StdRng::seed_from_u64(13);
        ladies_reference(a, &batches, 1, s, &mut rng).expect("reference LADIES failed");
        println!(
            "Reference single-device CPU LADIES on {}: {} s for all {} minibatches",
            kind.name(),
            secs(start.elapsed().as_secs_f64()),
            batches.len()
        );
    }
    println!("\nPaper reference: probability generation dominates GraphSAGE; column extraction dominates LADIES; increasing c shrinks communication.");
}

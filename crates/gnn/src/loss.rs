//! Softmax cross-entropy loss with gradient.

use crate::activations::softmax_rows;
use crate::error::GnnError;
use crate::Result;
use dmbs_matrix::DenseMatrix;

/// Computes the mean softmax cross-entropy loss over a batch of logits and
/// the gradient with respect to the logits.
///
/// # Errors
///
/// Returns [`GnnError::InvalidConfig`] if the number of labels does not match
/// the number of logit rows, if the batch is empty, or if a label is out of
/// range.
pub fn cross_entropy(logits: &DenseMatrix, labels: &[usize]) -> Result<(f64, DenseMatrix)> {
    if logits.rows() != labels.len() {
        return Err(GnnError::InvalidConfig(format!(
            "{} logit rows but {} labels",
            logits.rows(),
            labels.len()
        )));
    }
    if logits.rows() == 0 {
        return Err(GnnError::InvalidConfig("cannot compute loss on an empty batch".into()));
    }
    let classes = logits.cols();
    if let Some(&bad) = labels.iter().find(|&&l| l >= classes) {
        return Err(GnnError::InvalidConfig(format!(
            "label {bad} out of range for {classes} classes"
        )));
    }
    let probs = softmax_rows(logits);
    let n = logits.rows() as f64;
    let mut loss = 0.0;
    let mut grad = probs.clone();
    for (r, &label) in labels.iter().enumerate() {
        let p = probs.get(r, label).max(1e-12);
        loss -= p.ln();
        grad.set(r, label, grad.get(r, label) - 1.0);
    }
    loss /= n;
    let grad = grad.scale(1.0 / n);
    Ok((loss, grad))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_c_loss() {
        let logits = DenseMatrix::zeros(4, 3);
        let (loss, grad) = cross_entropy(&logits, &[0, 1, 2, 0]).unwrap();
        assert!((loss - (3.0f64).ln()).abs() < 1e-12);
        assert_eq!(grad.shape(), (4, 3));
        // Gradient rows sum to zero.
        for s in grad.row_sums() {
            assert!(s.abs() < 1e-12);
        }
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let logits = DenseMatrix::from_rows(&[vec![10.0, -10.0], vec![-10.0, 10.0]]).unwrap();
        let (loss, _) = cross_entropy(&logits, &[0, 1]).unwrap();
        assert!(loss < 1e-6);
        let (bad_loss, _) = cross_entropy(&logits, &[1, 0]).unwrap();
        assert!(bad_loss > 10.0);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits = DenseMatrix::from_rows(&[vec![0.3, -0.2, 0.7], vec![-0.5, 0.1, 0.2]]).unwrap();
        let labels = [2usize, 0usize];
        let (_, grad) = cross_entropy(&logits, &labels).unwrap();
        let eps = 1e-6;
        for r in 0..2 {
            for c in 0..3 {
                let mut plus = logits.clone();
                plus.set(r, c, plus.get(r, c) + eps);
                let mut minus = logits.clone();
                minus.set(r, c, minus.get(r, c) - eps);
                let (lp, _) = cross_entropy(&plus, &labels).unwrap();
                let (lm, _) = cross_entropy(&minus, &labels).unwrap();
                let numeric = (lp - lm) / (2.0 * eps);
                assert!(
                    (numeric - grad.get(r, c)).abs() < 1e-6,
                    "grad mismatch at ({r}, {c}): numeric {numeric} vs analytic {}",
                    grad.get(r, c)
                );
            }
        }
    }

    #[test]
    fn validation() {
        let logits = DenseMatrix::zeros(2, 3);
        assert!(cross_entropy(&logits, &[0]).is_err());
        assert!(cross_entropy(&logits, &[0, 5]).is_err());
        assert!(cross_entropy(&DenseMatrix::zeros(0, 3), &[]).is_err());
    }
}

//! End-to-end training drivers implementing the pipeline of §6 / Figure 3.
//!
//! Each epoch consists of three phases, which the drivers time separately so
//! the benchmark harnesses can reproduce the stacked bars of Figures 4 and 6:
//!
//! 1. **Sampling** — bulk-sample `k` minibatches with the matrix sampler (or
//!    a per-vertex baseline standing in for Quiver);
//! 2. **Feature fetching** — gather the input-feature rows of each
//!    minibatch's innermost frontier (all-to-allv across process columns in
//!    the distributed driver);
//! 3. **Propagation** — forward/backward passes of the GraphSAGE model and an
//!    optimizer step (with a data-parallel gradient all-reduce in the
//!    distributed driver).

use crate::error::GnnError;
use crate::metrics::accuracy;
use crate::model::SageModel;
use crate::session::TrainingSession;
use crate::Result;
use dmbs_comm::{CommStats, Phase, PhaseProfile, Runtime};
use dmbs_graph::datasets::Dataset;
use dmbs_sampling::baseline::PerVertexSageSampler;
use dmbs_sampling::{
    BulkSamplerConfig, DistConfig, GraphSageSampler, LocalBackend, ReplicatedBackend, Sampler,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which sampler the trainer uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplerChoice {
    /// The paper's matrix-based bulk GraphSAGE sampler.
    MatrixSage,
    /// The Quiver-style per-vertex baseline.
    PerVertexSage,
}

/// Hyper-parameters of a training run.  The defaults follow Table 4 of the
/// paper (3-layer SAGE, fanout (15, 10, 5), hidden dimension 256, batch size
/// 1024), scaled-down runs override them.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingConfig {
    /// Per-layer fanouts of the GraphSAGE sampler (outermost first).
    pub fanouts: Vec<usize>,
    /// Hidden dimension of every SAGE layer.
    pub hidden_dim: usize,
    /// Minibatch size `b`.
    pub batch_size: usize,
    /// Number of minibatches `k` sampled per bulk sampling call.
    pub bulk_size: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Number of training epochs.
    pub epochs: usize,
    /// Base RNG seed (model init, shuffling, sampling).
    pub seed: u64,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        TrainingConfig {
            fanouts: vec![15, 10, 5],
            hidden_dim: 256,
            batch_size: 1024,
            bulk_size: 8,
            learning_rate: 0.01,
            epochs: 3,
            seed: 0,
        }
    }
}

impl TrainingConfig {
    fn validate(&self) -> Result<()> {
        if self.fanouts.is_empty() || self.fanouts.contains(&0) {
            return Err(GnnError::InvalidConfig("fanouts must be non-empty and positive".into()));
        }
        if self.hidden_dim == 0 || self.batch_size == 0 || self.bulk_size == 0 || self.epochs == 0 {
            return Err(GnnError::InvalidConfig(
                "hidden_dim, batch_size, bulk_size and epochs must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// Per-epoch timing breakdown and loss, the unit reported by Figures 4 and 6.
#[derive(Debug, Clone, Default)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Phase timing breakdown (max across ranks for distributed runs).
    pub profile: PhaseProfile,
    /// Communication volume and modeled time (summed across ranks).
    pub comm: CommStats,
    /// Mean training loss across the epoch's minibatches.
    pub mean_loss: f64,
}

impl EpochStats {
    /// Seconds spent in the sampling phase (probability + sampling +
    /// extraction).
    pub fn sampling_time(&self) -> f64 {
        Phase::sampling_phases().iter().map(|&p| self.profile.total(p)).sum()
    }

    /// Seconds spent fetching features.
    pub fn feature_fetch_time(&self) -> f64 {
        self.profile.total(Phase::FeatureFetch)
    }

    /// Seconds spent in forward/backward propagation and optimizer steps.
    pub fn propagation_time(&self) -> f64 {
        self.profile.total(Phase::Propagation)
    }

    /// Total epoch time across all phases under a serial schedule
    /// (compute + modeled communication; overlap does not change it).
    pub fn total_time(&self) -> f64 {
        self.profile.grand_total()
    }

    /// Modeled communication seconds the epoch's schedule hid behind compute
    /// (zero unless the session was built with
    /// [`SessionBuilder::overlap`](crate::session::SessionBuilder::overlap)).
    pub fn overlapped_time(&self) -> f64 {
        self.profile.total_overlap()
    }

    /// The epoch seconds the (possibly pipelined) schedule actually pays:
    /// `total_time - overlapped_time`.  Equal to
    /// [`EpochStats::total_time`] for synchronous schedules, so the two
    /// trajectories are directly comparable.
    pub fn modeled_epoch_seconds(&self) -> f64 {
        self.profile.effective_grand_total()
    }

    /// Feature-cache hit rate of the epoch, or `None` when no cache was
    /// active (see
    /// [`SessionBuilder::feature_cache`](crate::session::SessionBuilder::feature_cache)).
    pub fn cache_hit_rate(&self) -> Option<f64> {
        self.comm.cache_hit_rate()
    }
}

/// The result of a training run.
#[derive(Debug, Clone, Default)]
pub struct TrainingReport {
    /// Per-epoch statistics.
    pub epochs: Vec<EpochStats>,
    /// Test accuracy measured after the final epoch, if evaluation ran.
    pub test_accuracy: Option<f64>,
}

/// Trains a GraphSAGE model on a single device with the matrix-based bulk
/// sampler (or the per-vertex baseline), evaluating test accuracy after the
/// final epoch.  This is the driver behind the §8.1.3 accuracy experiment.
///
/// Deprecated wrapper: builds a [`TrainingSession`] with a
/// [`LocalBackend`] and runs its streaming training loop, so bulk sampling
/// now overlaps training (§6 pipelining).
///
/// # Errors
///
/// Returns an error for invalid configurations, missing features/labels or
/// failed sampling/propagation.
#[deprecated(
    since = "0.2.0",
    note = "build a `session::TrainingSession` with a `LocalBackend` instead"
)]
pub fn train_single_device(
    dataset: &Dataset,
    config: &TrainingConfig,
    sampler_choice: SamplerChoice,
) -> Result<TrainingReport> {
    config.validate()?;
    let backend = LocalBackend::new(BulkSamplerConfig::new(config.batch_size, config.bulk_size))?;
    match sampler_choice {
        SamplerChoice::MatrixSage => TrainingSession::builder()
            .dataset(dataset.clone())
            .sampler(GraphSageSampler::new(config.fanouts.clone()).with_self_loops())
            .backend(backend)
            .hidden_dim(config.hidden_dim)
            .learning_rate(config.learning_rate)
            .epochs(config.epochs)
            .seed(config.seed)
            .build()?
            .train(),
        SamplerChoice::PerVertexSage => TrainingSession::builder()
            .dataset(dataset.clone())
            .sampler(PerVertexSageSampler::new(config.fanouts.clone()).with_self_loops())
            .backend(backend)
            .hidden_dim(config.hidden_dim)
            .learning_rate(config.learning_rate)
            .epochs(config.epochs)
            .seed(config.seed)
            .build()?
            .train(),
    }
}

/// Evaluates classification accuracy of `model` on the given vertices by
/// sampling their neighborhoods with the configured fanouts.
///
/// # Errors
///
/// Returns an error for missing features/labels or failed sampling.
pub fn evaluate(
    model: &SageModel,
    dataset: &Dataset,
    vertices: &[usize],
    config: &TrainingConfig,
) -> Result<f64> {
    if vertices.is_empty() {
        return Err(GnnError::InvalidConfig("evaluation set is empty".into()));
    }
    let features = dataset
        .graph
        .features()
        .ok_or_else(|| GnnError::InvalidConfig("dataset has no feature matrix".into()))?;
    let labels = dataset
        .graph
        .labels()
        .ok_or_else(|| GnnError::InvalidConfig("dataset has no labels".into()))?;
    let sampler = GraphSageSampler::new(config.fanouts.clone()).with_self_loops();
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(0xE7A1));
    let mut predictions = Vec::with_capacity(vertices.len());
    let mut truth = Vec::with_capacity(vertices.len());
    for chunk in vertices.chunks(config.batch_size) {
        let sample = sampler.sample_minibatch(dataset.graph.adjacency(), chunk, &mut rng)?;
        let input = features.gather_rows(sample.input_vertices())?;
        predictions.extend(model.predict(&sample, &input)?);
        truth.extend(chunk.iter().map(|&v| labels[v]));
    }
    accuracy(&predictions, &truth)
}

/// Trains with the full distributed pipeline of Figure 3: graph-replicated
/// bulk sampling, a 1.5D-partitioned feature store fetched with all-to-allv
/// across process columns, local propagation and a data-parallel gradient
/// all-reduce.
///
/// * `replication` — the replication factor `c` of the feature matrix (and
///   the process grid).  Must divide the runtime size.
/// * `replicate_features = false` gives the "NoRep" configuration of
///   Figure 6: the feature matrix is split across all `p` ranks and fetching
///   spans the whole world.
/// * `sampler_choice` — the matrix bulk sampler (this work) or the per-vertex
///   baseline (the Quiver stand-in of Figure 4).
///
/// Returns one aggregated [`EpochStats`] per epoch: phase times are the
/// maximum across ranks (bulk-synchronous pipeline), communication volumes
/// the sum.
///
/// # Errors
///
/// Returns an error for invalid configurations, missing features/labels or
/// failed collectives.
#[deprecated(
    since = "0.2.0",
    note = "build a `session::TrainingSession` with a `ReplicatedBackend` instead"
)]
pub fn train_distributed(
    runtime: &Runtime,
    dataset: &Dataset,
    config: &TrainingConfig,
    replication: usize,
    replicate_features: bool,
    sampler_choice: SamplerChoice,
) -> Result<Vec<EpochStats>> {
    config.validate()?;
    let dist = DistConfig::new(
        runtime.size(),
        replication,
        BulkSamplerConfig::new(config.batch_size, config.bulk_size),
    );
    let backend = ReplicatedBackend::with_runtime(runtime.clone(), dist)?;
    let report = match sampler_choice {
        SamplerChoice::MatrixSage => {
            let builder = TrainingSession::builder()
                .dataset(dataset.clone())
                .sampler(GraphSageSampler::new(config.fanouts.clone()).with_self_loops())
                .backend(backend)
                .partition(replication)
                .hidden_dim(config.hidden_dim)
                .learning_rate(config.learning_rate)
                .epochs(config.epochs)
                .seed(config.seed)
                .without_evaluation();
            let builder =
                if replicate_features { builder } else { builder.without_feature_replication() };
            builder.build()?.train()?
        }
        SamplerChoice::PerVertexSage => {
            let builder = TrainingSession::builder()
                .dataset(dataset.clone())
                .sampler(PerVertexSageSampler::new(config.fanouts.clone()).with_self_loops())
                .backend(backend)
                .partition(replication)
                .hidden_dim(config.hidden_dim)
                .learning_rate(config.learning_rate)
                .epochs(config.epochs)
                .seed(config.seed)
                .without_evaluation();
            let builder =
                if replicate_features { builder } else { builder.without_feature_replication() };
            builder.build()?.train()?
        }
    };
    Ok(report.epochs)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use dmbs_graph::datasets::{build_dataset, DatasetConfig};

    fn tiny_dataset(seed: u64) -> Dataset {
        let mut cfg = DatasetConfig::products_like(7); // 128 vertices
        cfg.feature_dim = 16;
        cfg.num_classes = 4;
        cfg.train_fraction = 0.5;
        cfg.homophily = 0.6;
        build_dataset(&cfg, &mut StdRng::seed_from_u64(seed)).unwrap()
    }

    fn tiny_config() -> TrainingConfig {
        TrainingConfig {
            fanouts: vec![5, 5],
            hidden_dim: 16,
            batch_size: 16,
            bulk_size: 4,
            learning_rate: 0.05,
            epochs: 3,
            seed: 42,
        }
    }

    #[test]
    fn config_validation() {
        let mut c = tiny_config();
        c.fanouts.clear();
        assert!(c.validate().is_err());
        let mut c = tiny_config();
        c.epochs = 0;
        assert!(c.validate().is_err());
        assert!(tiny_config().validate().is_ok());
        assert_eq!(TrainingConfig::default().fanouts, vec![15, 10, 5]);
    }

    #[test]
    fn single_device_training_learns_better_than_chance() {
        let dataset = tiny_dataset(1);
        let config = tiny_config();
        let report = train_single_device(&dataset, &config, SamplerChoice::MatrixSage).unwrap();
        assert_eq!(report.epochs.len(), 3);
        // Loss decreases over epochs.
        assert!(report.epochs.last().unwrap().mean_loss < report.epochs[0].mean_loss);
        // Better than the 1/num_classes chance level.
        let acc = report.test_accuracy.unwrap();
        assert!(acc > 1.5 / dataset.graph.num_classes() as f64, "accuracy {acc} not above chance");
        // All three phases were timed.
        let e = &report.epochs[0];
        assert!(e.sampling_time() > 0.0);
        assert!(e.feature_fetch_time() > 0.0);
        assert!(e.propagation_time() > 0.0);
        assert!(e.total_time() >= e.sampling_time());
    }

    #[test]
    fn matrix_and_pervertex_samplers_reach_similar_accuracy() {
        // The §8.1.3 claim: the bulk matrix sampling optimization does not
        // change model accuracy relative to conventional per-vertex sampling.
        let dataset = tiny_dataset(2);
        let config = tiny_config();
        let matrix = train_single_device(&dataset, &config, SamplerChoice::MatrixSage).unwrap();
        let pervertex =
            train_single_device(&dataset, &config, SamplerChoice::PerVertexSage).unwrap();
        let a = matrix.test_accuracy.unwrap();
        let b = pervertex.test_accuracy.unwrap();
        assert!((a - b).abs() < 0.2, "matrix {a} vs per-vertex {b} accuracy diverged");
    }

    #[test]
    fn single_device_requires_features_and_labels() {
        let mut dataset = tiny_dataset(3);
        dataset.graph =
            dmbs_graph::Graph::from_adjacency(dataset.graph.adjacency().clone()).unwrap();
        assert!(train_single_device(&dataset, &tiny_config(), SamplerChoice::MatrixSage).is_err());
    }

    #[test]
    fn distributed_training_matches_phases_and_reduces_loss() {
        let dataset = tiny_dataset(4);
        let mut config = tiny_config();
        config.epochs = 2;
        let runtime = Runtime::new(4).unwrap();
        let epochs =
            train_distributed(&runtime, &dataset, &config, 2, true, SamplerChoice::MatrixSage)
                .unwrap();
        assert_eq!(epochs.len(), 2);
        for e in &epochs {
            assert!(e.sampling_time() > 0.0);
            assert!(e.feature_fetch_time() > 0.0);
            assert!(e.propagation_time() > 0.0);
            // The distributed pipeline communicates (feature fetch + gradient
            // all-reduce).
            assert!(e.comm.messages > 0);
        }
        assert!(epochs[1].mean_loss < epochs[0].mean_loss * 1.2);
    }

    #[test]
    fn norep_fetches_more_data_than_replicated() {
        let dataset = tiny_dataset(5);
        let mut config = tiny_config();
        config.epochs = 1;
        let runtime = Runtime::new(4).unwrap();
        let rep =
            train_distributed(&runtime, &dataset, &config, 4, true, SamplerChoice::MatrixSage)
                .unwrap();
        let norep =
            train_distributed(&runtime, &dataset, &config, 4, false, SamplerChoice::MatrixSage)
                .unwrap();
        // With c = p the feature matrix is fully replicated per rank's process
        // row... (c = 4 on 4 ranks = one process row holding everything), so
        // feature fetching ships nothing; NoRep must ship feature rows.
        assert!(norep[0].comm.words_sent > rep[0].comm.words_sent);
    }

    #[test]
    fn distributed_rejects_bad_replication() {
        let dataset = tiny_dataset(6);
        let runtime = Runtime::new(4).unwrap();
        assert!(train_distributed(
            &runtime,
            &dataset,
            &tiny_config(),
            3,
            true,
            SamplerChoice::MatrixSage
        )
        .is_err());
    }
}

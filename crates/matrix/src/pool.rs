//! Shared-memory worker pool for the bulk matrix kernels.
//!
//! The paper's thesis is that minibatch sampling reduces to bulk sparse
//! matrix kernels (`P ← Q^l · A`, per-row ITS), which are embarrassingly
//! parallel over output rows.  This module provides the row-blocking
//! machinery those kernels share: a [`Parallelism`] knob carried through
//! sampler/backend configuration, balanced contiguous [`block_ranges`], and
//! [`Parallelism::map_blocks`], a scoped fork-join over the vendored
//! `crossbeam::thread::scope`.
//!
//! Every parallel kernel in the workspace is **deterministic**: work is
//! split into contiguous row blocks whose per-row computation is independent
//! of the split, so output is byte-identical at any thread count (see the
//! determinism proptests in `spgemm`, `spmm` and `dmbs-sampling::its`).

use serde::{Deserialize, Serialize};
use std::num::NonZeroUsize;
use std::ops::Range;

/// Degree of shared-memory parallelism used by the bulk kernels.
///
/// A value of `1` (the default) keeps every kernel on the calling thread.
/// The knob travels inside
/// `BulkSamplerConfig`/`DistConfig`/`TrainingSession` so a single setting
/// parallelizes SpGEMM, SpMM and per-row ITS across all sampling backends.
///
/// # Example
///
/// ```
/// use dmbs_matrix::pool::Parallelism;
///
/// let par = Parallelism::new(4);
/// assert_eq!(par.threads(), 4);
/// assert!(!par.is_serial());
/// // Zero is clamped: "no threads" means serial, never "no work".
/// assert!(Parallelism::new(0).is_serial());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Parallelism {
    threads: usize,
}

impl Parallelism {
    /// A parallelism of `threads` worker threads; `0` is clamped to `1`.
    pub fn new(threads: usize) -> Self {
        Parallelism { threads: threads.max(1) }
    }

    /// Serial execution (one thread, no pool).
    pub fn serial() -> Self {
        Parallelism { threads: 1 }
    }

    /// One worker per hardware thread reported by the OS (falls back to
    /// serial when the count is unavailable).
    pub fn available() -> Self {
        Parallelism::new(std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1))
    }

    /// The configured worker count (always at least 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether kernels run on the calling thread only.
    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }

    /// The number of blocks `items` work items are actually split into:
    /// never more than the thread count, never more than the items.
    pub fn effective_blocks(&self, items: usize) -> usize {
        self.threads.min(items).max(1)
    }

    /// Runs `f` over balanced contiguous blocks of `0..items`, one scoped
    /// worker thread per block, and returns the per-block results in block
    /// order.  With one effective block, `f` runs on the calling thread;
    /// with zero items no block is produced and the result is empty.
    ///
    /// Determinism: the blocks partition `0..items` in order, so any `f`
    /// whose per-item work is independent of the split yields results that
    /// concatenate identically at every thread count.
    ///
    /// # Panics
    ///
    /// Propagates a panic from `f` (the scope joins every worker first).
    pub fn map_blocks<T, F>(&self, items: usize, f: F) -> Vec<T>
    where
        F: Fn(Range<usize>) -> T + Sync,
        T: Send,
    {
        let blocks = block_ranges(items, self.effective_blocks(items));
        if blocks.len() <= 1 {
            return blocks.into_iter().map(&f).collect();
        }
        let results = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> =
                blocks.into_iter().map(|range| scope.spawn(|| f(range))).collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(value) => value,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect::<Vec<T>>()
        });
        match results {
            Ok(results) => results,
            // A worker panic was caught by the scope: re-raise it on the
            // calling thread so parallel and serial panics look identical.
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::serial()
    }
}

/// Splits `0..items` into (up to) `blocks` contiguous ranges whose lengths
/// differ by at most one, in ascending order.  Empty ranges are never
/// produced; fewer than `blocks` ranges are returned when `items < blocks`.
///
/// # Example
///
/// ```
/// let blocks = dmbs_matrix::pool::block_ranges(10, 4);
/// assert_eq!(blocks, vec![0..3, 3..6, 6..8, 8..10]);
/// ```
pub fn block_ranges(items: usize, blocks: usize) -> Vec<Range<usize>> {
    let blocks = blocks.min(items);
    if blocks == 0 {
        return Vec::new();
    }
    let base = items / blocks;
    let remainder = items % blocks;
    let mut out = Vec::with_capacity(blocks);
    let mut start = 0;
    for b in 0..blocks {
        let len = base + usize::from(b < remainder);
        out.push(start..start + len);
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_clamps_and_reports() {
        assert_eq!(Parallelism::new(0).threads(), 1);
        assert_eq!(Parallelism::new(8).threads(), 8);
        assert!(Parallelism::serial().is_serial());
        assert_eq!(Parallelism::default(), Parallelism::serial());
        assert!(Parallelism::available().threads() >= 1);
        assert_eq!(Parallelism::new(8).effective_blocks(3), 3);
        assert_eq!(Parallelism::new(2).effective_blocks(100), 2);
        assert_eq!(Parallelism::new(4).effective_blocks(0), 1);
    }

    #[test]
    fn block_ranges_partition_exactly() {
        for items in [0usize, 1, 2, 7, 10, 64, 101] {
            for blocks in [1usize, 2, 3, 8, 200] {
                let ranges = block_ranges(items, blocks);
                // Covers 0..items contiguously and in order.
                let mut expect = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect);
                    assert!(!r.is_empty());
                    expect = r.end;
                }
                assert_eq!(expect, items);
                // Balanced to within one item.
                if let (Some(min), Some(max)) =
                    (ranges.iter().map(|r| r.len()).min(), ranges.iter().map(|r| r.len()).max())
                {
                    assert!(max - min <= 1);
                }
            }
        }
    }

    #[test]
    fn map_blocks_preserves_block_order() {
        for threads in [1usize, 2, 3, 8] {
            let par = Parallelism::new(threads);
            let sums = par.map_blocks(100, |range| range.sum::<usize>());
            assert_eq!(sums.len(), par.effective_blocks(100));
            assert_eq!(sums.iter().sum::<usize>(), (0..100).sum::<usize>());
            // Concatenating per-block item results is split-invariant.
            let items: Vec<Vec<usize>> = par.map_blocks(17, |r| r.map(|i| i * i).collect());
            let flat: Vec<usize> = items.into_iter().flatten().collect();
            assert_eq!(flat, (0..17).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_blocks_handles_empty_input() {
        let out = Parallelism::new(4).map_blocks(0, |r| r.len());
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn map_blocks_propagates_worker_panics() {
        Parallelism::new(2).map_blocks(10, |r| {
            if r.start > 0 {
                panic!("boom");
            }
            r.len()
        });
    }
}

//! Error types for the simulated distributed runtime.

use std::error::Error;
use std::fmt;

/// Errors produced by the runtime, communicators and collectives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// The runtime or grid was configured with invalid parameters.
    InvalidConfig(String),
    /// A rank referenced a peer outside `0..size`.
    RankOutOfRange {
        /// The offending rank.
        rank: usize,
        /// World or group size.
        size: usize,
    },
    /// A collective was invoked on a group that does not contain the caller.
    NotInGroup {
        /// The calling rank.
        rank: usize,
    },
    /// A receive failed because the sending side disconnected (a peer rank
    /// panicked or returned early).
    Disconnected {
        /// The peer the message was expected from.
        from: usize,
    },
    /// A received message had a different type than expected, indicating
    /// mismatched collective calls across ranks.
    TypeMismatch {
        /// The peer the message came from.
        from: usize,
    },
    /// A rank's closure panicked during [`crate::Runtime::run`], or a rank
    /// *process* of the Unix-socket backend died (nonzero exit, signal, or
    /// vanished before delivering its result).
    RankPanicked {
        /// The rank whose thread panicked.
        rank: usize,
        /// The panic's payload message (the `&str`/`String` passed to
        /// `panic!`), so CI failures in the rank simulator are diagnosable
        /// from the log alone.  Non-string payloads are summarized.
        message: String,
    },
    /// A worker function dispatched through [`crate::Runtime::run_worker`]
    /// returned an application-level error on some rank.
    WorkerFailed {
        /// The rank whose worker returned the error.
        rank: usize,
        /// The worker's error message.
        message: String,
    },
    /// The Unix-socket rendezvous found a socket file left behind by a
    /// previous run (or two ranks were launched with the same
    /// `DMBS_RANK`).  Surfaced instead of silently hijacking the address.
    StaleSocket {
        /// The offending socket path.
        path: String,
    },
    /// A framed message on the socket transport ended mid-frame: the peer
    /// closed its stream after the length prefix but before the payload
    /// completed (typically a crash mid-send).
    TruncatedFrame {
        /// The peer the partial frame came from.
        from: usize,
    },
    /// A blocking receive or rendezvous step exceeded the transport's
    /// timeout.  Socket-backend collectives fail with this instead of
    /// hanging forever when a peer wedges.
    Timeout {
        /// The waiting rank.
        rank: usize,
        /// The peer (or `usize::MAX` during rendezvous/result collection
        /// when no single peer is implicated).
        waiting_for: usize,
        /// The timeout that elapsed, in milliseconds.
        millis: u64,
    },
    /// Setting up the Unix-socket mesh failed (bind, connect, spawn, or
    /// filesystem error).  Carries the stringified OS error so the enum
    /// stays `Eq`-comparable.
    SocketSetup {
        /// Description of the failing step and the underlying OS error.
        message: String,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::InvalidConfig(msg) => write!(f, "invalid communicator configuration: {msg}"),
            CommError::RankOutOfRange { rank, size } => {
                write!(f, "rank {rank} out of range for size {size}")
            }
            CommError::NotInGroup { rank } => write!(f, "rank {rank} is not a member of the group"),
            CommError::Disconnected { from } => {
                write!(f, "channel from rank {from} disconnected before a message arrived")
            }
            CommError::TypeMismatch { from } => write!(
                f,
                "message from rank {from} had an unexpected type (mismatched collectives?)"
            ),
            CommError::RankPanicked { rank, message } => {
                write!(f, "rank {rank} panicked during execution: {message}")
            }
            CommError::WorkerFailed { rank, message } => {
                write!(f, "worker on rank {rank} failed: {message}")
            }
            CommError::StaleSocket { path } => {
                write!(f, "stale socket file from a previous run: {path}")
            }
            CommError::TruncatedFrame { from } => {
                write!(f, "truncated frame from rank {from} (peer died mid-send?)")
            }
            CommError::Timeout { rank, waiting_for, millis } => {
                if *waiting_for == usize::MAX {
                    write!(f, "rank {rank} timed out after {millis} ms")
                } else {
                    write!(
                        f,
                        "rank {rank} timed out after {millis} ms waiting for rank {waiting_for}"
                    )
                }
            }
            CommError::SocketSetup { message } => {
                write!(f, "socket transport setup failed: {message}")
            }
        }
    }
}

impl Error for CommError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CommError::InvalidConfig("p must be > 0".into()).to_string().contains("p must"));
        assert!(CommError::RankOutOfRange { rank: 9, size: 4 }.to_string().contains("rank 9"));
        assert!(CommError::NotInGroup { rank: 2 }.to_string().contains("not a member"));
        assert!(CommError::Disconnected { from: 1 }.to_string().contains("disconnected"));
        assert!(CommError::TypeMismatch { from: 3 }.to_string().contains("unexpected type"));
        let panicked =
            CommError::RankPanicked { rank: 0, message: "index out of bounds".into() }.to_string();
        assert!(panicked.contains("panicked"));
        assert!(panicked.contains("index out of bounds"), "payload must reach the log: {panicked}");
        assert!(CommError::WorkerFailed { rank: 1, message: "bad spec".into() }
            .to_string()
            .contains("bad spec"));
        assert!(CommError::StaleSocket { path: "/tmp/rank-0.sock".into() }
            .to_string()
            .contains("rank-0.sock"));
        assert!(CommError::TruncatedFrame { from: 2 }.to_string().contains("truncated"));
        let t = CommError::Timeout { rank: 0, waiting_for: 3, millis: 500 }.to_string();
        assert!(t.contains("500 ms") && t.contains("rank 3"));
        let t2 = CommError::Timeout { rank: 0, waiting_for: usize::MAX, millis: 9 }.to_string();
        assert!(!t2.contains("waiting for"));
        assert!(CommError::SocketSetup { message: "bind failed".into() }
            .to_string()
            .contains("bind failed"));
    }

    #[test]
    fn is_send_sync_error() {
        fn check<T: std::error::Error + Send + Sync>() {}
        check::<CommError>();
    }
}

//! 1D and 1.5D partitionings of matrices across a process grid.
//!
//! The paper distributes the sampler matrix `Q^l`, the adjacency matrix `A`
//! and the feature matrix `H` with block-row partitionings:
//!
//! * the **Graph Replicated** algorithm (§5.1) splits `Q^l` into `p` block
//!   rows (1D) and replicates `A` everywhere;
//! * the **Graph Partitioned** algorithm (§5.2) uses a 1.5D scheme on a
//!   `p/c × c` process grid: both `Q^l` and `A` are split into `p/c` block
//!   rows, and each block row is replicated on the `c` processes of its
//!   process row;
//! * the training pipeline (§6) partitions the feature matrix `H` with the
//!   same 1.5D scheme so that feature fetching is an all-to-allv within a
//!   process column.

use crate::graph::GraphError;
use dmbs_matrix::{CsrMatrix, DenseMatrix};
use serde::{Deserialize, Serialize};

/// A 1D block-row partition of `n` rows over `p` parts.
///
/// Rows are split as evenly as possible: the first `n % p` parts get one
/// extra row.
///
/// # Example
///
/// ```
/// use dmbs_graph::partition::OneDPartition;
///
/// # fn main() -> Result<(), dmbs_graph::GraphError> {
/// let part = OneDPartition::new(10, 3)?;
/// assert_eq!(part.range(0), 0..4);
/// assert_eq!(part.range(2), 7..10);
/// assert_eq!(part.owner_of(7), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OneDPartition {
    n: usize,
    parts: usize,
    /// Start offset of each part, with a final sentinel equal to `n`.
    offsets: Vec<usize>,
}

impl OneDPartition {
    /// Creates a block-row partition of `n` rows into `parts` parts.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidConfig`] if `parts == 0`.
    pub fn new(n: usize, parts: usize) -> Result<Self, GraphError> {
        if parts == 0 {
            return Err(GraphError::InvalidConfig("partition requires at least one part".into()));
        }
        let base = n / parts;
        let extra = n % parts;
        let mut offsets = Vec::with_capacity(parts + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for i in 0..parts {
            acc += base + usize::from(i < extra);
            offsets.push(acc);
        }
        Ok(OneDPartition { n, parts, offsets })
    }

    /// Total number of rows being partitioned.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of parts.
    pub fn num_parts(&self) -> usize {
        self.parts
    }

    /// Row range owned by `part`.
    ///
    /// # Panics
    ///
    /// Panics if `part >= num_parts`.
    pub fn range(&self, part: usize) -> std::ops::Range<usize> {
        assert!(part < self.parts, "part index out of range");
        self.offsets[part]..self.offsets[part + 1]
    }

    /// Number of rows owned by `part`.
    ///
    /// # Panics
    ///
    /// Panics if `part >= num_parts`.
    pub fn part_len(&self, part: usize) -> usize {
        self.range(part).len()
    }

    /// The part that owns global row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= len`.
    pub fn owner_of(&self, row: usize) -> usize {
        assert!(row < self.n, "row out of range");
        // Binary search over offsets: find the last offset <= row.
        match self.offsets.binary_search(&row) {
            Ok(i) if i == self.parts => self.parts - 1,
            Ok(i) => i,
            Err(i) => i - 1,
        }
    }

    /// Converts a global row index to `(part, local_index)`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= len`.
    pub fn to_local(&self, row: usize) -> (usize, usize) {
        let part = self.owner_of(row);
        (part, row - self.offsets[part])
    }

    /// Converts `(part, local_index)` back to a global row index.
    ///
    /// # Panics
    ///
    /// Panics if the local index lies outside the part.
    pub fn to_global(&self, part: usize, local: usize) -> usize {
        let range = self.range(part);
        assert!(local < range.len(), "local index out of range for part");
        range.start + local
    }

    /// Splits a CSR matrix into one block-row matrix per part.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidConfig`] if the matrix row count does not
    /// match the partition length.
    pub fn split_csr(&self, matrix: &CsrMatrix) -> Result<Vec<CsrMatrix>, GraphError> {
        if matrix.rows() != self.n {
            return Err(GraphError::InvalidConfig(format!(
                "matrix has {} rows but partition covers {}",
                matrix.rows(),
                self.n
            )));
        }
        Ok((0..self.parts)
            .map(|p| {
                let r = self.range(p);
                matrix.row_block(r.start, r.end)
            })
            .collect())
    }

    /// Splits a dense matrix into one block-row matrix per part.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidConfig`] if the matrix row count does not
    /// match the partition length.
    pub fn split_dense(&self, matrix: &DenseMatrix) -> Result<Vec<DenseMatrix>, GraphError> {
        if matrix.rows() != self.n {
            return Err(GraphError::InvalidConfig(format!(
                "matrix has {} rows but partition covers {}",
                matrix.rows(),
                self.n
            )));
        }
        Ok((0..self.parts)
            .map(|p| {
                let r = self.range(p);
                let rows: Vec<usize> = r.collect();
                matrix.gather_rows(&rows).expect("partition ranges are in bounds")
            })
            .collect())
    }
}

/// A 1.5D partition: `p` processes arranged as a `p/c × c` grid, with matrices
/// split into `p/c` block rows, each replicated across the `c` processes of
/// its process row.
///
/// Process ranks are laid out row-major: rank = `i * c + j` for process
/// coordinates `(i, j)`.
///
/// # Example
///
/// ```
/// use dmbs_graph::partition::OneFiveDPartition;
///
/// # fn main() -> Result<(), dmbs_graph::GraphError> {
/// let grid = OneFiveDPartition::new(8, 2, 100)?;
/// assert_eq!(grid.grid_rows(), 4);
/// assert_eq!(grid.coords_of(5), (2, 1));
/// assert_eq!(grid.rank_of(2, 1), 5);
/// // Rank 5 stores block row 2.
/// assert_eq!(grid.block_row_of_rank(5), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OneFiveDPartition {
    p: usize,
    c: usize,
    rows: OneDPartition,
}

impl OneFiveDPartition {
    /// Creates a 1.5D partition of `n` matrix rows over `p` processes with
    /// replication factor `c`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidConfig`] if `p == 0`, `c == 0` or `c`
    /// does not divide `p`.
    pub fn new(p: usize, c: usize, n: usize) -> Result<Self, GraphError> {
        if p == 0 || c == 0 {
            return Err(GraphError::InvalidConfig("p and c must be positive".into()));
        }
        if !p.is_multiple_of(c) {
            return Err(GraphError::InvalidConfig(format!(
                "replication factor {c} must divide the number of processes {p}"
            )));
        }
        let rows = OneDPartition::new(n, p / c)?;
        Ok(OneFiveDPartition { p, c, rows })
    }

    /// Total number of processes.
    pub fn num_processes(&self) -> usize {
        self.p
    }

    /// Replication factor `c` (number of process columns).
    pub fn replication(&self) -> usize {
        self.c
    }

    /// Number of process rows (`p / c`), which equals the number of block
    /// rows.
    pub fn grid_rows(&self) -> usize {
        self.p / self.c
    }

    /// The underlying 1D block-row partition (over `p/c` block rows).
    pub fn row_partition(&self) -> &OneDPartition {
        &self.rows
    }

    /// Number of stages of the 1.5D SpGEMM algorithm (Algorithm 2):
    /// `p / c^2`, rounded up to at least 1.
    pub fn num_stages(&self) -> usize {
        (self.p / (self.c * self.c)).max(1)
    }

    /// Grid coordinates `(i, j)` of a rank.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= p`.
    pub fn coords_of(&self, rank: usize) -> (usize, usize) {
        assert!(rank < self.p, "rank out of range");
        (rank / self.c, rank % self.c)
    }

    /// Rank of grid coordinates `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= grid_rows` or `j >= c`.
    pub fn rank_of(&self, i: usize, j: usize) -> usize {
        assert!(i < self.grid_rows() && j < self.c, "grid coordinates out of range");
        i * self.c + j
    }

    /// The block-row index stored by `rank` (its process-row index).
    ///
    /// # Panics
    ///
    /// Panics if `rank >= p`.
    pub fn block_row_of_rank(&self, rank: usize) -> usize {
        self.coords_of(rank).0
    }

    /// Ranks in process row `i` (all of which replicate block row `i`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= grid_rows`.
    pub fn ranks_in_row(&self, i: usize) -> Vec<usize> {
        assert!(i < self.grid_rows(), "process row out of range");
        (0..self.c).map(|j| self.rank_of(i, j)).collect()
    }

    /// Ranks in process column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= c`.
    pub fn ranks_in_col(&self, j: usize) -> Vec<usize> {
        assert!(j < self.c, "process column out of range");
        (0..self.grid_rows()).map(|i| self.rank_of(i, j)).collect()
    }

    /// Global row range of block row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= grid_rows`.
    pub fn block_row_range(&self, i: usize) -> std::ops::Range<usize> {
        self.rows.range(i)
    }

    /// The block row that owns global matrix row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn block_row_of_global(&self, row: usize) -> usize {
        self.rows.owner_of(row)
    }

    /// Splits a CSR matrix into its `p/c` block rows (one per process row).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidConfig`] if the row count does not match.
    pub fn split_csr(&self, matrix: &CsrMatrix) -> Result<Vec<CsrMatrix>, GraphError> {
        self.rows.split_csr(matrix)
    }

    /// Splits a dense matrix into its `p/c` block rows (one per process row).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidConfig`] if the row count does not match.
    pub fn split_dense(&self, matrix: &DenseMatrix) -> Result<Vec<DenseMatrix>, GraphError> {
        self.rows.split_dense(matrix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmbs_matrix::CooMatrix;
    use proptest::prelude::*;

    #[test]
    fn one_d_even_and_uneven() {
        let even = OneDPartition::new(8, 4).unwrap();
        assert_eq!(even.part_len(0), 2);
        assert_eq!(even.range(3), 6..8);

        let uneven = OneDPartition::new(10, 3).unwrap();
        assert_eq!(uneven.part_len(0), 4);
        assert_eq!(uneven.part_len(1), 3);
        assert_eq!(uneven.part_len(2), 3);
        assert_eq!(uneven.range(1), 4..7);
    }

    #[test]
    fn one_d_owner_and_local_roundtrip() {
        let p = OneDPartition::new(10, 3).unwrap();
        for row in 0..10 {
            let (part, local) = p.to_local(row);
            assert!(p.range(part).contains(&row));
            assert_eq!(p.to_global(part, local), row);
        }
        assert_eq!(p.owner_of(0), 0);
        assert_eq!(p.owner_of(9), 2);
    }

    #[test]
    fn one_d_zero_rows() {
        let p = OneDPartition::new(0, 3).unwrap();
        assert!(p.is_empty());
        assert_eq!(p.part_len(0), 0);
        assert_eq!(p.part_len(2), 0);
    }

    #[test]
    fn one_d_requires_parts() {
        assert!(OneDPartition::new(5, 0).is_err());
    }

    #[test]
    fn one_d_more_parts_than_rows() {
        let p = OneDPartition::new(2, 5).unwrap();
        assert_eq!(p.part_len(0), 1);
        assert_eq!(p.part_len(1), 1);
        assert_eq!(p.part_len(4), 0);
    }

    #[test]
    fn split_csr_preserves_rows() {
        let coo =
            CooMatrix::from_triples(6, 4, vec![(0, 1, 1.0), (3, 2, 2.0), (5, 0, 3.0)]).unwrap();
        let m = CsrMatrix::from_coo(&coo);
        let part = OneDPartition::new(6, 3).unwrap();
        let blocks = part.split_csr(&m).unwrap();
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[0].rows(), 2);
        assert_eq!(blocks[1].get(1, 2), 2.0); // global row 3 = block 1 local row 1
        assert_eq!(blocks[2].get(1, 0), 3.0); // global row 5 = block 2 local row 1
        assert!(part.split_csr(&CsrMatrix::zeros(5, 4)).is_err());
    }

    #[test]
    fn split_dense_preserves_rows() {
        let d = DenseMatrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0], vec![4.0]]).unwrap();
        let part = OneDPartition::new(4, 2).unwrap();
        let blocks = part.split_dense(&d).unwrap();
        assert_eq!(blocks[1].get(0, 0), 3.0);
        assert!(part.split_dense(&DenseMatrix::zeros(3, 1)).is_err());
    }

    #[test]
    fn one_five_d_grid_layout() {
        let g = OneFiveDPartition::new(8, 2, 100).unwrap();
        assert_eq!(g.num_processes(), 8);
        assert_eq!(g.replication(), 2);
        assert_eq!(g.grid_rows(), 4);
        assert_eq!(g.num_stages(), 2);
        assert_eq!(g.coords_of(0), (0, 0));
        assert_eq!(g.coords_of(7), (3, 1));
        assert_eq!(g.rank_of(3, 1), 7);
        assert_eq!(g.ranks_in_row(1), vec![2, 3]);
        assert_eq!(g.ranks_in_col(0), vec![0, 2, 4, 6]);
        assert_eq!(g.block_row_of_rank(6), 3);
    }

    #[test]
    fn one_five_d_block_ranges_cover_rows() {
        let g = OneFiveDPartition::new(6, 3, 10).unwrap();
        assert_eq!(g.grid_rows(), 2);
        let total: usize = (0..g.grid_rows()).map(|i| g.block_row_range(i).len()).sum();
        assert_eq!(total, 10);
        assert_eq!(g.block_row_of_global(9), 1);
    }

    #[test]
    fn one_five_d_validation() {
        assert!(OneFiveDPartition::new(0, 1, 10).is_err());
        assert!(OneFiveDPartition::new(4, 0, 10).is_err());
        assert!(OneFiveDPartition::new(6, 4, 10).is_err());
        assert!(OneFiveDPartition::new(4, 4, 10).is_ok()); // c = p: fully replicated
    }

    #[test]
    fn one_five_d_num_stages_minimum_one() {
        // p = c^2 gives exactly 1 stage; p < c^2 clamps to 1.
        assert_eq!(OneFiveDPartition::new(4, 2, 10).unwrap().num_stages(), 1);
        assert_eq!(OneFiveDPartition::new(4, 4, 10).unwrap().num_stages(), 1);
        assert_eq!(OneFiveDPartition::new(16, 2, 10).unwrap().num_stages(), 4);
    }

    proptest! {
        #[test]
        fn prop_one_d_parts_cover_everything(n in 0usize..200, parts in 1usize..17) {
            let p = OneDPartition::new(n, parts).unwrap();
            let mut total = 0usize;
            for i in 0..parts {
                total += p.part_len(i);
                // Sizes differ by at most one.
                prop_assert!(p.part_len(i) + 1 >= n / parts);
                prop_assert!(p.part_len(i) <= n / parts + 1);
            }
            prop_assert_eq!(total, n);
        }

        #[test]
        fn prop_owner_is_consistent(n in 1usize..200, parts in 1usize..17, row_seed in 0usize..10_000) {
            let p = OneDPartition::new(n, parts).unwrap();
            let row = row_seed % n;
            let owner = p.owner_of(row);
            prop_assert!(p.range(owner).contains(&row));
        }

        #[test]
        fn prop_grid_rank_coords_roundtrip(pc in 1usize..8, c in 1usize..5) {
            let p = pc * c;
            let g = OneFiveDPartition::new(p, c, 64).unwrap();
            for rank in 0..p {
                let (i, j) = g.coords_of(rank);
                prop_assert_eq!(g.rank_of(i, j), rank);
            }
        }
    }
}

//! Error types for matrix construction and kernels.

use std::error::Error;
use std::fmt;

/// Errors produced by matrix constructors and kernels.
///
/// Shape errors are reported eagerly at construction / call time so that
/// higher layers (samplers, distributed algorithms) can rely on shapes being
/// consistent once a matrix value exists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// An index was outside the matrix dimensions.
    IndexOutOfBounds {
        /// Row index that was supplied.
        row: usize,
        /// Column index that was supplied.
        col: usize,
        /// Number of rows in the matrix.
        rows: usize,
        /// Number of columns in the matrix.
        cols: usize,
    },
    /// Two operands had incompatible shapes for the requested operation.
    DimensionMismatch {
        /// Human readable operation name, e.g. `"spgemm"`.
        op: &'static str,
        /// Shape of the left operand.
        lhs: (usize, usize),
        /// Shape of the right operand.
        rhs: (usize, usize),
    },
    /// Raw CSR/CSC buffers were structurally invalid (bad `indptr`, indices
    /// out of range, or length mismatch between indices and values).
    InvalidStructure(String),
    /// An operation that requires a non-empty matrix or row received an empty
    /// one (for example sampling from a row with no nonzeros).
    Empty(&'static str),
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::IndexOutOfBounds { row, col, rows, cols } => {
                write!(f, "index ({row}, {col}) out of bounds for {rows}x{cols} matrix")
            }
            MatrixError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            MatrixError::InvalidStructure(msg) => write!(f, "invalid sparse structure: {msg}"),
            MatrixError::Empty(what) => write!(f, "operation requires non-empty {what}"),
        }
    }
}

impl Error for MatrixError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_out_of_bounds() {
        let e = MatrixError::IndexOutOfBounds { row: 7, col: 3, rows: 4, cols: 4 };
        assert_eq!(e.to_string(), "index (7, 3) out of bounds for 4x4 matrix");
    }

    #[test]
    fn display_dimension_mismatch() {
        let e = MatrixError::DimensionMismatch { op: "spgemm", lhs: (2, 3), rhs: (4, 5) };
        assert!(e.to_string().contains("spgemm"));
        assert!(e.to_string().contains("2x3"));
        assert!(e.to_string().contains("4x5"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MatrixError>();
    }

    #[test]
    fn display_invalid_structure_and_empty() {
        assert!(MatrixError::InvalidStructure("bad indptr".into())
            .to_string()
            .contains("bad indptr"));
        assert!(MatrixError::Empty("row").to_string().contains("row"));
    }
}

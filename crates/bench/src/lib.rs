//! Shared helpers for the experiment harnesses.
//!
//! Every table and figure of the paper's evaluation has a corresponding
//! binary in `src/bin/`; this library holds the pieces they share: scaled
//! dataset presets, the simulated "GPU count" sweeps, and plain-text table
//! printing.  The harnesses print the same rows/series the paper reports so
//! that `EXPERIMENTS.md` can record paper-vs-measured values side by side.
//!
//! Scale knobs: the full-paper sizes (128 GPUs, 111M-vertex graphs) do not
//! fit a CPU-only reproduction, so the defaults are scaled down.  Setting the
//! environment variable `DMBS_SCALE=large` increases graph sizes and the rank
//! sweep; `DMBS_SCALE=small` (default) keeps every harness under a few
//! minutes.

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

use dmbs_gnn::trainer::SamplerChoice;
use dmbs_gnn::{EpochStats, TrainingConfig, TrainingReport, TrainingSession};
use dmbs_graph::datasets::{build_dataset, Dataset, DatasetConfig, DatasetKind};
use dmbs_sampling::baseline::PerVertexSageSampler;
use dmbs_sampling::{
    BulkSamplerConfig, DistConfig, GraphSageSampler, LocalBackend, ReplicatedBackend,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Scale of a harness run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Fast defaults (seconds to a couple of minutes per harness).
    Small,
    /// Larger graphs and wider rank sweeps (several minutes per harness).
    Large,
}

impl Scale {
    /// Reads the scale from the `DMBS_SCALE` environment variable.
    pub fn from_env() -> Self {
        match std::env::var("DMBS_SCALE").as_deref() {
            Ok("large") | Ok("LARGE") => Scale::Large,
            _ => Scale::Small,
        }
    }

    /// The simulated rank ("GPU") counts swept by the scaling figures.
    pub fn rank_counts(&self) -> Vec<usize> {
        match self {
            Scale::Small => vec![4, 8, 16],
            Scale::Large => vec![4, 8, 16, 32],
        }
    }

    /// log2 of the stand-in graph sizes.
    pub fn dataset_scale(&self) -> u32 {
        match self {
            Scale::Small => 11, // 2048 vertices
            Scale::Large => 13, // 8192 vertices
        }
    }
}

/// Builds the scaled-down stand-in for one of the paper's datasets
/// (Table 3) with a deterministic seed.
pub fn dataset(kind: DatasetKind, scale: Scale) -> Dataset {
    let s = scale.dataset_scale();
    let config = match kind {
        DatasetKind::Products => DatasetConfig::products_like(s),
        DatasetKind::Protein => DatasetConfig::protein_like(s.saturating_sub(1)),
        DatasetKind::Papers => DatasetConfig::papers_like(s),
    };
    build_dataset(&config, &mut StdRng::seed_from_u64(kind_seed(kind))).expect("valid preset")
}

fn kind_seed(kind: DatasetKind) -> u64 {
    match kind {
        DatasetKind::Products => 101,
        DatasetKind::Protein => 202,
        DatasetKind::Papers => 303,
    }
}

/// Scaled-down training hyper-parameters derived from Table 4: the fanout
/// structure and layer count are the paper's, the batch size is shrunk with
/// the graphs.
pub fn sage_training_config(dataset: &Dataset) -> dmbs_gnn::TrainingConfig {
    let batch_size = (dataset.train_set.len() / 8).clamp(8, 256);
    dmbs_gnn::TrainingConfig {
        fanouts: vec![15, 10, 5],
        hidden_dim: 64,
        batch_size,
        bulk_size: 8,
        learning_rate: 0.02,
        epochs: 2,
        seed: 7,
    }
}

/// Trains on a single device through a [`TrainingSession`] with a
/// [`LocalBackend`] (streaming bulk prefetch), mirroring the legacy
/// `train_single_device` harness entry point.
///
/// # Panics
///
/// Panics when the session cannot be built or training fails — harnesses
/// treat that as a fatal setup error.
pub fn train_local(
    dataset: &Arc<Dataset>,
    config: &TrainingConfig,
    choice: SamplerChoice,
) -> TrainingReport {
    let backend = LocalBackend::new(BulkSamplerConfig::new(config.batch_size, config.bulk_size))
        .expect("valid bulk configuration");
    let report = match choice {
        SamplerChoice::MatrixSage => TrainingSession::builder()
            .dataset(Arc::clone(dataset))
            .sampler(GraphSageSampler::new(config.fanouts.clone()).with_self_loops())
            .backend(backend)
            .hidden_dim(config.hidden_dim)
            .learning_rate(config.learning_rate)
            .epochs(config.epochs)
            .seed(config.seed)
            .build()
            .and_then(|s| s.train()),
        SamplerChoice::PerVertexSage => TrainingSession::builder()
            .dataset(Arc::clone(dataset))
            .sampler(PerVertexSageSampler::new(config.fanouts.clone()).with_self_loops())
            .backend(backend)
            .hidden_dim(config.hidden_dim)
            .learning_rate(config.learning_rate)
            .epochs(config.epochs)
            .seed(config.seed)
            .build()
            .and_then(|s| s.train()),
    };
    report.expect("single-device training failed")
}

/// Trains data-parallel over `p` simulated ranks through a
/// [`TrainingSession`] with a [`ReplicatedBackend`], mirroring the legacy
/// `train_distributed` harness entry point.
///
/// # Panics
///
/// Panics when the session cannot be built or training fails.
pub fn train_replicated(
    dataset: &Arc<Dataset>,
    config: &TrainingConfig,
    p: usize,
    c: usize,
    replicate_features: bool,
    choice: SamplerChoice,
) -> Vec<EpochStats> {
    let dist = DistConfig::new(p, c, BulkSamplerConfig::new(config.batch_size, config.bulk_size));
    let backend = ReplicatedBackend::new(dist).expect("valid distribution configuration");
    let report = match choice {
        SamplerChoice::MatrixSage => {
            let builder = TrainingSession::builder()
                .dataset(Arc::clone(dataset))
                .sampler(GraphSageSampler::new(config.fanouts.clone()).with_self_loops())
                .backend(backend)
                .partition(c)
                .hidden_dim(config.hidden_dim)
                .learning_rate(config.learning_rate)
                .epochs(config.epochs)
                .seed(config.seed)
                .without_evaluation();
            let builder =
                if replicate_features { builder } else { builder.without_feature_replication() };
            builder.build().and_then(|s| s.train())
        }
        SamplerChoice::PerVertexSage => {
            let builder = TrainingSession::builder()
                .dataset(Arc::clone(dataset))
                .sampler(PerVertexSageSampler::new(config.fanouts.clone()).with_self_loops())
                .backend(backend)
                .partition(c)
                .hidden_dim(config.hidden_dim)
                .learning_rate(config.learning_rate)
                .epochs(config.epochs)
                .seed(config.seed)
                .without_evaluation();
            let builder =
                if replicate_features { builder } else { builder.without_feature_replication() };
            builder.build().and_then(|s| s.train())
        }
    };
    report.expect("distributed training failed").epochs
}

/// The replication factor used for a given rank count, mirroring the paper's
/// choice of the largest `c` that memory allows (Figure 4 annotations).
pub fn replication_for(p: usize) -> usize {
    if p >= 16 {
        4
    } else if p >= 2 {
        2
    } else {
        1
    }
}

/// Prints a table header followed by aligned rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let widths: Vec<usize> = header
        .iter()
        .enumerate()
        .map(|(i, h)| rows.iter().map(|r| r[i].len()).chain([h.len()]).max().unwrap_or(h.len()))
        .collect();
    let fmt_row = |cells: &[String]| {
        cells.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}")).collect::<Vec<_>>().join("  ")
    };
    println!("{}", fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats seconds with three significant decimals.
pub fn secs(x: f64) -> String {
    format!("{x:.4}")
}

pub mod json {
    //! A minimal JSON reader for the committed `BENCH_*.json` baselines.
    //!
    //! The workspace vendors only a marker-trait `serde` stand-in (no
    //! `serde_json`), and the CI perf-regression gate needs to *read back*
    //! the benchmark records it wrote; this module is the small
    //! recursive-descent parser that closes the loop.  It supports the full
    //! JSON grammar the harness emits (objects, arrays, strings with basic
    //! escapes, numbers incl. scientific notation, booleans, null).

    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any JSON number (parsed as `f64`, which is lossless for the
        /// integer counters the benches emit — they stay far below 2^53).
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Array(Vec<Value>),
        /// An object, in source order (duplicate keys keep the last).
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// Parses a JSON document.
        ///
        /// # Errors
        ///
        /// Returns a human-readable message (with byte offset) on malformed
        /// input or trailing garbage.
        pub fn parse(text: &str) -> Result<Value, String> {
            let bytes = text.as_bytes();
            let mut pos = 0;
            let value = parse_value(bytes, &mut pos)?;
            skip_ws(bytes, &mut pos);
            if pos != bytes.len() {
                return Err(format!("trailing garbage at byte {pos}"));
            }
            Ok(value)
        }

        /// Object field lookup.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Object(fields) => {
                    fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v)
                }
                _ => None,
            }
        }

        /// The value as a number, if it is one.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(x) => Some(*x),
                _ => None,
            }
        }

        /// The value as a bool, if it is one.
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }

        /// The value as a string slice, if it is one.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The value as an array slice, if it is one.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(items) => Some(items),
                _ => None,
            }
        }
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
        if *pos < bytes.len() && bytes[*pos] == byte {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", byte as char, *pos))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'{') => parse_object(bytes, pos),
            Some(b'[') => parse_array(bytes, pos),
            Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
            Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
            Some(_) => parse_number(bytes, pos),
            None => Err("unexpected end of input".into()),
        }
    }

    fn parse_keyword(
        bytes: &[u8],
        pos: &mut usize,
        word: &str,
        value: Value,
    ) -> Result<Value, String> {
        if bytes[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", *pos))
        }
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < bytes.len()
            && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            *pos += 1;
        }
        std::str::from_utf8(&bytes[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(bytes, pos, b'"')?;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    let escape = bytes.get(*pos).ok_or("unterminated escape")?;
                    out.push(match escape {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        b'b' => '\u{8}',
                        b'f' => '\u{c}',
                        b'u' => {
                            let hex = bytes
                                .get(*pos + 1..*pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("invalid \\u escape at byte {}", *pos))?;
                            *pos += 4;
                            char::from_u32(hex).unwrap_or('\u{fffd}')
                        }
                        other => return Err(format!("unknown escape \\{}", *other as char)),
                    });
                    *pos += 1;
                }
                Some(&byte) => {
                    // Plain UTF-8 passes through byte-wise; collect the full
                    // code point so multi-byte characters survive.
                    let ch_len = utf8_len(byte);
                    let chunk = bytes
                        .get(*pos..*pos + ch_len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| format!("invalid UTF-8 at byte {}", *pos))?;
                    out.push_str(chunk);
                    *pos += ch_len;
                }
            }
        }
    }

    fn utf8_len(first: u8) -> usize {
        match first {
            0x00..=0x7F => 1,
            0xC0..=0xDF => 2,
            0xE0..=0xEF => 3,
            _ => 4,
        }
    }

    fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
            }
        }
    }

    fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'{')?;
        let mut fields = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            skip_ws(bytes, pos);
            let key = parse_string(bytes, pos)?;
            skip_ws(bytes, pos);
            expect(bytes, pos, b':')?;
            let value = parse_value(bytes, pos)?;
            fields.push((key, value));
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
            }
        }
    }
}

pub mod transport;

pub mod check {
    //! The CI perf-regression gate: compare a freshly-run `BENCH_*.json`
    //! against a committed baseline.
    //!
    //! Three classes of drift, per the tripwire contract:
    //!
    //! * **kernel identity** — any `identical_to_*` field that is `false` in
    //!   the fresh run is a hard failure (a kernel diverged from its
    //!   reference formulation);
    //! * **modeled schedule** — the deterministic counters (words, messages,
    //!   cache hits/misses, saved words) must match the baseline **exactly**;
    //!   a schedule regression fails the build instead of drifting;
    //! * **wall clock** — machine-dependent, so a slowdown beyond the
    //!   tolerance only soft-warns.

    use crate::json::Value;

    /// Counters that must match the committed baseline bit-for-bit: they are
    /// functions of the (seeded, deterministic) modeled schedule, never of
    /// the host.
    const EXACT_FIELDS: &[&str] = &[
        "words_per_epoch",
        "words_total",
        "messages",
        "cache_hits",
        "cache_misses",
        "words_saved",
        "items",
        // Serving-tier counters (`BENCH_serve.json`): the open-loop trace is
        // replayed in deterministic virtual time, so queue dynamics — how
        // requests coalesce, shed, and hit the hot tier — are exact.
        "requests_offered",
        "requests_served",
        "batches",
        "coalescing_x1000",
        "hot_hits",
        "hot_misses",
        "shed_admission",
        "shed_timeout",
        // Transport-calibration counters (`BENCH_transport.json`): both
        // transports replay the same seeded schedule, so the wire bill and
        // the cache's effect on it are exact on the socket backend too.
        "epochs",
        // Wire-compression counters (`BENCH_compress.json`): encoded bytes
        // are a deterministic function of the fetched rows and the codec, so
        // the byte books and the ×1000-scaled reduction ratio are exact.
        "bytes_on_wire",
        "bytes_saved",
        "bytes_reduction_x1000",
        // Dynamic-graph counters (`BENCH_dynamic.json`): the ingest schedule
        // is seeded and the invalidation books are double-entry functions of
        // it, so every ledger entry — and the words precise invalidation
        // avoids refetching vs the flush-all baseline — is exact.
        "ingest_ops",
        "rows_invalidated",
        "rows_retained",
        "invalidation_words",
        "retained_words",
        "refetch_words_avoided",
        // Auto-tuner counters (`BENCH_autotune.json`): the predicted columns
        // are pure functions of the deterministic probe books, and the
        // chosen schedule's knobs ride the key fields — choice drift or
        // prediction drift hard-fails.
        "overlap_on",
        "candidates",
        "predicted_words",
        "predicted_bytes_on_wire",
        "predicted_comm_ns",
    ];

    /// Measured wall-clock fields: slower-than-baseline beyond the tolerance
    /// soft-warns (different machines legitimately differ).  Serving latency
    /// percentiles ride the modeled service-time constants, which are tuning
    /// knobs rather than schedule contracts — latency drift warns, the
    /// counters above are what hard-fail.
    const SOFT_FIELDS: &[&str] = &[
        "wall_s",
        "modeled_epoch_s",
        "p50_s",
        "p99_s",
        "p999_s",
        // Transport calibration: real-wire wall clock and the α–β constants
        // fitted from it vary with the host; only their counters hard-fail.
        "measured_epoch_s",
        "fit_comm_epoch_s",
        "fit_alpha_s",
        "fit_beta_s_per_word",
        // Auto-tuner seconds: both columns mix measured compute into the
        // α–β model, so they drift with the host; the counters above and
        // the chosen-schedule key fields are what hard-fail.
        "predicted_epoch_s",
        "realized_epoch_s",
    ];

    /// Fields identifying a record within its file (whichever are present).
    const KEY_FIELDS: &[&str] = &[
        "bench",
        "kernel",
        "threads",
        "p",
        "c",
        "mode",
        "policy",
        "transport",
        "codec",
        "qps",
        "window_us",
    ];

    /// How bad one comparison finding is.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Severity {
        /// Fails the gate (exit non-zero).
        Hard,
        /// Printed as a warning only.
        Soft,
    }

    /// One divergence between baseline and fresh run.
    #[derive(Debug, Clone)]
    pub struct Finding {
        /// Hard failures fail the build; soft ones warn.
        pub severity: Severity,
        /// Human-readable description naming the record and field.
        pub message: String,
    }

    impl Finding {
        fn hard(message: String) -> Self {
            Finding { severity: Severity::Hard, message }
        }
        fn soft(message: String) -> Self {
            Finding { severity: Severity::Soft, message }
        }
    }

    /// True when every finding is soft (the gate passes).
    pub fn passes(findings: &[Finding]) -> bool {
        findings.iter().all(|f| f.severity == Severity::Soft)
    }

    /// The identity of one record: its key fields rendered `k=v`, joined.
    fn record_key(record: &Value) -> String {
        let mut parts = Vec::new();
        for &key in KEY_FIELDS {
            if let Some(v) = record.get(key) {
                let rendered = match v {
                    Value::Str(s) => s.clone(),
                    Value::Num(x) => format!("{x}"),
                    other => format!("{other:?}"),
                };
                parts.push(format!("{key}={rendered}"));
            }
        }
        if parts.is_empty() {
            "<unkeyed>".to_string()
        } else {
            parts.join(" ")
        }
    }

    /// Compares one fresh benchmark document against its committed baseline.
    /// `label` names the file in messages; `wall_tolerance` is the allowed
    /// relative wall-clock regression (e.g. `0.5` = 50% slower) before a
    /// soft warning fires.
    pub fn compare_bench(
        label: &str,
        baseline: &Value,
        fresh: &Value,
        wall_tolerance: f64,
    ) -> Vec<Finding> {
        let mut findings = Vec::new();
        let empty: &[Value] = &[];
        let base_records = baseline.get("records").and_then(Value::as_array).unwrap_or(empty);
        let fresh_records = fresh.get("records").and_then(Value::as_array).unwrap_or(empty);
        if base_records.is_empty() {
            findings.push(Finding::hard(format!("{label}: baseline has no records to compare")));
            return findings;
        }

        for base in base_records {
            let key = record_key(base);
            let Some(new) = fresh_records.iter().find(|r| record_key(r) == key) else {
                findings.push(Finding::hard(format!(
                    "{label} [{key}]: record missing from the fresh run"
                )));
                continue;
            };
            compare_record(label, &key, base, new, wall_tolerance, &mut findings);
        }
        // Identity flags of *new* fresh records are still binding even when
        // the baseline predates them.
        for new in fresh_records {
            check_identity_flags(label, &record_key(new), new, &mut findings);
        }
        findings
    }

    fn compare_record(
        label: &str,
        key: &str,
        base: &Value,
        new: &Value,
        wall_tolerance: f64,
        findings: &mut Vec<Finding>,
    ) {
        for &field in EXACT_FIELDS {
            match (base.get(field).and_then(Value::as_f64), new.get(field).and_then(Value::as_f64))
            {
                (Some(want), Some(got)) if want != got => {
                    findings.push(Finding::hard(format!(
                        "{label} [{key}] {field}: expected {want}, measured {got} — the modeled \
                         schedule changed"
                    )));
                }
                (Some(_), None) => findings.push(Finding::hard(format!(
                    "{label} [{key}] {field}: present in baseline, missing from the fresh run"
                ))),
                _ => {}
            }
        }
        for &field in SOFT_FIELDS {
            if let (Some(want), Some(got)) =
                (base.get(field).and_then(Value::as_f64), new.get(field).and_then(Value::as_f64))
            {
                if want > 0.0 && got > want * (1.0 + wall_tolerance) {
                    findings.push(Finding::soft(format!(
                        "{label} [{key}] {field}: {got:.4}s vs baseline {want:.4}s \
                         (> {:.0}% slower; machine-dependent, not failing the gate)",
                        wall_tolerance * 100.0
                    )));
                }
            }
        }
    }

    fn check_identity_flags(label: &str, key: &str, record: &Value, findings: &mut Vec<Finding>) {
        if let Value::Object(fields) = record {
            for (name, value) in fields {
                if (name.starts_with("identical") || name.ends_with("identical"))
                    && value.as_bool() == Some(false)
                {
                    findings.push(Finding::hard(format!(
                        "{label} [{key}] {name} is false — a kernel diverged from its \
                         reference formulation"
                    )));
                }
            }
        }
    }

    /// Loads and compares `file` from two directories; a missing or
    /// unparsable baseline is a hard finding (the gate must not silently
    /// pass when its reference disappears), a missing fresh file means the
    /// sweep did not run and is also hard.
    pub fn compare_file(
        baseline_dir: &std::path::Path,
        fresh_dir: &std::path::Path,
        file: &str,
        wall_tolerance: f64,
    ) -> Vec<Finding> {
        let load = |dir: &std::path::Path, what: &str| -> Result<Value, Finding> {
            let path = dir.join(file);
            let text = std::fs::read_to_string(&path).map_err(|e| {
                Finding::hard(format!("{file}: cannot read {what} {}: {e}", path.display()))
            })?;
            Value::parse(&text)
                .map_err(|e| Finding::hard(format!("{file}: {what} is not valid JSON: {e}")))
        };
        let baseline = match load(baseline_dir, "baseline") {
            Ok(v) => v,
            Err(f) => return vec![f],
        };
        let fresh = match load(fresh_dir, "fresh run") {
            Ok(v) => v,
            Err(f) => return vec![f],
        };
        compare_bench(file, &baseline, &fresh, wall_tolerance)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn doc(words: u64, wall: f64, identical: bool) -> Value {
            Value::parse(&format!(
                r#"{{"bench": "fetch_epoch", "records": [
                    {{"p": 4, "c": 2, "mode": "pinned", "words_per_epoch": {words},
                      "messages": 96, "wall_s": {wall},
                      "identical_to_uncached": {identical}}}
                ]}}"#
            ))
            .unwrap()
        }

        #[test]
        fn identical_runs_pass() {
            let findings =
                compare_bench("BENCH_fetch.json", &doc(100, 0.5, true), &doc(100, 0.5, true), 0.5);
            assert!(findings.is_empty(), "{findings:?}");
            assert!(passes(&findings));
        }

        #[test]
        fn injected_word_regression_hard_fails() {
            // The acceptance demonstration: a schedule regression (more words
            // on the wire than the committed baseline) fails the gate.
            let findings =
                compare_bench("BENCH_fetch.json", &doc(100, 0.5, true), &doc(140, 0.5, true), 0.5);
            assert!(!passes(&findings));
            assert!(findings
                .iter()
                .any(|f| f.severity == Severity::Hard && f.message.contains("words_per_epoch")));
        }

        #[test]
        fn broken_kernel_identity_hard_fails() {
            let findings =
                compare_bench("BENCH_fetch.json", &doc(100, 0.5, true), &doc(100, 0.5, false), 0.5);
            assert!(findings
                .iter()
                .any(|f| f.severity == Severity::Hard && f.message.contains("identical")));
        }

        #[test]
        fn wall_clock_regression_only_soft_warns() {
            let findings =
                compare_bench("BENCH_fetch.json", &doc(100, 0.5, true), &doc(100, 2.0, true), 0.5);
            assert_eq!(findings.len(), 1);
            assert_eq!(findings[0].severity, Severity::Soft);
            assert!(passes(&findings), "wall regressions must not fail the gate");
            // Within tolerance: silent.
            assert!(compare_bench("f", &doc(100, 0.5, true), &doc(100, 0.7, true), 0.5).is_empty());
        }

        #[test]
        fn serve_counter_drift_hard_fails_and_latency_soft_warns() {
            let serve_doc = |coalescing: u64, p99: f64| {
                Value::parse(&format!(
                    r#"{{"bench": "serve_openloop", "records": [
                        {{"qps": 8000, "window_us": 1000, "requests_offered": 512,
                          "requests_served": 500, "batches": 156,
                          "coalescing_x1000": {coalescing}, "hot_hits": 40,
                          "hot_misses": 460, "shed_admission": 12, "shed_timeout": 0,
                          "p99_s": {p99}, "identical_across_replays": true}}
                    ]}}"#
                ))
                .unwrap()
            };
            // Queue-dynamics drift (coalescing factor moved): hard failure.
            let findings = compare_bench(
                "BENCH_serve.json",
                &serve_doc(3200, 0.002),
                &serve_doc(2100, 0.002),
                0.5,
            );
            assert!(!passes(&findings));
            assert!(findings
                .iter()
                .any(|f| f.severity == Severity::Hard && f.message.contains("coalescing_x1000")));
            // Latency drift alone: soft warning, gate still passes.
            let findings = compare_bench(
                "BENCH_serve.json",
                &serve_doc(3200, 0.002),
                &serve_doc(3200, 0.009),
                0.5,
            );
            assert!(passes(&findings));
            assert!(findings
                .iter()
                .any(|f| f.severity == Severity::Soft && f.message.contains("p99_s")));
        }

        #[test]
        fn byte_book_drift_hard_fails_and_codec_keys_records() {
            let compress_doc = |codec: &str, bytes: u64, saved: u64| {
                Value::parse(&format!(
                    r#"{{"bench": "compress_fetch", "records": [
                        {{"p": 4, "c": 2, "codec": "{codec}", "words_per_epoch": 4096,
                          "bytes_on_wire": {bytes}, "bytes_saved": {saved},
                          "bytes_reduction_x1000": 3831, "wall_s": 0.01,
                          "identical_to_exact_schedule": true}}
                    ]}}"#
                ))
                .unwrap()
            };
            // A moved byte book is a schedule regression: hard failure.
            let findings = compare_bench(
                "BENCH_compress.json",
                &compress_doc("int8", 8552, 24216),
                &compress_doc("int8", 9552, 23216),
                0.5,
            );
            assert!(!passes(&findings));
            assert!(findings
                .iter()
                .any(|f| f.severity == Severity::Hard && f.message.contains("bytes_on_wire")));
            assert!(findings
                .iter()
                .any(|f| f.severity == Severity::Hard && f.message.contains("bytes_saved")));
            // A different codec is a different record, not a drifted one.
            let findings = compare_bench(
                "BENCH_compress.json",
                &compress_doc("int8", 8552, 24216),
                &compress_doc("fp16", 8552, 24216),
                0.5,
            );
            assert!(findings.iter().any(|f| f.message.contains("missing from the fresh run")));
        }

        #[test]
        fn missing_record_and_empty_baseline_hard_fail() {
            let empty = Value::parse(r#"{"records": []}"#).unwrap();
            let findings = compare_bench("f", &empty, &doc(100, 0.5, true), 0.5);
            assert!(!passes(&findings));
            let other_key = Value::parse(
                r#"{"records": [{"p": 8, "c": 4, "mode": "pinned", "words_per_epoch": 1}]}"#,
            )
            .unwrap();
            let findings = compare_bench("f", &other_key, &doc(100, 0.5, true), 0.5);
            assert!(findings.iter().any(|f| f.message.contains("missing from the fresh run")));
        }
    }
}

pub mod stats {
    //! Shared summary statistics for the benchmark binaries: best-of-reps
    //! timing, means, nearest-rank percentiles, and the latency summary the
    //! serving bench reports.  Hoisted here so `perf_baseline`'s kernel
    //! sweeps and the `--serve` open-loop generator agree on one definition
    //! instead of growing private copies.

    use std::time::Instant;

    /// Best-of-`reps` wall time of `f`, together with the last result (the
    /// sweeps are deterministic, so every rep returns the same value).
    pub fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
        let mut best = f64::INFINITY;
        let mut result = None;
        for _ in 0..reps {
            let start = Instant::now();
            let value = f();
            best = best.min(start.elapsed().as_secs_f64());
            result = Some(value);
        }
        (best, result.expect("reps >= 1"))
    }

    /// Arithmetic mean; `0.0` for an empty slice.
    pub fn mean(xs: &[f64]) -> f64 {
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    }

    /// Nearest-rank percentile of **sorted** data: the smallest value with at
    /// least `q` of the mass at or below it (`q` in `[0, 1]`).  `q = 0` is
    /// the minimum, `q = 1` the maximum; `0.0` for an empty slice.
    pub fn percentile(sorted: &[f64], q: f64) -> f64 {
        if sorted.is_empty() {
            return 0.0;
        }
        debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input must be sorted");
        let rank = (q * sorted.len() as f64).ceil() as usize;
        sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
    }

    /// The tail-latency digest of one serving run: count, mean, and the
    /// p50/p99/p999/max ladder, all in the same unit as the input samples.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct LatencySummary {
        /// Number of samples summarized.
        pub count: usize,
        /// Arithmetic mean.
        pub mean: f64,
        /// Median (nearest-rank).
        pub p50: f64,
        /// 99th percentile (nearest-rank).
        pub p99: f64,
        /// 99.9th percentile (nearest-rank).
        pub p999: f64,
        /// Worst sample.
        pub max: f64,
    }

    impl LatencySummary {
        /// Summarizes `samples` (any order); all-zero for an empty slice.
        pub fn from_samples(samples: &[f64]) -> Self {
            let mut sorted = samples.to_vec();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
            LatencySummary {
                count: sorted.len(),
                mean: mean(&sorted),
                p50: percentile(&sorted, 0.50),
                p99: percentile(&sorted, 0.99),
                p999: percentile(&sorted, 0.999),
                max: sorted.last().copied().unwrap_or(0.0),
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn time_best_returns_the_value_and_a_finite_wall() {
            let (wall, v) = time_best(3, || 41 + 1);
            assert_eq!(v, 42);
            assert!(wall.is_finite() && wall >= 0.0);
        }

        #[test]
        fn nearest_rank_percentiles_match_the_definition() {
            let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
            assert_eq!(percentile(&sorted, 0.0), 1.0);
            assert_eq!(percentile(&sorted, 0.50), 50.0);
            assert_eq!(percentile(&sorted, 0.99), 99.0);
            assert_eq!(percentile(&sorted, 0.999), 100.0);
            assert_eq!(percentile(&sorted, 1.0), 100.0);
            // Single sample: every percentile is that sample.
            assert_eq!(percentile(&[7.0], 0.5), 7.0);
            assert_eq!(percentile(&[], 0.99), 0.0);
        }

        #[test]
        fn summary_digests_unsorted_samples() {
            let s = LatencySummary::from_samples(&[3.0, 1.0, 2.0, 4.0]);
            assert_eq!(s.count, 4);
            assert_eq!(s.mean, 2.5);
            assert_eq!(s.p50, 2.0);
            assert_eq!(s.p99, 4.0);
            assert_eq!(s.max, 4.0);
            let empty = LatencySummary::from_samples(&[]);
            assert_eq!(empty.count, 0);
            assert_eq!(empty.max, 0.0);
        }

        #[test]
        fn mean_handles_edges() {
            assert_eq!(mean(&[]), 0.0);
            assert_eq!(mean(&[2.0, 4.0]), 3.0);
        }
    }
}

#[cfg(test)]
mod json_tests {
    use super::json::Value;

    #[test]
    fn parses_a_bench_file_shape() {
        let text = r#"{
  "bench": "spgemm",
  "workload": "P = Q*A, rmat scale 8 & more",
  "items_per_run": 123456,
  "host_threads": 1,
  "records": [
    {"threads": 1, "wall_s": 1.234560e-2, "identical_to_serial": true},
    {"threads": 2, "wall_s": 6.5e-3, "identical_to_serial": false}
  ],
  "empty_array": [],
  "empty_obj": {},
  "nothing": null
}"#;
        let v = Value::parse(text).unwrap();
        assert_eq!(v.get("bench").unwrap().as_str(), Some("spgemm"));
        assert_eq!(v.get("items_per_run").unwrap().as_f64(), Some(123456.0));
        assert_eq!(v.get("workload").unwrap().as_str(), Some("P = Q*A, rmat scale 8 & more"));
        let records = v.get("records").unwrap().as_array().unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].get("wall_s").unwrap().as_f64(), Some(1.23456e-2));
        assert_eq!(records[1].get("identical_to_serial").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("empty_array").unwrap().as_array().unwrap().len(), 0);
        assert_eq!(v.get("nothing"), Some(&Value::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1, 2,]").is_err());
        assert!(Value::parse("{\"a\" 1}").is_err());
        assert!(Value::parse("123 456").is_err());
        assert!(Value::parse("\"unterminated").is_err());
        assert!(Value::parse("nope").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Value::parse(r#""a\nb\t\"q\"\\ é""#).unwrap();
        assert_eq!(v.as_str(), Some("a\nb\t\"q\"\\ é"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults() {
        assert_eq!(Scale::Small.rank_counts(), vec![4, 8, 16]);
        assert!(Scale::Large.dataset_scale() > Scale::Small.dataset_scale());
    }

    #[test]
    fn dataset_presets_build() {
        let d = dataset(DatasetKind::Products, Scale::Small);
        assert!(d.num_vertices() >= 1024);
        let cfg = sage_training_config(&d);
        assert_eq!(cfg.fanouts.len(), 3);
        assert!(cfg.batch_size >= 8);
    }

    #[test]
    fn replication_choice_is_monotone() {
        assert!(replication_for(4) <= replication_for(16));
        assert_eq!(replication_for(1), 1);
    }

    #[test]
    fn secs_formats() {
        assert_eq!(secs(1.23456), "1.2346");
    }
}

//! Structure-aware extraction kernels: the cheap tiers of the three-tier
//! kernel story.
//!
//! The paper's extraction products are SpGEMMs against *selection matrices*
//! with exactly one nonzero per row (`Q_R`, §4.2.3) or per column (`Q_C`,
//! §8.2.2).  Feeding those through the general Gustavson kernel pays hash /
//! dense-accumulator prices for what is structurally a gather, so the
//! kernels here exploit the selection structure directly while staying
//! **byte-identical** to the SpGEMM formulation they replace:
//!
//! * [`extract_rows`] computes `Q_R · A` as a parallel CSR row gather:
//!   a symbolic `row_nnz` count, a prefix-offset pass, and a block-parallel
//!   `memcpy` of the selected rows into one exact-size allocation — `O(nnz
//!   of the selected rows)` with zero accumulation.  Pinned equivalent to
//!   `spgemm(row_selection_matrix(rows, n), A)` (and to
//!   [`CsrMatrix::gather_rows`]).
//! * [`extract_columns_masked`] computes `A · Q_C` as a stamped-bitmap
//!   column filter that renumbers the kept columns into the sampled vertex
//!   space in one sweep over `A`'s nonzeros.  Pinned equivalent to
//!   `CscMatrix::selection(n, cols).left_multiply(&A)`, including that
//!   formulation's dropping of stored zero values (the dot product of a
//!   zero entry with the selection column is `0.0` and the CSC kernel
//!   discards it).
//!
//! Both kernels draw their scratch from a [`SpgemmWorkspace`] (thread-local
//! by default, explicit via the `*_with` variants), so steady-state
//! extraction performs exactly one allocation per call: the output CSR
//! buffers themselves.  The general [`crate::spgemm`] kernels remain the
//! tier for products with arbitrary operand structure (LADIES' indicator
//! probability step `P ← Q^L·A`, the 1.5D distributed multiplies).

use crate::csr::CsrMatrix;
use crate::error::MatrixError;
use crate::pool::{block_ranges, Parallelism};
use crate::prefix::counts_to_offsets;
use crate::workspace::{with_workspace, SpgemmWorkspace};
use crate::Result;
use std::ops::Range;

/// Gathers the rows of `a` listed in `selected` (in order, duplicates
/// allowed) into a new CSR matrix, block-parallel over the selection.
///
/// This is the row-extraction product `Q_R · A` of LADIES (§4.2.3) and the
/// GraphSAGE probability step `P ← Q^L·A` (§4.1.1) computed without the
/// SpGEMM machinery: because `Q_R` has exactly one unit nonzero per row,
/// output row `i` is a verbatim copy of row `selected[i]` of `a`.  The
/// result is byte-identical to
/// `spgemm_parallel(&row_selection_matrix(selected, a.rows())?, &a, ..)` at
/// any thread count (see the proptests in this module).
///
/// Uses this thread's reusable [`SpgemmWorkspace`]; see [`extract_rows_with`]
/// for an explicit workspace.
///
/// # Errors
///
/// Returns [`MatrixError::IndexOutOfBounds`] if any selected row is
/// `>= a.rows()`.
///
/// # Example
///
/// ```
/// use dmbs_matrix::extract::extract_rows;
/// use dmbs_matrix::ops::row_selection_matrix;
/// use dmbs_matrix::pool::Parallelism;
/// use dmbs_matrix::spgemm::spgemm;
/// use dmbs_matrix::{CooMatrix, CsrMatrix};
///
/// # fn main() -> Result<(), dmbs_matrix::MatrixError> {
/// let a = CsrMatrix::from_coo(&CooMatrix::from_triples(
///     3, 3, vec![(0, 1, 2.0), (1, 2, 0.5), (2, 0, -1.0)],
/// )?);
/// let gathered = extract_rows(&a, &[2, 0, 2], Parallelism::new(4))?;
/// // Byte-identical to the selection-matrix SpGEMM it replaces.
/// let q = row_selection_matrix(&[2, 0, 2], 3)?;
/// assert_eq!(gathered, spgemm(&q, &a)?);
/// # Ok(())
/// # }
/// ```
pub fn extract_rows(
    a: &CsrMatrix,
    selected: &[usize],
    parallelism: Parallelism,
) -> Result<CsrMatrix> {
    with_workspace(true, |ws| extract_rows_with(a, selected, parallelism, ws))
}

/// [`extract_rows`] with an explicit scratch workspace (the symbolic-count
/// buffer is drawn from `ws` instead of this thread's shared workspace).
///
/// # Errors
///
/// Returns [`MatrixError::IndexOutOfBounds`] if any selected row is
/// `>= a.rows()`.
pub fn extract_rows_with(
    a: &CsrMatrix,
    selected: &[usize],
    parallelism: Parallelism,
    ws: &mut SpgemmWorkspace,
) -> Result<CsrMatrix> {
    if let Some(&bad) = selected.iter().find(|&&r| r >= a.rows()) {
        return Err(MatrixError::IndexOutOfBounds {
            row: bad,
            col: 0,
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let k = selected.len();

    // Symbolic pass: the output nnz of row `i` is row_nnz(selected[i]) —
    // an O(k) scan, no accumulation.
    ws.counts.clear();
    ws.counts.extend(selected.iter().map(|&r| a.row_nnz(r)));
    let indptr = counts_to_offsets(&ws.counts);
    let total = indptr[k];

    // Numeric pass: every block copies its selected rows into its disjoint
    // slice of the single exact-size output allocation.
    let mut indices = vec![0usize; total];
    let mut values = vec![0.0f64; total];
    let blocks = block_ranges(k, parallelism.effective_blocks(k));
    if blocks.len() <= 1 {
        if let Some(range) = blocks.into_iter().next() {
            gather_block(a, selected, range, &indptr, &mut indices, &mut values);
        }
    } else {
        let fill =
            crossbeam::thread::scope(|scope| {
                let mut idx_tail = indices.as_mut_slice();
                let mut val_tail = values.as_mut_slice();
                let mut handles = Vec::with_capacity(blocks.len());
                for range in blocks {
                    let len = indptr[range.end] - indptr[range.start];
                    let (idx_head, rest) = std::mem::take(&mut idx_tail).split_at_mut(len);
                    idx_tail = rest;
                    let (val_head, rest) = std::mem::take(&mut val_tail).split_at_mut(len);
                    val_tail = rest;
                    let indptr = &indptr;
                    handles.push(scope.spawn(move || {
                        gather_block(a, selected, range, indptr, idx_head, val_head)
                    }));
                }
                for handle in handles {
                    if let Err(payload) = handle.join() {
                        std::panic::resume_unwind(payload);
                    }
                }
            });
        if let Err(payload) = fill {
            std::panic::resume_unwind(payload);
        }
    }
    Ok(CsrMatrix::from_raw_unchecked(k, a.cols(), indptr, indices, values))
}

/// Copies the selected rows of `range` into this block's slice of the output
/// buffers (`indices`/`values` start at `indptr[range.start]`).
fn gather_block(
    a: &CsrMatrix,
    selected: &[usize],
    range: Range<usize>,
    indptr: &[usize],
    indices: &mut [usize],
    values: &mut [f64],
) {
    let base = indptr[range.start];
    for i in range {
        let r = selected[i];
        let start = indptr[i] - base;
        let end = indptr[i + 1] - base;
        indices[start..end].copy_from_slice(a.row_indices(r));
        values[start..end].copy_from_slice(a.row_values(r));
    }
}

/// Keeps the columns of `a` listed in `cols`, renumbering them into the
/// output positions `0..cols.len()` (duplicates allowed: a source column
/// listed twice appears at both output positions).
///
/// This is the LADIES column-extraction product `A_R · Q_C` (§4.2.3,
/// hypersparse CSC formulation §8.2.2) computed as a stamped-bitmap column
/// filter: one sweep over `a`'s nonzeros against a mask of the selected
/// columns, instead of one sparse dot product per (row × selected column).
/// The result is byte-identical to
/// `CscMatrix::selection(a.cols(), cols).left_multiply(&a)`, including that
/// kernel's dropping of stored zero values.
///
/// Uses this thread's reusable [`SpgemmWorkspace`]; see
/// [`extract_columns_masked_with`] for an explicit workspace.
///
/// # Errors
///
/// Returns [`MatrixError::IndexOutOfBounds`] if any selected column is
/// `>= a.cols()` (stricter than the CSC formulation, which silently ignores
/// out-of-range selections).
///
/// # Example
///
/// ```
/// use dmbs_matrix::extract::extract_columns_masked;
/// use dmbs_matrix::{CooMatrix, CscMatrix, CsrMatrix};
///
/// # fn main() -> Result<(), dmbs_matrix::MatrixError> {
/// let a = CsrMatrix::from_coo(&CooMatrix::from_triples(
///     2, 4, vec![(0, 0, 1.0), (0, 3, 2.0), (1, 1, 3.0)],
/// )?);
/// let kept = extract_columns_masked(&a, &[3, 1])?;
/// assert_eq!(kept.shape(), (2, 2));
/// assert_eq!(kept.get(0, 0), 2.0); // old column 3 is new column 0
/// // Byte-identical to the hypersparse CSC selection SpGEMM it replaces.
/// assert_eq!(kept, CscMatrix::selection(4, &[3, 1]).left_multiply(&a)?);
/// # Ok(())
/// # }
/// ```
pub fn extract_columns_masked(a: &CsrMatrix, cols: &[usize]) -> Result<CsrMatrix> {
    with_workspace(true, |ws| extract_columns_masked_with(a, cols, ws))
}

/// [`extract_columns_masked`] with an explicit scratch workspace (the column
/// mask and staging buffers are drawn from `ws`).
///
/// # Errors
///
/// Returns [`MatrixError::IndexOutOfBounds`] if any selected column is
/// `>= a.cols()`.
pub fn extract_columns_masked_with(
    a: &CsrMatrix,
    cols: &[usize],
    ws: &mut SpgemmWorkspace,
) -> Result<CsrMatrix> {
    if let Some(&bad) = cols.iter().find(|&&c| c >= a.cols()) {
        return Err(MatrixError::IndexOutOfBounds {
            row: 0,
            col: bad,
            rows: a.rows(),
            cols: a.cols(),
        });
    }

    // Build the stamped mask: mask_pos[c] = output position of global
    // column c, valid only under the current generation stamp.  Duplicate
    // selections cannot be expressed by a single-slot mask, so they take
    // the sorted-pairs merge path below.
    let gen = ws.begin_mask(a.cols());
    let mut has_duplicates = false;
    for (pos, &c) in cols.iter().enumerate() {
        if ws.mask_stamp[c] == gen {
            has_duplicates = true;
            break;
        }
        ws.mask_stamp[c] = gen;
        ws.mask_pos[c] = pos;
    }
    if has_duplicates {
        return extract_columns_pairs(a, cols, ws);
    }

    // Symbolic pass: per-row count of stored nonzero entries that hit the
    // mask (stored zeros are dropped, matching the CSC dot-product kernel).
    ws.counts.clear();
    for r in 0..a.rows() {
        let mut count = 0usize;
        for (&c, &v) in a.row_indices(r).iter().zip(a.row_values(r)) {
            if ws.mask_stamp[c] == gen && v != 0.0 {
                count += 1;
            }
        }
        ws.counts.push(count);
    }
    let indptr = counts_to_offsets(&ws.counts);
    let total = indptr[a.rows()];

    // Numeric pass: renumber each row's surviving entries into the sampled
    // vertex space and restore output-column order.  Rows fill the output
    // contiguously, so a running cursor replaces per-row indptr lookups.
    let mut indices = vec![0usize; total];
    let mut values = vec![0.0f64; total];
    let mut out = 0usize;
    for r in 0..a.rows() {
        ws.row_buf.clear();
        for (&c, &v) in a.row_indices(r).iter().zip(a.row_values(r)) {
            if ws.mask_stamp[c] == gen && v != 0.0 {
                ws.row_buf.push((ws.mask_pos[c], v));
            }
        }
        ws.row_buf.sort_unstable_by_key(|&(pos, _)| pos);
        for &(pos, v) in ws.row_buf.iter() {
            indices[out] = pos;
            values[out] = v;
            out += 1;
        }
    }
    Ok(CsrMatrix::from_raw_unchecked(a.rows(), cols.len(), indptr, indices, values))
}

/// Fallback for selections with duplicate columns: a merge join between each
/// sorted CSR row and the `(global column, output position)` pairs sorted by
/// global column, emitting one output entry per (row hit × listed position).
fn extract_columns_pairs(
    a: &CsrMatrix,
    cols: &[usize],
    ws: &mut SpgemmWorkspace,
) -> Result<CsrMatrix> {
    ws.pairs.clear();
    ws.pairs.extend(cols.iter().enumerate().map(|(pos, &c)| (c, pos)));
    ws.pairs.sort_unstable();
    let pairs = &ws.pairs;

    // Symbolic pass: each matching stored nonzero contributes one output
    // entry per duplicate listing of its column.
    ws.counts.clear();
    for r in 0..a.rows() {
        let mut count = 0usize;
        merge_join(a.row_indices(r), a.row_values(r), pairs, |_, _| count += 1);
        ws.counts.push(count);
    }
    let indptr = counts_to_offsets(&ws.counts);
    let total = indptr[a.rows()];

    let mut indices = vec![0usize; total];
    let mut values = vec![0.0f64; total];
    let row_buf = &mut ws.row_buf;
    let mut out = 0usize;
    for r in 0..a.rows() {
        row_buf.clear();
        merge_join(a.row_indices(r), a.row_values(r), pairs, |pos, v| row_buf.push((pos, v)));
        row_buf.sort_unstable_by_key(|&(pos, _)| pos);
        for &(pos, v) in row_buf.iter() {
            indices[out] = pos;
            values[out] = v;
            out += 1;
        }
    }
    Ok(CsrMatrix::from_raw_unchecked(a.rows(), cols.len(), indptr, indices, values))
}

/// Merge join of one sorted CSR row with the sorted selection pairs; calls
/// `emit(output position, value)` for every (stored nonzero × listing)
/// match, skipping stored zeros.
fn merge_join(
    row_cols: &[usize],
    row_vals: &[f64],
    pairs: &[(usize, usize)],
    mut emit: impl FnMut(usize, f64),
) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < row_cols.len() && j < pairs.len() {
        match row_cols[i].cmp(&pairs[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let col = row_cols[i];
                let mut jj = j;
                while jj < pairs.len() && pairs[jj].0 == col {
                    if row_vals[i] != 0.0 {
                        emit(pairs[jj].1, row_vals[i]);
                    }
                    jj += 1;
                }
                i += 1;
                j = jj;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csc::CscMatrix;
    use crate::ops::row_selection_matrix;
    use crate::spgemm::{spgemm, spgemm_parallel};
    use crate::CooMatrix;
    use proptest::prelude::*;

    fn figure1_graph() -> CsrMatrix {
        let edges = [
            (0, 1),
            (1, 0),
            (1, 2),
            (1, 4),
            (2, 1),
            (2, 3),
            (3, 2),
            (3, 4),
            (3, 5),
            (4, 1),
            (4, 3),
            (4, 5),
            (5, 3),
            (5, 4),
        ];
        let coo = CooMatrix::from_triples(6, 6, edges.iter().map(|&(r, c)| (r, c, 1.0))).unwrap();
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn extract_rows_matches_selection_spgemm_and_gather() {
        let a = figure1_graph();
        for selection in [vec![1usize, 5], vec![3, 3, 0], vec![], vec![5, 4, 3, 2, 1, 0]] {
            let q = row_selection_matrix(&selection, 6).unwrap();
            let expected = spgemm(&q, &a).unwrap();
            for threads in [1usize, 2, 8] {
                let got = extract_rows(&a, &selection, Parallelism::new(threads)).unwrap();
                assert_eq!(got, expected, "selection {selection:?}, threads {threads}");
            }
            assert_eq!(a.gather_rows(&selection).unwrap(), expected);
        }
    }

    #[test]
    fn extract_rows_rejects_out_of_range() {
        let a = figure1_graph();
        assert!(matches!(
            extract_rows(&a, &[2, 6], Parallelism::serial()),
            Err(MatrixError::IndexOutOfBounds { row: 6, .. })
        ));
    }

    #[test]
    fn extract_columns_matches_csc_selection() {
        let a = figure1_graph();
        for cols in [vec![1usize, 4], vec![4, 1], vec![], vec![3, 3, 0], vec![0, 1, 2, 3, 4, 5]] {
            let expected = CscMatrix::selection(6, &cols).left_multiply(&a).unwrap();
            let got = extract_columns_masked(&a, &cols).unwrap();
            assert_eq!(got, expected, "cols {cols:?}");
        }
    }

    #[test]
    fn extract_columns_drops_stored_zeros_like_csc_kernel() {
        // A stored zero must vanish from the masked extraction exactly as it
        // vanishes from the CSC dot products.
        let a =
            CsrMatrix::from_rows(2, 3, vec![vec![(0, 0.0), (2, 5.0)], vec![(1, -1.0)]]).unwrap();
        let cols = vec![0usize, 2];
        let expected = CscMatrix::selection(3, &cols).left_multiply(&a).unwrap();
        let got = extract_columns_masked(&a, &cols).unwrap();
        assert_eq!(got, expected);
        assert_eq!(got.row_nnz(0), 1); // the explicit zero at column 0 is gone
    }

    #[test]
    fn extract_columns_rejects_out_of_range() {
        let a = figure1_graph();
        assert!(matches!(
            extract_columns_masked(&a, &[0, 9]),
            Err(MatrixError::IndexOutOfBounds { col: 9, .. })
        ));
    }

    #[test]
    fn explicit_workspace_reuse_across_mixed_sizes() {
        // One workspace serving interleaved gathers, masked extractions and
        // SpGEMMs of different shapes must never contaminate results.
        let a = figure1_graph();
        let big = CsrMatrix::identity(40);
        let mut ws = SpgemmWorkspace::new();
        for round in 0..3 {
            let rows = vec![5 - round, round, round];
            let fresh_rows = extract_rows(&a, &rows, Parallelism::new(2)).unwrap();
            let reused_rows = extract_rows_with(&a, &rows, Parallelism::new(2), &mut ws).unwrap();
            assert_eq!(fresh_rows, reused_rows);

            let big_rows: Vec<usize> = (0..40).rev().collect();
            assert_eq!(
                extract_rows_with(&big, &big_rows, Parallelism::new(3), &mut ws).unwrap(),
                big.gather_rows(&big_rows).unwrap()
            );

            let cols = vec![round, 4, 5 - round];
            assert_eq!(
                extract_columns_masked_with(&a, &cols, &mut ws).unwrap(),
                CscMatrix::selection(6, &cols).left_multiply(&a).unwrap()
            );

            assert_eq!(
                crate::spgemm::spgemm_parallel_with(&a, &a, Parallelism::new(2), &mut ws).unwrap(),
                spgemm(&a, &a).unwrap()
            );
        }
    }

    fn arb_matrix() -> impl Strategy<Value = CsrMatrix> {
        (1usize..12, 1usize..12).prop_flat_map(|(rows, cols)| {
            proptest::collection::vec((0..rows, 0..cols, -3.0f64..3.0), 0..50).prop_map(
                move |entries| {
                    CsrMatrix::from_coo(&CooMatrix::from_triples(rows, cols, entries).unwrap())
                },
            )
        })
    }

    proptest! {
        #[test]
        fn prop_extract_rows_equals_selection_spgemm(
            a in arb_matrix(),
            raw in proptest::collection::vec(0usize..64, 0..24),
            thread_choice in 0usize..3,
        ) {
            let threads = [1usize, 2, 8][thread_choice];
            // Map into range; duplicates and empty selections included.
            let selection: Vec<usize> = raw.iter().map(|&r| r % a.rows()).collect();
            let q = row_selection_matrix(&selection, a.rows()).unwrap();
            let via_spgemm = spgemm_parallel(&q, &a, Parallelism::new(threads)).unwrap();
            let gathered = extract_rows(&a, &selection, Parallelism::new(threads)).unwrap();
            prop_assert_eq!(&gathered, &via_spgemm);
            prop_assert_eq!(gathered, a.gather_rows(&selection).unwrap());
        }

        #[test]
        fn prop_extract_columns_equals_csc_selection(
            a in arb_matrix(),
            raw in proptest::collection::vec(0usize..64, 0..24),
        ) {
            // Duplicates (hitting the merge path) and empty selections both
            // appear under this strategy.
            let cols: Vec<usize> = raw.iter().map(|&c| c % a.cols()).collect();
            let expected = CscMatrix::selection(a.cols(), &cols).left_multiply(&a).unwrap();
            prop_assert_eq!(extract_columns_masked(&a, &cols).unwrap(), expected);
        }

        #[test]
        fn prop_extraction_pipeline_equals_spgemm_formulation(
            a in arb_matrix(),
            raw_rows in proptest::collection::vec(0usize..64, 1..12),
            raw_cols in proptest::collection::vec(0usize..64, 1..12),
            thread_choice in 0usize..3,
        ) {
            // The full LADIES extraction A_S = Q_R · A · Q_C against the
            // matrix formulation, at 1/2/8 threads.
            let threads = [1usize, 2, 8][thread_choice];
            let rows: Vec<usize> = raw_rows.iter().map(|&r| r % a.rows()).collect();
            let mut cols: Vec<usize> = raw_cols.iter().map(|&c| c % a.cols()).collect();
            cols.sort_unstable();
            cols.dedup();
            let q_r = row_selection_matrix(&rows, a.rows()).unwrap();
            let a_r = spgemm(&q_r, &a).unwrap();
            let expected = CscMatrix::selection(a.cols(), &cols).left_multiply(&a_r).unwrap();
            let gathered = extract_rows(&a, &rows, Parallelism::new(threads)).unwrap();
            prop_assert_eq!(extract_columns_masked(&gathered, &cols).unwrap(), expected);
        }
    }
}

//! Reusable scratch memory for the SpGEMM and extraction kernels.
//!
//! PR 2's perf trajectory (`BENCH_spgemm.json`) showed that on this class of
//! workload the measurable wins come from *allocation and work avoidance*,
//! not thread count: the two-pass SpGEMM's advantage over the serial
//! `from_rows` path was its preallocated output buffers.  This module pushes
//! that one level further: the per-row dense accumulators, marker arrays,
//! column masks and symbolic-count scratch that every SpGEMM / extraction
//! call needs are collected into one [`SpgemmWorkspace`] that is **reused
//! across calls**: across layers of one bulk sampling step, across
//! minibatches and bulk groups of an epoch, and across epochs for as long
//! as sampling stays on one thread (a caller looping `sample_epoch`, or a
//! distributed rank alive for the whole run; a pipeline that spawns a fresh
//! sampling worker per epoch regrows the worker's workspace once per
//! epoch).
//!
//! Two ways to get a workspace:
//!
//! * the `*_with` kernel variants ([`crate::spgemm::spgemm_parallel_with`],
//!   [`crate::extract::extract_rows_with`],
//!   [`crate::extract::extract_columns_masked_with`]) take an explicit
//!   `&mut SpgemmWorkspace` the caller owns;
//! * [`with_workspace`] borrows a **thread-local** workspace (the common
//!   case), so the plain entry points (`spgemm_parallel`, `extract_rows`,
//!   `extract_columns_masked`) stop paying per-call allocation without any
//!   caller cooperation.  The `workspace_reuse` knob on
//!   `BulkSamplerConfig` (threaded through the sampling backends and
//!   `TrainingSession`) selects between the two.
//!
//! The workspace never changes *what* a kernel computes — every kernel
//! restores its scratch invariants (accumulators zeroed, markers cleared)
//! before returning, and the column mask uses generation stamps so stale
//! entries from a previous call can never be misread.  Byte-identity of the
//! workspace-backed kernels is pinned by the proptests in
//! `crate::spgemm` and `crate::extract`.

use std::cell::RefCell;

/// Per-worker scratch of the dense-accumulator Gustavson kernels: one
/// instance per parallel row block, reused across calls.
///
/// Invariant between uses: `accum` is all-zero, `marked` is all-`false` and
/// `touched` is empty — each kernel resets exactly the entries it touched.
#[derive(Debug, Default)]
pub(crate) struct WorkerScratch {
    /// Dense value accumulator, grown to the output column count.
    pub(crate) accum: Vec<f64>,
    /// Dense occupancy markers, grown alongside `accum`.
    pub(crate) marked: Vec<bool>,
    /// The columns touched while accumulating the current row.
    pub(crate) touched: Vec<usize>,
}

impl WorkerScratch {
    /// Grows the dense accumulator and marker array to at least `cols`
    /// entries.  Growth preserves the all-zero / all-`false` invariant.
    pub(crate) fn ensure_cols(&mut self, cols: usize) {
        if self.accum.len() < cols {
            self.accum.resize(cols, 0.0);
            self.marked.resize(cols, false);
        }
    }
}

/// Reusable scratch for the SpGEMM and extraction kernels: per-worker dense
/// accumulators and marker arrays, the symbolic-count buffer of the two-pass
/// kernels, and the stamped column mask of the masked column filter.
///
/// A workspace is cheap to create empty and grows lazily to the largest
/// problem it has seen; [`SpgemmWorkspace::clear`] releases the memory.  It
/// is *not* shared between threads — each thread that runs kernels holds its
/// own (see [`with_workspace`]).
///
/// # Example
///
/// ```
/// use dmbs_matrix::pool::Parallelism;
/// use dmbs_matrix::spgemm::{spgemm_parallel, spgemm_parallel_with};
/// use dmbs_matrix::workspace::SpgemmWorkspace;
/// use dmbs_matrix::CsrMatrix;
///
/// # fn main() -> Result<(), dmbs_matrix::MatrixError> {
/// let a = CsrMatrix::identity(8);
/// let mut ws = SpgemmWorkspace::new();
/// // Explicit workspace: scratch is reused across both calls.
/// let c1 = spgemm_parallel_with(&a, &a, Parallelism::new(2), &mut ws)?;
/// let c2 = spgemm_parallel_with(&a, &a, Parallelism::new(2), &mut ws)?;
/// // The workspace never changes results.
/// assert_eq!(c1, spgemm_parallel(&a, &a, Parallelism::new(2))?);
/// assert_eq!(c1, c2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct SpgemmWorkspace {
    /// One scratch set per parallel row block.
    pub(crate) workers: Vec<WorkerScratch>,
    /// Symbolic-pass output-nnz counts (length = output rows).
    pub(crate) counts: Vec<usize>,
    /// Column mask: `mask_pos[c]` is the output position of global column
    /// `c`, valid only when `mask_stamp[c] == mask_gen`.
    pub(crate) mask_pos: Vec<usize>,
    /// Generation stamps validating `mask_pos` entries.
    pub(crate) mask_stamp: Vec<u64>,
    /// Current mask generation; bumped per masked-extraction call so the
    /// mask never needs an `O(n)` clear.
    pub(crate) mask_gen: u64,
    /// Per-row `(output column, value)` staging buffer.
    pub(crate) row_buf: Vec<(usize, f64)>,
    /// `(global column, output position)` pairs, sorted, for selections with
    /// duplicate columns.
    pub(crate) pairs: Vec<(usize, usize)>,
}

impl SpgemmWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        SpgemmWorkspace::default()
    }

    /// Releases all scratch memory (the workspace stays usable and will
    /// regrow on demand).
    pub fn clear(&mut self) {
        *self = SpgemmWorkspace { mask_gen: self.mask_gen, ..SpgemmWorkspace::default() };
    }

    /// Approximate number of bytes currently held by the scratch buffers.
    pub fn nbytes(&self) -> usize {
        let per_worker = |w: &WorkerScratch| {
            w.accum.capacity() * std::mem::size_of::<f64>()
                + w.marked.capacity()
                + w.touched.capacity() * std::mem::size_of::<usize>()
        };
        self.workers.iter().map(per_worker).sum::<usize>()
            + self.counts.capacity() * std::mem::size_of::<usize>()
            + self.mask_pos.capacity() * std::mem::size_of::<usize>()
            + self.mask_stamp.capacity() * std::mem::size_of::<u64>()
            + self.row_buf.capacity() * std::mem::size_of::<(usize, f64)>()
            + self.pairs.capacity() * std::mem::size_of::<(usize, usize)>()
    }

    /// Releases the scratch buffers if they currently hold more than
    /// `byte_bound` bytes, returning whether a trim happened.  This is the
    /// long-lived-thread counterpart of [`SpgemmWorkspace::clear`]: a serving
    /// thread that reuses its workspace across micro-bulks calls this between
    /// bulks so one oversized request cannot pin peak-sized scratch for the
    /// rest of the process, while steady-state requests below the bound keep
    /// full reuse.
    pub fn shrink_if_larger(&mut self, byte_bound: usize) -> bool {
        if self.nbytes() > byte_bound {
            self.clear();
            true
        } else {
            false
        }
    }

    /// Starts a new column-mask generation over `n` global columns and
    /// returns the stamp value that marks entries of this generation.
    pub(crate) fn begin_mask(&mut self, n: usize) -> u64 {
        if self.mask_stamp.len() < n {
            self.mask_stamp.resize(n, 0);
            self.mask_pos.resize(n, 0);
        }
        self.mask_gen += 1;
        self.mask_gen
    }
}

thread_local! {
    static THREAD_WORKSPACE: RefCell<SpgemmWorkspace> = RefCell::new(SpgemmWorkspace::new());
}

/// Runs `f` with a scratch workspace.
///
/// With `reuse = true` (what the plain kernel entry points use), `f` borrows
/// this thread's long-lived workspace, so scratch allocated by one call is
/// reused by the next — across sampling layers, minibatches and epochs on
/// the same thread.  With `reuse = false`, `f` gets a fresh workspace that
/// is dropped afterwards, bounding kernel memory to a single call at the
/// cost of per-call allocation (the `workspace_reuse` knob of
/// `BulkSamplerConfig` maps directly onto this flag).
///
/// Re-entrant use (calling `with_workspace` while already inside it on the
/// same thread) falls back to a fresh workspace rather than aliasing the
/// borrowed one.
///
/// # Example
///
/// ```
/// use dmbs_matrix::workspace::with_workspace;
///
/// let grew = with_workspace(true, |ws| {
///     // Kernels grow the workspace; it persists for this thread.
///     ws.nbytes()
/// });
/// assert!(grew == with_workspace(true, |ws| ws.nbytes()));
/// ```
pub fn with_workspace<R>(reuse: bool, f: impl FnOnce(&mut SpgemmWorkspace) -> R) -> R {
    if reuse {
        THREAD_WORKSPACE.with(|cell| match cell.try_borrow_mut() {
            Ok(mut ws) => f(&mut ws),
            // Re-entrant call: never alias the outer borrow.
            Err(_) => f(&mut SpgemmWorkspace::new()),
        })
    } else {
        f(&mut SpgemmWorkspace::new())
    }
}

/// Applies [`SpgemmWorkspace::shrink_if_larger`] to this thread's long-lived
/// workspace and returns the bytes it holds afterwards.  Callers that go
/// through the plain kernel entry points (and therefore never see the
/// thread-local workspace directly) use this to bound resident scratch on a
/// long-lived thread — the serving tier calls it after each micro-bulk.
pub fn trim_thread_workspace(byte_bound: usize) -> usize {
    THREAD_WORKSPACE.with(|cell| match cell.try_borrow_mut() {
        Ok(mut ws) => {
            ws.shrink_if_larger(byte_bound);
            ws.nbytes()
        }
        // Re-entrant call: the workspace is in use further up this thread's
        // stack; leave it alone.
        Err(_) => 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_grows_and_clears() {
        let mut ws = SpgemmWorkspace::new();
        assert_eq!(ws.nbytes(), 0);
        ws.workers.resize_with(3, WorkerScratch::default);
        for w in &mut ws.workers {
            w.ensure_cols(64);
            assert!(w.accum.len() >= 64);
            assert!(w.marked.len() >= 64);
            // Growth never shrinks.
            w.ensure_cols(8);
            assert!(w.accum.len() >= 64);
        }
        assert!(ws.nbytes() > 0);
        ws.clear();
        assert_eq!(ws.nbytes(), 0);
    }

    #[test]
    fn shrink_respects_the_byte_bound() {
        let mut ws = SpgemmWorkspace::new();
        ws.counts.resize(1024, 0);
        let held = ws.nbytes();
        assert!(held > 0);
        // Under the bound: untouched.
        assert!(!ws.shrink_if_larger(held));
        assert_eq!(ws.nbytes(), held);
        // Over the bound: released.
        assert!(ws.shrink_if_larger(held - 1));
        assert_eq!(ws.nbytes(), 0);
        // Trimming preserves mask-generation monotonicity (stale mask
        // entries must stay invalid after a trim).
        let g1 = ws.begin_mask(4);
        ws.counts.resize(1024, 0);
        ws.shrink_if_larger(0);
        let g2 = ws.begin_mask(4);
        assert!(g2 > g1);
    }

    #[test]
    fn thread_workspace_trims_past_the_bound() {
        with_workspace(true, |ws| ws.counts.resize(4096, 0));
        let held = with_workspace(true, |ws| ws.nbytes());
        assert!(held > 0);
        // A generous bound leaves the scratch resident…
        assert_eq!(trim_thread_workspace(usize::MAX), held);
        // …and a zero bound releases it.
        assert_eq!(trim_thread_workspace(0), 0);
        assert_eq!(with_workspace(true, |ws| ws.nbytes()), 0);
    }

    #[test]
    fn mask_generations_invalidate_old_entries() {
        let mut ws = SpgemmWorkspace::new();
        let g1 = ws.begin_mask(10);
        ws.mask_stamp[3] = g1;
        ws.mask_pos[3] = 7;
        let g2 = ws.begin_mask(10);
        assert_ne!(g1, g2);
        // The old entry no longer matches the current generation.
        assert_ne!(ws.mask_stamp[3], g2);
    }

    #[test]
    fn with_workspace_reuses_thread_local() {
        let before = with_workspace(true, |ws| {
            ws.counts.resize(128, 0);
            ws.nbytes()
        });
        let after = with_workspace(true, |ws| ws.nbytes());
        assert_eq!(before, after);
        // Fresh workspaces start empty.
        assert_eq!(with_workspace(false, |ws| ws.nbytes()), 0);
    }

    #[test]
    fn with_workspace_is_reentrant_safe() {
        let v = with_workspace(true, |outer| {
            outer.counts.resize(4, 0);
            with_workspace(true, |inner| inner.nbytes())
        });
        // The inner call fell back to a fresh workspace.
        assert_eq!(v, 0);
    }
}

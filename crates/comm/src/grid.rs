//! Process grids.
//!
//! The pipeline treats its `p` ranks as a `p/c × c` grid (§5.2, §6):
//! block rows of `Q`, `A` and `H` live on process rows, and feature fetching
//! is an all-to-allv within process columns.  [`ProcessGrid`] maps ranks to
//! grid coordinates and enumerates row/column groups for the collectives in
//! [`crate::collectives`].

use crate::error::CommError;
use serde::{Deserialize, Serialize};

/// A `p/c × c` process grid with row-major rank numbering
/// (`rank = i * c + j`).
///
/// # Example
///
/// ```
/// use dmbs_comm::ProcessGrid;
///
/// # fn main() -> Result<(), dmbs_comm::CommError> {
/// let grid = ProcessGrid::new(8, 2)?;
/// assert_eq!(grid.rows(), 4);
/// assert_eq!(grid.coords(5), (2, 1));
/// assert_eq!(grid.row_ranks(5), vec![4, 5]);
/// assert_eq!(grid.col_ranks(5), vec![1, 3, 5, 7]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessGrid {
    p: usize,
    c: usize,
}

impl ProcessGrid {
    /// Creates a grid of `p` processes with replication factor (column count)
    /// `c`.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::InvalidConfig`] if `p == 0`, `c == 0`, or `c`
    /// does not divide `p`.
    pub fn new(p: usize, c: usize) -> Result<Self, CommError> {
        if p == 0 || c == 0 {
            return Err(CommError::InvalidConfig("p and c must be positive".into()));
        }
        if !p.is_multiple_of(c) {
            return Err(CommError::InvalidConfig(format!(
                "replication factor {c} must divide process count {p}"
            )));
        }
        Ok(ProcessGrid { p, c })
    }

    /// Total number of processes.
    pub fn size(&self) -> usize {
        self.p
    }

    /// Number of process columns (the replication factor `c`).
    pub fn cols(&self) -> usize {
        self.c
    }

    /// Number of process rows (`p / c`).
    pub fn rows(&self) -> usize {
        self.p / self.c
    }

    /// Number of stages of the 1.5D SpGEMM (`p / c²`, at least 1).
    pub fn num_stages(&self) -> usize {
        (self.p / (self.c * self.c)).max(1)
    }

    /// Grid coordinates `(row, col)` of `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= size`.
    pub fn coords(&self, rank: usize) -> (usize, usize) {
        assert!(rank < self.p, "rank out of range");
        (rank / self.c, rank % self.c)
    }

    /// Rank at grid coordinates `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn rank_at(&self, row: usize, col: usize) -> usize {
        assert!(row < self.rows() && col < self.c, "grid coordinates out of range");
        row * self.c + col
    }

    /// Ranks sharing the process row of `rank` (including itself), in column
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= size`.
    pub fn row_ranks(&self, rank: usize) -> Vec<usize> {
        let (row, _) = self.coords(rank);
        (0..self.c).map(|j| self.rank_at(row, j)).collect()
    }

    /// Ranks sharing the process column of `rank` (including itself), in row
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= size`.
    pub fn col_ranks(&self, rank: usize) -> Vec<usize> {
        let (_, col) = self.coords(rank);
        (0..self.rows()).map(|i| self.rank_at(i, col)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_validation() {
        assert!(ProcessGrid::new(0, 1).is_err());
        assert!(ProcessGrid::new(4, 0).is_err());
        assert!(ProcessGrid::new(6, 4).is_err());
        assert!(ProcessGrid::new(6, 3).is_ok());
    }

    #[test]
    fn layout_matches_paper_convention() {
        let g = ProcessGrid::new(8, 2).unwrap();
        assert_eq!(g.size(), 8);
        assert_eq!(g.rows(), 4);
        assert_eq!(g.cols(), 2);
        assert_eq!(g.num_stages(), 2);
        assert_eq!(g.coords(0), (0, 0));
        assert_eq!(g.coords(3), (1, 1));
        assert_eq!(g.rank_at(3, 0), 6);
        assert_eq!(g.row_ranks(6), vec![6, 7]);
        assert_eq!(g.col_ranks(6), vec![0, 2, 4, 6]);
    }

    #[test]
    fn one_column_grid_is_pure_1d() {
        let g = ProcessGrid::new(4, 1).unwrap();
        assert_eq!(g.rows(), 4);
        assert_eq!(g.row_ranks(2), vec![2]);
        assert_eq!(g.col_ranks(2), vec![0, 1, 2, 3]);
        assert_eq!(g.num_stages(), 4);
    }

    proptest! {
        #[test]
        fn prop_coords_roundtrip(rows in 1usize..10, c in 1usize..6) {
            let g = ProcessGrid::new(rows * c, c).unwrap();
            for rank in 0..g.size() {
                let (i, j) = g.coords(rank);
                prop_assert_eq!(g.rank_at(i, j), rank);
                prop_assert!(g.row_ranks(rank).contains(&rank));
                prop_assert!(g.col_ranks(rank).contains(&rank));
            }
        }

        #[test]
        fn prop_rows_and_cols_partition_world(rows in 1usize..8, c in 1usize..5) {
            let g = ProcessGrid::new(rows * c, c).unwrap();
            // Every rank appears in exactly one process row group (taking the
            // group of each row leader).
            let mut seen = vec![false; g.size()];
            for i in 0..g.rows() {
                for r in g.row_ranks(g.rank_at(i, 0)) {
                    prop_assert!(!seen[r]);
                    seen[r] = true;
                }
            }
            prop_assert!(seen.into_iter().all(|s| s));
        }
    }
}

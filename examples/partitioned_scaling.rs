//! Graph-Partitioned sampling (§5.2): distribute the adjacency matrix over a
//! `p/c × c` process grid and sample with the sparsity-aware 1.5D SpGEMM of
//! Algorithm 2, sweeping the replication factor — all through the unified
//! `SamplingBackend` trait, with GraphSAGE and LADIES flowing through the
//! *same* backend.
//!
//! Run with `cargo run --release --example partitioned_scaling`.

use dmbs::comm::Phase;
use dmbs::graph::generators::{rmat, RmatConfig};
use dmbs::sampling::{
    BulkSamplerConfig, DistConfig, GraphSageSampler, LadiesSampler, Partitioned1p5dBackend,
    SamplingBackend,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = rmat(&RmatConfig::new(11, 16), &mut StdRng::seed_from_u64(7))?;
    let n = graph.num_vertices();
    let batches: Vec<Vec<usize>> =
        (0..16).map(|i| (0..32).map(|j| (i * 131 + j * 17) % n).collect()).collect();

    println!("graph: {} vertices, {} edges (distributed across the grid)", n, graph.num_edges());
    for (p, c) in [(4usize, 1usize), (8, 2), (16, 4)] {
        let backend =
            Partitioned1p5dBackend::new(DistConfig::new(p, c, BulkSamplerConfig::new(32, 16)))?;
        let sage = backend.sample_epoch(
            &GraphSageSampler::new(vec![15, 10, 5]),
            graph.adjacency(),
            &batches,
            3,
        )?;
        let ladies =
            backend.sample_epoch(&LadiesSampler::new(1, 64), graph.adjacency(), &batches, 3)?;

        println!(
            "p={p:>2} c={c}: SAGE  prob {:.4}s | sample {:.4}s | extract {:.4}s | comm(modeled) {:.6}s",
            sage.max_phase_total(Phase::Probability),
            sage.max_phase_total(Phase::Sampling),
            sage.max_phase_total(Phase::Extraction),
            sage.max_total_comm(),
        );
        println!(
            "        LADIES prob {:.4}s | sample {:.4}s | extract {:.4}s | comm(modeled) {:.6}s",
            ladies.max_phase_total(Phase::Probability),
            ladies.max_phase_total(Phase::Sampling),
            ladies.max_phase_total(Phase::Extraction),
            ladies.max_total_comm(),
        );
    }
    Ok(())
}

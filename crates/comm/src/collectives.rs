//! Point-to-point messaging and collectives over simulated ranks.
//!
//! A [`Communicator`] belongs to one rank of a [`Runtime`](crate::Runtime)
//! execution.  It offers the NCCL-style operations the paper's algorithms
//! use: point-to-point send/receive, broadcast, gather, all-gather,
//! all-reduce, all-to-allv and barrier — over the whole world or over a
//! [`Group`] (e.g. a process row or column of the 1.5D grid).
//!
//! Every send records the message's word count and α–β modeled time into the
//! rank's [`CommStats`], which is how the benchmark harnesses obtain the
//! communication component of the paper's breakdowns without real network
//! hardware.

use crate::cost::{CommStats, CostModel};
use crate::error::CommError;
use crate::Result;
use crossbeam::channel::{Receiver, Sender};
use std::any::Any;
use std::collections::VecDeque;

/// The tag of all blocking point-to-point and collective traffic.  Blocking
/// operations execute in identical program order on every rank, so one shared
/// FIFO lane suffices; posted (nonblocking) collectives each get a fresh tag
/// from [`Communicator::fresh_round_tag`] so their messages can sit in a
/// channel behind — or in front of — blocking traffic without being
/// mis-matched.
pub(crate) const TAG_BLOCKING: u64 = 0;

/// A type-erased, tagged message travelling between ranks.  The tag is the
/// MPI-style matching key: a receive for tag `t` skips (and stashes)
/// messages with other tags instead of failing to downcast them.
pub(crate) struct Message {
    pub(crate) tag: u64,
    pub(crate) payload: Box<dyn Any + Send>,
}

impl std::fmt::Debug for Message {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Message").field("tag", &self.tag).finish_non_exhaustive()
    }
}

/// Values that can be communicated between ranks.
///
/// The `word_count` is the payload size in 8-byte words used by the α–β cost
/// model; it does not need to be exact to the byte, only proportional to the
/// real transfer volume.
pub trait Payload: Send + 'static {
    /// Size of the payload in 8-byte words.
    fn word_count(&self) -> usize;
}

impl Payload for f64 {
    fn word_count(&self) -> usize {
        1
    }
}

impl Payload for usize {
    fn word_count(&self) -> usize {
        1
    }
}

impl Payload for u64 {
    fn word_count(&self) -> usize {
        1
    }
}

impl Payload for i64 {
    fn word_count(&self) -> usize {
        1
    }
}

impl Payload for bool {
    fn word_count(&self) -> usize {
        1
    }
}

impl Payload for () {
    fn word_count(&self) -> usize {
        0
    }
}

impl<A: Payload, B: Payload> Payload for (A, B) {
    fn word_count(&self) -> usize {
        self.0.word_count() + self.1.word_count()
    }
}

impl<A: Payload, B: Payload, C: Payload> Payload for (A, B, C) {
    fn word_count(&self) -> usize {
        self.0.word_count() + self.1.word_count() + self.2.word_count()
    }
}

impl<T: Payload> Payload for Option<T> {
    fn word_count(&self) -> usize {
        self.as_ref().map_or(0, Payload::word_count)
    }
}

impl<T: Payload> Payload for Vec<T> {
    fn word_count(&self) -> usize {
        self.iter().map(Payload::word_count).sum()
    }
}

/// A subset of ranks participating in a collective (for example one process
/// row or one process column of the 1.5D grid).  Membership is sorted and
/// deduplicated; the group "root" used internally by collectives is the
/// smallest member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    ranks: Vec<usize>,
}

impl Group {
    /// Creates a group from the given ranks (sorted, deduplicated).
    ///
    /// # Errors
    ///
    /// Returns [`CommError::InvalidConfig`] if the group is empty.
    pub fn new(ranks: &[usize]) -> Result<Self> {
        if ranks.is_empty() {
            return Err(CommError::InvalidConfig("a group must contain at least one rank".into()));
        }
        let mut sorted = ranks.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        Ok(Group { ranks: sorted })
    }

    /// The member ranks in ascending order.
    pub fn ranks(&self) -> &[usize] {
        &self.ranks
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// Returns `true` if the group has exactly one member (all collectives
    /// become local no-ops).
    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }

    /// Position of `rank` within the group, if it is a member.
    pub fn position_of(&self, rank: usize) -> Option<usize> {
        self.ranks.binary_search(&rank).ok()
    }

    /// Whether `rank` belongs to the group.
    pub fn contains(&self, rank: usize) -> bool {
        self.position_of(rank).is_some()
    }
}

/// The per-rank handle for communication within a [`Runtime`](crate::Runtime)
/// execution.
#[derive(Debug)]
pub struct Communicator {
    rank: usize,
    size: usize,
    /// `senders[j]` delivers messages to rank `j`.
    senders: Vec<Sender<Message>>,
    /// `receivers[i]` yields messages sent by rank `i`.
    receivers: Vec<Receiver<Message>>,
    /// `stashed[i]` holds messages from rank `i` that arrived while a receive
    /// was waiting for a different tag (MPI-style unexpected-message queue).
    stashed: Vec<VecDeque<Message>>,
    /// Next tag handed out to a posted (nonblocking) collective round.  All
    /// ranks execute the same SPMD program, so the counters advance in
    /// lockstep and a round's tag agrees across the world.
    next_tag: u64,
    cost: CostModel,
    stats: CommStats,
}

impl Communicator {
    pub(crate) fn new(
        rank: usize,
        size: usize,
        senders: Vec<Sender<Message>>,
        receivers: Vec<Receiver<Message>>,
        cost: CostModel,
    ) -> Self {
        let stashed = (0..size).map(|_| VecDeque::new()).collect();
        Communicator {
            rank,
            size,
            senders,
            receivers,
            stashed,
            next_tag: TAG_BLOCKING + 1,
            cost,
            stats: CommStats::new(),
        }
    }

    /// Reserves a fresh tag for one nonblocking collective round.  Every rank
    /// must reserve tags in the same program order (SPMD), which is what makes
    /// a posted round's messages match up across ranks.
    pub(crate) fn fresh_round_tag(&mut self) -> u64 {
        let tag = self.next_tag;
        self.next_tag += 1;
        tag
    }

    /// This rank's id in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The α–β cost model in effect.
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    /// Communication statistics accumulated so far by this rank.
    pub fn stats(&self) -> CommStats {
        self.stats
    }

    /// Resets the accumulated statistics (e.g. between pipeline phases).
    pub fn reset_stats(&mut self) -> CommStats {
        std::mem::take(&mut self.stats)
    }

    /// The group containing every rank.
    pub fn world(&self) -> Group {
        Group::new(&(0..self.size).collect::<Vec<_>>()).expect("world is non-empty")
    }

    /// Sends `value` to rank `to`.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::RankOutOfRange`] for an invalid destination, or
    /// [`CommError::Disconnected`] if the destination rank has already
    /// terminated.
    pub fn send<T: Payload>(&mut self, to: usize, value: T) -> Result<()> {
        self.send_tagged(to, TAG_BLOCKING, value)
    }

    /// Sends `value` to rank `to` under `tag` (the nonblocking lane when
    /// `tag != TAG_BLOCKING`).  Channel sends never block, so posting a
    /// collective's outgoing messages completes immediately.
    pub(crate) fn send_tagged<T: Payload>(&mut self, to: usize, tag: u64, value: T) -> Result<()> {
        if to >= self.size {
            return Err(CommError::RankOutOfRange { rank: to, size: self.size });
        }
        self.stats.record(value.word_count(), &self.cost);
        self.senders[to]
            .send(Message { tag, payload: Box::new(value) })
            .map_err(|_| CommError::Disconnected { from: to })
    }

    /// Receives a value of type `T` from rank `from`, blocking until it
    /// arrives.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::RankOutOfRange`] for an invalid source,
    /// [`CommError::Disconnected`] if the source terminated without sending,
    /// or [`CommError::TypeMismatch`] if the arriving message has a different
    /// type (which indicates mismatched collective calls across ranks).
    pub fn recv<T: Payload>(&mut self, from: usize) -> Result<T> {
        self.recv_tagged(from, TAG_BLOCKING)
    }

    /// Receives the next message from `from` carrying `tag`, stashing any
    /// messages with other tags (they belong to posted collectives that will
    /// be waited later, or to blocking traffic behind an in-flight round).
    pub(crate) fn recv_tagged<T: Payload>(&mut self, from: usize, tag: u64) -> Result<T> {
        if from >= self.size {
            return Err(CommError::RankOutOfRange { rank: from, size: self.size });
        }
        // Messages for one (peer, tag) pair are produced and consumed in the
        // same program order, so the first stashed match is the right one.
        if let Some(pos) = self.stashed[from].iter().position(|m| m.tag == tag) {
            let message = self.stashed[from].remove(pos).expect("position just found");
            return message
                .payload
                .downcast::<T>()
                .map(|b| *b)
                .map_err(|_| CommError::TypeMismatch { from });
        }
        loop {
            let message =
                self.receivers[from].recv().map_err(|_| CommError::Disconnected { from })?;
            if message.tag == tag {
                return message
                    .payload
                    .downcast::<T>()
                    .map(|b| *b)
                    .map_err(|_| CommError::TypeMismatch { from });
            }
            self.stashed[from].push_back(message);
        }
    }

    /// Synchronizes all ranks in the world.
    ///
    /// # Errors
    ///
    /// Propagates point-to-point errors (disconnected peers).
    pub fn barrier(&mut self) -> Result<()> {
        let world = self.world();
        self.group_allreduce(&world, 0usize, |a, b| a + b)?;
        Ok(())
    }

    /// Broadcast over the whole world: the `root`'s value (which it must
    /// supply as `Some`) is returned on every rank.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::InvalidConfig`] if the root does not supply a
    /// value, plus any point-to-point error.
    pub fn broadcast<T: Payload + Clone>(&mut self, root: usize, value: Option<T>) -> Result<T> {
        let world = self.world();
        self.group_broadcast(&world, root, value)
    }

    /// Gather over the whole world: every rank's value arrives at `root` in
    /// rank order; non-roots receive `None`.
    ///
    /// # Errors
    ///
    /// Propagates point-to-point errors.
    pub fn gather<T: Payload>(&mut self, root: usize, value: T) -> Result<Option<Vec<T>>> {
        let world = self.world();
        self.group_gather(&world, root, value)
    }

    /// All-gather over the whole world.
    ///
    /// # Errors
    ///
    /// Propagates point-to-point errors.
    pub fn allgather<T: Payload + Clone>(&mut self, value: T) -> Result<Vec<T>> {
        let world = self.world();
        self.group_allgather(&world, value)
    }

    /// All-reduce over the whole world with a custom associative combiner.
    ///
    /// # Errors
    ///
    /// Propagates point-to-point errors.
    pub fn allreduce<T, F>(&mut self, value: T, combine: F) -> Result<T>
    where
        T: Payload + Clone,
        F: Fn(&T, &T) -> T,
    {
        let world = self.world();
        self.group_allreduce(&world, value, combine)
    }

    /// All-to-allv over the whole world: `sends[j]` is delivered to rank `j`;
    /// the returned vector holds one received value per source rank.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::InvalidConfig`] if `sends.len() != size`, plus any
    /// point-to-point error.
    pub fn all_to_allv<T: Payload>(&mut self, sends: Vec<T>) -> Result<Vec<T>> {
        let world = self.world();
        self.group_all_to_allv(&world, sends)
    }

    /// Broadcast within a group.  The root (any member) supplies `Some(value)`.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::NotInGroup`] if the caller or root is not a
    /// member, [`CommError::InvalidConfig`] if the root supplies no value.
    pub fn group_broadcast<T: Payload + Clone>(
        &mut self,
        group: &Group,
        root: usize,
        value: Option<T>,
    ) -> Result<T> {
        self.require_member(group)?;
        if !group.contains(root) {
            return Err(CommError::NotInGroup { rank: root });
        }
        if self.rank == root {
            let value = value.ok_or_else(|| {
                CommError::InvalidConfig("broadcast root must supply a value".into())
            })?;
            for &peer in group.ranks() {
                if peer != self.rank {
                    self.send(peer, value.clone())?;
                }
            }
            Ok(value)
        } else {
            self.recv(root)
        }
    }

    /// Gather within a group: member values arrive at `root` in ascending
    /// rank order.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::NotInGroup`] if the caller or root is not a
    /// member, plus any point-to-point error.
    pub fn group_gather<T: Payload>(
        &mut self,
        group: &Group,
        root: usize,
        value: T,
    ) -> Result<Option<Vec<T>>> {
        self.require_member(group)?;
        if !group.contains(root) {
            return Err(CommError::NotInGroup { rank: root });
        }
        if self.rank == root {
            let mut out: Vec<Option<T>> = Vec::with_capacity(group.len());
            for _ in 0..group.len() {
                out.push(None);
            }
            let own_pos = group.position_of(self.rank).expect("checked membership");
            out[own_pos] = Some(value);
            for (pos, &peer) in group.ranks().iter().enumerate() {
                if peer != self.rank {
                    out[pos] = Some(self.recv(peer)?);
                }
            }
            Ok(Some(out.into_iter().map(|v| v.expect("all positions filled")).collect()))
        } else {
            self.send(root, value)?;
            Ok(None)
        }
    }

    /// All-gather within a group.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::NotInGroup`] if the caller is not a member, plus
    /// any point-to-point error.
    pub fn group_allgather<T: Payload + Clone>(
        &mut self,
        group: &Group,
        value: T,
    ) -> Result<Vec<T>> {
        self.require_member(group)?;
        let root = group.ranks()[0];
        let gathered = self.group_gather(group, root, value)?;
        self.group_broadcast(group, root, gathered)
    }

    /// All-reduce within a group with a custom associative combiner.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::NotInGroup`] if the caller is not a member, plus
    /// any point-to-point error.
    pub fn group_allreduce<T, F>(&mut self, group: &Group, value: T, combine: F) -> Result<T>
    where
        T: Payload + Clone,
        F: Fn(&T, &T) -> T,
    {
        self.require_member(group)?;
        let root = group.ranks()[0];
        let gathered = self.group_gather(group, root, value)?;
        let reduced = gathered.map(|values| {
            let mut iter = values.into_iter();
            let first = iter.next().expect("group is non-empty");
            iter.fold(first, |acc, v| combine(&acc, &v))
        });
        self.group_broadcast(group, root, reduced)
    }

    /// All-to-allv within a group: `sends[i]` goes to the `i`-th member (in
    /// ascending rank order); the result holds one value per member, indexed
    /// the same way.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::NotInGroup`] if the caller is not a member,
    /// [`CommError::InvalidConfig`] if `sends.len() != group.len()`, plus any
    /// point-to-point error.
    pub fn group_all_to_allv<T: Payload>(
        &mut self,
        group: &Group,
        sends: Vec<T>,
    ) -> Result<Vec<T>> {
        self.require_member(group)?;
        if sends.len() != group.len() {
            return Err(CommError::InvalidConfig(format!(
                "all_to_allv requires one send per group member ({} != {})",
                sends.len(),
                group.len()
            )));
        }
        let my_pos = group.position_of(self.rank).expect("checked membership");
        let mut own: Option<T> = None;
        for (pos, value) in sends.into_iter().enumerate() {
            let peer = group.ranks()[pos];
            if peer == self.rank {
                own = Some(value);
            } else {
                self.send(peer, value)?;
            }
        }
        let mut received: Vec<Option<T>> = Vec::with_capacity(group.len());
        for _ in 0..group.len() {
            received.push(None);
        }
        received[my_pos] = own;
        for (pos, &peer) in group.ranks().iter().enumerate() {
            if peer != self.rank {
                received[pos] = Some(self.recv(peer)?);
            }
        }
        Ok(received.into_iter().map(|v| v.expect("every member sends exactly one value")).collect())
    }

    fn require_member(&self, group: &Group) -> Result<()> {
        if group.contains(self.rank) {
            Ok(())
        } else {
            Err(CommError::NotInGroup { rank: self.rank })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_word_counts() {
        assert_eq!(3.5f64.word_count(), 1);
        assert_eq!(7usize.word_count(), 1);
        assert_eq!(().word_count(), 0);
        assert_eq!((1usize, 2.0f64).word_count(), 2);
        assert_eq!((1usize, 2.0f64, 3usize).word_count(), 3);
        assert_eq!(vec![1.0f64; 10].word_count(), 10);
        assert_eq!(vec![(1usize, 1.0f64); 4].word_count(), 8);
        assert_eq!(Some(5.0f64).word_count(), 1);
        assert_eq!(Option::<f64>::None.word_count(), 0);
        assert_eq!(vec![vec![1.0f64; 3]; 2].word_count(), 6);
        assert_eq!(true.word_count(), 1);
        assert_eq!(4u64.word_count(), 1);
        assert_eq!((-2i64).word_count(), 1);
    }

    #[test]
    fn group_membership() {
        let g = Group::new(&[3, 1, 3, 5]).unwrap();
        assert_eq!(g.ranks(), &[1, 3, 5]);
        assert_eq!(g.len(), 3);
        assert!(g.contains(3));
        assert!(!g.contains(2));
        assert_eq!(g.position_of(5), Some(2));
        assert_eq!(g.position_of(0), None);
        assert!(Group::new(&[]).is_err());
    }

    // Collective behaviour over real ranks is tested in `runtime.rs` and the
    // crate-level integration tests, where a full Runtime is available.
}

//! # dmbs-graph
//!
//! Graph substrate for the `dmbs` reproduction of *Distributed Matrix-Based
//! Sampling for Graph Neural Network Training* (MLSys 2024).
//!
//! The paper evaluates on three large graphs (OGB `products`, OGB
//! `papers100M` and the HipMCL `protein` graph) that are not redistributable
//! and far exceed a single-machine CPU budget.  This crate provides:
//!
//! * a [`Graph`] type wrapping a CSR adjacency matrix with degrees and
//!   optional vertex features / labels,
//! * synthetic generators ([`generators`]) — R-MAT, Erdős–Rényi, Chung–Lu and
//!   small deterministic graphs — used to build scaled-down stand-ins with the
//!   same average degree and skew as the paper's datasets ([`datasets`]),
//! * 1D and 1.5D block-row partitioners ([`partition`]) matching the process
//!   grids of §5 and §6 of the paper,
//! * versioned incremental edge ingest ([`ingest`]) applying
//!   [`dmbs_matrix::DeltaBatch`]es with partition-aware owner routing,
//! * training-set shuffling and minibatch construction ([`minibatch`]).
//!
//! # Example
//!
//! ```
//! use dmbs_graph::generators::{rmat, RmatConfig};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = StdRng::seed_from_u64(1);
//! let graph = rmat(&RmatConfig::new(8, 4), &mut rng)?;
//! assert_eq!(graph.num_vertices(), 256);
//! assert!(graph.num_edges() > 0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod datasets;
pub mod generators;
pub mod graph;
pub mod ingest;
pub mod minibatch;
pub mod partition;

pub use graph::{Graph, GraphError};
pub use ingest::{GraphIngest, IngestMode, IngestReceipt};
pub use minibatch::MinibatchPlan;
pub use partition::{OneDPartition, OneFiveDPartition};

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, GraphError>;

//! The rank simulator: spawns one thread per rank and wires up communicators.

use crate::collectives::{Communicator, Message};
use crate::cost::{CommStats, CostModel};
use crate::error::CommError;
use crate::Result;
use crossbeam::channel::unbounded;

/// The result produced by one rank of a [`Runtime::run`] execution.
#[derive(Debug, Clone)]
pub struct RankOutput<T> {
    /// The rank that produced this output.
    pub rank: usize,
    /// The closure's return value for this rank.
    pub value: T,
    /// Communication statistics accumulated by this rank.
    pub stats: CommStats,
}

/// A simulated distributed execution environment with a fixed number of
/// ranks.
///
/// Each call to [`Runtime::run`] spawns one OS thread per rank, hands each a
/// [`Communicator`] wired to all its peers, runs the provided SPMD closure
/// and collects the per-rank results in rank order.
///
/// # Example
///
/// ```
/// use dmbs_comm::Runtime;
///
/// # fn main() -> Result<(), dmbs_comm::CommError> {
/// let rt = Runtime::new(3)?;
/// let outs = rt.run(|comm| comm.rank() * 10)?;
/// let values: Vec<usize> = outs.into_iter().map(|o| o.value).collect();
/// assert_eq!(values, vec![0, 10, 20]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Runtime {
    size: usize,
    cost: CostModel,
}

impl Runtime {
    /// Creates a runtime with `size` ranks and the default
    /// (Slingshot-like) cost model.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::InvalidConfig`] if `size == 0`.
    pub fn new(size: usize) -> Result<Self> {
        Self::with_cost_model(size, CostModel::default())
    }

    /// Creates a runtime with `size` ranks and an explicit α–β cost model.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::InvalidConfig`] if `size == 0`.
    pub fn with_cost_model(size: usize, cost: CostModel) -> Result<Self> {
        if size == 0 {
            return Err(CommError::InvalidConfig("runtime requires at least one rank".into()));
        }
        Ok(Runtime { size, cost })
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The cost model used by every communicator.
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    /// Runs `f` on every rank concurrently and returns the per-rank outputs in
    /// rank order.
    ///
    /// The closure receives a mutable [`Communicator`]; its return value is
    /// collected into [`RankOutput::value`].  Closures typically return a
    /// `Result` themselves so that communication errors can be propagated
    /// with `?`.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::RankPanicked`] if any rank's thread panicked.
    /// Errors *returned* by the closure are not treated as runtime errors;
    /// they are delivered in the corresponding [`RankOutput`].
    pub fn run<T, F>(&self, f: F) -> Result<Vec<RankOutput<T>>>
    where
        T: Send + 'static,
        F: Fn(&mut Communicator) -> T + Send + Sync,
    {
        let p = self.size;
        // channels[i][j]: sender transmits from rank i to rank j.
        let mut senders: Vec<Vec<Option<crossbeam::channel::Sender<Message>>>> =
            (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
        let mut receivers: Vec<Vec<Option<crossbeam::channel::Receiver<Message>>>> =
            (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
        for (i, sender_row) in senders.iter_mut().enumerate() {
            for (j, slot) in sender_row.iter_mut().enumerate() {
                let (tx, rx) = unbounded();
                *slot = Some(tx);
                receivers[j][i] = Some(rx);
            }
        }

        let mut communicators: Vec<Communicator> = Vec::with_capacity(p);
        for (rank, (sender_row, receiver_row)) in senders.into_iter().zip(receivers).enumerate() {
            let sends: Vec<_> = sender_row.into_iter().map(|s| s.expect("filled above")).collect();
            let recvs: Vec<_> =
                receiver_row.into_iter().map(|r| r.expect("filled above")).collect();
            communicators.push(Communicator::new(rank, p, sends, recvs, self.cost));
        }

        let f = &f;
        let results: Vec<std::thread::Result<(usize, T, CommStats)>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = communicators
                    .into_iter()
                    .enumerate()
                    .map(|(rank, mut comm)| {
                        scope.spawn(move || {
                            let value = f(&mut comm);
                            (rank, value, comm.stats())
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join()).collect()
            });

        let mut outputs = Vec::with_capacity(p);
        for (rank, result) in results.into_iter().enumerate() {
            match result {
                Ok((r, value, stats)) => outputs.push(RankOutput { rank: r, value, stats }),
                Err(payload) => {
                    // Carry the panic payload into the error so a CI failure
                    // in the rank simulator is diagnosable from the log alone
                    // (`panic!` payloads are `&str` or `String` in practice).
                    let message = payload
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                        .unwrap_or_else(|| "<non-string panic payload>".to_string());
                    return Err(CommError::RankPanicked { rank, message });
                }
            }
        }
        outputs.sort_by_key(|o| o.rank);
        Ok(outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::Group;
    use crate::grid::ProcessGrid;

    #[test]
    fn runtime_requires_ranks() {
        assert!(Runtime::new(0).is_err());
        assert_eq!(Runtime::new(4).unwrap().size(), 4);
    }

    #[test]
    fn single_rank_runs_locally() {
        let rt = Runtime::new(1).unwrap();
        let out = rt
            .run(|comm| {
                let g = comm.allgather(comm.rank()).unwrap();
                let r = comm.allreduce(5.0f64, |a, b| a + b).unwrap();
                comm.barrier().unwrap();
                (g, r)
            })
            .unwrap();
        assert_eq!(out[0].value.0, vec![0]);
        assert_eq!(out[0].value.1, 5.0);
        assert_eq!(out[0].stats.messages, 0);
    }

    #[test]
    fn point_to_point_ring() {
        let rt = Runtime::new(4).unwrap();
        let outs = rt
            .run(|comm| {
                let next = (comm.rank() + 1) % comm.size();
                let prev = (comm.rank() + comm.size() - 1) % comm.size();
                comm.send(next, comm.rank()).unwrap();
                comm.recv::<usize>(prev).unwrap()
            })
            .unwrap();
        let values: Vec<usize> = outs.iter().map(|o| o.value).collect();
        assert_eq!(values, vec![3, 0, 1, 2]);
        // Each rank sent exactly one single-word message.
        assert!(outs.iter().all(|o| o.stats.messages == 1 && o.stats.words_sent == 1));
    }

    #[test]
    fn broadcast_from_nonzero_root() {
        let rt = Runtime::new(4).unwrap();
        let outs = rt
            .run(|comm| {
                let value = if comm.rank() == 2 { Some(vec![1.0f64, 2.0, 3.0]) } else { None };
                comm.broadcast(2, value).unwrap()
            })
            .unwrap();
        for o in outs {
            assert_eq!(o.value, vec![1.0, 2.0, 3.0]);
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let rt = Runtime::new(5).unwrap();
        let outs = rt.run(|comm| comm.gather(0, comm.rank() * 2).unwrap()).unwrap();
        assert_eq!(outs[0].value, Some(vec![0, 2, 4, 6, 8]));
        for o in &outs[1..] {
            assert_eq!(o.value, None);
        }
    }

    #[test]
    fn allgather_and_allreduce() {
        let rt = Runtime::new(4).unwrap();
        let outs = rt
            .run(|comm| {
                let all = comm.allgather(comm.rank()).unwrap();
                let sum = comm
                    .allreduce(vec![comm.rank() as f64, 1.0], |a, b| {
                        a.iter().zip(b).map(|(x, y)| x + y).collect()
                    })
                    .unwrap();
                (all, sum)
            })
            .unwrap();
        for o in outs {
            assert_eq!(o.value.0, vec![0, 1, 2, 3]);
            assert_eq!(o.value.1, vec![6.0, 4.0]);
        }
    }

    #[test]
    fn all_to_allv_exchanges_personalized_data() {
        let rt = Runtime::new(3).unwrap();
        let outs = rt
            .run(|comm| {
                // Rank r sends the value r*10 + destination to each destination.
                let sends: Vec<usize> = (0..comm.size()).map(|d| comm.rank() * 10 + d).collect();
                comm.all_to_allv(sends).unwrap()
            })
            .unwrap();
        assert_eq!(outs[0].value, vec![0, 10, 20]);
        assert_eq!(outs[1].value, vec![1, 11, 21]);
        assert_eq!(outs[2].value, vec![2, 12, 22]);
    }

    #[test]
    fn group_collectives_follow_grid_rows_and_cols() {
        let rt = Runtime::new(4).unwrap();
        let outs = rt
            .run(|comm| {
                let grid = ProcessGrid::new(comm.size(), 2).unwrap();
                let row = Group::new(&grid.row_ranks(comm.rank())).unwrap();
                let col = Group::new(&grid.col_ranks(comm.rank())).unwrap();
                let row_sum = comm.group_allreduce(&row, comm.rank(), |a, b| a + b).unwrap();
                let col_members = comm.group_allgather(&col, comm.rank()).unwrap();
                (row_sum, col_members)
            })
            .unwrap();
        // Grid 2x2: rows {0,1}, {2,3}; cols {0,2}, {1,3}.
        assert_eq!(outs[0].value.0, 1);
        assert_eq!(outs[3].value.0, 5);
        assert_eq!(outs[0].value.1, vec![0, 2]);
        assert_eq!(outs[3].value.1, vec![1, 3]);
    }

    #[test]
    fn group_all_to_allv_within_column() {
        let rt = Runtime::new(4).unwrap();
        let outs = rt
            .run(|comm| {
                let grid = ProcessGrid::new(comm.size(), 2).unwrap();
                let col = Group::new(&grid.col_ranks(comm.rank())).unwrap();
                let sends: Vec<Vec<usize>> = (0..col.len()).map(|i| vec![comm.rank(), i]).collect();
                comm.group_all_to_allv(&col, sends).unwrap()
            })
            .unwrap();
        // Column {0, 2}: rank 0 receives from itself and rank 2.
        assert_eq!(outs[0].value, vec![vec![0, 0], vec![2, 0]]);
        assert_eq!(outs[2].value, vec![vec![0, 1], vec![2, 1]]);
    }

    #[test]
    fn stats_accumulate_modeled_time() {
        let rt = Runtime::with_cost_model(2, CostModel::new(1.0, 0.5)).unwrap();
        let outs = rt
            .run(|comm| {
                if comm.rank() == 0 {
                    comm.send(1, vec![0.0f64; 10]).unwrap();
                    0.0
                } else {
                    comm.recv::<Vec<f64>>(0).unwrap();
                    comm.stats().modeled_time
                }
            })
            .unwrap();
        // Rank 0 sent 10 words: modeled time = 1 + 0.5 * 10 = 6.
        assert!((outs[0].stats.modeled_time - 6.0).abs() < 1e-12);
        assert_eq!(outs[0].stats.words_sent, 10);
        // Rank 1 sent nothing.
        assert_eq!(outs[1].stats.messages, 0);
    }

    #[test]
    fn type_mismatch_is_detected() {
        let rt = Runtime::new(2).unwrap();
        let outs = rt
            .run(|comm| {
                if comm.rank() == 0 {
                    comm.send(1, 42usize).unwrap();
                    Ok(())
                } else {
                    match comm.recv::<f64>(0) {
                        Err(CommError::TypeMismatch { from: 0 }) => Err("mismatch detected"),
                        other => panic!("expected type mismatch, got {other:?}"),
                    }
                }
            })
            .unwrap();
        assert_eq!(outs[1].value, Err("mismatch detected"));
    }

    #[test]
    fn invalid_destination_is_rejected() {
        let rt = Runtime::new(2).unwrap();
        let outs = rt
            .run(|comm| {
                if comm.rank() == 0 {
                    matches!(
                        comm.send(5, 1usize),
                        Err(CommError::RankOutOfRange { rank: 5, size: 2 })
                    )
                } else {
                    true
                }
            })
            .unwrap();
        assert!(outs.iter().all(|o| o.value));
    }

    #[test]
    fn rank_panic_carries_its_payload_message() {
        let rt = Runtime::new(2).unwrap();
        let err = rt
            .run(|comm| {
                if comm.rank() == 1 {
                    panic!("rank 1 exploded at step {}", 7);
                }
                comm.rank()
            })
            .unwrap_err();
        match err {
            CommError::RankPanicked { rank, message } => {
                assert_eq!(rank, 1);
                assert_eq!(message, "rank 1 exploded at step 7");
            }
            other => panic!("expected RankPanicked, got {other:?}"),
        }
    }

    #[test]
    fn barrier_synchronizes_without_error() {
        let rt = Runtime::new(6).unwrap();
        let outs = rt
            .run(|comm| {
                for _ in 0..3 {
                    comm.barrier().unwrap();
                }
                true
            })
            .unwrap();
        assert!(outs.iter().all(|o| o.value));
    }

    #[test]
    fn reset_stats_clears_counters() {
        let rt = Runtime::new(2).unwrap();
        let outs = rt
            .run(|comm| {
                comm.allgather(comm.rank()).unwrap();
                let before = comm.reset_stats();
                let after = comm.stats();
                (before.messages, after.messages)
            })
            .unwrap();
        for o in outs {
            assert_eq!(o.value.1, 0);
        }
    }
}

//! The unified [`SamplingBackend`] abstraction.
//!
//! The paper's central claim is that one matrix formulation (Algorithm 1)
//! expresses *every* sampling algorithm and *every* distribution strategy.
//! This module makes the distribution axis a first-class type: a backend
//! decides **where** `Q`, `P` and `A` live and how the matrix pipeline is
//! scheduled across ranks, while staying generic over **which**
//! [`Sampler`] (GraphSAGE §4.1, LADIES §4.2, FastGCN §2.2.2) supplies the
//! `NORM`/`SAMPLE`/`EXTRACT` steps:
//!
//! * [`LocalBackend`] — single device, no communication (the baseline matrix
//!   pipeline of §4);
//! * [`ReplicatedBackend`] — Graph Replicated (§5.1): `Q` partitioned 1D,
//!   `A` replicated, zero communication during sampling;
//! * [`Partitioned1p5dBackend`] — Graph Partitioned (§5.2): both matrices on
//!   a `p/c × c` grid, probabilities via the sparsity-aware 1.5D SpGEMM of
//!   Algorithm 2 (through [`Sampler::sample_partitioned`]).
//!
//! All three share one configuration type, [`DistConfig`], and one output
//! type, [`EpochSamples`], and are driven by one entry point,
//! [`SamplingBackend::sample_epoch`].  They replace the former zoo of
//! per-(sampler × strategy) free functions (`sample_replicated`,
//! `run_partitioned_sage`, …), which remain only as deprecated wrappers.
//!
//! # Example: the same sampler through two strategies
//!
//! ```
//! use dmbs_sampling::backend::{DistConfig, LocalBackend, ReplicatedBackend, SamplingBackend};
//! use dmbs_sampling::{BulkSamplerConfig, GraphSageSampler};
//! use dmbs_graph::generators::figure1_example;
//!
//! # fn main() -> Result<(), dmbs_sampling::SamplingError> {
//! let graph = figure1_example();
//! let sampler = GraphSageSampler::new(vec![2]);
//! let batches = vec![vec![1, 5], vec![0, 3], vec![2, 4]];
//! let bulk = BulkSamplerConfig::new(2, 3);
//!
//! let local = LocalBackend::new(bulk)?;
//! let on_one_device = local.sample_epoch(&sampler, graph.adjacency(), &batches, 7)?;
//!
//! let replicated = ReplicatedBackend::new(DistConfig::new(4, 1, bulk))?;
//! let on_four_ranks = replicated.sample_epoch(&sampler, graph.adjacency(), &batches, 7)?;
//!
//! assert_eq!(on_one_device.output.num_batches(), 3);
//! assert_eq!(on_four_ranks.output.num_batches(), 3);
//! // Graph-replicated sampling never communicates (§5.1).
//! assert_eq!(on_four_ranks.output.comm_stats.messages, 0);
//! # Ok(())
//! # }
//! ```

use crate::partitioned::{assign_batches_to_rows, flatten_row_outputs};
use crate::plan::{BulkSampleOutput, MinibatchSample};
use crate::replicated::assign_batches_round_robin;
use crate::sampler::{BulkSamplerConfig, PartitionedContext, Sampler};
use crate::{Result, SamplingError};
use dmbs_comm::{CommStats, Communicator, PhaseProfile, ProcessGrid, Runtime};
use dmbs_graph::partition::OneDPartition;
use dmbs_matrix::pool::Parallelism;
use dmbs_matrix::CsrMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Shared configuration of the distributed sampling backends: the process
/// count `p`, the replication factor `c` of the `p/c × c` grid (§5.2), and
/// the bulk sampling shape (`b`, `k`) of §4.1.4/§6.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistConfig {
    /// Number of simulated ranks `p`.
    pub ranks: usize,
    /// Replication factor `c`; must divide `ranks`.  The replicated backend
    /// only uses it for grid bookkeeping (its `A` is fully replicated), the
    /// partitioned backend for the block-row layout of Algorithm 2.
    pub replication_c: usize,
    /// Bulk sampling shape: batch size `b` and bulk minibatch count `k`.
    pub bulk: BulkSamplerConfig,
}

impl DistConfig {
    /// Creates a distribution configuration; validate with
    /// [`DistConfig::validate`] (backends validate on construction).
    pub fn new(ranks: usize, replication_c: usize, bulk: BulkSamplerConfig) -> Self {
        DistConfig { ranks, replication_c, bulk }
    }

    /// Returns this configuration with every rank's local matrix kernels
    /// (SpGEMM, per-row ITS) running on `parallelism` worker threads —
    /// shorthand for setting [`BulkSamplerConfig::parallelism`].
    ///
    /// # Example
    ///
    /// ```
    /// use dmbs_matrix::pool::Parallelism;
    /// use dmbs_sampling::{BulkSamplerConfig, DistConfig};
    ///
    /// let dist = DistConfig::new(4, 2, BulkSamplerConfig::new(1024, 4))
    ///     .with_parallelism(Parallelism::new(8));
    /// assert_eq!(dist.bulk.parallelism.threads(), 8);
    /// ```
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.bulk.parallelism = parallelism;
        self
    }

    /// Returns this configuration with every rank's kernel workspace reuse
    /// switched on or off — shorthand for setting
    /// [`BulkSamplerConfig::workspace_reuse`].
    pub fn with_workspace_reuse(mut self, reuse: bool) -> Self {
        self.bulk.workspace_reuse = reuse;
        self
    }

    /// Rejects zero ranks, zero/non-dividing replication and zero bulk
    /// fields with typed errors.
    ///
    /// # Errors
    ///
    /// Returns [`SamplingError::InvalidDistConfig`] or
    /// [`SamplingError::InvalidBulkConfig`] naming the offending field.
    pub fn validate(&self) -> Result<()> {
        if self.ranks == 0 {
            return Err(SamplingError::InvalidDistConfig { field: "ranks", value: 0 });
        }
        if self.replication_c == 0 || !self.ranks.is_multiple_of(self.replication_c) {
            return Err(SamplingError::InvalidDistConfig {
                field: "replication_c",
                value: self.replication_c,
            });
        }
        self.bulk.validate()
    }
}

/// Per-sampling-unit statistics of one epoch: a *unit* is a rank for the
/// replicated backend, a process row for the partitioned backend, and the
/// single device for the local backend.
#[derive(Debug, Clone, Default)]
pub struct UnitStats {
    /// Unit index (rank or process-row id).
    pub unit: usize,
    /// Number of minibatches this unit sampled.
    pub num_batches: usize,
    /// Phase timing breakdown of this unit.
    pub profile: PhaseProfile,
    /// Communication volume and modeled time of this unit.
    pub comm_stats: CommStats,
}

/// The common output of [`SamplingBackend::sample_epoch`]: all minibatches in
/// the original batch order plus per-unit breakdowns for scaling analyses.
#[derive(Debug, Clone, Default)]
pub struct EpochSamples {
    /// Flattened output: minibatches in the order the batches were supplied;
    /// the profile is the per-phase maximum across units (bulk-synchronous
    /// pipeline), the communication stats the sum.
    pub output: BulkSampleOutput,
    /// Per-unit statistics, in unit order.
    pub per_unit: Vec<UnitStats>,
}

impl EpochSamples {
    /// Number of minibatches sampled.
    pub fn num_batches(&self) -> usize {
        self.output.num_batches()
    }

    /// The sampled minibatches in original batch order.
    pub fn minibatches(&self) -> &[MinibatchSample] {
        &self.output.minibatches
    }

    /// Maximum across units of the total (compute + modeled communication)
    /// time spent in `phase` — the bulk-synchronous critical path.
    pub fn max_phase_total(&self, phase: dmbs_comm::Phase) -> f64 {
        self.per_unit.iter().map(|u| u.profile.total(phase)).fold(0.0, f64::max)
    }

    /// Maximum across units of total compute time.
    pub fn max_total_compute(&self) -> f64 {
        self.per_unit.iter().map(|u| u.profile.total_compute()).fold(0.0, f64::max)
    }

    /// Maximum across units of total modeled communication time.
    pub fn max_total_comm(&self) -> f64 {
        self.per_unit.iter().map(|u| u.profile.total_comm()).fold(0.0, f64::max)
    }

    /// Total words sent across all units.
    pub fn total_words_sent(&self) -> usize {
        self.per_unit.iter().map(|u| u.comm_stats.words_sent).sum()
    }

    /// Maximum across units of the number of messages sent.
    pub fn max_messages(&self) -> usize {
        self.per_unit.iter().map(|u| u.comm_stats.messages).max().unwrap_or(0)
    }

    /// The communication-avoiding fetch plan of this epoch: the deduplicated
    /// union of every minibatch's layer-0 frontier (see
    /// [`crate::FetchPlan`]), which the feature pipeline prefetches once
    /// instead of re-requesting per minibatch.
    pub fn fetch_plan(&self) -> crate::FetchPlan {
        crate::FetchPlan::from_minibatches(&self.output.minibatches)
    }

    /// Appends another epoch's samples (e.g. the next bulk group), summing
    /// unit statistics elementwise.
    pub fn merge(&mut self, other: EpochSamples) {
        self.output.merge(other.output);
        if self.per_unit.len() < other.per_unit.len() {
            self.per_unit.resize_with(other.per_unit.len(), UnitStats::default);
        }
        for (mine, theirs) in self.per_unit.iter_mut().zip(other.per_unit) {
            mine.unit = theirs.unit;
            mine.num_batches += theirs.num_batches;
            mine.profile.merge_sum(&theirs.profile);
            mine.comm_stats.merge(&theirs.comm_stats);
        }
    }
}

/// The seed of bulk group `group` within an epoch seeded with `epoch_seed`.
/// Group 0 uses `epoch_seed` itself, which keeps single-group runs
/// byte-identical to the legacy free functions.
pub fn group_seed(epoch_seed: u64, group: usize) -> u64 {
    epoch_seed.wrapping_add((group as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// One rank's share of a bulk group sampled inside an SPMD pipeline region.
#[derive(Debug, Clone, Default)]
pub struct GroupShard {
    /// `(index within the group, sample)` for every minibatch this rank
    /// trains.
    pub samples: Vec<(usize, MinibatchSample)>,
    /// Sampling-phase profile of this rank for the group.
    pub profile: PhaseProfile,
}

/// A distribution strategy for the matrix sampling pipeline, generic over
/// the sampling algorithm.
///
/// Implementations provide two entry points: [`sample_epoch`] drives a whole
/// epoch from outside any SPMD region (spawning ranks internally as needed),
/// and [`sample_group_on_rank`] samples one bulk group from *inside* a
/// training pipeline's SPMD region, so that sampling composes with
/// distributed feature fetching and gradient all-reduces (§6, Figure 3).
///
/// [`sample_epoch`]: SamplingBackend::sample_epoch
/// [`sample_group_on_rank`]: SamplingBackend::sample_group_on_rank
pub trait SamplingBackend {
    /// Short human-readable name (used in reports and error messages).
    fn name(&self) -> &'static str;

    /// Number of parallel sampling units (1 for local, `p` for replicated,
    /// `p/c` process rows for partitioned).
    fn units(&self) -> usize;

    /// The bulk sampling shape this backend was configured with.
    fn bulk(&self) -> &BulkSamplerConfig;

    /// The shared-memory parallelism the backend's matrix kernels run with.
    fn parallelism(&self) -> Parallelism {
        self.bulk().parallelism
    }

    /// Returns this backend with its matrix-kernel parallelism replaced.
    /// Parallelism never changes *what* is sampled — the parallel kernels
    /// are byte-identical to their serial forms — so this is always safe to
    /// apply to an already-configured backend.
    fn with_parallelism(self, parallelism: Parallelism) -> Self
    where
        Self: Sized;

    /// Returns this backend with kernel workspace reuse switched on or off
    /// (see [`BulkSamplerConfig::workspace_reuse`]).  Like parallelism, the
    /// setting never changes what is sampled.
    fn with_workspace_reuse(self, reuse: bool) -> Self
    where
        Self: Sized;

    /// The simulated runtime, when the backend is distributed.
    fn runtime(&self) -> Option<&Runtime> {
        None
    }

    /// The distribution configuration, when the backend is distributed.
    fn dist(&self) -> Option<&DistConfig> {
        None
    }

    /// A serializable description from which an identical backend can be
    /// rebuilt in another process (see [`crate::spec`]).  `None` — the
    /// default — marks a backend that cannot cross process boundaries.
    fn spec(&self) -> Option<crate::spec::BackendSpec> {
        None
    }

    /// Samples every minibatch of an epoch: `batches` are split into bulk
    /// groups of `bulk().bulk_size`, each group is sampled with the backend's
    /// distribution strategy under [`group_seed`]`(seed, group)`, and the
    /// results are flattened back into the original batch order.
    ///
    /// # Errors
    ///
    /// Returns configuration errors ([`SamplingError::InvalidBulkConfig`],
    /// [`SamplingError::InvalidDistConfig`], invalid batches), sampler errors
    /// and collective failures.
    fn sample_epoch<S: Sampler + Sync>(
        &self,
        sampler: &S,
        adjacency: &CsrMatrix,
        batches: &[Vec<usize>],
        seed: u64,
    ) -> Result<EpochSamples>;

    /// Samples one bulk group from inside an SPMD region and returns the
    /// shard of minibatches this rank trains.  Every rank of the runtime must
    /// call this collectively with identical `group` and `seed`.
    ///
    /// The default implementation is the Graph Replicated strategy (§5.1):
    /// round-robin batch ownership, fully local sampling, no communication —
    /// correct for the local backend too, where `comm.size() == 1`.
    ///
    /// # Errors
    ///
    /// Propagates sampler and collective errors.
    fn sample_group_on_rank<S: Sampler + Sync>(
        &self,
        comm: &mut Communicator,
        sampler: &S,
        adjacency: &CsrMatrix,
        group: &[Vec<usize>],
        seed: u64,
    ) -> Result<GroupShard> {
        let p = comm.size();
        let rank = comm.rank();
        let indices: Vec<usize> = (0..group.len()).filter(|i| i % p == rank).collect();
        if indices.is_empty() {
            return Ok(GroupShard::default());
        }
        let my_batches: Vec<Vec<usize>> = indices.iter().map(|&i| group[i].clone()).collect();
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(rank as u64));
        let config = BulkSamplerConfig { bulk_size: my_batches.len(), ..*self.bulk() };
        let out = sampler.sample_bulk(adjacency, &my_batches, &config, &mut rng)?;
        Ok(GroupShard {
            samples: indices.into_iter().zip(out.minibatches).collect(),
            profile: out.profile,
        })
    }
}

fn check_square(adjacency: &CsrMatrix) -> Result<()> {
    if adjacency.rows() != adjacency.cols() {
        return Err(SamplingError::InvalidConfig("adjacency matrix must be square".into()));
    }
    Ok(())
}

/// Single-device backend: the plain bulk matrix pipeline of §4, one unit, no
/// communication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalBackend {
    bulk: BulkSamplerConfig,
}

impl LocalBackend {
    /// Creates a local backend with the given bulk shape.
    ///
    /// # Errors
    ///
    /// Returns [`SamplingError::InvalidBulkConfig`] for zero fields.
    ///
    /// # Example
    ///
    /// ```
    /// use dmbs_sampling::{BulkSamplerConfig, LocalBackend, SamplingBackend};
    ///
    /// # fn main() -> Result<(), dmbs_sampling::SamplingError> {
    /// let backend = LocalBackend::new(BulkSamplerConfig::new(1024, 4))?;
    /// assert_eq!(backend.units(), 1);
    /// assert!(LocalBackend::new(BulkSamplerConfig::new(0, 4)).is_err());
    /// # Ok(())
    /// # }
    /// ```
    pub fn new(bulk: BulkSamplerConfig) -> Result<Self> {
        bulk.validate()?;
        Ok(LocalBackend { bulk })
    }
}

impl SamplingBackend for LocalBackend {
    fn name(&self) -> &'static str {
        "local"
    }

    fn units(&self) -> usize {
        1
    }

    fn bulk(&self) -> &BulkSamplerConfig {
        &self.bulk
    }

    fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.bulk.parallelism = parallelism;
        self
    }

    fn with_workspace_reuse(mut self, reuse: bool) -> Self {
        self.bulk.workspace_reuse = reuse;
        self
    }

    fn sample_epoch<S: Sampler + Sync>(
        &self,
        sampler: &S,
        adjacency: &CsrMatrix,
        batches: &[Vec<usize>],
        seed: u64,
    ) -> Result<EpochSamples> {
        self.bulk.validate()?;
        check_square(adjacency)?;
        let mut output = BulkSampleOutput::default();
        for (gi, group) in batches.chunks(self.bulk.bulk_size).enumerate() {
            let config = BulkSamplerConfig { bulk_size: group.len(), ..self.bulk };
            let mut rng = StdRng::seed_from_u64(group_seed(seed, gi));
            output.merge(sampler.sample_bulk(adjacency, group, &config, &mut rng)?);
        }
        let per_unit = vec![UnitStats {
            unit: 0,
            num_batches: output.num_batches(),
            profile: output.profile.clone(),
            comm_stats: output.comm_stats,
        }];
        Ok(EpochSamples { output, per_unit })
    }
}

/// The Graph Replicated backend (§5.1): the sampler matrix `Q` is 1D
/// partitioned across `p` ranks, the adjacency matrix is replicated, and
/// sampling involves **no communication**.
#[derive(Debug, Clone)]
pub struct ReplicatedBackend {
    runtime: Runtime,
    dist: DistConfig,
}

impl ReplicatedBackend {
    /// Creates a replicated backend, spawning a simulated runtime with
    /// `dist.ranks` ranks.
    ///
    /// # Errors
    ///
    /// Returns typed configuration errors for invalid `dist` fields.
    ///
    /// # Example
    ///
    /// ```
    /// use dmbs_sampling::{BulkSamplerConfig, DistConfig, ReplicatedBackend, SamplingBackend};
    ///
    /// # fn main() -> Result<(), dmbs_sampling::SamplingError> {
    /// let bulk = BulkSamplerConfig::new(512, 4);
    /// let backend = ReplicatedBackend::new(DistConfig::new(4, 2, bulk))?;
    /// assert_eq!(backend.units(), 4); // every rank samples independently
    /// assert!(ReplicatedBackend::new(DistConfig::new(0, 1, bulk)).is_err());
    /// # Ok(())
    /// # }
    /// ```
    pub fn new(dist: DistConfig) -> Result<Self> {
        dist.validate()?;
        let runtime = Runtime::new(dist.ranks)?;
        Ok(ReplicatedBackend { runtime, dist })
    }

    /// Creates a replicated backend over an existing runtime (e.g. one with a
    /// custom cost model).  `dist.ranks` must equal `runtime.size()`.
    ///
    /// # Errors
    ///
    /// Returns typed configuration errors for invalid or mismatched fields.
    pub fn with_runtime(runtime: Runtime, dist: DistConfig) -> Result<Self> {
        dist.validate()?;
        if runtime.size() != dist.ranks {
            return Err(SamplingError::InvalidDistConfig { field: "ranks", value: dist.ranks });
        }
        Ok(ReplicatedBackend { runtime, dist })
    }
}

impl SamplingBackend for ReplicatedBackend {
    fn name(&self) -> &'static str {
        "graph-replicated"
    }

    fn units(&self) -> usize {
        self.dist.ranks
    }

    fn bulk(&self) -> &BulkSamplerConfig {
        &self.dist.bulk
    }

    fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.dist.bulk.parallelism = parallelism;
        self
    }

    fn with_workspace_reuse(mut self, reuse: bool) -> Self {
        self.dist.bulk.workspace_reuse = reuse;
        self
    }

    fn runtime(&self) -> Option<&Runtime> {
        Some(&self.runtime)
    }

    fn dist(&self) -> Option<&DistConfig> {
        Some(&self.dist)
    }

    fn spec(&self) -> Option<crate::spec::BackendSpec> {
        Some(crate::spec::BackendSpec::Replicated { dist: self.dist })
    }

    fn sample_epoch<S: Sampler + Sync>(
        &self,
        sampler: &S,
        adjacency: &CsrMatrix,
        batches: &[Vec<usize>],
        seed: u64,
    ) -> Result<EpochSamples> {
        self.dist.validate()?;
        check_square(adjacency)?;
        let p = self.dist.ranks;
        let mut epoch = EpochSamples {
            output: BulkSampleOutput::default(),
            per_unit: (0..p).map(|unit| UnitStats { unit, ..Default::default() }).collect(),
        };

        for (gi, group) in batches.chunks(self.dist.bulk.bulk_size).enumerate() {
            let gseed = group_seed(seed, gi);
            let assignment = assign_batches_round_robin(group.len(), p);
            let per_rank = self.runtime.run(|comm| {
                let rank = comm.rank();
                let my_batches: Vec<Vec<usize>> =
                    assignment[rank].iter().map(|&i| group[i].clone()).collect();
                if my_batches.is_empty() {
                    return Ok(BulkSampleOutput::default());
                }
                let mut rng = StdRng::seed_from_u64(gseed.wrapping_add(rank as u64));
                let config = BulkSamplerConfig { bulk_size: my_batches.len(), ..self.dist.bulk };
                sampler.sample_bulk(adjacency, &my_batches, &config, &mut rng)
            })?;

            // Reassemble this group in original batch order.
            let mut ordered: Vec<Option<MinibatchSample>> = vec![None; group.len()];
            let mut group_out = BulkSampleOutput::default();
            for (rank, rank_out) in per_rank.into_iter().enumerate() {
                let rank_out = rank_out.value?;
                let stats = &mut epoch.per_unit[rank];
                stats.num_batches += rank_out.num_batches();
                stats.profile.merge_sum(&rank_out.profile);
                stats.comm_stats.merge(&rank_out.comm_stats);
                group_out.profile.merge_max(&rank_out.profile);
                group_out.comm_stats.merge(&rank_out.comm_stats);
                for (slot, mb) in assignment[rank].iter().zip(rank_out.minibatches) {
                    ordered[*slot] = Some(mb);
                }
            }
            group_out.minibatches = ordered
                .into_iter()
                .map(|mb| {
                    mb.ok_or_else(|| {
                        SamplingError::InvalidConfig(
                            "a minibatch was not sampled by any rank".into(),
                        )
                    })
                })
                .collect::<Result<Vec<_>>>()?;
            epoch.output.merge(group_out);
        }
        Ok(epoch)
    }
}

/// The Graph Partitioned backend (§5.2): both `Q` and `A` are partitioned
/// into `p/c` block rows of a `p/c × c` grid, probabilities are generated
/// with the sparsity-aware 1.5D SpGEMM of Algorithm 2, and each sampler
/// contributes its distributed formulation through
/// [`Sampler::sample_partitioned`].
#[derive(Debug, Clone)]
pub struct Partitioned1p5dBackend {
    runtime: Runtime,
    dist: DistConfig,
}

impl Partitioned1p5dBackend {
    /// Creates a partitioned backend, spawning a simulated runtime with
    /// `dist.ranks` ranks arranged as a `ranks/c × c` grid.
    ///
    /// # Errors
    ///
    /// Returns typed configuration errors for invalid `dist` fields.
    ///
    /// # Example
    ///
    /// ```
    /// use dmbs_sampling::{
    ///     BulkSamplerConfig, DistConfig, Partitioned1p5dBackend, SamplingBackend,
    /// };
    ///
    /// # fn main() -> Result<(), dmbs_sampling::SamplingError> {
    /// let bulk = BulkSamplerConfig::new(512, 4);
    /// // 8 ranks with replication factor c = 2 form a 4 × 2 grid.
    /// let backend = Partitioned1p5dBackend::new(DistConfig::new(8, 2, bulk))?;
    /// assert_eq!(backend.units(), 4); // one sampling unit per process row
    /// // c must divide p.
    /// assert!(Partitioned1p5dBackend::new(DistConfig::new(8, 3, bulk)).is_err());
    /// # Ok(())
    /// # }
    /// ```
    pub fn new(dist: DistConfig) -> Result<Self> {
        dist.validate()?;
        let runtime = Runtime::new(dist.ranks)?;
        Ok(Partitioned1p5dBackend { runtime, dist })
    }

    /// Creates a partitioned backend over an existing runtime.  `dist.ranks`
    /// must equal `runtime.size()`.
    ///
    /// # Errors
    ///
    /// Returns typed configuration errors for invalid or mismatched fields.
    pub fn with_runtime(runtime: Runtime, dist: DistConfig) -> Result<Self> {
        dist.validate()?;
        if runtime.size() != dist.ranks {
            return Err(SamplingError::InvalidDistConfig { field: "ranks", value: dist.ranks });
        }
        Ok(Partitioned1p5dBackend { runtime, dist })
    }

    fn grid(&self) -> Result<ProcessGrid> {
        Ok(ProcessGrid::new(self.dist.ranks, self.dist.replication_c)?)
    }

    /// Runs one bulk group across the grid and returns the per-process-row
    /// outputs (taken from each row's column-0 rank).
    fn run_group<S: Sampler + Sync>(
        &self,
        sampler: &S,
        grid: &ProcessGrid,
        a_blocks: &[CsrMatrix],
        vertex_partition: &OneDPartition,
        group: &[Vec<usize>],
        seed: u64,
    ) -> Result<Vec<BulkSampleOutput>> {
        let row_assignment = assign_batches_to_rows(group.len(), grid.rows());
        let outputs = self.runtime.run(|comm| {
            let (my_row, _) = grid.coords(comm.rank());
            let my_batches: Vec<Vec<usize>> =
                row_assignment[my_row].iter().map(|&i| group[i].clone()).collect();
            let mut ctx = PartitionedContext {
                comm,
                grid,
                my_a_block: &a_blocks[my_row],
                vertex_partition,
                my_batches: &my_batches,
                seed,
                parallelism: self.dist.bulk.parallelism,
                workspace_reuse: self.dist.bulk.workspace_reuse,
            };
            sampler.sample_partitioned(&mut ctx)
        })?;

        let mut per_row = Vec::with_capacity(grid.rows());
        for out in outputs {
            let (_, col) = grid.coords(out.rank);
            if col == 0 {
                per_row.push(out.value?);
            } else {
                // Non-reporting ranks still surface their errors.
                out.value?;
            }
        }
        Ok(per_row)
    }
}

impl SamplingBackend for Partitioned1p5dBackend {
    fn name(&self) -> &'static str {
        "graph-partitioned-1.5d"
    }

    fn units(&self) -> usize {
        self.dist.ranks / self.dist.replication_c
    }

    fn bulk(&self) -> &BulkSamplerConfig {
        &self.dist.bulk
    }

    fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.dist.bulk.parallelism = parallelism;
        self
    }

    fn with_workspace_reuse(mut self, reuse: bool) -> Self {
        self.dist.bulk.workspace_reuse = reuse;
        self
    }

    fn runtime(&self) -> Option<&Runtime> {
        Some(&self.runtime)
    }

    fn dist(&self) -> Option<&DistConfig> {
        Some(&self.dist)
    }

    fn spec(&self) -> Option<crate::spec::BackendSpec> {
        Some(crate::spec::BackendSpec::Partitioned1p5d { dist: self.dist })
    }

    fn sample_epoch<S: Sampler + Sync>(
        &self,
        sampler: &S,
        adjacency: &CsrMatrix,
        batches: &[Vec<usize>],
        seed: u64,
    ) -> Result<EpochSamples> {
        self.dist.validate()?;
        check_square(adjacency)?;
        let grid = self.grid()?;
        let n = adjacency.rows();
        let vertex_partition = OneDPartition::new(n, grid.rows())?;
        let a_blocks = vertex_partition.split_csr(adjacency)?;

        let mut epoch = EpochSamples {
            output: BulkSampleOutput::default(),
            per_unit: (0..grid.rows())
                .map(|unit| UnitStats { unit, ..Default::default() })
                .collect(),
        };
        for (gi, group) in batches.chunks(self.dist.bulk.bulk_size).enumerate() {
            let per_row = self.run_group(
                sampler,
                &grid,
                &a_blocks,
                &vertex_partition,
                group,
                group_seed(seed, gi),
            )?;
            for (row, row_out) in per_row.iter().enumerate() {
                let stats = &mut epoch.per_unit[row];
                stats.num_batches += row_out.num_batches();
                stats.profile.merge_sum(&row_out.profile);
                stats.comm_stats.merge(&row_out.comm_stats);
            }
            epoch.output.merge(flatten_row_outputs(per_row, group.len())?);
        }
        Ok(epoch)
    }

    fn sample_group_on_rank<S: Sampler + Sync>(
        &self,
        comm: &mut Communicator,
        sampler: &S,
        adjacency: &CsrMatrix,
        group: &[Vec<usize>],
        seed: u64,
    ) -> Result<GroupShard> {
        let grid = self.grid()?;
        let n = adjacency.rows();
        let vertex_partition = OneDPartition::new(n, grid.rows())?;
        let (my_row, my_col) = grid.coords(comm.rank());
        let my_range = vertex_partition.range(my_row);
        let my_a_block = adjacency.row_block(my_range.start, my_range.end);
        let row_assignment = assign_batches_to_rows(group.len(), grid.rows());
        let my_indices = &row_assignment[my_row];
        let my_batches: Vec<Vec<usize>> = my_indices.iter().map(|&i| group[i].clone()).collect();

        let mut ctx = PartitionedContext {
            comm,
            grid: &grid,
            my_a_block: &my_a_block,
            vertex_partition: &vertex_partition,
            my_batches: &my_batches,
            seed,
            parallelism: self.dist.bulk.parallelism,
            workspace_reuse: self.dist.bulk.workspace_reuse,
        };
        let out = sampler.sample_partitioned(&mut ctx)?;

        // Every rank of the row holds identical samples; each trains the
        // subset at its own process-column offset.
        let samples = my_indices
            .iter()
            .zip(out.minibatches)
            .enumerate()
            .filter(|(pos, _)| pos % grid.cols() == my_col)
            .map(|(_, (&slot, mb))| (slot, mb))
            .collect();
        Ok(GroupShard { samples, profile: out.profile })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FastGcnSampler, GraphSageSampler, LadiesSampler};
    use dmbs_graph::generators::{figure1_example, rmat, RmatConfig};

    fn adjacency() -> CsrMatrix {
        figure1_example().adjacency().clone()
    }

    fn random_graph(scale: u32, degree: usize, seed: u64) -> CsrMatrix {
        rmat(&RmatConfig::new(scale, degree), &mut StdRng::seed_from_u64(seed))
            .unwrap()
            .adjacency()
            .clone()
    }

    #[test]
    fn dist_config_validation() {
        let bulk = BulkSamplerConfig::new(4, 2);
        assert!(DistConfig::new(4, 2, bulk).validate().is_ok());
        assert_eq!(
            DistConfig::new(0, 1, bulk).validate(),
            Err(SamplingError::InvalidDistConfig { field: "ranks", value: 0 })
        );
        assert_eq!(
            DistConfig::new(4, 0, bulk).validate(),
            Err(SamplingError::InvalidDistConfig { field: "replication_c", value: 0 })
        );
        assert_eq!(
            DistConfig::new(4, 3, bulk).validate(),
            Err(SamplingError::InvalidDistConfig { field: "replication_c", value: 3 })
        );
        assert_eq!(
            DistConfig::new(4, 2, BulkSamplerConfig::new(0, 2)).validate(),
            Err(SamplingError::InvalidBulkConfig { field: "batch_size" })
        );
        assert_eq!(
            DistConfig::new(4, 2, BulkSamplerConfig::new(4, 0)).validate(),
            Err(SamplingError::InvalidBulkConfig { field: "bulk_size" })
        );
    }

    #[test]
    fn backend_constructors_reject_bad_configs() {
        assert!(LocalBackend::new(BulkSamplerConfig::new(0, 1)).is_err());
        assert!(
            ReplicatedBackend::new(DistConfig::new(0, 1, BulkSamplerConfig::new(2, 1))).is_err()
        );
        assert!(Partitioned1p5dBackend::new(DistConfig::new(6, 4, BulkSamplerConfig::new(2, 1)))
            .is_err());
        let rt = Runtime::new(4).unwrap();
        assert!(ReplicatedBackend::with_runtime(
            rt,
            DistConfig::new(8, 2, BulkSamplerConfig::new(2, 1))
        )
        .is_err());
    }

    #[test]
    fn local_backend_splits_bulk_groups_in_order() {
        let a = adjacency();
        let sampler = GraphSageSampler::new(vec![2]);
        let batches: Vec<Vec<usize>> =
            vec![vec![1, 5], vec![0, 3], vec![2, 4], vec![5, 0], vec![3]];
        let backend = LocalBackend::new(BulkSamplerConfig::new(2, 2)).unwrap();
        let epoch = backend.sample_epoch(&sampler, &a, &batches, 11).unwrap();
        assert_eq!(epoch.num_batches(), 5);
        for (mb, batch) in epoch.minibatches().iter().zip(&batches) {
            assert_eq!(&mb.batch, batch);
        }
        assert_eq!(epoch.per_unit.len(), 1);
        assert_eq!(epoch.per_unit[0].num_batches, 5);
        assert_eq!(epoch.output.comm_stats.messages, 0);
    }

    #[test]
    fn replicated_backend_never_communicates_and_keeps_order() {
        let a = adjacency();
        let sampler = GraphSageSampler::new(vec![2, 2]);
        let batches: Vec<Vec<usize>> =
            vec![vec![1, 5], vec![0, 3], vec![2, 4], vec![1, 2], vec![3, 5]];
        let backend =
            ReplicatedBackend::new(DistConfig::new(4, 1, BulkSamplerConfig::new(2, 5))).unwrap();
        let epoch = backend.sample_epoch(&sampler, &a, &batches, 7).unwrap();
        assert_eq!(epoch.num_batches(), 5);
        for (mb, batch) in epoch.minibatches().iter().zip(&batches) {
            assert_eq!(&mb.batch, batch);
        }
        assert_eq!(epoch.per_unit.len(), 4);
        // Round-robin: rank 0 gets batches 0 and 4.
        assert_eq!(epoch.per_unit[0].num_batches, 2);
        assert_eq!(epoch.per_unit[3].num_batches, 1);
        assert_eq!(epoch.max_messages(), 0, "replicated sampling must not communicate");
    }

    #[test]
    fn replicated_backend_is_deterministic() {
        let a = adjacency();
        let sampler = GraphSageSampler::new(vec![2]);
        let batches: Vec<Vec<usize>> = vec![vec![1, 5], vec![0, 3]];
        let backend =
            ReplicatedBackend::new(DistConfig::new(2, 1, BulkSamplerConfig::new(2, 2))).unwrap();
        let e1 = backend.sample_epoch(&sampler, &a, &batches, 99).unwrap();
        let e2 = backend.sample_epoch(&sampler, &a, &batches, 99).unwrap();
        assert_eq!(e1.output.minibatches, e2.output.minibatches);
    }

    #[test]
    fn partitioned_backend_matches_local_with_full_fanout() {
        // With fanout >= any degree GraphSAGE keeps whole neighborhoods, so
        // the partitioned strategy must agree exactly with the local one.
        let a = random_graph(6, 4, 1);
        let n = a.rows();
        let batches: Vec<Vec<usize>> = (0..6).map(|i| vec![i * 5 % n, (i * 11 + 3) % n]).collect();
        let sampler = GraphSageSampler::new(vec![n]);
        let local = LocalBackend::new(BulkSamplerConfig::new(2, 6)).unwrap();
        let expected = local.sample_epoch(&sampler, &a, &batches, 3).unwrap();
        for &(p, c) in &[(4usize, 2usize), (6, 2), (8, 4)] {
            let backend =
                Partitioned1p5dBackend::new(DistConfig::new(p, c, BulkSamplerConfig::new(2, 6)))
                    .unwrap();
            let epoch = backend.sample_epoch(&sampler, &a, &batches, 3).unwrap();
            assert_eq!(epoch.num_batches(), batches.len());
            for (got, want) in epoch.minibatches().iter().zip(expected.minibatches()) {
                assert_eq!(got.batch, want.batch, "p={p} c={c}");
                assert_eq!(got.layers[0].rows, want.layers[0].rows, "p={p} c={c}");
                assert_eq!(got.layers[0].cols, want.layers[0].cols, "p={p} c={c}");
                assert_eq!(got.layers[0].adjacency, want.layers[0].adjacency, "p={p} c={c}");
            }
        }
    }

    #[test]
    fn partitioned_backend_supports_all_three_samplers() {
        let a = random_graph(6, 5, 2);
        let n = a.rows();
        let batches: Vec<Vec<usize>> = (0..4).map(|i| vec![i * 7 % n, (i * 13 + 1) % n]).collect();
        let backend =
            Partitioned1p5dBackend::new(DistConfig::new(4, 2, BulkSamplerConfig::new(2, 4)))
                .unwrap();

        let sage = GraphSageSampler::new(vec![3, 2]);
        let ladies = LadiesSampler::new(2, 8);
        let fastgcn = FastGcnSampler::new(2, 8);
        for epoch in [
            backend.sample_epoch(&sage, &a, &batches, 5).unwrap(),
            backend.sample_epoch(&ladies, &a, &batches, 5).unwrap(),
            backend.sample_epoch(&fastgcn, &a, &batches, 5).unwrap(),
        ] {
            assert_eq!(epoch.num_batches(), batches.len());
            for mb in epoch.minibatches() {
                assert!(mb.frontiers_are_chained());
                for layer in &mb.layers {
                    for (r, c, _) in layer.adjacency.iter() {
                        assert!(
                            a.get(layer.rows[r], layer.cols[c]) > 0.0,
                            "sampled edge not in the graph"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn partitioned_fastgcn_matches_local_fastgcn_weights() {
        // FastGCN's distribution is global, so with s >= n the sampled
        // support is the full positive-degree vertex set in both backends.
        let a = adjacency();
        let n = a.rows();
        let sampler = FastGcnSampler::new(1, n);
        let batches = vec![vec![1, 5], vec![0, 2]];
        let local = LocalBackend::new(BulkSamplerConfig::new(2, 2)).unwrap();
        let partitioned =
            Partitioned1p5dBackend::new(DistConfig::new(4, 2, BulkSamplerConfig::new(2, 2)))
                .unwrap();
        let e_local = local.sample_epoch(&sampler, &a, &batches, 9).unwrap();
        let e_part = partitioned.sample_epoch(&sampler, &a, &batches, 9).unwrap();
        for (l, p) in e_local.minibatches().iter().zip(e_part.minibatches()) {
            assert_eq!(l.layers[0].cols, p.layers[0].cols);
            assert_eq!(l.layers[0].rows, p.layers[0].rows);
            assert!(l.layers[0].adjacency.approx_eq(&p.layers[0].adjacency, 1e-12));
        }
    }

    #[test]
    fn unsupported_sampler_on_partitioned_backend_is_typed() {
        use crate::baseline::PerVertexSageSampler;
        let a = adjacency();
        let sampler = PerVertexSageSampler::new(vec![2]);
        let backend =
            Partitioned1p5dBackend::new(DistConfig::new(2, 1, BulkSamplerConfig::new(2, 1)))
                .unwrap();
        let err = backend.sample_epoch(&sampler, &a, &[vec![1]], 0).unwrap_err();
        assert_eq!(
            err,
            SamplingError::UnsupportedBackend {
                sampler: "per-vertex-sage",
                backend: "graph-partitioned-1.5d",
            }
        );
    }

    #[test]
    fn bulk_output_is_invariant_under_workspace_reuse() {
        // Workspace reuse is a pure allocation strategy: every backend must
        // sample byte-identical minibatches with it on or off, for every
        // sampler, at serial and parallel thread counts.
        let a = random_graph(6, 5, 11);
        let n = a.rows();
        let batches: Vec<Vec<usize>> = (0..4).map(|i| vec![i * 9 % n, (i * 17 + 2) % n]).collect();
        let sage = GraphSageSampler::new(vec![3, 2]);
        let ladies = LadiesSampler::new(2, 6);
        let fastgcn = FastGcnSampler::new(2, 6);
        for threads in [1usize, 4] {
            let bulk = BulkSamplerConfig::new(2, 4).with_parallelism(Parallelism::new(threads));
            let local_reuse = LocalBackend::new(bulk).unwrap();
            let local_fresh = LocalBackend::new(bulk).unwrap().with_workspace_reuse(false);
            assert!(local_reuse.bulk().workspace_reuse);
            assert!(!local_fresh.bulk().workspace_reuse);
            macro_rules! check {
                ($sampler:expr) => {
                    assert_eq!(
                        local_reuse
                            .sample_epoch($sampler, &a, &batches, 5)
                            .unwrap()
                            .output
                            .minibatches,
                        local_fresh
                            .sample_epoch($sampler, &a, &batches, 5)
                            .unwrap()
                            .output
                            .minibatches,
                        "threads = {threads}"
                    );
                };
            }
            check!(&sage);
            check!(&ladies);
            check!(&fastgcn);
        }
        // The partitioned backend threads the knob into the rank bodies.
        let bulk = BulkSamplerConfig::new(2, 4);
        let part_reuse = Partitioned1p5dBackend::new(DistConfig::new(4, 2, bulk)).unwrap();
        let part_fresh = Partitioned1p5dBackend::new(DistConfig::new(4, 2, bulk))
            .unwrap()
            .with_workspace_reuse(false);
        for epochs in [
            (
                part_reuse.sample_epoch(&ladies, &a, &batches, 5).unwrap(),
                part_fresh.sample_epoch(&ladies, &a, &batches, 5).unwrap(),
            ),
            (
                part_reuse.sample_epoch(&fastgcn, &a, &batches, 5).unwrap(),
                part_fresh.sample_epoch(&fastgcn, &a, &batches, 5).unwrap(),
            ),
        ] {
            assert_eq!(epochs.0.output.minibatches, epochs.1.output.minibatches);
        }
    }

    #[test]
    fn group_seed_is_identity_for_group_zero() {
        assert_eq!(group_seed(12345, 0), 12345);
        assert_ne!(group_seed(12345, 1), 12345);
    }

    #[test]
    fn epoch_fetch_plan_covers_every_input_vertex() {
        let a = adjacency();
        let sampler = GraphSageSampler::new(vec![2, 2]);
        let backend = LocalBackend::new(BulkSamplerConfig::new(2, 2)).unwrap();
        let epoch =
            backend.sample_epoch(&sampler, &a, &[vec![1, 5], vec![0, 3], vec![2, 4]], 13).unwrap();
        let plan = epoch.fetch_plan();
        let mut expected: Vec<usize> =
            epoch.minibatches().iter().flat_map(|mb| mb.input_vertices().to_vec()).collect();
        assert_eq!(plan.total_requests(), expected.len());
        expected.sort_unstable();
        expected.dedup();
        assert_eq!(plan.unique_vertices(), expected.as_slice());
        assert_eq!(plan.num_minibatches(), 3);
    }

    #[test]
    fn epoch_samples_merge_accumulates_units() {
        let a = adjacency();
        let sampler = GraphSageSampler::new(vec![2]);
        let backend = LocalBackend::new(BulkSamplerConfig::new(2, 1)).unwrap();
        let mut total = backend.sample_epoch(&sampler, &a, &[vec![1, 5]], 1).unwrap();
        let more = backend.sample_epoch(&sampler, &a, &[vec![0, 3]], 2).unwrap();
        total.merge(more);
        assert_eq!(total.num_batches(), 2);
        assert_eq!(total.per_unit[0].num_batches, 2);
    }
}

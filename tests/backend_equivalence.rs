//! API-redesign safety net: the new `SamplingBackend` trait and the
//! `TrainingSession` minibatch stream must reproduce the legacy free
//! functions' output **byte for byte** under a fixed seed.
//!
//! The legacy functions (`sample_replicated*`, `run_partitioned_*`) are
//! deprecated wrappers now, but they preserve the original call shape —
//! per-rank assignment, per-rank seed derivation, flattening order — so
//! equality here pins the redesign to the old behavior.

#![allow(deprecated)]

mod common;

use common::{random_batches, GRID_SHAPES};
use dmbs::comm::{Codec, Group, ProcessGrid, Runtime};
use dmbs::gnn::{FeatureCache, FeatureCacheConfig, FeatureStore, TrainingSession};
use dmbs::graph::datasets::Dataset;
use dmbs::graph::generators::{figure1_example, rmat, RmatConfig};
use dmbs::matrix::DenseMatrix;
use dmbs::sampling::partitioned::{
    flatten_row_outputs, run_partitioned_ladies, run_partitioned_sage,
};
use dmbs::sampling::replicated::{sample_replicated, sample_replicated_flat};
use dmbs::sampling::{
    BulkSamplerConfig, DistConfig, GraphSageSampler, LadiesSampler, Partitioned1p5dBackend,
    ReplicatedBackend, Sampler, SamplingBackend,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn replicated_backend_is_byte_identical_to_legacy_free_function() {
    let graph = rmat(&RmatConfig::new(7, 6), &mut StdRng::seed_from_u64(2)).unwrap();
    let a = graph.adjacency();
    let batches = random_batches(graph.num_vertices(), 7, 8);
    let bulk = BulkSamplerConfig::new(8, batches.len());
    let sampler = GraphSageSampler::new(vec![4, 3]);

    for p in [1usize, 3, 4] {
        let runtime = Runtime::new(p).unwrap();
        let legacy = sample_replicated_flat(&runtime, &sampler, a, &batches, &bulk, 42).unwrap();
        let legacy_per_rank =
            sample_replicated(&runtime, &sampler, a, &batches, &bulk, 42).unwrap();

        let backend = ReplicatedBackend::new(DistConfig::new(p, 1, bulk)).unwrap();
        let epoch = backend.sample_epoch(&sampler, a, &batches, 42).unwrap();

        assert_eq!(epoch.output.minibatches, legacy.minibatches, "p={p}");
        for (unit, rank_out) in epoch.per_unit.iter().zip(&legacy_per_rank) {
            assert_eq!(unit.num_batches, rank_out.num_batches(), "p={p}");
        }
    }
}

#[test]
fn replicated_backend_matches_hand_rolled_per_rank_sampling() {
    // Independent reconstruction of the §5.1 contract (round-robin batches,
    // per-rank seed = epoch seed + rank), without going through either API.
    let graph = figure1_example();
    let a = graph.adjacency();
    let batches = vec![vec![1, 5], vec![0, 3], vec![2, 4], vec![5, 1], vec![4, 0]];
    let bulk = BulkSamplerConfig::new(2, batches.len());
    let sampler = GraphSageSampler::new(vec![2, 2]);
    let p = 3;
    let seed = 7u64;

    let mut expected = vec![None; batches.len()];
    for rank in 0..p {
        let my_indices: Vec<usize> = (0..batches.len()).filter(|i| i % p == rank).collect();
        let my_batches: Vec<Vec<usize>> = my_indices.iter().map(|&i| batches[i].clone()).collect();
        let mut rng = StdRng::seed_from_u64(seed + rank as u64);
        let config = BulkSamplerConfig::new(2, my_batches.len());
        let out = sampler.sample_bulk(a, &my_batches, &config, &mut rng).unwrap();
        for (slot, mb) in my_indices.into_iter().zip(out.minibatches) {
            expected[slot] = Some(mb);
        }
    }

    let backend = ReplicatedBackend::new(DistConfig::new(p, 1, bulk)).unwrap();
    let epoch = backend.sample_epoch(&sampler, a, &batches, seed).unwrap();
    for (got, want) in epoch.minibatches().iter().zip(expected) {
        assert_eq!(got, &want.unwrap());
    }
}

#[test]
fn partitioned_backend_is_byte_identical_to_legacy_free_functions() {
    let graph = rmat(&RmatConfig::new(7, 5), &mut StdRng::seed_from_u64(4)).unwrap();
    let a = graph.adjacency();
    let batches = random_batches(graph.num_vertices(), 6, 8);
    let bulk = BulkSamplerConfig::new(8, batches.len());

    for (p, c) in [(4usize, 1usize), (4, 2), (8, 2)] {
        let runtime = Runtime::new(p).unwrap();

        // GraphSAGE.
        let sage = GraphSageSampler::new(vec![4, 3]);
        let legacy = flatten_row_outputs(
            run_partitioned_sage(&runtime, c, a, &batches, &[4, 3], false, 23).unwrap(),
            batches.len(),
        )
        .unwrap();
        let backend = Partitioned1p5dBackend::new(DistConfig::new(p, c, bulk)).unwrap();
        let epoch = backend.sample_epoch(&sage, a, &batches, 23).unwrap();
        assert_eq!(epoch.output.minibatches, legacy.minibatches, "sage p={p} c={c}");

        // LADIES.
        let ladies = LadiesSampler::new(1, 12);
        let legacy = flatten_row_outputs(
            run_partitioned_ladies(&runtime, c, a, &batches, 1, 12, 31).unwrap(),
            batches.len(),
        )
        .unwrap();
        let epoch = backend.sample_epoch(&ladies, a, &batches, 31).unwrap();
        assert_eq!(epoch.output.minibatches, legacy.minibatches, "ladies p={p} c={c}");
    }
}

fn feature_matrix(n: usize, f: usize) -> DenseMatrix {
    DenseMatrix::from_rows(
        &(0..n)
            .map(|v| (0..f).map(|j| (v * 31 + j * 7) as f64 * 0.125 + 0.5).collect())
            .collect::<Vec<_>>(),
    )
    .unwrap()
}

proptest! {
    /// Distributed-equivalence sweep at the feature-store level: across
    /// every grid shape, the rows served through the pinned prefetch cache
    /// and the LRU read-through cache are byte-identical to the uncached
    /// all-to-allv fetch, for arbitrary per-rank request lists (including
    /// duplicates), and each cached run moves no more words than the
    /// baseline.
    #[test]
    fn fetched_features_are_byte_identical_cache_on_vs_off(
        wanted_a in proptest::collection::vec(0usize..48, 1..24),
        wanted_b in proptest::collection::vec(0usize..48, 1..24),
    ) {
        let n = 48;
        let f = 5;
        let h = feature_matrix(n, f);
        for (p, c) in GRID_SHAPES {
            let runtime = Runtime::new(p).unwrap();
            let steps = [wanted_a.clone(), wanted_b.clone()];
            // Baseline: per-step all-to-allv, no cache.
            let uncached = runtime
                .run(|comm| {
                    let grid = ProcessGrid::new(comm.size(), c).unwrap();
                    let (my_row, _) = grid.coords(comm.rank());
                    let store = FeatureStore::from_full(&h, grid.rows(), my_row).unwrap();
                    let group = Group::new(&grid.col_ranks(comm.rank())).unwrap();
                    let outs: Vec<DenseMatrix> =
                        steps.iter().map(|w| store.fetch(comm, &group, w).unwrap()).collect();
                    (outs, comm.stats().words_sent)
                })
                .unwrap();
            for (mode, label) in [
                (FeatureCacheConfig::EpochPinned, "pinned"),
                (FeatureCacheConfig::Lru { byte_budget: 1 << 20 }, "lru"),
                (FeatureCacheConfig::Lru { byte_budget: 4 * f * 8 }, "lru-tiny"),
            ] {
                let cached = runtime
                    .run(|comm| {
                        let grid = ProcessGrid::new(comm.size(), c).unwrap();
                        let (my_row, _) = grid.coords(comm.rank());
                        let store = FeatureStore::from_full(&h, grid.rows(), my_row).unwrap();
                        let group = Group::new(&grid.col_ranks(comm.rank())).unwrap();
                        let mut cache = FeatureCache::new(mode, f);
                        let outs: Vec<DenseMatrix> = if mode == FeatureCacheConfig::EpochPinned {
                            let mut union: Vec<usize> =
                                steps.iter().flatten().copied().collect();
                            union.sort_unstable();
                            union.dedup();
                            cache.prefetch(&store, comm, &group, &union).unwrap();
                            steps
                                .iter()
                                .map(|w| cache.gather_pinned(&store, w).unwrap())
                                .collect()
                        } else {
                            steps
                                .iter()
                                .map(|w| cache.fetch_through(&store, comm, &group, w).unwrap())
                                .collect()
                        };
                        (outs, comm.stats().words_sent, *cache.stats())
                    })
                    .unwrap();
                let mut words_uncached = 0;
                let mut words_cached = 0;
                let mut words_saved = 0;
                for (u, cc) in uncached.iter().zip(&cached) {
                    prop_assert_eq!(
                        &u.value.0, &cc.value.0,
                        "p={} c={} mode={}: fetched rows diverged", p, c, label
                    );
                    words_uncached += u.value.1;
                    words_cached += cc.value.1;
                    words_saved += cc.value.2.words_saved;
                }
                prop_assert!(
                    words_cached <= words_uncached,
                    "p={} c={} mode={}: cache moved more words", p, c, label
                );
                prop_assert_eq!(
                    words_cached + words_saved, words_uncached,
                    "p={} c={} mode={}: saved + sent must equal the uncached bill", p, c, label
                );
            }
        }
    }
}

fn equivalence_dataset(seed: u64) -> Dataset {
    common::products_dataset(7, 12, 4, 0.5, Some(0.6), seed) // 128 vertices
}

/// Distributed-equivalence sweep at the full-pipeline level: across every
/// grid shape, `train()` through the distributed path produces bit-identical
/// per-epoch losses and test accuracy with the cache off, epoch-pinned, and
/// LRU — the cache is pure work avoidance — while the pinned pipeline never
/// moves more words and its books balance exactly.
#[test]
fn train_distributed_is_byte_identical_cache_on_vs_off_across_grid_shapes() {
    let dataset = std::sync::Arc::new(equivalence_dataset(40));
    for (p, c) in GRID_SHAPES {
        let base = TrainingSession::<GraphSageSampler, ReplicatedBackend>::builder()
            .dataset(std::sync::Arc::clone(&dataset))
            .sampler(GraphSageSampler::new(vec![4, 3]).with_self_loops())
            .backend(
                ReplicatedBackend::new(DistConfig::new(p, c, BulkSamplerConfig::new(16, 4)))
                    .unwrap(),
            )
            .hidden_dim(12)
            .learning_rate(0.05)
            .epochs(2)
            .seed(19);
        let off = base.clone().build().unwrap().train().unwrap();
        for mode in
            [FeatureCacheConfig::EpochPinned, FeatureCacheConfig::Lru { byte_budget: 1 << 20 }]
        {
            let on = base.clone().feature_cache(mode).build().unwrap().train().unwrap();
            assert_eq!(off.epochs.len(), on.epochs.len());
            for (a, b) in off.epochs.iter().zip(&on.epochs) {
                assert_eq!(
                    a.mean_loss.to_bits(),
                    b.mean_loss.to_bits(),
                    "p={p} c={c} {mode:?}: losses diverged"
                );
                assert!(b.comm.words_sent <= a.comm.words_sent, "p={p} c={c} {mode:?}");
                assert_eq!(
                    b.comm.words_sent + b.comm.words_saved,
                    a.comm.words_sent,
                    "p={p} c={c} {mode:?}: books must balance"
                );
            }
            assert_eq!(
                off.test_accuracy.unwrap().to_bits(),
                on.test_accuracy.unwrap().to_bits(),
                "p={p} c={c} {mode:?}: accuracy diverged"
            );
        }
    }
}

/// Wire-codec sweep over p × c × cache mode × codec: the codec changes only
/// the bytes-on-wire book.  `Codec::Exact` (the default) bills exactly 8
/// bytes per word with nothing saved; the compressed codecs keep the
/// collective schedule (words, messages) identical, strictly shrink
/// `bytes_on_wire`, balance the byte books per epoch
/// (`bytes_on_wire(codec) + bytes_saved == bytes_on_wire(exact)`), stay
/// byte-identical across cache modes under any one codec, and keep the loss
/// trajectory within a stated tolerance of the exact run's.
#[test]
fn train_distributed_codec_sweep_balances_bytes_across_grid_shapes() {
    let dataset = std::sync::Arc::new(equivalence_dataset(42));
    for (p, c) in GRID_SHAPES {
        let base = TrainingSession::<GraphSageSampler, ReplicatedBackend>::builder()
            .dataset(std::sync::Arc::clone(&dataset))
            .sampler(GraphSageSampler::new(vec![4, 3]).with_self_loops())
            .backend(
                ReplicatedBackend::new(DistConfig::new(p, c, BulkSamplerConfig::new(16, 4)))
                    .unwrap(),
            )
            .hidden_dim(12)
            .learning_rate(0.05)
            .epochs(2)
            .seed(29)
            .without_evaluation();
        let exact = base.clone().build().unwrap().train().unwrap();
        for e in &exact.epochs {
            assert_eq!(
                e.comm.bytes_on_wire,
                e.comm.words_sent * 8,
                "p={p} c={c}: exact must bill exactly 8 bytes per word"
            );
            assert_eq!(e.comm.bytes_saved, 0, "p={p} c={c}: exact saves nothing");
        }
        // An explicitly-set Codec::Exact is the default, bit for bit.
        let explicit = base.clone().wire_codec(Codec::Exact).build().unwrap().train().unwrap();
        for (a, b) in exact.epochs.iter().zip(&explicit.epochs) {
            assert_eq!(a.mean_loss.to_bits(), b.mean_loss.to_bits(), "p={p} c={c}");
            assert_eq!(a.comm.bytes_on_wire, b.comm.bytes_on_wire, "p={p} c={c}");
        }
        for codec in [Codec::Fp16, Codec::Int8] {
            let mut cache_losses: Vec<Vec<u64>> = Vec::new();
            for cache in [FeatureCacheConfig::Off, FeatureCacheConfig::EpochPinned] {
                let on = base
                    .clone()
                    .wire_codec(codec)
                    .feature_cache(cache)
                    .build()
                    .unwrap()
                    .train()
                    .unwrap();
                cache_losses.push(on.epochs.iter().map(|e| e.mean_loss.to_bits()).collect());
                if cache != FeatureCacheConfig::Off {
                    continue;
                }
                for (a, b) in exact.epochs.iter().zip(&on.epochs) {
                    let label = format!("p={p} c={c} codec={codec}");
                    // Identical schedule, strictly fewer bytes, balanced books.
                    assert_eq!(a.comm.words_sent, b.comm.words_sent, "{label}");
                    assert_eq!(a.comm.messages, b.comm.messages, "{label}");
                    if p > c {
                        // With p/c = 1 (full replication, or a single rank)
                        // every rank serves its fetches locally — nothing
                        // crosses a wire, so only p > c must shrink.
                        assert!(
                            b.comm.bytes_on_wire < a.comm.bytes_on_wire,
                            "{label}: codec did not shrink the wire"
                        );
                    }
                    assert_eq!(
                        b.comm.bytes_on_wire + b.comm.bytes_saved,
                        a.comm.bytes_on_wire,
                        "{label}: byte books must balance"
                    );
                    // Bounded quantization error keeps the trajectory close.
                    assert!(
                        (a.mean_loss - b.mean_loss).abs() < 0.25,
                        "{label}: loss drifted ({} vs {})",
                        a.mean_loss,
                        b.mean_loss
                    );
                }
            }
            // Under any one codec the cache stays pure work avoidance:
            // cached and uncached losses are bit-identical.
            assert_eq!(
                cache_losses[0], cache_losses[1],
                "p={p} c={c} codec={codec}: cache modes diverged under compression"
            );
        }
    }
}

/// The cache also leaves the graph-partitioned (1.5D) training pipeline
/// byte-identical — the backend axis and the feature-cache axis compose.
#[test]
fn train_partitioned_is_byte_identical_cache_on_vs_off() {
    let dataset = std::sync::Arc::new(equivalence_dataset(41));
    for (p, c) in [(4usize, 2usize), (4, 4)] {
        let base = TrainingSession::<GraphSageSampler, Partitioned1p5dBackend>::builder()
            .dataset(std::sync::Arc::clone(&dataset))
            .sampler(GraphSageSampler::new(vec![4, 3]).with_self_loops())
            .backend(
                Partitioned1p5dBackend::new(DistConfig::new(p, c, BulkSamplerConfig::new(16, 4)))
                    .unwrap(),
            )
            .hidden_dim(12)
            .learning_rate(0.05)
            .epochs(1)
            .seed(23)
            .without_evaluation();
        let off = base.clone().build().unwrap().train().unwrap();
        let on =
            base.feature_cache(FeatureCacheConfig::EpochPinned).build().unwrap().train().unwrap();
        for (a, b) in off.epochs.iter().zip(&on.epochs) {
            assert_eq!(a.mean_loss.to_bits(), b.mean_loss.to_bits(), "p={p} c={c}");
            assert_eq!(
                b.comm.words_sent + b.comm.words_saved,
                a.comm.words_sent,
                "p={p} c={c}: books must balance"
            );
        }
    }
}

#[test]
fn minibatch_stream_prefetch_equals_eager_sampling() {
    // The §6 pipelining must be purely a scheduling change: the stream's
    // double-buffered prefetch yields exactly the same minibatches, in the
    // same order, as eager epoch sampling.
    let dataset = common::products_dataset(8, 8, 4, 0.5, None, 6); // 256 vertices

    let session = TrainingSession::builder()
        .dataset(dataset)
        .sampler(GraphSageSampler::new(vec![4, 3]).with_self_loops())
        .backend(
            ReplicatedBackend::new(DistConfig::new(4, 2, BulkSamplerConfig::new(16, 4))).unwrap(),
        )
        .hidden_dim(8)
        .epochs(1)
        .seed(21)
        .build()
        .unwrap();

    for epoch in 0..2 {
        let eager = session.sample_epoch_eager(epoch).unwrap();
        let streamed: Vec<_> =
            session.stream(epoch).unwrap().collect::<Result<Vec<_>, _>>().unwrap();
        assert_eq!(streamed.len(), eager.num_batches());
        for (mb, want) in streamed.iter().zip(&eager.minibatches) {
            assert_eq!(&mb.sample, want, "epoch {epoch} index {}", mb.index);
        }
    }
}

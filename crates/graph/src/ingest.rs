//! Incremental graph ingest: applying [`DeltaBatch`]es to a live adjacency.
//!
//! A [`GraphIngest`] wraps the adjacency matrix of a running training or
//! serving session and applies edge insert/delete batches between epochs.
//! Two materialization strategies are offered, and the delta-equivalence
//! sweep (`tests/delta_equivalence.rs`) pins that they are byte-identical:
//!
//! * [`IngestMode::Delta`] — batches accumulate in a [`DeltaCsr`] overlay and
//!   are merged lazily the next time [`GraphIngest::adjacency`] is read
//!   (incremental compaction, the production path);
//! * [`IngestMode::Rebuild`] — every batch eagerly rebuilds the whole CSR
//!   from the final edge set via [`CooMatrix`] (the brute-force reference
//!   path).
//!
//! Under the 1.5D partition, ownership of an edge operation follows its
//! **source row**: [`GraphIngest::route_by_owner`] splits a batch into
//! per-block sub-batches so each process row can account for (and validate)
//! the operations landing in its block.  The adjacency itself is replicated
//! per rank in both distributed algorithms, so every rank applies the full
//! batch; the routing is the accounting surface, not a scatter.
//!
//! # Example
//!
//! ```
//! use dmbs_graph::ingest::{GraphIngest, IngestMode};
//! use dmbs_matrix::{CsrMatrix, DeltaBatch};
//!
//! # fn main() -> Result<(), dmbs_graph::GraphError> {
//! let mut ingest = GraphIngest::new(CsrMatrix::identity(4))?;
//! let mut batch = DeltaBatch::new();
//! batch.insert(0, 3, 1.0);
//! batch.delete(2, 2);
//! let receipt = ingest.apply(&batch)?;
//! assert_eq!(receipt.dirty, vec![0, 2, 3]);
//! assert_eq!(ingest.version(), 1);
//! assert_eq!(ingest.adjacency().nnz(), 4); // +1 insert, -1 delete
//! # Ok(())
//! # }
//! ```

use crate::graph::GraphError;
use crate::partition::OneDPartition;
use dmbs_matrix::{CooMatrix, CsrMatrix, DeltaBatch, DeltaCsr};
use serde::{Deserialize, Serialize};

/// How an applied batch is materialized into the adjacency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum IngestMode {
    /// Accumulate batches in the [`DeltaCsr`] overlay and compact lazily on
    /// the next adjacency read (the default, incremental path).
    #[default]
    Delta,
    /// Eagerly rebuild the full CSR from the final edge set on every batch
    /// (the brute-force reference path the equivalence sweep compares
    /// against).
    Rebuild,
}

/// What one [`GraphIngest::apply`] did: the sorted dirty-vertex set (both
/// endpoints of every operation), the operation count, and the graph version
/// after the batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestReceipt {
    /// Sorted, deduplicated vertices touched by the batch — the set precise
    /// cache invalidation works from.
    pub dirty: Vec<usize>,
    /// Number of distinct edge operations in the batch.
    pub ops: usize,
    /// Graph version after applying the batch (one bump per batch).
    pub version: u64,
}

/// A mutable adjacency with versioned batch ingest.
///
/// The version starts at 0 and bumps once per applied batch; consumers that
/// cached derived state (fetch plans, pinned feature rows) compare their
/// recorded version against [`GraphIngest::version`] to detect staleness.
#[derive(Debug, Clone)]
pub struct GraphIngest {
    delta: DeltaCsr,
    mode: IngestMode,
    version: u64,
}

impl GraphIngest {
    /// Wraps a square adjacency matrix at version 0, in
    /// [`IngestMode::Delta`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidConfig`] if the matrix is not square.
    pub fn new(adjacency: CsrMatrix) -> Result<Self, GraphError> {
        if adjacency.rows() != adjacency.cols() {
            return Err(GraphError::InvalidConfig(format!(
                "adjacency matrix must be square, got {}x{}",
                adjacency.rows(),
                adjacency.cols()
            )));
        }
        Ok(GraphIngest { delta: DeltaCsr::new(adjacency), mode: IngestMode::Delta, version: 0 })
    }

    /// Selects the materialization strategy.
    pub fn with_mode(mut self, mode: IngestMode) -> Self {
        self.mode = mode;
        self
    }

    /// The materialization strategy in effect.
    pub fn mode(&self) -> IngestMode {
        self.mode
    }

    /// Current graph version (number of batches applied).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of vertices in the adjacency.
    pub fn num_vertices(&self) -> usize {
        self.delta.base().rows()
    }

    /// Applies one batch and bumps the version.
    ///
    /// In [`IngestMode::Delta`] the batch lands in the overlay and the CSR is
    /// rebuilt lazily on the next [`GraphIngest::adjacency`] read; in
    /// [`IngestMode::Rebuild`] the whole matrix is rebuilt eagerly from the
    /// final edge set.  Both paths produce byte-identical adjacencies.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Matrix`] if any operation lies outside the
    /// adjacency; nothing is applied and the version does not bump.
    pub fn apply(&mut self, batch: &DeltaBatch) -> Result<IngestReceipt, GraphError> {
        match self.mode {
            IngestMode::Delta => self.delta.apply(batch)?,
            IngestMode::Rebuild => {
                // Fold the batch into the *compacted* current edge set and
                // rebuild from scratch through the COO construction path —
                // deliberately a different code path from DeltaCsr::compact.
                let current = self.delta.compact();
                let n = current.rows();
                let mut edges: std::collections::BTreeMap<(usize, usize), f64> =
                    current.iter().map(|(r, c, v)| ((r, c), v)).collect();
                for (r, c, op) in batch.ops() {
                    if r >= n || c >= n {
                        return Err(GraphError::Matrix(
                            dmbs_matrix::MatrixError::IndexOutOfBounds {
                                row: r,
                                col: c,
                                rows: n,
                                cols: n,
                            },
                        ));
                    }
                    match op {
                        Some(w) => {
                            edges.insert((r, c), w);
                        }
                        None => {
                            edges.remove(&(r, c));
                        }
                    }
                }
                let coo =
                    CooMatrix::from_triples(n, n, edges.into_iter().map(|((r, c), v)| (r, c, v)))?;
                self.delta = DeltaCsr::new(CsrMatrix::from_coo(&coo));
            }
        }
        self.version += 1;
        Ok(IngestReceipt { dirty: batch.dirty_vertices(), ops: batch.len(), version: self.version })
    }

    /// The current adjacency, compacting any pending overlay first.
    pub fn adjacency(&mut self) -> &CsrMatrix {
        self.delta.compact()
    }

    /// Splits a batch into per-block sub-batches by the **source row's**
    /// owning block under a 1D block-row partition (the row partition of the
    /// 1.5D grid).  The union of the sub-batches is exactly the input batch.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if an operation's source row
    /// lies outside the partition.
    pub fn route_by_owner(
        batch: &DeltaBatch,
        partition: &OneDPartition,
    ) -> Result<Vec<DeltaBatch>, GraphError> {
        let mut routed: Vec<DeltaBatch> = vec![DeltaBatch::new(); partition.num_parts()];
        for (r, c, op) in batch.ops() {
            if r >= partition.len() {
                return Err(GraphError::VertexOutOfRange {
                    vertex: r,
                    num_vertices: partition.len(),
                });
            }
            let owner = partition.owner_of(r);
            match op {
                Some(w) => {
                    routed[owner].insert(r, c, w);
                }
                None => {
                    routed[owner].delete(r, c);
                }
            }
        }
        Ok(routed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(ops: &[(usize, usize, Option<f64>)]) -> DeltaBatch {
        ops.iter().copied().collect()
    }

    #[test]
    fn requires_square_adjacency() {
        assert!(GraphIngest::new(CsrMatrix::zeros(2, 3)).is_err());
        assert!(GraphIngest::new(CsrMatrix::identity(3)).is_ok());
    }

    #[test]
    fn apply_bumps_version_and_reports_dirty() {
        let mut ingest = GraphIngest::new(CsrMatrix::identity(5)).unwrap();
        let receipt = ingest.apply(&batch(&[(0, 3, Some(1.0)), (4, 1, None)])).unwrap();
        assert_eq!(receipt.version, 1);
        assert_eq!(receipt.ops, 2);
        assert_eq!(receipt.dirty, vec![0, 1, 3, 4]);
        assert_eq!(ingest.version(), 1);
        let a = ingest.adjacency();
        assert_eq!(a.get(0, 3), 1.0);
        assert_eq!(a.get(4, 4), 1.0); // delete-of-absent (4,1) was a no-op
    }

    #[test]
    fn out_of_bounds_batch_leaves_version_alone() {
        let mut ingest = GraphIngest::new(CsrMatrix::identity(3)).unwrap();
        assert!(ingest.apply(&batch(&[(0, 9, Some(1.0))])).is_err());
        assert_eq!(ingest.version(), 0);
        let mut rebuild =
            GraphIngest::new(CsrMatrix::identity(3)).unwrap().with_mode(IngestMode::Rebuild);
        assert!(rebuild.apply(&batch(&[(9, 0, Some(1.0))])).is_err());
        assert_eq!(rebuild.version(), 0);
    }

    #[test]
    fn delta_and_rebuild_modes_are_byte_identical() {
        let batches = [
            batch(&[(0, 2, Some(1.0)), (3, 3, None), (1, 0, Some(0.0))]),
            batch(&[(0, 2, None), (2, 4, Some(2.5))]),
            batch(&[]),
            batch(&[(4, 0, Some(-1.0)), (2, 4, Some(7.0))]),
        ];
        let base = CsrMatrix::identity(5);
        let mut delta = GraphIngest::new(base.clone()).unwrap();
        let mut rebuild = GraphIngest::new(base).unwrap().with_mode(IngestMode::Rebuild);
        for b in &batches {
            delta.apply(b).unwrap();
            rebuild.apply(b).unwrap();
        }
        let a = delta.adjacency().clone();
        let b = rebuild.adjacency().clone();
        assert_eq!(a.indptr(), b.indptr());
        assert_eq!(a.indices(), b.indices());
        let bits = |m: &CsrMatrix| m.values().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a), bits(&b));
    }

    #[test]
    fn routing_partitions_by_source_row_and_unions_back() {
        let part = OneDPartition::new(10, 3).unwrap();
        let b = batch(&[(0, 9, Some(1.0)), (3, 0, None), (4, 4, Some(2.0)), (9, 1, Some(3.0))]);
        let routed = GraphIngest::route_by_owner(&b, &part).unwrap();
        assert_eq!(routed.len(), 3);
        assert_eq!(routed[0].len(), 2); // rows 0 and 3 live in block 0 (rows 0..4)
        assert_eq!(routed[1].len(), 1); // row 4 lives in block 1 (rows 4..7)
        assert_eq!(routed[2].len(), 1); // row 9 lives in block 2 (rows 7..10)
        let mut union = DeltaBatch::new();
        for sub in &routed {
            union.merge(sub);
        }
        assert_eq!(union, b);
    }

    #[test]
    fn routing_rejects_out_of_range_rows() {
        let part = OneDPartition::new(4, 2).unwrap();
        assert!(matches!(
            GraphIngest::route_by_owner(&batch(&[(7, 0, None)]), &part),
            Err(GraphError::VertexOutOfRange { vertex: 7, .. })
        ));
    }
}

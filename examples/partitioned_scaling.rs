//! Graph-Partitioned sampling (§5.2): distribute the adjacency matrix over a
//! `p/c × c` process grid and sample with the sparsity-aware 1.5D SpGEMM of
//! Algorithm 2, sweeping the replication factor.
//!
//! Run with `cargo run --release --example partitioned_scaling`.

use dmbs::comm::{Phase, Runtime};
use dmbs::graph::generators::{rmat, RmatConfig};
use dmbs::sampling::partitioned::{run_partitioned_ladies, run_partitioned_sage};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = rmat(&RmatConfig::new(11, 16), &mut StdRng::seed_from_u64(7))?;
    let n = graph.num_vertices();
    let batches: Vec<Vec<usize>> = (0..16)
        .map(|i| (0..32).map(|j| (i * 131 + j * 17) % n).collect())
        .collect();

    println!("graph: {} vertices, {} edges (distributed across the grid)", n, graph.num_edges());
    for (p, c) in [(4usize, 1usize), (8, 2), (16, 4)] {
        let runtime = Runtime::new(p)?;
        let sage = run_partitioned_sage(&runtime, c, graph.adjacency(), &batches, &[15, 10, 5], false, 3)?;
        let ladies = run_partitioned_ladies(&runtime, c, graph.adjacency(), &batches, 1, 64, 3)?;

        let max_phase = |outs: &[dmbs::sampling::BulkSampleOutput], phase: Phase| {
            outs.iter().map(|o| o.profile.total(phase)).fold(0.0f64, f64::max)
        };
        println!(
            "p={p:>2} c={c}: SAGE  prob {:.4}s | sample {:.4}s | extract {:.4}s | comm(modeled) {:.6}s",
            max_phase(&sage, Phase::Probability),
            max_phase(&sage, Phase::Sampling),
            max_phase(&sage, Phase::Extraction),
            sage.iter().map(|o| o.profile.total_comm()).fold(0.0f64, f64::max),
        );
        println!(
            "        LADIES prob {:.4}s | sample {:.4}s | extract {:.4}s | comm(modeled) {:.6}s",
            max_phase(&ladies, Phase::Probability),
            max_phase(&ladies, Phase::Sampling),
            max_phase(&ladies, Phase::Extraction),
            ladies.iter().map(|o| o.profile.total_comm()).fold(0.0f64, f64::max),
        );
    }
    Ok(())
}

//! Activation functions with explicit gradients.

use dmbs_matrix::DenseMatrix;

/// Rectified linear unit applied element-wise.
pub fn relu(x: &DenseMatrix) -> DenseMatrix {
    x.map(|v| if v > 0.0 { v } else { 0.0 })
}

/// Gradient of ReLU: passes `upstream` through where the pre-activation was
/// positive.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn relu_backward(pre_activation: &DenseMatrix, upstream: &DenseMatrix) -> DenseMatrix {
    assert_eq!(pre_activation.shape(), upstream.shape(), "relu_backward shape mismatch");
    let mask = pre_activation.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
    mask.hadamard(upstream).expect("shapes checked above")
}

/// Row-wise softmax with the usual max-subtraction for numerical stability.
pub fn softmax_rows(logits: &DenseMatrix) -> DenseMatrix {
    let mut out = logits.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        if sum > 0.0 {
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let x = DenseMatrix::from_rows(&[vec![-1.0, 0.0, 2.0]]).unwrap();
        assert_eq!(relu(&x).as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_backward_masks_gradient() {
        let pre = DenseMatrix::from_rows(&[vec![-1.0, 3.0]]).unwrap();
        let up = DenseMatrix::from_rows(&[vec![5.0, 7.0]]).unwrap();
        assert_eq!(relu_backward(&pre, &up).as_slice(), &[0.0, 7.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let x =
            DenseMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![1000.0, 1000.0, 1000.0]]).unwrap();
        let s = softmax_rows(&x);
        for r in 0..2 {
            let sum: f64 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
        assert!(s.get(0, 2) > s.get(0, 1));
        assert!((s.get(1, 0) - 1.0 / 3.0).abs() < 1e-12);
    }
}

//! Point-to-point messaging and collectives over ranks of either transport.
//!
//! A [`Communicator`] belongs to one rank of a [`Runtime`](crate::Runtime)
//! execution.  It offers the NCCL-style operations the paper's algorithms
//! use: point-to-point send/receive, broadcast, gather, all-gather,
//! all-reduce, all-to-allv and barrier — over the whole world or over a
//! [`Group`] (e.g. a process row or column of the 1.5D grid).
//!
//! The communicator is written against the [`Transport`] trait, so the same
//! collective code runs over the in-process rank simulator (threads +
//! channels, payloads as boxed values) and over the Unix-socket multi-process
//! backend (payloads as wire bytes).  Every send records the message's word
//! count and α–β modeled time into the rank's [`CommStats`] *before* the
//! frame reaches the transport, which keeps the deterministic counters
//! identical across backends and is how the benchmark harnesses obtain the
//! communication component of the paper's breakdowns without real network
//! hardware.

use crate::cost::{CommStats, CostModel};
use crate::error::CommError;
use crate::transport::{Frame, FrameBody, Transport, TransportMode};
use crate::wire;
use crate::Result;
use std::collections::VecDeque;

/// The tag of all blocking point-to-point and collective traffic.  Blocking
/// operations execute in identical program order on every rank, so one shared
/// FIFO lane suffices; posted (nonblocking) collectives each get a fresh tag
/// from [`Communicator::fresh_round_tag`] so their messages can sit in a
/// channel behind — or in front of — blocking traffic without being
/// mis-matched.
pub(crate) const TAG_BLOCKING: u64 = 0;

/// Values that can be communicated between ranks.
///
/// The `word_count` is the payload size in 8-byte words used by the α–β cost
/// model; it does not need to be exact to the byte, only proportional to the
/// real transfer volume.
///
/// The remaining methods are the wire codec used by byte-moving transports
/// (see [`wire`]): a structural [`type_code`](Payload::type_code) checked on
/// receive, and a bit-exact [`encode`](Payload::encode) /
/// [`decode`](Payload::decode) pair (`f64` travels as its IEEE-754 bit
/// pattern, so values round-trip identically on both transports).
pub trait Payload: Send + 'static {
    /// Size of the payload in 8-byte words.
    fn word_count(&self) -> usize;

    /// Bytes this payload occupies on the wire.  Defaults to `8 ×`
    /// [`word_count`](Payload::word_count); compressed payloads (see
    /// [`crate::codec::WireRows`]) override it with their encoded size, and
    /// the communicator books the difference into
    /// [`CommStats::bytes_saved`](crate::CommStats::bytes_saved) while
    /// charging β on the real bytes.
    fn wire_bytes(&self) -> usize {
        self.word_count() * 8
    }

    /// Structural code identifying this payload type on the wire.
    fn type_code() -> u64
    where
        Self: Sized;

    /// Appends the wire encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes one value from the front of `input`, advancing it.  `None`
    /// means the bytes do not form a valid value of this type.
    fn decode(input: &mut &[u8]) -> Option<Self>
    where
        Self: Sized;
}

impl Payload for f64 {
    fn word_count(&self) -> usize {
        1
    }
    fn type_code() -> u64 {
        wire::compose_type_code(1, &[])
    }
    fn encode(&self, out: &mut Vec<u8>) {
        wire::put_f64(out, *self);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        wire::get_f64(input)
    }
}

impl Payload for usize {
    fn word_count(&self) -> usize {
        1
    }
    fn type_code() -> u64 {
        wire::compose_type_code(2, &[])
    }
    fn encode(&self, out: &mut Vec<u8>) {
        wire::put_usize(out, *self);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        wire::get_usize(input)
    }
}

impl Payload for u64 {
    fn word_count(&self) -> usize {
        1
    }
    fn type_code() -> u64 {
        wire::compose_type_code(3, &[])
    }
    fn encode(&self, out: &mut Vec<u8>) {
        wire::put_u64(out, *self);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        wire::get_u64(input)
    }
}

impl Payload for i64 {
    fn word_count(&self) -> usize {
        1
    }
    fn type_code() -> u64 {
        wire::compose_type_code(4, &[])
    }
    fn encode(&self, out: &mut Vec<u8>) {
        wire::put_i64(out, *self);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        wire::get_i64(input)
    }
}

impl Payload for bool {
    fn word_count(&self) -> usize {
        1
    }
    fn type_code() -> u64 {
        wire::compose_type_code(5, &[])
    }
    fn encode(&self, out: &mut Vec<u8>) {
        wire::put_u64(out, *self as u64);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        match wire::get_u64(input)? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl Payload for () {
    fn word_count(&self) -> usize {
        0
    }
    fn type_code() -> u64 {
        wire::compose_type_code(6, &[])
    }
    fn encode(&self, _out: &mut Vec<u8>) {}
    fn decode(_input: &mut &[u8]) -> Option<Self> {
        Some(())
    }
}

impl<A: Payload, B: Payload> Payload for (A, B) {
    fn word_count(&self) -> usize {
        self.0.word_count() + self.1.word_count()
    }
    fn wire_bytes(&self) -> usize {
        self.0.wire_bytes() + self.1.wire_bytes()
    }
    fn type_code() -> u64 {
        wire::compose_type_code(20, &[A::type_code(), B::type_code()])
    }
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some((A::decode(input)?, B::decode(input)?))
    }
}

impl<A: Payload, B: Payload, C: Payload> Payload for (A, B, C) {
    fn word_count(&self) -> usize {
        self.0.word_count() + self.1.word_count() + self.2.word_count()
    }
    fn wire_bytes(&self) -> usize {
        self.0.wire_bytes() + self.1.wire_bytes() + self.2.wire_bytes()
    }
    fn type_code() -> u64 {
        wire::compose_type_code(21, &[A::type_code(), B::type_code(), C::type_code()])
    }
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some((A::decode(input)?, B::decode(input)?, C::decode(input)?))
    }
}

impl<T: Payload> Payload for Option<T> {
    fn word_count(&self) -> usize {
        self.as_ref().map_or(0, Payload::word_count)
    }
    fn wire_bytes(&self) -> usize {
        self.as_ref().map_or(0, Payload::wire_bytes)
    }
    fn type_code() -> u64 {
        wire::compose_type_code(22, &[T::type_code()])
    }
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => wire::put_u64(out, 0),
            Some(v) => {
                wire::put_u64(out, 1);
                v.encode(out);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        match wire::get_u64(input)? {
            0 => Some(None),
            1 => Some(Some(T::decode(input)?)),
            _ => None,
        }
    }
}

impl<T: Payload> Payload for Vec<T> {
    fn word_count(&self) -> usize {
        self.iter().map(Payload::word_count).sum()
    }
    fn wire_bytes(&self) -> usize {
        self.iter().map(Payload::wire_bytes).sum()
    }
    fn type_code() -> u64 {
        wire::compose_type_code(10, &[T::type_code()])
    }
    fn encode(&self, out: &mut Vec<u8>) {
        wire::put_usize(out, self.len());
        for v in self {
            v.encode(out);
        }
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        let len = wire::get_usize(input)?;
        // Guard against corrupt length prefixes: every non-zero-sized
        // element occupies at least one wire byte, and zero-sized elements
        // (`()`) get a hard cap so a corrupt prefix cannot spin the decoder.
        if std::mem::size_of::<T>() == 0 {
            if len > (1 << 24) {
                return None;
            }
        } else if len > input.len() {
            return None;
        }
        (0..len).map(|_| T::decode(input)).collect()
    }
}

impl Payload for CommStats {
    fn word_count(&self) -> usize {
        14
    }
    fn type_code() -> u64 {
        // Constructor 32, not 31: the layout grew the invalidation books, so
        // old and new frames must never downcast into each other (the same
        // reason 31 displaced 30 when the bytes-on-wire book arrived).
        wire::compose_type_code(32, &[])
    }
    fn encode(&self, out: &mut Vec<u8>) {
        wire::put_usize(out, self.messages);
        wire::put_usize(out, self.words_sent);
        wire::put_f64(out, self.modeled_time);
        wire::put_usize(out, self.cache_hits);
        wire::put_usize(out, self.cache_misses);
        wire::put_usize(out, self.words_saved);
        wire::put_f64(out, self.overlapped_time);
        wire::put_usize(out, self.amortized_requests);
        wire::put_usize(out, self.bytes_on_wire);
        wire::put_usize(out, self.bytes_saved);
        wire::put_usize(out, self.rows_invalidated);
        wire::put_usize(out, self.rows_retained);
        wire::put_usize(out, self.invalidation_words);
        wire::put_usize(out, self.retained_words);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(CommStats {
            messages: wire::get_usize(input)?,
            words_sent: wire::get_usize(input)?,
            modeled_time: wire::get_f64(input)?,
            cache_hits: wire::get_usize(input)?,
            cache_misses: wire::get_usize(input)?,
            words_saved: wire::get_usize(input)?,
            overlapped_time: wire::get_f64(input)?,
            amortized_requests: wire::get_usize(input)?,
            bytes_on_wire: wire::get_usize(input)?,
            bytes_saved: wire::get_usize(input)?,
            rows_invalidated: wire::get_usize(input)?,
            rows_retained: wire::get_usize(input)?,
            invalidation_words: wire::get_usize(input)?,
            retained_words: wire::get_usize(input)?,
        })
    }
}

/// A subset of ranks participating in a collective (for example one process
/// row or one process column of the 1.5D grid).  Membership is sorted and
/// deduplicated; the group "root" used internally by collectives is the
/// smallest member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    ranks: Vec<usize>,
}

impl Group {
    /// Creates a group from the given ranks (sorted, deduplicated).
    ///
    /// # Errors
    ///
    /// Returns [`CommError::InvalidConfig`] if the group is empty.
    pub fn new(ranks: &[usize]) -> Result<Self> {
        if ranks.is_empty() {
            return Err(CommError::InvalidConfig("a group must contain at least one rank".into()));
        }
        let mut sorted = ranks.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        Ok(Group { ranks: sorted })
    }

    /// The member ranks in ascending order.
    pub fn ranks(&self) -> &[usize] {
        &self.ranks
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// Returns `true` if the group has exactly one member (all collectives
    /// become local no-ops).
    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }

    /// Position of `rank` within the group, if it is a member.
    pub fn position_of(&self, rank: usize) -> Option<usize> {
        self.ranks.binary_search(&rank).ok()
    }

    /// Whether `rank` belongs to the group.
    pub fn contains(&self, rank: usize) -> bool {
        self.position_of(rank).is_some()
    }
}

/// The per-rank handle for communication within a [`Runtime`](crate::Runtime)
/// execution.
#[derive(Debug)]
pub struct Communicator {
    rank: usize,
    size: usize,
    /// The point-to-point carrier underneath: the in-process simulator or
    /// the Unix-socket multi-process backend.
    transport: Box<dyn Transport>,
    /// `stashed[i]` holds frames from rank `i` that arrived while a receive
    /// was waiting for a different tag (MPI-style unexpected-message queue).
    stashed: Vec<VecDeque<Frame>>,
    /// Next tag handed out to a posted (nonblocking) collective round.  All
    /// ranks execute the same SPMD program, so the counters advance in
    /// lockstep and a round's tag agrees across the world.
    next_tag: u64,
    cost: CostModel,
    stats: CommStats,
}

impl Communicator {
    /// Builds a communicator over an arbitrary [`Transport`], charging the
    /// given α–β cost model.  This is how worker processes of the socket
    /// backend (and any future transport) obtain their per-rank handle; the
    /// simulator constructs one per rank thread via
    /// [`Runtime::run`](crate::Runtime::run).
    pub fn from_transport(transport: Box<dyn Transport>, cost: CostModel) -> Self {
        let rank = transport.rank();
        let size = transport.size();
        let stashed = (0..size).map(|_| VecDeque::new()).collect();
        Communicator {
            rank,
            size,
            transport,
            stashed,
            next_tag: TAG_BLOCKING + 1,
            cost,
            stats: CommStats::new(),
        }
    }

    /// Unpacks one matched frame into a typed value: downcast for the
    /// in-process body, type-code check + bit-exact decode for wire bytes.
    fn extract<T: Payload>(frame: Frame, from: usize) -> Result<T> {
        match frame.body {
            FrameBody::Boxed(payload) => {
                payload.downcast::<T>().map(|b| *b).map_err(|_| CommError::TypeMismatch { from })
            }
            FrameBody::Bytes { type_code, bytes } => {
                if type_code != T::type_code() {
                    return Err(CommError::TypeMismatch { from });
                }
                let mut input = bytes.as_slice();
                let value = T::decode(&mut input).ok_or(CommError::TypeMismatch { from })?;
                if !input.is_empty() {
                    return Err(CommError::TypeMismatch { from });
                }
                Ok(value)
            }
        }
    }

    /// Reserves a fresh tag for one nonblocking collective round.  Every rank
    /// must reserve tags in the same program order (SPMD), which is what makes
    /// a posted round's messages match up across ranks.
    pub(crate) fn fresh_round_tag(&mut self) -> u64 {
        let tag = self.next_tag;
        self.next_tag += 1;
        tag
    }

    /// This rank's id in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The α–β cost model in effect.
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    /// Communication statistics accumulated so far by this rank.
    pub fn stats(&self) -> CommStats {
        self.stats
    }

    /// Resets the accumulated statistics (e.g. between pipeline phases).
    pub fn reset_stats(&mut self) -> CommStats {
        std::mem::take(&mut self.stats)
    }

    /// The group containing every rank.
    pub fn world(&self) -> Group {
        Group::new(&(0..self.size).collect::<Vec<_>>()).expect("world is non-empty")
    }

    /// Sends `value` to rank `to`.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::RankOutOfRange`] for an invalid destination, or
    /// [`CommError::Disconnected`] if the destination rank has already
    /// terminated.
    pub fn send<T: Payload>(&mut self, to: usize, value: T) -> Result<()> {
        self.send_tagged(to, TAG_BLOCKING, value)
    }

    /// Sends `value` to rank `to` under `tag` (the nonblocking lane when
    /// `tag != TAG_BLOCKING`).  Channel sends never block, so posting a
    /// collective's outgoing messages completes immediately.
    pub(crate) fn send_tagged<T: Payload>(&mut self, to: usize, tag: u64, value: T) -> Result<()> {
        if to >= self.size {
            return Err(CommError::RankOutOfRange { rank: to, size: self.size });
        }
        // Record stats *before* handing the frame to the transport: the
        // deterministic counters must not depend on which backend carries
        // the bytes.  Logical words and encoded wire bytes are booked
        // separately so compressed payloads keep comparable word counts
        // while β is charged on what actually moves.
        self.stats.record_wire(value.word_count(), value.wire_bytes(), &self.cost);
        let frame = match self.transport.mode() {
            TransportMode::InProcess => Frame { tag, body: FrameBody::Boxed(Box::new(value)) },
            TransportMode::Wire => {
                let mut bytes = Vec::new();
                value.encode(&mut bytes);
                Frame { tag, body: FrameBody::Bytes { type_code: T::type_code(), bytes } }
            }
        };
        self.transport.send(to, frame)
    }

    /// Receives a value of type `T` from rank `from`, blocking until it
    /// arrives.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::RankOutOfRange`] for an invalid source,
    /// [`CommError::Disconnected`] if the source terminated without sending,
    /// or [`CommError::TypeMismatch`] if the arriving message has a different
    /// type (which indicates mismatched collective calls across ranks).
    pub fn recv<T: Payload>(&mut self, from: usize) -> Result<T> {
        self.recv_tagged(from, TAG_BLOCKING)
    }

    /// Receives the next message from `from` carrying `tag`, stashing any
    /// messages with other tags (they belong to posted collectives that will
    /// be waited later, or to blocking traffic behind an in-flight round).
    pub(crate) fn recv_tagged<T: Payload>(&mut self, from: usize, tag: u64) -> Result<T> {
        if from >= self.size {
            return Err(CommError::RankOutOfRange { rank: from, size: self.size });
        }
        // Messages for one (peer, tag) pair are produced and consumed in the
        // same program order, so the first stashed match is the right one.
        if let Some(pos) = self.stashed[from].iter().position(|m| m.tag == tag) {
            let frame = self.stashed[from].remove(pos).expect("position just found");
            return Self::extract(frame, from);
        }
        loop {
            let frame = self.transport.recv(from)?;
            if frame.tag == tag {
                return Self::extract(frame, from);
            }
            self.stashed[from].push_back(frame);
        }
    }

    /// Synchronizes all ranks in the world.
    ///
    /// # Errors
    ///
    /// Propagates point-to-point errors (disconnected peers).
    pub fn barrier(&mut self) -> Result<()> {
        let world = self.world();
        self.group_allreduce(&world, 0usize, |a, b| a + b)?;
        Ok(())
    }

    /// Broadcast over the whole world: the `root`'s value (which it must
    /// supply as `Some`) is returned on every rank.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::InvalidConfig`] if the root does not supply a
    /// value, plus any point-to-point error.
    pub fn broadcast<T: Payload + Clone>(&mut self, root: usize, value: Option<T>) -> Result<T> {
        let world = self.world();
        self.group_broadcast(&world, root, value)
    }

    /// Gather over the whole world: every rank's value arrives at `root` in
    /// rank order; non-roots receive `None`.
    ///
    /// # Errors
    ///
    /// Propagates point-to-point errors.
    pub fn gather<T: Payload>(&mut self, root: usize, value: T) -> Result<Option<Vec<T>>> {
        let world = self.world();
        self.group_gather(&world, root, value)
    }

    /// All-gather over the whole world.
    ///
    /// # Errors
    ///
    /// Propagates point-to-point errors.
    pub fn allgather<T: Payload + Clone>(&mut self, value: T) -> Result<Vec<T>> {
        let world = self.world();
        self.group_allgather(&world, value)
    }

    /// All-reduce over the whole world with a custom associative combiner.
    ///
    /// # Errors
    ///
    /// Propagates point-to-point errors.
    pub fn allreduce<T, F>(&mut self, value: T, combine: F) -> Result<T>
    where
        T: Payload + Clone,
        F: Fn(&T, &T) -> T,
    {
        let world = self.world();
        self.group_allreduce(&world, value, combine)
    }

    /// All-to-allv over the whole world: `sends[j]` is delivered to rank `j`;
    /// the returned vector holds one received value per source rank.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::InvalidConfig`] if `sends.len() != size`, plus any
    /// point-to-point error.
    pub fn all_to_allv<T: Payload>(&mut self, sends: Vec<T>) -> Result<Vec<T>> {
        let world = self.world();
        self.group_all_to_allv(&world, sends)
    }

    /// Broadcast within a group.  The root (any member) supplies `Some(value)`.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::NotInGroup`] if the caller or root is not a
    /// member, [`CommError::InvalidConfig`] if the root supplies no value.
    pub fn group_broadcast<T: Payload + Clone>(
        &mut self,
        group: &Group,
        root: usize,
        value: Option<T>,
    ) -> Result<T> {
        self.require_member(group)?;
        if !group.contains(root) {
            return Err(CommError::NotInGroup { rank: root });
        }
        if self.rank == root {
            let value = value.ok_or_else(|| {
                CommError::InvalidConfig("broadcast root must supply a value".into())
            })?;
            for &peer in group.ranks() {
                if peer != self.rank {
                    self.send(peer, value.clone())?;
                }
            }
            Ok(value)
        } else {
            self.recv(root)
        }
    }

    /// Gather within a group: member values arrive at `root` in ascending
    /// rank order.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::NotInGroup`] if the caller or root is not a
    /// member, plus any point-to-point error.
    pub fn group_gather<T: Payload>(
        &mut self,
        group: &Group,
        root: usize,
        value: T,
    ) -> Result<Option<Vec<T>>> {
        self.require_member(group)?;
        if !group.contains(root) {
            return Err(CommError::NotInGroup { rank: root });
        }
        if self.rank == root {
            let mut out: Vec<Option<T>> = Vec::with_capacity(group.len());
            for _ in 0..group.len() {
                out.push(None);
            }
            let own_pos = group.position_of(self.rank).expect("checked membership");
            out[own_pos] = Some(value);
            for (pos, &peer) in group.ranks().iter().enumerate() {
                if peer != self.rank {
                    out[pos] = Some(self.recv(peer)?);
                }
            }
            Ok(Some(out.into_iter().map(|v| v.expect("all positions filled")).collect()))
        } else {
            self.send(root, value)?;
            Ok(None)
        }
    }

    /// All-gather within a group.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::NotInGroup`] if the caller is not a member, plus
    /// any point-to-point error.
    pub fn group_allgather<T: Payload + Clone>(
        &mut self,
        group: &Group,
        value: T,
    ) -> Result<Vec<T>> {
        self.require_member(group)?;
        let root = group.ranks()[0];
        let gathered = self.group_gather(group, root, value)?;
        self.group_broadcast(group, root, gathered)
    }

    /// All-reduce within a group with a custom associative combiner.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::NotInGroup`] if the caller is not a member, plus
    /// any point-to-point error.
    pub fn group_allreduce<T, F>(&mut self, group: &Group, value: T, combine: F) -> Result<T>
    where
        T: Payload + Clone,
        F: Fn(&T, &T) -> T,
    {
        self.require_member(group)?;
        let root = group.ranks()[0];
        let gathered = self.group_gather(group, root, value)?;
        let reduced = gathered.map(|values| {
            let mut iter = values.into_iter();
            let first = iter.next().expect("group is non-empty");
            iter.fold(first, |acc, v| combine(&acc, &v))
        });
        self.group_broadcast(group, root, reduced)
    }

    /// All-to-allv within a group: `sends[i]` goes to the `i`-th member (in
    /// ascending rank order); the result holds one value per member, indexed
    /// the same way.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::NotInGroup`] if the caller is not a member,
    /// [`CommError::InvalidConfig`] if `sends.len() != group.len()`, plus any
    /// point-to-point error.
    pub fn group_all_to_allv<T: Payload>(
        &mut self,
        group: &Group,
        sends: Vec<T>,
    ) -> Result<Vec<T>> {
        self.require_member(group)?;
        if sends.len() != group.len() {
            return Err(CommError::InvalidConfig(format!(
                "all_to_allv requires one send per group member ({} != {})",
                sends.len(),
                group.len()
            )));
        }
        let my_pos = group.position_of(self.rank).expect("checked membership");
        let mut own: Option<T> = None;
        for (pos, value) in sends.into_iter().enumerate() {
            let peer = group.ranks()[pos];
            if peer == self.rank {
                own = Some(value);
            } else {
                self.send(peer, value)?;
            }
        }
        let mut received: Vec<Option<T>> = Vec::with_capacity(group.len());
        for _ in 0..group.len() {
            received.push(None);
        }
        received[my_pos] = own;
        for (pos, &peer) in group.ranks().iter().enumerate() {
            if peer != self.rank {
                received[pos] = Some(self.recv(peer)?);
            }
        }
        Ok(received.into_iter().map(|v| v.expect("every member sends exactly one value")).collect())
    }

    fn require_member(&self, group: &Group) -> Result<()> {
        if group.contains(self.rank) {
            Ok(())
        } else {
            Err(CommError::NotInGroup { rank: self.rank })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_word_counts() {
        assert_eq!(3.5f64.word_count(), 1);
        assert_eq!(7usize.word_count(), 1);
        assert_eq!(().word_count(), 0);
        assert_eq!((1usize, 2.0f64).word_count(), 2);
        assert_eq!((1usize, 2.0f64, 3usize).word_count(), 3);
        assert_eq!(vec![1.0f64; 10].word_count(), 10);
        assert_eq!(vec![(1usize, 1.0f64); 4].word_count(), 8);
        assert_eq!(Some(5.0f64).word_count(), 1);
        assert_eq!(Option::<f64>::None.word_count(), 0);
        assert_eq!(vec![vec![1.0f64; 3]; 2].word_count(), 6);
        assert_eq!(true.word_count(), 1);
        assert_eq!(4u64.word_count(), 1);
        assert_eq!((-2i64).word_count(), 1);
    }

    fn round_trip<T: Payload + PartialEq + std::fmt::Debug + Clone>(value: T) {
        let mut bytes = Vec::new();
        value.encode(&mut bytes);
        let mut input = bytes.as_slice();
        let back = T::decode(&mut input).expect("decodes");
        assert!(input.is_empty(), "no trailing bytes for {value:?}");
        assert_eq!(back, value);
    }

    #[test]
    fn payload_wire_round_trips() {
        round_trip(3.5f64);
        round_trip(-0.0f64);
        round_trip(7usize);
        round_trip(42u64);
        round_trip(-9i64);
        round_trip(true);
        round_trip(false);
        round_trip(());
        round_trip((1usize, 2.0f64));
        round_trip((1usize, 2.0f64, 3usize));
        round_trip(Some(5.0f64));
        round_trip(Option::<f64>::None);
        round_trip(vec![1.0f64, -2.5, 3.25]);
        round_trip(vec![vec![1usize, 2], vec![], vec![3]]);
        round_trip(vec![(1usize, 2usize, 0.5f64); 4]);
        round_trip(Vec::<f64>::new());
        let mut stats = CommStats::new();
        stats.record(10, &CostModel::new(1.0, 0.5));
        stats.record_cache_hit(17);
        stats.record_overlap(0.25);
        round_trip(stats);
    }

    #[test]
    fn payload_type_codes_are_distinct() {
        let codes = [
            <f64 as Payload>::type_code(),
            <usize as Payload>::type_code(),
            <u64 as Payload>::type_code(),
            <i64 as Payload>::type_code(),
            <bool as Payload>::type_code(),
            <() as Payload>::type_code(),
            <(usize, f64) as Payload>::type_code(),
            <(usize, f64, usize) as Payload>::type_code(),
            <Option<f64> as Payload>::type_code(),
            <Vec<f64> as Payload>::type_code(),
            <Vec<Vec<f64>> as Payload>::type_code(),
            <Vec<usize> as Payload>::type_code(),
            <CommStats as Payload>::type_code(),
        ];
        for (i, a) in codes.iter().enumerate() {
            for (j, b) in codes.iter().enumerate() {
                assert_eq!(i == j, a == b, "type codes must be pairwise distinct");
            }
        }
    }

    #[test]
    fn corrupt_bodies_decode_to_none() {
        // bool only admits 0/1.
        let mut buf = Vec::new();
        crate::wire::put_u64(&mut buf, 2);
        assert_eq!(bool::decode(&mut buf.as_slice()), None);
        // Vec length prefix larger than the remaining body.
        let mut buf = Vec::new();
        crate::wire::put_usize(&mut buf, 1_000);
        assert_eq!(Vec::<f64>::decode(&mut buf.as_slice()), None);
        // Zero-sized elements are capped instead of spinning.
        let mut buf = Vec::new();
        crate::wire::put_usize(&mut buf, usize::MAX);
        assert_eq!(Vec::<()>::decode(&mut buf.as_slice()), None);
    }

    #[test]
    fn group_membership() {
        let g = Group::new(&[3, 1, 3, 5]).unwrap();
        assert_eq!(g.ranks(), &[1, 3, 5]);
        assert_eq!(g.len(), 3);
        assert!(g.contains(3));
        assert!(!g.contains(2));
        assert_eq!(g.position_of(5), Some(2));
        assert_eq!(g.position_of(0), None);
        assert!(Group::new(&[]).is_err());
    }

    // Collective behaviour over real ranks is tested in `runtime.rs` and the
    // crate-level integration tests, where a full Runtime is available.
}

//! Figure 6: the Graph-Replicated pipeline with and without feature
//! replication ("NoRep") on the Papers and Protein stand-ins.
//!
//! NoRep splits the feature matrix across every rank (replication factor 1),
//! so feature fetching spans the whole world instead of one process column —
//! the degradation the paper reports (over 2x slower on Papers).

use dmbs_bench::{
    dataset, print_table, replication_for, sage_training_config, secs, train_replicated, Scale,
};
use dmbs_gnn::trainer::SamplerChoice;
use dmbs_graph::datasets::DatasetKind;

fn main() {
    let scale = Scale::from_env();
    for kind in [DatasetKind::Papers, DatasetKind::Protein] {
        let ds = std::sync::Arc::new(dataset(kind, scale));
        let mut config = sage_training_config(&ds);
        config.epochs = 1;
        let mut rows = Vec::new();
        for &p in &scale.rank_counts() {
            let c = replication_for(p).min(p);
            let rep = train_replicated(&ds, &config, p, c, true, SamplerChoice::MatrixSage);
            let norep = train_replicated(&ds, &config, p, 1, false, SamplerChoice::MatrixSage);
            let r = &rep[0];
            let n = &norep[0];
            rows.push(vec![
                format!("{p}"),
                format!("c={c}"),
                secs(r.total_time()),
                secs(n.total_time()),
                format!("{}", r.comm.words_sent),
                format!("{}", n.comm.words_sent),
                format!("{:.2}x", n.total_time() / r.total_time().max(1e-12)),
            ]);
        }
        print_table(
            &format!("Figure 6 — {} (replicated features vs NoRep)", kind.name()),
            &["ranks", "repl", "rep total", "norep total", "rep words", "norep words", "norep/rep"],
            &rows,
        );
    }
    println!("\nPaper reference: NoRep degrades Papers by more than 2x; Protein sees smaller benefits because its replication factor was capped at c=2.");
}

//! Serializable descriptions of samplers and backends.
//!
//! The Unix-socket transport runs each rank in its own OS process, so a
//! `TrainingSession` cannot hand its sampler/backend *objects* to the ranks
//! — it ships a **spec** instead, and each rank process rebuilds an
//! identical object from it.  [`SamplerSpec`] and [`BackendSpec`] are those
//! descriptions: plain data, total (every field of the source object is
//! captured, so the rebuild is exact), and independent of any wire format
//! (the `dmbs-gnn` worker codec chooses the bytes).
//!
//! A sampler or backend that cannot be described this way simply returns
//! `None` from [`Sampler::spec`](crate::Sampler::spec) /
//! [`SamplingBackend::spec`](crate::SamplingBackend::spec), and the session
//! layer reports a typed error when such an object is asked to cross a
//! process boundary.

use crate::backend::DistConfig;

/// A rebuildable description of a [`Sampler`](crate::Sampler).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SamplerSpec {
    /// [`GraphSageSampler`](crate::GraphSageSampler).
    GraphSage {
        /// Per-step fanouts, outermost first.
        fanouts: Vec<usize>,
        /// Whether self-loops are added during extraction.
        self_loops: bool,
    },
    /// [`LadiesSampler`](crate::LadiesSampler).
    Ladies {
        /// Number of layers.
        num_layers: usize,
        /// Vertices sampled per layer.
        samples_per_layer: usize,
        /// Whether each layer's support includes the previous layer.
        include_previous: bool,
    },
    /// [`FastGcnSampler`](crate::FastGcnSampler).
    FastGcn {
        /// Number of layers.
        num_layers: usize,
        /// Vertices sampled per layer.
        samples_per_layer: usize,
    },
}

/// A rebuildable description of a distributed
/// [`SamplingBackend`](crate::SamplingBackend).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendSpec {
    /// [`ReplicatedBackend`](crate::ReplicatedBackend) (§5.1).
    Replicated {
        /// The distribution configuration.
        dist: DistConfig,
    },
    /// [`Partitioned1p5dBackend`](crate::Partitioned1p5dBackend) (§5.2).
    Partitioned1p5d {
        /// The distribution configuration.
        dist: DistConfig,
    },
}

impl BackendSpec {
    /// The distribution configuration common to every distributed backend.
    pub fn dist(&self) -> &DistConfig {
        match self {
            BackendSpec::Replicated { dist } | BackendSpec::Partitioned1p5d { dist } => dist,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::BulkSamplerConfig;

    #[test]
    fn backend_spec_exposes_dist() {
        let dist = DistConfig::new(4, 2, BulkSamplerConfig::new(8, 4));
        let spec = BackendSpec::Partitioned1p5d { dist };
        assert_eq!(spec.dist(), &dist);
        let spec = BackendSpec::Replicated { dist };
        assert_eq!(spec.dist().ranks, 4);
    }
}

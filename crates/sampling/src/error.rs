//! Error types for sampling algorithms.

use dmbs_comm::CommError;
use dmbs_graph::GraphError;
use dmbs_matrix::MatrixError;
use std::error::Error;
use std::fmt;

/// Errors produced by sampling algorithms and distributed sampling backends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SamplingError {
    /// The sampler was configured with invalid parameters (zero fanout, empty
    /// batch, batch vertex out of range, …).
    InvalidConfig(String),
    /// A [`crate::BulkSamplerConfig`] field that must be positive was zero.
    InvalidBulkConfig {
        /// The offending field (`"batch_size"` or `"bulk_size"`).
        field: &'static str,
    },
    /// A [`crate::backend::DistConfig`] field was invalid (zero ranks, zero
    /// replication, or a replication factor that does not divide the ranks).
    InvalidDistConfig {
        /// The offending field (`"ranks"` or `"replication_c"`).
        field: &'static str,
        /// The rejected value.
        value: usize,
    },
    /// The sampler does not implement the requested distribution strategy
    /// (e.g. a custom sampler without a graph-partitioned formulation).
    UnsupportedBackend {
        /// [`crate::Sampler::name`] of the sampler.
        sampler: &'static str,
        /// [`crate::backend::SamplingBackend::name`] of the backend.
        backend: &'static str,
    },
    /// An underlying matrix kernel failed.
    Matrix(MatrixError),
    /// An underlying graph operation failed.
    Graph(GraphError),
    /// A distributed collective failed.
    Comm(CommError),
}

impl fmt::Display for SamplingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SamplingError::InvalidConfig(msg) => write!(f, "invalid sampling configuration: {msg}"),
            SamplingError::InvalidBulkConfig { field } => {
                write!(f, "invalid bulk sampler configuration: {field} must be positive")
            }
            SamplingError::InvalidDistConfig { field, value } => {
                write!(f, "invalid distribution configuration: {field} = {value} is not valid")
            }
            SamplingError::UnsupportedBackend { sampler, backend } => {
                write!(f, "sampler `{sampler}` does not support the `{backend}` backend")
            }
            SamplingError::Matrix(e) => write!(f, "matrix error during sampling: {e}"),
            SamplingError::Graph(e) => write!(f, "graph error during sampling: {e}"),
            SamplingError::Comm(e) => write!(f, "communication error during sampling: {e}"),
        }
    }
}

impl Error for SamplingError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SamplingError::Matrix(e) => Some(e),
            SamplingError::Graph(e) => Some(e),
            SamplingError::Comm(e) => Some(e),
            SamplingError::InvalidConfig(_)
            | SamplingError::InvalidBulkConfig { .. }
            | SamplingError::InvalidDistConfig { .. }
            | SamplingError::UnsupportedBackend { .. } => None,
        }
    }
}

impl From<MatrixError> for SamplingError {
    fn from(e: MatrixError) -> Self {
        SamplingError::Matrix(e)
    }
}

impl From<GraphError> for SamplingError {
    fn from(e: GraphError) -> Self {
        SamplingError::Graph(e)
    }
}

impl From<CommError> for SamplingError {
    fn from(e: CommError) -> Self {
        SamplingError::Comm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SamplingError::InvalidConfig("fanout must be positive".into());
        assert!(e.to_string().contains("fanout"));
        assert!(e.source().is_none());

        let m: SamplingError = MatrixError::Empty("row").into();
        assert!(m.source().is_some());
        let g: SamplingError = GraphError::InvalidConfig("x".into()).into();
        assert!(g.to_string().contains("graph error"));
        let c: SamplingError = CommError::RankPanicked { rank: 1, message: "boom".into() }.into();
        assert!(c.to_string().contains("communication"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<SamplingError>();
    }
}

//! A multi-layer GraphSAGE model with explicit gradients.
//!
//! The model consumes the [`MinibatchSample`]s produced by the sampling crate
//! (the per-layer sampled adjacency matrices of Algorithm 1) plus the input
//! feature rows for the innermost frontier, and produces logits for the batch
//! vertices.  Gradients are computed layer by layer; the parameter layout is
//! a flat `Vec<DenseMatrix>` so that data-parallel training can all-reduce
//! gradients with a single flattened buffer.

use crate::error::GnnError;
use crate::layers::{
    linear_backward, linear_forward, sage_backward, sage_forward, LinearCache, SageCache,
};
use crate::loss::cross_entropy;
use crate::Result;
use dmbs_matrix::pool::Parallelism;
use dmbs_matrix::DenseMatrix;
use dmbs_sampling::MinibatchSample;
use rand::Rng;
use std::collections::HashMap;

/// A GraphSAGE model: `num_layers` mean-aggregator SAGE layers followed by a
/// linear classifier.
///
/// Parameter layout (see [`SageModel::parameters`]): for each SAGE layer `l`,
/// `params[2l]` is `W_self` and `params[2l + 1]` is `W_neigh`; the final
/// entry is the classifier weight.
#[derive(Debug, Clone, PartialEq)]
pub struct SageModel {
    input_dim: usize,
    hidden_dim: usize,
    num_classes: usize,
    num_layers: usize,
    params: Vec<DenseMatrix>,
    parallelism: Parallelism,
}

/// Forward-pass cache for one minibatch, consumed by [`SageModel::backward`].
#[derive(Debug, Clone)]
pub struct ForwardCache {
    sage_caches: Vec<SageCache>,
    /// For each layer, the position of each row vertex inside the layer's
    /// column list (used to scatter self-gradients).
    self_positions: Vec<Vec<usize>>,
    linear_cache: LinearCache,
}

impl SageModel {
    /// Creates a model with Xavier-style uniform initialization.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::InvalidConfig`] if any dimension is zero.
    pub fn new<R: Rng + ?Sized>(
        input_dim: usize,
        hidden_dim: usize,
        num_classes: usize,
        num_layers: usize,
        rng: &mut R,
    ) -> Result<Self> {
        if input_dim == 0 || hidden_dim == 0 || num_classes == 0 || num_layers == 0 {
            return Err(GnnError::InvalidConfig(
                "input_dim, hidden_dim, num_classes and num_layers must be positive".into(),
            ));
        }
        let mut params = Vec::with_capacity(2 * num_layers + 1);
        for l in 0..num_layers {
            let in_dim = if l == 0 { input_dim } else { hidden_dim };
            let scale = (6.0 / (in_dim + hidden_dim) as f64).sqrt();
            params.push(DenseMatrix::random_uniform(in_dim, hidden_dim, scale, rng));
            params.push(DenseMatrix::random_uniform(in_dim, hidden_dim, scale, rng));
        }
        let scale = (6.0 / (hidden_dim + num_classes) as f64).sqrt();
        params.push(DenseMatrix::random_uniform(hidden_dim, num_classes, scale, rng));
        Ok(SageModel {
            input_dim,
            hidden_dim,
            num_classes,
            num_layers,
            params,
            parallelism: Parallelism::serial(),
        })
    }

    /// Returns this model with its propagation SpMM kernels running on
    /// `parallelism` worker threads.  Parallelism changes nothing about the
    /// computed values (the kernels are byte-identical to serial), only the
    /// wall time of forward/backward propagation.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// The shared-memory parallelism of the propagation kernels.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Number of GNN layers.
    pub fn num_layers(&self) -> usize {
        self.num_layers
    }

    /// Input feature dimension.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The flat parameter list.
    pub fn parameters(&self) -> &[DenseMatrix] {
        &self.params
    }

    /// Mutable access to the flat parameter list (used by optimizers).
    pub fn parameters_mut(&mut self) -> &mut [DenseMatrix] {
        &mut self.params
    }

    /// Total number of scalar parameters.
    pub fn num_parameters(&self) -> usize {
        self.params.iter().map(|p| p.rows() * p.cols()).sum()
    }

    /// Flattens a gradient list (same layout as the parameters) into one
    /// buffer, for the data-parallel all-reduce.
    pub fn flatten_grads(grads: &[DenseMatrix]) -> Vec<f64> {
        grads.iter().flat_map(|g| g.as_slice().iter().copied()).collect()
    }

    /// Rebuilds a gradient list from a flat buffer produced by
    /// [`SageModel::flatten_grads`] on a model with identical shapes.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::InvalidConfig`] if the buffer length does not
    /// match the parameter count.
    pub fn unflatten_grads(&self, flat: &[f64]) -> Result<Vec<DenseMatrix>> {
        if flat.len() != self.num_parameters() {
            return Err(GnnError::InvalidConfig(format!(
                "flat gradient has {} entries but the model has {} parameters",
                flat.len(),
                self.num_parameters()
            )));
        }
        let mut grads = Vec::with_capacity(self.params.len());
        let mut offset = 0;
        for p in &self.params {
            let len = p.rows() * p.cols();
            grads.push(DenseMatrix::from_vec(
                p.rows(),
                p.cols(),
                flat[offset..offset + len].to_vec(),
            )?);
            offset += len;
        }
        Ok(grads)
    }

    fn w_self(&self, layer: usize) -> &DenseMatrix {
        &self.params[2 * layer]
    }

    fn w_neigh(&self, layer: usize) -> &DenseMatrix {
        &self.params[2 * layer + 1]
    }

    fn w_out(&self) -> &DenseMatrix {
        &self.params[2 * self.num_layers]
    }

    /// Runs the forward pass on one sampled minibatch.
    ///
    /// `input_features` must hold one row per vertex of
    /// [`MinibatchSample::input_vertices`] (the columns of the innermost
    /// layer), in the same order — this is exactly what the feature-fetching
    /// step delivers.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::InvalidConfig`] if the sample has a different
    /// number of layers than the model, if feature rows are missing, or if a
    /// layer's row vertices are not contained in its column vertices (use a
    /// sampler with self-loops enabled).
    pub fn forward(
        &self,
        sample: &MinibatchSample,
        input_features: &DenseMatrix,
    ) -> Result<(DenseMatrix, ForwardCache)> {
        if sample.num_layers() != self.num_layers {
            return Err(GnnError::InvalidConfig(format!(
                "sample has {} layers but the model has {}",
                sample.num_layers(),
                self.num_layers
            )));
        }
        if input_features.rows() != sample.input_vertices().len() {
            return Err(GnnError::InvalidConfig(format!(
                "{} input feature rows supplied but the innermost frontier has {} vertices",
                input_features.rows(),
                sample.input_vertices().len()
            )));
        }
        if input_features.cols() != self.input_dim {
            return Err(GnnError::InvalidConfig(format!(
                "input features have dimension {} but the model expects {}",
                input_features.cols(),
                self.input_dim
            )));
        }

        let mut h = input_features.clone();
        let mut sage_caches = Vec::with_capacity(self.num_layers);
        let mut self_positions = Vec::with_capacity(self.num_layers);
        for (l, layer) in sample.layers.iter().enumerate() {
            // Index of each row vertex inside the layer's column list.
            let col_pos: HashMap<usize, usize> =
                layer.cols.iter().enumerate().map(|(i, &v)| (v, i)).collect();
            let positions: Vec<usize> = layer
                .rows
                .iter()
                .map(|v| {
                    col_pos.get(v).copied().ok_or_else(|| {
                        GnnError::InvalidConfig(format!(
                            "row vertex {v} of layer {l} is not among its columns; \
                             sample with self-loops enabled"
                        ))
                    })
                })
                .collect::<Result<_>>()?;
            let h_self = h.gather_rows(&positions)?;
            let apply_relu = true; // ReLU on every SAGE layer.
            let (out, cache) = sage_forward(
                &layer.adjacency,
                &h,
                &h_self,
                self.w_self(l),
                self.w_neigh(l),
                apply_relu,
                self.parallelism,
            )?;
            sage_caches.push(cache);
            self_positions.push(positions);
            h = out;
        }
        let (logits, linear_cache) = linear_forward(&h, self.w_out())?;
        Ok((logits, ForwardCache { sage_caches, self_positions, linear_cache }))
    }

    /// Runs the backward pass, returning gradients in the same layout as
    /// [`SageModel::parameters`].
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::Matrix`] on dimension mismatches.
    pub fn backward(
        &self,
        cache: &ForwardCache,
        d_logits: &DenseMatrix,
    ) -> Result<Vec<DenseMatrix>> {
        let mut grads: Vec<DenseMatrix> =
            self.params.iter().map(|p| DenseMatrix::zeros(p.rows(), p.cols())).collect();
        let (d_w_out, mut d_h) = linear_backward(&cache.linear_cache, self.w_out(), d_logits)?;
        grads[2 * self.num_layers] = d_w_out;

        for l in (0..self.num_layers).rev() {
            let sage = sage_backward(
                &cache.sage_caches[l],
                self.w_self(l),
                self.w_neigh(l),
                &d_h,
                self.parallelism,
            )?;
            grads[2 * l] = sage.d_w_self;
            grads[2 * l + 1] = sage.d_w_neigh;
            // Gradient for the previous layer's output: neighbor gradient plus
            // the self gradient scattered to the row vertices' positions.
            let mut d_prev = sage.d_h_neigh;
            for (row, &pos) in cache.self_positions[l].iter().enumerate() {
                for c in 0..d_prev.cols() {
                    let v = d_prev.get(pos, c) + sage.d_h_self.get(row, c);
                    d_prev.set(pos, c, v);
                }
            }
            d_h = d_prev;
        }
        Ok(grads)
    }

    /// Convenience: forward pass, cross-entropy loss against the batch
    /// labels, backward pass.  Returns `(loss, logits, gradients)`.
    ///
    /// # Errors
    ///
    /// Propagates forward/backward and loss errors.
    pub fn loss_and_gradients(
        &self,
        sample: &MinibatchSample,
        input_features: &DenseMatrix,
        batch_labels: &[usize],
    ) -> Result<(f64, DenseMatrix, Vec<DenseMatrix>)> {
        let (logits, cache) = self.forward(sample, input_features)?;
        let (loss, d_logits) = cross_entropy(&logits, batch_labels)?;
        let grads = self.backward(&cache, &d_logits)?;
        Ok((loss, logits, grads))
    }

    /// Predicted class per batch vertex.
    ///
    /// # Errors
    ///
    /// Propagates forward-pass errors.
    pub fn predict(
        &self,
        sample: &MinibatchSample,
        input_features: &DenseMatrix,
    ) -> Result<Vec<usize>> {
        let (logits, _) = self.forward(sample, input_features)?;
        Ok(logits.row_argmax())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmbs_graph::generators::figure1_example;
    use dmbs_matrix::DenseMatrix;
    use dmbs_sampling::{GraphSageSampler, Sampler};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_and_features(
        fanouts: Vec<usize>,
        seed: u64,
    ) -> (MinibatchSample, DenseMatrix, Vec<usize>) {
        let graph = figure1_example();
        let sampler = GraphSageSampler::new(fanouts).with_self_loops();
        let mut rng = StdRng::seed_from_u64(seed);
        let sample = sampler.sample_minibatch(graph.adjacency(), &[1, 5], &mut rng).unwrap();
        // Simple 4-dimensional features: one-hot-ish on vertex id parity.
        let feats = DenseMatrix::from_rows(
            &sample
                .input_vertices()
                .iter()
                .map(|&v| vec![v as f64, (v % 2) as f64, 1.0, -(v as f64) / 10.0])
                .collect::<Vec<_>>(),
        )
        .unwrap();
        (sample, feats, vec![0, 1])
    }

    #[test]
    fn model_construction_and_parameter_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = SageModel::new(4, 8, 3, 2, &mut rng).unwrap();
        assert_eq!(m.num_layers(), 2);
        assert_eq!(m.parameters().len(), 5);
        // (4*8 + 4*8) + (8*8 + 8*8) + 8*3 = 64 + 128 + 24.
        assert_eq!(m.num_parameters(), 216);
        assert!(SageModel::new(0, 8, 3, 2, &mut rng).is_err());
        assert!(SageModel::new(4, 0, 3, 2, &mut rng).is_err());
        assert!(SageModel::new(4, 8, 0, 2, &mut rng).is_err());
        assert!(SageModel::new(4, 8, 3, 0, &mut rng).is_err());
    }

    #[test]
    fn forward_produces_logits_for_batch() {
        let (sample, feats, _) = sample_and_features(vec![2, 2], 3);
        let mut rng = StdRng::seed_from_u64(2);
        let model = SageModel::new(4, 8, 3, 2, &mut rng).unwrap();
        let (logits, _) = model.forward(&sample, &feats).unwrap();
        assert_eq!(logits.shape(), (2, 3));
    }

    #[test]
    fn forward_validates_inputs() {
        let (sample, feats, _) = sample_and_features(vec![2], 4);
        let mut rng = StdRng::seed_from_u64(3);
        // Wrong layer count.
        let model = SageModel::new(4, 8, 3, 2, &mut rng).unwrap();
        assert!(model.forward(&sample, &feats).is_err());
        // Wrong feature rows.
        let model1 = SageModel::new(4, 8, 3, 1, &mut rng).unwrap();
        assert!(model1.forward(&sample, &DenseMatrix::zeros(1, 4)).is_err());
        // Wrong feature dim.
        assert!(model1
            .forward(&sample, &DenseMatrix::zeros(sample.input_vertices().len(), 7))
            .is_err());
    }

    #[test]
    fn forward_requires_self_loops() {
        let graph = figure1_example();
        let sampler = GraphSageSampler::new(vec![1]); // no self loops
        let mut rng = StdRng::seed_from_u64(5);
        // Vertex 0's only neighbor is 1, so its row vertex will not be among
        // the sampled columns and the model must reject the sample.
        let sample = sampler.sample_minibatch(graph.adjacency(), &[0], &mut rng).unwrap();
        let model = SageModel::new(2, 4, 2, 1, &mut rng).unwrap();
        let feats = DenseMatrix::zeros(sample.input_vertices().len(), 2);
        let result = model.forward(&sample, &feats);
        if !sample.layers[0].cols.contains(&0) {
            assert!(result.is_err());
        }
    }

    #[test]
    fn model_gradients_match_finite_differences() {
        let (sample, feats, labels) = sample_and_features(vec![2, 2], 7);
        let mut rng = StdRng::seed_from_u64(11);
        let model = SageModel::new(4, 5, 2, 2, &mut rng).unwrap();
        let (_, _, grads) = model.loss_and_gradients(&sample, &feats, &labels).unwrap();

        let eps = 1e-5;
        // Check a handful of entries in every parameter matrix.
        for (pi, grad) in grads.iter().enumerate() {
            for &(r, c) in &[(0usize, 0usize), (grad.rows() - 1, grad.cols() - 1)] {
                let mut plus = model.clone();
                let v = plus.parameters()[pi].get(r, c);
                plus.parameters_mut()[pi].set(r, c, v + eps);
                let (lp, _, _) = plus.loss_and_gradients(&sample, &feats, &labels).unwrap();
                let mut minus = model.clone();
                minus.parameters_mut()[pi].set(r, c, v - eps);
                let (lm, _, _) = minus.loss_and_gradients(&sample, &feats, &labels).unwrap();
                let numeric = (lp - lm) / (2.0 * eps);
                assert!(
                    (numeric - grad.get(r, c)).abs() < 1e-4,
                    "param {pi} entry ({r},{c}): numeric {numeric} vs analytic {}",
                    grad.get(r, c)
                );
            }
        }
    }

    #[test]
    fn training_reduces_loss_on_tiny_problem() {
        use crate::optim::{Optimizer, Sgd};
        let (sample, feats, labels) = sample_and_features(vec![2, 2], 13);
        let mut rng = StdRng::seed_from_u64(17);
        let mut model = SageModel::new(4, 8, 2, 2, &mut rng).unwrap();
        let mut opt = Sgd::new(0.1);
        let (initial_loss, _, _) = model.loss_and_gradients(&sample, &feats, &labels).unwrap();
        let mut last = initial_loss;
        for _ in 0..50 {
            let (loss, _, grads) = model.loss_and_gradients(&sample, &feats, &labels).unwrap();
            opt.step(model.parameters_mut(), &grads).unwrap();
            last = loss;
        }
        assert!(last < initial_loss * 0.5, "loss did not decrease: {initial_loss} -> {last}");
        // The model should now classify its own training batch correctly.
        let preds = model.predict(&sample, &feats).unwrap();
        assert_eq!(preds, labels);
    }

    #[test]
    fn grad_flatten_roundtrip() {
        let mut rng = StdRng::seed_from_u64(19);
        let model = SageModel::new(3, 4, 2, 1, &mut rng).unwrap();
        let grads: Vec<DenseMatrix> = model
            .parameters()
            .iter()
            .map(|p| DenseMatrix::filled(p.rows(), p.cols(), 0.5))
            .collect();
        let flat = SageModel::flatten_grads(&grads);
        assert_eq!(flat.len(), model.num_parameters());
        let back = model.unflatten_grads(&flat).unwrap();
        assert_eq!(back, grads);
        assert!(model.unflatten_grads(&flat[1..]).is_err());
    }
}

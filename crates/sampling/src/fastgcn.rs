//! FastGCN layer-wise importance sampling.
//!
//! FastGCN (§2.2.2) samples `s` vertices per layer from a *global*
//! distribution proportional to (squared) vertex degree, independent of the
//! current batch.  It avoids neighborhood explosion like LADIES but may pick
//! vertices outside the aggregated neighborhood, which hurts accuracy — the
//! trade-off the paper describes.  It is included as the "additional sampling
//! algorithm" the framework can express beyond GraphSAGE and LADIES.

use crate::its::its_without_replacement;
use crate::plan::{BulkSampleOutput, LayerSample, MinibatchSample};
use crate::sampler::{validate_batches, BulkSamplerConfig, PartitionedContext, Sampler};
use crate::{Result, SamplingError};
use dmbs_comm::{Phase, PhaseProfile};
use dmbs_matrix::extract::{extract_columns_masked_with, extract_rows_with};
use dmbs_matrix::workspace::with_workspace;
use dmbs_matrix::CsrMatrix;
use rand::RngCore;

/// The FastGCN layer-wise importance sampler.
///
/// # Example
///
/// ```
/// use dmbs_sampling::{FastGcnSampler, Sampler};
/// use dmbs_graph::generators::figure1_example;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), dmbs_sampling::SamplingError> {
/// let sampler = FastGcnSampler::new(1, 3);
/// let graph = figure1_example();
/// let mut rng = StdRng::seed_from_u64(0);
/// let sample = sampler.sample_minibatch(graph.adjacency(), &[1, 5], &mut rng)?;
/// assert_eq!(sample.layers[0].cols.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastGcnSampler {
    num_layers: usize,
    samples_per_layer: usize,
}

impl FastGcnSampler {
    /// Creates a FastGCN sampler with `num_layers` layers and `s` sampled
    /// vertices per layer.
    ///
    /// # Panics
    ///
    /// Panics if `num_layers == 0` or `samples_per_layer == 0`.
    pub fn new(num_layers: usize, samples_per_layer: usize) -> Self {
        assert!(num_layers > 0, "FastGCN needs at least one layer");
        assert!(samples_per_layer > 0, "samples per layer must be positive");
        FastGcnSampler { num_layers, samples_per_layer }
    }

    /// The FastGCN importance distribution: `q(v) ∝ deg_in(v)²`, computed
    /// once from the adjacency matrix.
    fn importance_weights(adjacency: &CsrMatrix) -> Vec<f64> {
        adjacency.col_sums().into_iter().map(|d| d * d).collect()
    }
}

impl Sampler for FastGcnSampler {
    fn spec(&self) -> Option<crate::spec::SamplerSpec> {
        Some(crate::spec::SamplerSpec::FastGcn {
            num_layers: self.num_layers,
            samples_per_layer: self.samples_per_layer,
        })
    }

    fn name(&self) -> &'static str {
        "fastgcn"
    }

    fn num_layers(&self) -> usize {
        self.num_layers
    }

    fn fanout(&self, _step: usize) -> usize {
        self.samples_per_layer
    }

    fn sample_minibatch(
        &self,
        adjacency: &CsrMatrix,
        batch: &[usize],
        rng: &mut dyn RngCore,
    ) -> Result<MinibatchSample> {
        let config = BulkSamplerConfig::new(batch.len(), 1);
        let mut out = self.sample_bulk(adjacency, &[batch.to_vec()], &config, rng)?;
        Ok(out.minibatches.remove(0))
    }

    fn sample_bulk(
        &self,
        adjacency: &CsrMatrix,
        batches: &[Vec<usize>],
        config: &BulkSamplerConfig,
        rng: &mut dyn RngCore,
    ) -> Result<BulkSampleOutput> {
        config.validate()?;
        let n = adjacency.rows();
        if adjacency.cols() != n {
            return Err(SamplingError::InvalidConfig("adjacency matrix must be square".into()));
        }
        validate_batches(batches, n)?;

        let mut profile = PhaseProfile::new();
        let weights =
            profile.time_compute(Phase::Probability, || Self::importance_weights(adjacency));

        let parallelism = config.parallelism;
        let mut minibatches = Vec::with_capacity(batches.len());
        for batch in batches {
            let mut frontier = batch.clone();
            let mut layers = Vec::with_capacity(self.num_layers);
            for _step in 0..self.num_layers {
                let sampled = profile.time_compute(Phase::Sampling, || {
                    its_without_replacement(&weights, self.samples_per_layer, rng)
                })?;
                // Extraction through the structure-aware kernels: a parallel
                // row gather of the frontier followed by the bitmap-masked
                // column filter (see dmbs_matrix::extract).  Note the filter
                // follows the paper's CSC-selection SpGEMM semantics and
                // drops stored-zero adjacency entries (the former
                // `select_columns` retained them); such entries carry no
                // edge weight and never arise from the graph generators.
                let layer =
                    profile.time_compute(Phase::Extraction, || -> Result<LayerSample> {
                        let a_s = with_workspace(config.workspace_reuse, |ws| {
                            let rows_matrix =
                                extract_rows_with(adjacency, &frontier, parallelism, ws)?;
                            extract_columns_masked_with(&rows_matrix, &sampled, ws)
                        })?;
                        Ok(LayerSample::new(frontier.clone(), sampled.clone(), a_s))
                    })?;
                frontier = layer.cols.clone();
                layers.push(layer);
            }
            layers.reverse();
            minibatches.push(MinibatchSample { batch: batch.clone(), layers });
        }

        Ok(BulkSampleOutput { minibatches, profile, comm_stats: Default::default() })
    }

    fn sample_partitioned(&self, ctx: &mut PartitionedContext<'_>) -> Result<BulkSampleOutput> {
        crate::partitioned::fastgcn_on_rank(
            ctx.comm,
            ctx.grid,
            ctx.my_a_block,
            ctx.vertex_partition,
            ctx.my_batches,
            self.num_layers,
            self.samples_per_layer,
            ctx.seed,
            ctx.workspace_reuse,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmbs_graph::generators::{figure1_example, star};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn zero_layers_panics() {
        FastGcnSampler::new(0, 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_samples_panics() {
        FastGcnSampler::new(1, 0);
    }

    #[test]
    fn importance_weights_are_squared_in_degrees() {
        let a = figure1_example().adjacency().clone();
        let w = FastGcnSampler::importance_weights(&a);
        // Vertex 4 has in-degree 3 in the Figure 1 graph.
        assert_eq!(w[4], 9.0);
        assert_eq!(w[0], 1.0);
    }

    #[test]
    fn sampled_edges_are_real_edges() {
        let g = figure1_example();
        let sampler = FastGcnSampler::new(2, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let sample = sampler.sample_minibatch(g.adjacency(), &[1, 5], &mut rng).unwrap();
        assert_eq!(sample.num_layers(), 2);
        assert!(sample.frontiers_are_chained());
        for layer in &sample.layers {
            for (r, c, _) in layer.adjacency.iter() {
                assert_eq!(g.adjacency().get(layer.rows[r], layer.cols[c]), 1.0);
            }
        }
    }

    #[test]
    fn hub_vertex_dominates_sampling_on_star() {
        // On a star graph the hub has in-degree n-1, so it is picked almost
        // always when s = 1.
        let g = star(12).unwrap();
        let sampler = FastGcnSampler::new(1, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let mut hub_count = 0;
        for _ in 0..200 {
            let sample = sampler.sample_minibatch(g.adjacency(), &[3], &mut rng).unwrap();
            if sample.layers[0].cols == vec![0] {
                hub_count += 1;
            }
        }
        // P(hub) = 121/132 ≈ 0.92, so ~183 of 200 draws in expectation; use a
        // loose lower bound to keep the test robust.
        assert!(hub_count > 150, "hub sampled only {hub_count}/200 times");
    }

    #[test]
    fn samples_may_fall_outside_neighborhood() {
        // FastGCN ignores the batch when sampling, so on the Figure 1 graph a
        // vertex that is not a neighbor of the batch can be selected (the
        // accuracy caveat the paper mentions).  With s = 5 out of 6 vertices,
        // at least one non-neighbor of {0} must be present.
        let g = figure1_example();
        let sampler = FastGcnSampler::new(1, 5);
        let mut rng = StdRng::seed_from_u64(3);
        let sample = sampler.sample_minibatch(g.adjacency(), &[0], &mut rng).unwrap();
        let non_neighbors: Vec<usize> = sample.layers[0]
            .cols
            .iter()
            .copied()
            .filter(|&v| !g.neighbors(0).contains(&v))
            .collect();
        assert!(!non_neighbors.is_empty());
    }

    #[test]
    fn stored_zero_adjacency_entries_follow_csc_formulation() {
        // Since the extraction rewire, FastGCN's column extraction uses the
        // paper's CSC-selection SpGEMM semantics: an explicitly-stored
        // zero-weight edge is dropped from the sampled block (the former
        // `select_columns` retained it).  Pin that as deliberate behavior.
        use dmbs_matrix::{CooMatrix, CscMatrix, CsrMatrix};
        let adjacency = CsrMatrix::from_coo(
            &CooMatrix::from_triples(
                4,
                4,
                vec![(0, 1, 0.0), (0, 2, 1.0), (1, 0, 1.0), (2, 3, 1.0), (3, 2, 1.0)],
            )
            .unwrap(),
        );
        assert_eq!(adjacency.row_nnz(0), 2, "explicit zero must be stored in A");
        let sampler = FastGcnSampler::new(1, 4);
        let mut rng = StdRng::seed_from_u64(6);
        let sample = sampler.sample_minibatch(&adjacency, &[0], &mut rng).unwrap();
        let layer = &sample.layers[0];
        // Byte-identical to the CSC formulation on the same frontier/cols.
        let expected = CscMatrix::selection(4, &layer.cols)
            .left_multiply(&adjacency.gather_rows(&layer.rows).unwrap())
            .unwrap();
        assert_eq!(layer.adjacency, expected);
        // The stored zero at (0, 1) is gone from the sampled block.
        let zero_col = layer.cols.iter().position(|&c| c == 1).unwrap();
        assert!(!layer.adjacency.row_indices(0).contains(&zero_col));
    }

    #[test]
    fn bulk_and_validation() {
        let g = figure1_example();
        let sampler = FastGcnSampler::new(1, 2);
        let mut rng = StdRng::seed_from_u64(4);
        let out = sampler
            .sample_bulk(
                g.adjacency(),
                &[vec![0], vec![1]],
                &BulkSamplerConfig::new(1, 2),
                &mut rng,
            )
            .unwrap();
        assert_eq!(out.num_batches(), 2);
        assert!(sampler
            .sample_bulk(g.adjacency(), &[], &BulkSamplerConfig::default(), &mut rng)
            .is_err());
        assert!(sampler
            .sample_bulk(g.adjacency(), &[vec![100]], &BulkSamplerConfig::default(), &mut rng)
            .is_err());
    }

    #[test]
    fn trait_metadata() {
        let s = FastGcnSampler::new(2, 64);
        assert_eq!(s.name(), "fastgcn");
        assert_eq!(s.num_layers(), 2);
        assert_eq!(s.fanout(1), 64);
    }
}

//! The Graph Partitioned distributed sampling algorithm (§5.2).
//!
//! When the graph does not fit on one device, both the sampler matrix `Q^l`
//! and the adjacency matrix `A` are partitioned into `p/c` block rows on a
//! `p/c × c` process grid, each block row replicated on the `c` ranks of its
//! process row.  The probability-generation SpGEMM `P ← Q^l A` then becomes
//! the **sparsity-aware 1.5D algorithm** of Algorithm 2: in each of `p/c²`
//! stages, the owner of a block row of `A` sends each requester only the rows
//! its local multiply actually needs (the nonzero columns of its `Q` block),
//! and a final all-reduce across the process row combines the partial
//! products.
//!
//! Sampling from the resulting probability rows needs no communication
//! (§5.2.2).  GraphSAGE extraction is local (§5.2.3); LADIES row extraction
//! reuses the same 1.5D SpGEMM and its column extraction is split across the
//! process row as a batch of smaller SpGEMMs (§5.2.3, §8.2.2).

use crate::its::{its_without_replacement, sample_rows_par};
use crate::plan::{BulkSampleOutput, LayerSample, MinibatchSample};
use crate::{Result, SamplingError};
use dmbs_comm::{Communicator, Group, Phase, PhaseProfile, ProcessGrid, Runtime};
use dmbs_graph::partition::OneDPartition;
use dmbs_matrix::extract::extract_columns_masked_with;
use dmbs_matrix::ops::row_selection_matrix;
use dmbs_matrix::pool::Parallelism;
use dmbs_matrix::spgemm::spgemm_with_fetched_rows;
use dmbs_matrix::workspace::with_workspace;
use dmbs_matrix::{CooMatrix, CsrMatrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A sparse row of the adjacency matrix shipped between ranks:
/// `(global_row_id, [(column, value), …])`.
type FetchedRow = (usize, Vec<(usize, f64)>);

/// Computes this process row's block of `P = Q · A` with the sparsity-aware
/// 1.5D SpGEMM of Algorithm 2.
///
/// * `my_q_block` — the block of (stacked) `Q` rows owned by this process
///   row; its column dimension is the number of vertices `n`.
/// * `my_a_block` — the block row of `A` owned by this process row (rows are
///   the vertex range given by `vertex_partition` for this process row).
/// * `vertex_partition` — the 1D partition of the `n` vertices into
///   `grid.rows()` block rows.
///
/// Every rank of the grid must call this function the same number of times
/// with consistent arguments; ranks in the same process row must pass
/// identical `my_q_block`s.
///
/// Computation time is recorded into `profile` under `phase`; communication
/// time is recorded under the same phase from the α–β model.
///
/// # Errors
///
/// Returns an error if shapes are inconsistent or a collective fails.
pub fn spgemm_1p5d_sparsity_aware(
    comm: &mut Communicator,
    grid: &ProcessGrid,
    my_q_block: &CsrMatrix,
    my_a_block: &CsrMatrix,
    vertex_partition: &OneDPartition,
    profile: &mut PhaseProfile,
    phase: Phase,
) -> Result<CsrMatrix> {
    let n = vertex_partition.len();
    if my_q_block.cols() != n {
        return Err(SamplingError::InvalidConfig(format!(
            "Q block has {} columns but the graph has {n} vertices",
            my_q_block.cols()
        )));
    }
    if my_a_block.cols() != n {
        return Err(SamplingError::InvalidConfig(format!(
            "A block has {} columns but the graph has {n} vertices",
            my_a_block.cols()
        )));
    }
    let rank = comm.rank();
    let (my_row, my_col) = grid.coords(rank);
    let my_range = vertex_partition.range(my_row);
    if my_a_block.rows() != my_range.len() {
        return Err(SamplingError::InvalidConfig(format!(
            "A block has {} rows but this process row owns {} vertices",
            my_a_block.rows(),
            my_range.len()
        )));
    }

    let col_group = Group::new(&grid.col_ranks(rank))?;
    let my_pos_in_col = col_group.position_of(rank).expect("rank is in its own column");
    let comm_before = comm.stats().modeled_time;

    // Nonzero columns of my Q block, sorted — the sparsity pattern that the
    // sparsity-aware algorithm exploits.
    let q_nonzero_cols = my_q_block.nonzero_columns();

    // Each process column j is responsible for a contiguous chunk of block
    // rows of A: block rows [j * stages, (j+1) * stages).
    let stages = grid.rows().div_ceil(grid.cols());
    let mut p_hat = CsrMatrix::zeros(my_q_block.rows(), n);

    for stage in 0..stages {
        let k_block = my_col * stages + stage;
        if k_block >= grid.rows() {
            // The whole process column skips this stage together.
            continue;
        }
        let owner = grid.rank_at(k_block, my_col);
        let block_range = vertex_partition.range(k_block);

        // Rows of A_k that my local multiply will read.
        let needed: Vec<usize> =
            q_nonzero_cols.iter().copied().filter(|&c| block_range.contains(&c)).collect();

        // Gather every member's request list at the owner of A_k.
        let requests = comm.group_gather(&col_group, owner, needed.clone())?;

        // The owner answers each request with the needed rows of its block.
        let fetched: Vec<FetchedRow> = if rank == owner {
            let requests = requests.expect("owner receives the gathered requests");
            let mut my_reply: Vec<FetchedRow> = Vec::new();
            for (pos, request) in requests.iter().enumerate() {
                let peer = col_group.ranks()[pos];
                let reply: Vec<FetchedRow> = request
                    .iter()
                    .map(|&gid| {
                        let local = gid - block_range.start;
                        let row: Vec<(usize, f64)> = my_a_block
                            .row_indices(local)
                            .iter()
                            .zip(my_a_block.row_values(local))
                            .map(|(&c, &v)| (c, v))
                            .collect();
                        (gid, row)
                    })
                    .collect();
                if pos == my_pos_in_col {
                    my_reply = reply;
                } else {
                    comm.send(peer, reply)?;
                }
            }
            my_reply
        } else {
            comm.recv::<Vec<FetchedRow>>(owner)?
        };

        // Local sparsity-aware multiply with only the fetched rows.
        let partial = profile.time_compute(phase, || -> Result<CsrMatrix> {
            let (row_ids, rows): (Vec<usize>, Vec<Vec<(usize, f64)>>) = fetched.into_iter().unzip();
            Ok(spgemm_with_fetched_rows(my_q_block, &row_ids, &rows, n)?)
        })?;
        p_hat = profile.time_compute(phase, || p_hat.add(&partial))?;
    }

    // All-reduce the partial products across the process row.
    let p_full = if grid.cols() > 1 {
        let row_group = Group::new(&grid.row_ranks(rank))?;
        let triples: Vec<(usize, usize, f64)> = p_hat.iter().collect();
        let combined = comm.group_allreduce(&row_group, triples, |a, b| {
            let mut merged = a.clone();
            merged.extend_from_slice(b);
            merged
        })?;
        profile.time_compute(phase, || -> Result<CsrMatrix> {
            let coo = CooMatrix::from_triples(my_q_block.rows(), n, combined)?;
            Ok(CsrMatrix::from_coo(&coo))
        })?
    } else {
        p_hat
    };

    profile.add_comm(phase, comm.stats().modeled_time - comm_before);
    Ok(p_full)
}

/// Seed for the per-process-row RNG, derived so that every rank in a process
/// row draws identical samples (sampling is replicated within a row, exactly
/// as the data is).
fn row_seed(seed: u64, process_row: usize, step: usize) -> u64 {
    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(process_row as u64)
        .wrapping_mul(0x2545_F491_4F6C_DD1D)
        .wrapping_add(step as u64)
}

/// Runs distributed GraphSAGE sampling for the minibatches owned by this
/// rank's process row.  Call from inside a [`Runtime::run`] closure; every
/// rank of the grid must participate.
///
/// # Errors
///
/// Returns an error for invalid configurations (out-of-range batch vertices,
/// mismatched blocks) or failed collectives.
#[deprecated(
    since = "0.2.0",
    note = "drive partitioned sampling through `backend::Partitioned1p5dBackend` \
            (the `Sampler::sample_partitioned` hook replaces per-sampler free functions)"
)]
#[allow(clippy::too_many_arguments)]
pub fn sample_partitioned_sage(
    comm: &mut Communicator,
    grid: &ProcessGrid,
    my_a_block: &CsrMatrix,
    vertex_partition: &OneDPartition,
    my_batches: &[Vec<usize>],
    fanouts: &[usize],
    include_self_loops: bool,
    seed: u64,
) -> Result<BulkSampleOutput> {
    sage_on_rank(
        comm,
        grid,
        my_a_block,
        vertex_partition,
        my_batches,
        fanouts,
        include_self_loops,
        seed,
        Parallelism::serial(),
    )
}

/// Rank-level GraphSAGE body shared by the deprecated free function and the
/// [`crate::Sampler::sample_partitioned`] implementation.
#[allow(clippy::too_many_arguments)]
pub(crate) fn sage_on_rank(
    comm: &mut Communicator,
    grid: &ProcessGrid,
    my_a_block: &CsrMatrix,
    vertex_partition: &OneDPartition,
    my_batches: &[Vec<usize>],
    fanouts: &[usize],
    include_self_loops: bool,
    seed: u64,
    parallelism: Parallelism,
) -> Result<BulkSampleOutput> {
    if fanouts.is_empty() || fanouts.contains(&0) {
        return Err(SamplingError::InvalidConfig("fanouts must be non-empty and positive".into()));
    }
    let n = vertex_partition.len();
    for batch in my_batches {
        if let Some(&bad) = batch.iter().find(|&&v| v >= n) {
            return Err(SamplingError::InvalidConfig(format!("batch vertex {bad} out of range")));
        }
    }
    let (my_row, _) = grid.coords(comm.rank());
    let comm_before = comm.stats();
    let mut profile = PhaseProfile::new();

    let k = my_batches.len();
    let mut frontiers: Vec<Vec<usize>> = my_batches.to_vec();
    let mut layers: Vec<Vec<LayerSample>> = vec![Vec::new(); k];

    for (step, &s) in fanouts.iter().enumerate() {
        // Stacked Q for my process row's minibatches.
        let (q, offsets) = profile.time_compute(Phase::Probability, || -> Result<_> {
            let mut stacked: Vec<usize> = Vec::new();
            let mut offsets = Vec::with_capacity(k + 1);
            offsets.push(0);
            for frontier in &frontiers {
                stacked.extend_from_slice(frontier);
                offsets.push(stacked.len());
            }
            Ok((row_selection_matrix(&stacked, n)?, offsets))
        })?;

        // Distributed probability generation.
        let mut p = spgemm_1p5d_sparsity_aware(
            comm,
            grid,
            &q,
            my_a_block,
            vertex_partition,
            &mut profile,
            Phase::Probability,
        )?;
        profile.time_compute(Phase::Probability, || p.normalize_rows());

        // Sampling: replicated within the process row via a shared seed, one
        // RNG stream per probability row (thread-count invariant).
        let q_next = profile.time_compute(Phase::Sampling, || {
            sample_rows_par(&p, s, row_seed(seed, my_row, step), parallelism)
        })?;

        // Extraction: local per minibatch block (§5.2.3).
        profile.time_compute(Phase::Extraction, || -> Result<()> {
            for (i, frontier) in frontiers.iter_mut().enumerate() {
                let block = q_next.row_block(offsets[i], offsets[i + 1]);
                let block = if include_self_loops {
                    let mut coo = CooMatrix::with_capacity(
                        block.rows(),
                        block.cols(),
                        block.nnz() + frontier.len(),
                    );
                    for (r, c, v) in block.iter() {
                        coo.push(r, c, v)?;
                    }
                    for (row, &v) in frontier.iter().enumerate() {
                        coo.push(row, v, 1.0)?;
                    }
                    let mut merged = CsrMatrix::from_coo(&coo);
                    merged.map_values_inplace(|_| 1.0);
                    merged
                } else {
                    block
                };
                let (compacted, kept) = block.compact_columns();
                layers[i].push(LayerSample::new(frontier.clone(), kept.clone(), compacted));
                *frontier = kept;
            }
            Ok(())
        })?;
    }

    let minibatches = my_batches
        .iter()
        .zip(layers)
        .map(|(batch, mut batch_layers)| {
            batch_layers.reverse();
            MinibatchSample { batch: batch.clone(), layers: batch_layers }
        })
        .collect();

    let mut comm_stats = comm.stats();
    comm_stats.messages -= comm_before.messages;
    comm_stats.words_sent -= comm_before.words_sent;
    comm_stats.bytes_on_wire -= comm_before.bytes_on_wire;
    comm_stats.bytes_saved -= comm_before.bytes_saved;
    comm_stats.modeled_time -= comm_before.modeled_time;
    Ok(BulkSampleOutput { minibatches, profile, comm_stats })
}

/// Runs distributed LADIES sampling for the minibatches owned by this rank's
/// process row.  Row extraction reuses the 1.5D SpGEMM; column extraction is
/// split across the process row (each rank extracts the batches whose index
/// is congruent to its process column) and the results are all-gathered
/// within the row.
///
/// # Errors
///
/// Returns an error for invalid configurations or failed collectives.
#[deprecated(
    since = "0.2.0",
    note = "drive partitioned sampling through `backend::Partitioned1p5dBackend` \
            (the `Sampler::sample_partitioned` hook replaces per-sampler free functions)"
)]
#[allow(clippy::too_many_arguments)]
pub fn sample_partitioned_ladies(
    comm: &mut Communicator,
    grid: &ProcessGrid,
    my_a_block: &CsrMatrix,
    vertex_partition: &OneDPartition,
    my_batches: &[Vec<usize>],
    num_layers: usize,
    samples_per_layer: usize,
    seed: u64,
) -> Result<BulkSampleOutput> {
    ladies_on_rank(
        comm,
        grid,
        my_a_block,
        vertex_partition,
        my_batches,
        num_layers,
        samples_per_layer,
        seed,
        Parallelism::serial(),
        true,
    )
}

/// Rank-level LADIES body shared by the deprecated free function and the
/// [`crate::Sampler::sample_partitioned`] implementation.
#[allow(clippy::too_many_arguments)]
pub(crate) fn ladies_on_rank(
    comm: &mut Communicator,
    grid: &ProcessGrid,
    my_a_block: &CsrMatrix,
    vertex_partition: &OneDPartition,
    my_batches: &[Vec<usize>],
    num_layers: usize,
    samples_per_layer: usize,
    seed: u64,
    parallelism: Parallelism,
    workspace_reuse: bool,
) -> Result<BulkSampleOutput> {
    if num_layers == 0 || samples_per_layer == 0 {
        return Err(SamplingError::InvalidConfig(
            "num_layers and samples_per_layer must be positive".into(),
        ));
    }
    let n = vertex_partition.len();
    for batch in my_batches {
        if let Some(&bad) = batch.iter().find(|&&v| v >= n) {
            return Err(SamplingError::InvalidConfig(format!("batch vertex {bad} out of range")));
        }
    }
    let rank = comm.rank();
    let (my_row, my_col) = grid.coords(rank);
    let row_group = Group::new(&grid.row_ranks(rank))?;
    let comm_before = comm.stats();
    let mut profile = PhaseProfile::new();

    let k = my_batches.len();
    let mut frontiers: Vec<Vec<usize>> = my_batches.to_vec();
    let mut layers: Vec<Vec<LayerSample>> = vec![Vec::new(); k];

    for step in 0..num_layers {
        // Stacked indicator matrix: one row per minibatch of this process row.
        let q = profile.time_compute(Phase::Probability, || -> Result<CsrMatrix> {
            let mut coo = CooMatrix::new(k, n);
            for (i, frontier) in frontiers.iter().enumerate() {
                let mut unique = frontier.clone();
                unique.sort_unstable();
                unique.dedup();
                for v in unique {
                    coo.push(i, v, 1.0)?;
                }
            }
            Ok(CsrMatrix::from_coo(&coo))
        })?;

        let mut p = spgemm_1p5d_sparsity_aware(
            comm,
            grid,
            &q,
            my_a_block,
            vertex_partition,
            &mut profile,
            Phase::Probability,
        )?;
        profile.time_compute(Phase::Probability, || {
            p.map_values_inplace(|v| v * v);
            p.normalize_rows();
        });

        let sampled = profile.time_compute(Phase::Sampling, || {
            sample_rows_par(&p, samples_per_layer, row_seed(seed, my_row, step), parallelism)
        })?;

        // Row extraction via the same 1.5D SpGEMM: Q_R selects every frontier
        // vertex's row of A.
        let (q_r, offsets) = profile.time_compute(Phase::Extraction, || -> Result<_> {
            let mut stacked: Vec<usize> = Vec::new();
            let mut offsets = Vec::with_capacity(k + 1);
            offsets.push(0);
            for frontier in &frontiers {
                stacked.extend_from_slice(frontier);
                offsets.push(stacked.len());
            }
            Ok((row_selection_matrix(&stacked, n)?, offsets))
        })?;
        let a_r = spgemm_1p5d_sparsity_aware(
            comm,
            grid,
            &q_r,
            my_a_block,
            vertex_partition,
            &mut profile,
            Phase::Extraction,
        )?;

        // Column extraction: each rank of the process row handles the batches
        // with index ≡ its process column (mod c), then results are
        // all-gathered within the row.
        type SerializedLayer = (usize, (Vec<usize>, Vec<usize>, Vec<(usize, usize, f64)>));
        let my_share: Vec<SerializedLayer> =
            profile.time_compute(Phase::Extraction, || -> Result<Vec<SerializedLayer>> {
                let mut out = Vec::new();
                for i in 0..k {
                    if i % grid.cols() != my_col {
                        continue;
                    }
                    let cols: Vec<usize> = sampled.row_indices(i).to_vec();
                    let block = a_r.row_block(offsets[i], offsets[i + 1]);
                    // Bitmap-masked column filter, byte-identical to the
                    // hypersparse CSC selection SpGEMM (§8.2.2) it replaces.
                    let a_s = with_workspace(workspace_reuse, |ws| {
                        extract_columns_masked_with(&block, &cols, ws)
                    })?;
                    out.push((i, (frontiers[i].clone(), cols, a_s.iter().collect())));
                }
                Ok(out)
            })?;

        let gathered = comm.group_allgather(&row_group, my_share)?;
        profile.time_compute(Phase::Extraction, || -> Result<()> {
            let mut all: Vec<SerializedLayer> = gathered.into_iter().flatten().collect();
            all.sort_by_key(|(i, _)| *i);
            for (i, (rows, cols, triples)) in all {
                let coo = CooMatrix::from_triples(rows.len(), cols.len(), triples)?;
                let a_s = CsrMatrix::from_coo(&coo);
                layers[i].push(LayerSample::new(rows, cols.clone(), a_s));
                frontiers[i] = cols;
            }
            Ok(())
        })?;
    }

    let minibatches = my_batches
        .iter()
        .zip(layers)
        .map(|(batch, mut batch_layers)| {
            batch_layers.reverse();
            MinibatchSample { batch: batch.clone(), layers: batch_layers }
        })
        .collect();

    let mut comm_stats = comm.stats();
    comm_stats.messages -= comm_before.messages;
    comm_stats.words_sent -= comm_before.words_sent;
    comm_stats.bytes_on_wire -= comm_before.bytes_on_wire;
    comm_stats.bytes_saved -= comm_before.bytes_saved;
    comm_stats.modeled_time -= comm_before.modeled_time;
    Ok(BulkSampleOutput { minibatches, profile, comm_stats })
}

/// Rank-level FastGCN body used by the
/// [`crate::Sampler::sample_partitioned`] implementation.
///
/// FastGCN's importance distribution `q(v) ∝ deg_in(v)²` is global, so the
/// distributed formulation first all-reduces the per-block-row column sums
/// across each process column (one rank per block row), then samples
/// replicated within every process row, and extracts each layer's bipartite
/// adjacency by fetching the frontier's rows of `A` with the same 1.5D SpGEMM
/// the other samplers use.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fastgcn_on_rank(
    comm: &mut Communicator,
    grid: &ProcessGrid,
    my_a_block: &CsrMatrix,
    vertex_partition: &OneDPartition,
    my_batches: &[Vec<usize>],
    num_layers: usize,
    samples_per_layer: usize,
    seed: u64,
    workspace_reuse: bool,
) -> Result<BulkSampleOutput> {
    if num_layers == 0 || samples_per_layer == 0 {
        return Err(SamplingError::InvalidConfig(
            "num_layers and samples_per_layer must be positive".into(),
        ));
    }
    let n = vertex_partition.len();
    for batch in my_batches {
        if let Some(&bad) = batch.iter().find(|&&v| v >= n) {
            return Err(SamplingError::InvalidConfig(format!("batch vertex {bad} out of range")));
        }
    }
    let rank = comm.rank();
    let (my_row, _) = grid.coords(rank);
    let comm_before = comm.stats();
    let mut profile = PhaseProfile::new();

    // Global importance weights: column sums of the full A are the sum of the
    // per-block-row column sums, reduced across each process column.
    let col_group = Group::new(&grid.col_ranks(rank))?;
    let local_sums = profile.time_compute(Phase::Probability, || my_a_block.col_sums());
    let comm_t0 = comm.stats().modeled_time;
    let total_sums = comm.group_allreduce(&col_group, local_sums, |a, b| {
        a.iter().zip(b).map(|(x, y)| x + y).collect()
    })?;
    profile.add_comm(Phase::Probability, comm.stats().modeled_time - comm_t0);
    let weights: Vec<f64> = profile
        .time_compute(Phase::Probability, || total_sums.into_iter().map(|d| d * d).collect());

    let k = my_batches.len();
    let mut frontiers: Vec<Vec<usize>> = my_batches.to_vec();
    let mut layers: Vec<Vec<LayerSample>> = vec![Vec::new(); k];

    for step in 0..num_layers {
        // Sampling is replicated within the process row via a shared seed.
        let mut rng = StdRng::seed_from_u64(row_seed(seed, my_row, step));
        let sampled_per_batch: Vec<Vec<usize>> = profile.time_compute(Phase::Sampling, || {
            (0..k)
                .map(|_| its_without_replacement(&weights, samples_per_layer, &mut rng))
                .collect::<Result<_>>()
        })?;

        // Row extraction via the 1.5D SpGEMM, then a local column selection.
        let (q_r, offsets) = profile.time_compute(Phase::Extraction, || -> Result<_> {
            let mut stacked: Vec<usize> = Vec::new();
            let mut offsets = Vec::with_capacity(k + 1);
            offsets.push(0);
            for frontier in &frontiers {
                stacked.extend_from_slice(frontier);
                offsets.push(stacked.len());
            }
            Ok((row_selection_matrix(&stacked, n)?, offsets))
        })?;
        let a_r = spgemm_1p5d_sparsity_aware(
            comm,
            grid,
            &q_r,
            my_a_block,
            vertex_partition,
            &mut profile,
            Phase::Extraction,
        )?;
        profile.time_compute(Phase::Extraction, || -> Result<()> {
            for (i, frontier) in frontiers.iter_mut().enumerate() {
                let block = a_r.row_block(offsets[i], offsets[i + 1]);
                let a_s = with_workspace(workspace_reuse, |ws| {
                    extract_columns_masked_with(&block, &sampled_per_batch[i], ws)
                })?;
                layers[i].push(LayerSample::new(
                    frontier.clone(),
                    sampled_per_batch[i].clone(),
                    a_s,
                ));
                *frontier = sampled_per_batch[i].clone();
            }
            Ok(())
        })?;
    }

    let minibatches = my_batches
        .iter()
        .zip(layers)
        .map(|(batch, mut batch_layers)| {
            batch_layers.reverse();
            MinibatchSample { batch: batch.clone(), layers: batch_layers }
        })
        .collect();

    let mut comm_stats = comm.stats();
    comm_stats.messages -= comm_before.messages;
    comm_stats.words_sent -= comm_before.words_sent;
    comm_stats.bytes_on_wire -= comm_before.bytes_on_wire;
    comm_stats.bytes_saved -= comm_before.bytes_saved;
    comm_stats.modeled_time -= comm_before.modeled_time;
    Ok(BulkSampleOutput { minibatches, profile, comm_stats })
}

/// Assigns minibatch indices to process rows round-robin (process row `r`
/// owns batches `r, r + rows, …`).
pub fn assign_batches_to_rows(num_batches: usize, rows: usize) -> Vec<Vec<usize>> {
    let mut assignment = vec![Vec::new(); rows];
    for i in 0..num_batches {
        assignment[i % rows].push(i);
    }
    assignment
}

/// Convenience driver: partitions the adjacency matrix, spawns the runtime
/// and runs [`sample_partitioned_sage`] on every rank.  Returns one
/// [`BulkSampleOutput`] per **process row** (taken from its column-0 rank).
///
/// # Errors
///
/// Propagates configuration, sampling and runtime errors.
#[deprecated(
    since = "0.2.0",
    note = "use `backend::Partitioned1p5dBackend::sample_epoch` through the `SamplingBackend` trait"
)]
pub fn run_partitioned_sage(
    runtime: &Runtime,
    replication: usize,
    adjacency: &CsrMatrix,
    batches: &[Vec<usize>],
    fanouts: &[usize],
    include_self_loops: bool,
    seed: u64,
) -> Result<Vec<BulkSampleOutput>> {
    let grid = ProcessGrid::new(runtime.size(), replication)?;
    let n = adjacency.rows();
    if adjacency.cols() != n {
        return Err(SamplingError::InvalidConfig("adjacency matrix must be square".into()));
    }
    let vertex_partition = OneDPartition::new(n, grid.rows())?;
    let a_blocks = vertex_partition.split_csr(adjacency)?;
    let row_assignment = assign_batches_to_rows(batches.len(), grid.rows());

    let outputs = runtime.run(|comm| {
        let (my_row, _) = grid.coords(comm.rank());
        let my_batches: Vec<Vec<usize>> =
            row_assignment[my_row].iter().map(|&i| batches[i].clone()).collect();
        sage_on_rank(
            comm,
            &grid,
            &a_blocks[my_row],
            &vertex_partition,
            &my_batches,
            fanouts,
            include_self_loops,
            seed,
            Parallelism::serial(),
        )
    })?;

    let mut per_row = Vec::with_capacity(grid.rows());
    for out in outputs {
        let (row, col) = grid.coords(out.rank);
        if col == 0 {
            debug_assert_eq!(row, per_row.len());
            per_row.push(out.value?);
        } else {
            // Still surface errors from non-reporting ranks.
            out.value?;
        }
    }
    Ok(per_row)
}

/// Convenience driver for [`sample_partitioned_ladies`], mirroring
/// [`run_partitioned_sage`].
///
/// # Errors
///
/// Propagates configuration, sampling and runtime errors.
#[deprecated(
    since = "0.2.0",
    note = "use `backend::Partitioned1p5dBackend::sample_epoch` through the `SamplingBackend` trait"
)]
#[allow(clippy::too_many_arguments)]
pub fn run_partitioned_ladies(
    runtime: &Runtime,
    replication: usize,
    adjacency: &CsrMatrix,
    batches: &[Vec<usize>],
    num_layers: usize,
    samples_per_layer: usize,
    seed: u64,
) -> Result<Vec<BulkSampleOutput>> {
    let grid = ProcessGrid::new(runtime.size(), replication)?;
    let n = adjacency.rows();
    if adjacency.cols() != n {
        return Err(SamplingError::InvalidConfig("adjacency matrix must be square".into()));
    }
    let vertex_partition = OneDPartition::new(n, grid.rows())?;
    let a_blocks = vertex_partition.split_csr(adjacency)?;
    let row_assignment = assign_batches_to_rows(batches.len(), grid.rows());

    let outputs = runtime.run(|comm| {
        let (my_row, _) = grid.coords(comm.rank());
        let my_batches: Vec<Vec<usize>> =
            row_assignment[my_row].iter().map(|&i| batches[i].clone()).collect();
        ladies_on_rank(
            comm,
            &grid,
            &a_blocks[my_row],
            &vertex_partition,
            &my_batches,
            num_layers,
            samples_per_layer,
            seed,
            Parallelism::serial(),
            true,
        )
    })?;

    let mut per_row = Vec::with_capacity(grid.rows());
    for out in outputs {
        let (row, col) = grid.coords(out.rank);
        if col == 0 {
            debug_assert_eq!(row, per_row.len());
            per_row.push(out.value?);
        } else {
            out.value?;
        }
    }
    Ok(per_row)
}

/// Flattens per-process-row outputs back to the original batch order.
///
/// # Errors
///
/// Returns [`SamplingError::InvalidConfig`] if a batch is missing from the
/// per-row outputs.
pub fn flatten_row_outputs(
    per_row: Vec<BulkSampleOutput>,
    num_batches: usize,
) -> Result<BulkSampleOutput> {
    let rows = per_row.len();
    let assignment = assign_batches_to_rows(num_batches, rows);
    let mut ordered: Vec<Option<MinibatchSample>> = vec![None; num_batches];
    let mut merged = BulkSampleOutput::default();
    for (row, output) in per_row.into_iter().enumerate() {
        merged.profile.merge_max(&output.profile);
        merged.comm_stats.merge(&output.comm_stats);
        for (slot, mb) in assignment[row].iter().zip(output.minibatches) {
            ordered[*slot] = Some(mb);
        }
    }
    merged.minibatches = ordered
        .into_iter()
        .map(|mb| {
            mb.ok_or_else(|| {
                SamplingError::InvalidConfig(
                    "a minibatch was not sampled by any process row".into(),
                )
            })
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(merged)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::sampler::{BulkSamplerConfig, Sampler};
    use crate::{GraphSageSampler, LadiesSampler};
    use dmbs_graph::generators::{figure1_example, rmat, RmatConfig};
    use dmbs_matrix::spgemm::spgemm;

    fn adjacency() -> CsrMatrix {
        figure1_example().adjacency().clone()
    }

    fn random_graph(scale: u32, degree: usize, seed: u64) -> CsrMatrix {
        rmat(&RmatConfig::new(scale, degree), &mut StdRng::seed_from_u64(seed))
            .unwrap()
            .adjacency()
            .clone()
    }

    #[test]
    fn spgemm_1p5d_matches_serial_spgemm() {
        // Q = selection of a few rows; result must equal the serial product.
        let a = random_graph(6, 4, 1);
        let n = a.rows();
        for &(p, c) in &[(2usize, 1usize), (4, 2), (6, 2), (4, 4), (8, 2)] {
            let runtime = Runtime::new(p).unwrap();
            let grid = ProcessGrid::new(p, c).unwrap();
            let vertex_partition = OneDPartition::new(n, grid.rows()).unwrap();
            let a_blocks = vertex_partition.split_csr(&a).unwrap();
            // The same Q block on every process row (simplest consistent setup:
            // every row owns the same stacked rows — fine for a kernel test).
            let q = row_selection_matrix(&[1, 5, 17, 33, 40], n).unwrap();
            let expected = spgemm(&q, &a).unwrap();

            let outs = runtime
                .run(|comm| {
                    let (my_row, _) = grid.coords(comm.rank());
                    let mut profile = PhaseProfile::new();
                    spgemm_1p5d_sparsity_aware(
                        comm,
                        &grid,
                        &q,
                        &a_blocks[my_row],
                        &vertex_partition,
                        &mut profile,
                        Phase::Probability,
                    )
                })
                .unwrap();
            for out in outs {
                let p_block = out.value.unwrap();
                assert!(
                    p_block.approx_eq(&expected, 1e-9),
                    "1.5D SpGEMM mismatch for p={p}, c={c}"
                );
            }
        }
    }

    #[test]
    fn spgemm_1p5d_with_empty_q_block() {
        let a = random_graph(5, 3, 2);
        let n = a.rows();
        let runtime = Runtime::new(4).unwrap();
        let grid = ProcessGrid::new(4, 2).unwrap();
        let vertex_partition = OneDPartition::new(n, grid.rows()).unwrap();
        let a_blocks = vertex_partition.split_csr(&a).unwrap();
        let outs = runtime
            .run(|comm| {
                let (my_row, _) = grid.coords(comm.rank());
                let q = CsrMatrix::zeros(0, n);
                let mut profile = PhaseProfile::new();
                spgemm_1p5d_sparsity_aware(
                    comm,
                    &grid,
                    &q,
                    &a_blocks[my_row],
                    &vertex_partition,
                    &mut profile,
                    Phase::Probability,
                )
            })
            .unwrap();
        for out in outs {
            assert_eq!(out.value.unwrap().rows(), 0);
        }
    }

    #[test]
    fn partitioned_sage_full_fanout_matches_single_device() {
        // With a fanout larger than any degree, GraphSAGE keeps the entire
        // 1-hop neighborhood, so the partitioned result must match the
        // single-device matrix sampler exactly (no randomness involved).
        let a = adjacency();
        let batches: Vec<Vec<usize>> = vec![vec![1, 5], vec![0, 3], vec![2, 4]];
        let fanouts = vec![10];
        let runtime = Runtime::new(4).unwrap();
        let per_row = run_partitioned_sage(&runtime, 2, &a, &batches, &fanouts, false, 3).unwrap();
        let flat = flatten_row_outputs(per_row, batches.len()).unwrap();

        let single = GraphSageSampler::new(fanouts.clone());
        let mut rng = StdRng::seed_from_u64(9);
        let expected =
            single.sample_bulk(&a, &batches, &BulkSamplerConfig::new(2, 3), &mut rng).unwrap();
        for (got, want) in flat.minibatches.iter().zip(&expected.minibatches) {
            assert_eq!(got.batch, want.batch);
            assert_eq!(got.layers[0].rows, want.layers[0].rows);
            assert_eq!(got.layers[0].cols, want.layers[0].cols);
            assert_eq!(got.layers[0].adjacency, want.layers[0].adjacency);
        }
    }

    #[test]
    fn partitioned_sage_respects_fanout_on_random_graph() {
        let a = random_graph(7, 6, 3);
        let n = a.rows();
        let batches: Vec<Vec<usize>> = (0..6).map(|i| vec![i * 3 % n, (i * 7 + 1) % n]).collect();
        let runtime = Runtime::new(8).unwrap();
        let per_row = run_partitioned_sage(&runtime, 2, &a, &batches, &[3, 2], false, 17).unwrap();
        assert_eq!(per_row.len(), 4);
        let flat = flatten_row_outputs(per_row, batches.len()).unwrap();
        assert_eq!(flat.num_batches(), 6);
        for mb in &flat.minibatches {
            assert!(mb.frontiers_are_chained());
            for layer in &mb.layers {
                for r in 0..layer.adjacency.rows() {
                    assert!(layer.adjacency.row_nnz(r) <= 3);
                }
                for (r, c, _) in layer.adjacency.iter() {
                    assert_eq!(
                        a.get(layer.rows[r], layer.cols[c]),
                        1.0,
                        "sampled edge not in graph"
                    );
                }
            }
        }
        // The partitioned algorithm actually communicates.
        assert!(flat.comm_stats.messages > 0);
    }

    #[test]
    fn partitioned_ladies_full_sample_matches_single_device() {
        // With s covering the whole aggregated neighborhood, LADIES keeps all
        // support vertices, so the result is deterministic and must match the
        // single-device sampler.
        let a = adjacency();
        let batches: Vec<Vec<usize>> = vec![vec![1, 5], vec![0, 2]];
        let runtime = Runtime::new(4).unwrap();
        let per_row = run_partitioned_ladies(&runtime, 2, &a, &batches, 1, 10, 5).unwrap();
        let flat = flatten_row_outputs(per_row, batches.len()).unwrap();

        let single = LadiesSampler::new(1, 10);
        let mut rng = StdRng::seed_from_u64(23);
        let expected =
            single.sample_bulk(&a, &batches, &BulkSamplerConfig::new(2, 2), &mut rng).unwrap();
        for (got, want) in flat.minibatches.iter().zip(&expected.minibatches) {
            assert_eq!(got.layers[0].rows, want.layers[0].rows);
            assert_eq!(got.layers[0].cols, want.layers[0].cols);
            assert!(got.layers[0].adjacency.approx_eq(&want.layers[0].adjacency, 1e-12));
        }
    }

    #[test]
    fn partitioned_ladies_sample_size_and_edges() {
        let a = random_graph(7, 8, 4);
        let n = a.rows();
        let batches: Vec<Vec<usize>> =
            (0..4).map(|i| vec![(i * 11) % n, (i * 13 + 2) % n, (i * 5 + 7) % n]).collect();
        let runtime = Runtime::new(4).unwrap();
        let per_row = run_partitioned_ladies(&runtime, 2, &a, &batches, 1, 5, 31).unwrap();
        let flat = flatten_row_outputs(per_row, batches.len()).unwrap();
        for mb in &flat.minibatches {
            let layer = &mb.layers[0];
            assert!(layer.cols.len() <= 5);
            // Every kept edge is a real edge between a batch and a sampled vertex.
            for (r, c, _) in layer.adjacency.iter() {
                assert_eq!(a.get(layer.rows[r], layer.cols[c]), 1.0);
            }
        }
    }

    #[test]
    fn invalid_configurations_rejected() {
        let a = adjacency();
        let runtime = Runtime::new(2).unwrap();
        assert!(run_partitioned_sage(&runtime, 2, &a, &[vec![0]], &[], false, 0).is_err());
        assert!(run_partitioned_sage(&runtime, 2, &a, &[vec![99]], &[2], false, 0).is_err());
        assert!(run_partitioned_ladies(&runtime, 2, &a, &[vec![0]], 0, 2, 0).is_err());
        assert!(run_partitioned_ladies(&runtime, 2, &a, &[vec![0]], 1, 0, 0).is_err());
        // Replication must divide p.
        assert!(run_partitioned_sage(&runtime, 3, &a, &[vec![0]], &[2], false, 0).is_err());
        // Rectangular adjacency.
        assert!(run_partitioned_sage(
            &runtime,
            2,
            &CsrMatrix::zeros(3, 4),
            &[vec![0]],
            &[2],
            false,
            0
        )
        .is_err());
    }

    #[test]
    fn row_assignment_balances() {
        let a = assign_batches_to_rows(7, 3);
        assert_eq!(a[0], vec![0, 3, 6]);
        assert_eq!(a[1], vec![1, 4]);
        assert_eq!(a[2], vec![2, 5]);
    }

    #[test]
    fn replication_reduces_stage_count_and_messages() {
        // Increasing c shrinks the number of 1.5D stages each process column
        // executes (p/c² in the paper), so the per-rank message count of the
        // probability SpGEMM must go down.  Batches are spread across the
        // whole vertex range so every rank genuinely needs remote rows.
        let a = random_graph(8, 8, 5);
        let n = a.rows();
        let batches: Vec<Vec<usize>> =
            (0..8).map(|i| (0..16).map(|j| (i + j * 16) % n).collect()).collect();
        let runtime = Runtime::new(8).unwrap();
        let c1 = run_partitioned_sage(&runtime, 1, &a, &batches, &[4], false, 7).unwrap();
        let c2 = run_partitioned_sage(&runtime, 2, &a, &batches, &[4], false, 7).unwrap();
        // Partitioned sampling with scattered batches must actually move data.
        let words_c2: usize = c2.iter().map(|o| o.comm_stats.words_sent).sum();
        assert!(words_c2 > 0, "partitioned sampling with c=2 sent no data");
        // Per-reporting-rank message count shrinks with replication.
        let msgs_per_rank_c1 = c1.iter().map(|o| o.comm_stats.messages).max().unwrap();
        let msgs_per_rank_c2 = c2.iter().map(|o| o.comm_stats.messages).max().unwrap();
        assert!(
            msgs_per_rank_c2 < msgs_per_rank_c1,
            "c=2 rank sent {msgs_per_rank_c2} messages, c=1 rank sent {msgs_per_rank_c1}"
        );
    }
}

//! # dmbs-sampling
//!
//! Matrix-based bulk minibatch sampling for GNN training — the primary
//! contribution of *Distributed Matrix-Based Sampling for Graph Neural
//! Network Training* (MLSys 2024), reimplemented from scratch in Rust.
//!
//! The paper expresses GNN sampling algorithms as sparse matrix operations
//! (Algorithm 1):
//!
//! ```text
//! for l = L .. 1:
//!     P       = Q^l · A            (SpGEMM)
//!     P       = NORM(P)            (sampler-specific row normalization)
//!     Q^(l-1) = SAMPLE(P, b, s)    (inverse transform sampling per row)
//!     A^l     = EXTRACT(A, Q^l, Q^(l-1))
//! ```
//!
//! and samples `k` minibatches *in bulk* by vertically stacking their `Q`,
//! `P` and `A^l` matrices (Equation 1).  This crate implements:
//!
//! * [`its`] — inverse transform sampling (and rejection sampling, for the
//!   ablation) over CSR probability rows;
//! * [`GraphSageSampler`] — node-wise sampling (§4.1);
//! * [`LadiesSampler`] — layer-wise dependency sampling (§4.2), including the
//!   row/column extraction SpGEMMs;
//! * [`FastGcnSampler`] — degree-based layer-wise sampling (an extension
//!   mentioned in §2.2.2);
//! * [`replicated`] — the Graph Replicated distributed algorithm (§5.1):
//!   `Q` partitioned 1D, `A` replicated, no communication during sampling;
//! * [`partitioned`] — the Graph Partitioned algorithm (§5.2): both matrices
//!   partitioned on a `p/c × c` grid and multiplied with the sparsity-aware
//!   1.5D SpGEMM of Algorithm 2;
//! * [`baseline`] — per-vertex samplers standing in for Quiver/DGL (including
//!   a UVA-style slow-memory model) and a reference per-batch CPU LADIES.
//!
//! # Example: bulk GraphSAGE sampling
//!
//! ```
//! use dmbs_sampling::{BulkSamplerConfig, GraphSageSampler, Sampler};
//! use dmbs_graph::generators::figure1_example;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), dmbs_sampling::SamplingError> {
//! let graph = figure1_example();
//! let sampler = GraphSageSampler::new(vec![2]);
//! let batches = vec![vec![1, 5], vec![0, 3]];
//! let config = BulkSamplerConfig::new(2, 2);
//! let mut rng = StdRng::seed_from_u64(7);
//! let out = sampler.sample_bulk(graph.adjacency(), &batches, &config, &mut rng)?;
//! assert_eq!(out.num_batches(), 2);
//! // Layer L of the first minibatch has the batch vertices as rows.
//! assert_eq!(out.minibatches[0].layers.last().unwrap().rows, vec![1, 5]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod baseline;
pub mod error;
pub mod fastgcn;
pub mod its;
pub mod ladies;
pub mod partitioned;
pub mod plan;
pub mod replicated;
pub mod sage;
pub mod sampler;

pub use error::SamplingError;
pub use fastgcn::FastGcnSampler;
pub use ladies::LadiesSampler;
pub use plan::{BulkSampleOutput, LayerSample, MinibatchSample};
pub use sage::GraphSageSampler;
pub use sampler::{BulkSamplerConfig, Sampler};

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, SamplingError>;

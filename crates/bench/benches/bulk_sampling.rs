//! Criterion benchmark: bulk matrix sampling vs per-vertex baseline sampling
//! (the amortization argument of §4.1.4), plus LADIES bulk sampling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmbs_graph::generators::{rmat, RmatConfig};
use dmbs_sampling::baseline::PerVertexSageSampler;
use dmbs_sampling::{BulkSamplerConfig, GraphSageSampler, LadiesSampler, Sampler};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_bulk_sampling(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("bulk_sampling");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(5);
    let graph = rmat(&RmatConfig::new(11, 16), &mut rng).expect("generator");
    let a = graph.adjacency();
    let n = a.rows();

    let batch_size = 64usize;
    for &k in &[1usize, 8, 16] {
        let batches: Vec<Vec<usize>> =
            (0..k).map(|_| (0..batch_size).map(|_| rng.gen_range(0..n)).collect()).collect();
        let config = BulkSamplerConfig::new(batch_size, k);

        let matrix = GraphSageSampler::new(vec![15, 10, 5]);
        group.bench_with_input(BenchmarkId::new("matrix_sage_bulk", k), &k, |bench, _| {
            let mut local = StdRng::seed_from_u64(6);
            bench.iter(|| matrix.sample_bulk(a, &batches, &config, &mut local).expect("sample"));
        });

        let baseline = PerVertexSageSampler::new(vec![15, 10, 5]);
        group.bench_with_input(BenchmarkId::new("per_vertex_sage", k), &k, |bench, _| {
            let mut local = StdRng::seed_from_u64(6);
            bench.iter(|| baseline.sample_bulk(a, &batches, &config, &mut local).expect("sample"));
        });

        let ladies = LadiesSampler::new(1, 64);
        group.bench_with_input(BenchmarkId::new("ladies_bulk", k), &k, |bench, _| {
            let mut local = StdRng::seed_from_u64(6);
            bench.iter(|| ladies.sample_bulk(a, &batches, &config, &mut local).expect("sample"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bulk_sampling);
criterion_main!(benches);

//! Offline stand-in for the `crossbeam` crate.
//!
//! `dmbs-comm` uses only `crossbeam::channel::{unbounded, Sender, Receiver}`
//! in a strictly point-to-point pattern (one dedicated channel per ordered
//! rank pair), so `std::sync::mpsc` provides identical semantics.
//! `dmbs-matrix` additionally uses [`thread::scope`] for its shared-memory
//! worker pool; the stand-in delegates to `std::thread::scope`, which offers
//! the same borrow-friendly scoped-spawn semantics.

#![deny(missing_docs)]

/// Multi-producer channels, mirroring `crossbeam::channel`.
pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// The sending half of an unbounded channel.
    #[derive(Debug, Clone)]
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    /// The receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Sender<T> {
        /// Sends `value`, failing only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives, failing if every sender was dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Returns a pending value if one is ready.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.inner.try_recv()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(41usize).unwrap();
            let tx2 = tx.clone();
            tx2.send(1).unwrap();
            assert_eq!(rx.recv().unwrap(), 41);
            assert_eq!(rx.recv().unwrap(), 1);
        }

        #[test]
        fn disconnect_is_reported() {
            let (tx, rx) = unbounded::<usize>();
            drop(rx);
            assert!(tx.send(1).is_err());
            let (tx, rx) = unbounded::<usize>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let handle = std::thread::spawn(move || tx.send(7usize).unwrap());
            assert_eq!(rx.recv().unwrap(), 7);
            handle.join().unwrap();
        }
    }
}

/// Scoped threads, mirroring `crossbeam::thread`.
///
/// A scope guarantees that every thread spawned inside it has finished before
/// [`scope`](thread::scope) returns, which lets the spawned closures borrow
/// from the caller's stack.  The stand-in delegates to `std::thread::scope`
/// and keeps crossbeam's error-reporting convention:
/// [`scope`](thread::scope) returns `Err` when any unjoined child thread
/// panicked instead of unwinding through the caller.
pub mod thread {
    use std::thread as std_thread;

    /// A handle to a scope for spawning borrowed threads; see [`scope`].
    #[derive(Debug, Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    /// An owned handle to a thread spawned inside a [`scope`].
    ///
    /// Joining is optional: threads whose handle is dropped are still joined
    /// when the scope ends.
    #[derive(Debug)]
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish and returns its result; `Err` holds
        /// the panic payload if the thread panicked.
        pub fn join(self) -> std_thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread that may borrow from outside the scope; it is
        /// joined no later than the end of the scope.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce() -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle { inner: self.inner.spawn(f) }
        }
    }

    /// Creates a scope in which borrowed threads can be spawned, joining all
    /// of them before returning.
    ///
    /// Returns `Err` when a child thread panicked and was not individually
    /// joined, `Ok` with the closure's value otherwise.  Unlike real
    /// crossbeam, the `Err` payload for an *unjoined* panicking child is
    /// `std::thread::scope`'s generic "a scoped thread panicked" message,
    /// not the child's own payload — join the handle yourself
    /// ([`ScopedJoinHandle::join`]) when the payload matters, as the
    /// `dmbs-matrix` pool does.
    pub fn scope<'env, F, R>(f: F) -> std_thread::Result<R>
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std_thread::scope(|s| f(Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[test]
        fn threads_borrow_stack_data() {
            let data = [1usize, 2, 3, 4];
            let total = AtomicUsize::new(0);
            scope(|s| {
                for chunk in data.chunks(2) {
                    s.spawn(|| {
                        total.fetch_add(chunk.iter().sum::<usize>(), Ordering::SeqCst);
                    });
                }
            })
            .unwrap();
            assert_eq!(total.load(Ordering::SeqCst), 10);
        }

        #[test]
        fn join_returns_thread_value() {
            let doubled = scope(|s| {
                let handles: Vec<_> = (0..4).map(|i| s.spawn(move || i * 2)).collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<usize>>()
            })
            .unwrap();
            assert_eq!(doubled, vec![0, 2, 4, 6]);
        }

        #[test]
        fn child_panic_is_reported_not_propagated() {
            let result = scope(|s| {
                s.spawn(|| panic!("child failed"));
            });
            assert!(result.is_err());
        }
    }
}

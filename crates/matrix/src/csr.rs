//! Compressed Sparse Row (CSR) matrices.
//!
//! CSR is the working format of the whole pipeline: the adjacency matrix `A`,
//! the sampler matrices `Q^l`, the probability matrices `P` and the sampled
//! adjacency matrices `A^l` are all CSR.  This mirrors the paper's
//! implementation, which relies on CSR-based SpGEMM (cuSPARSE / nsparse).

use crate::coo::CooMatrix;
use crate::dense::DenseMatrix;
use crate::error::MatrixError;
use crate::prefix::counts_to_offsets;
use crate::Result;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A sparse matrix in Compressed Sparse Row format.
///
/// Invariants maintained by every constructor:
///
/// * `indptr.len() == rows + 1`, `indptr[0] == 0`, non-decreasing,
///   `indptr[rows] == indices.len() == values.len()`;
/// * within each row, column indices are strictly increasing (sorted and
///   deduplicated);
/// * every column index is `< cols`.
///
/// # Example
///
/// ```
/// use dmbs_matrix::{CooMatrix, CsrMatrix};
///
/// # fn main() -> Result<(), dmbs_matrix::MatrixError> {
/// let coo = CooMatrix::from_triples(2, 3, vec![(0, 1, 1.0), (1, 0, 2.0), (1, 2, 3.0)])?;
/// let csr = CsrMatrix::from_coo(&coo);
/// assert_eq!(csr.nnz(), 3);
/// assert_eq!(csr.row_indices(1), &[0, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Creates an empty (all-zero) `rows x cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CsrMatrix { rows, cols, indptr: vec![0; rows + 1], indices: Vec::new(), values: Vec::new() }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            rows: n,
            cols: n,
            indptr: (0..=n).collect(),
            indices: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Builds a CSR matrix from COO triples, summing duplicates.
    pub fn from_coo(coo: &CooMatrix) -> Self {
        let rows = coo.rows();
        let cols = coo.cols();
        // Collect per-row maps to sort columns and merge duplicates.
        let mut row_maps: Vec<BTreeMap<usize, f64>> = vec![BTreeMap::new(); rows];
        for &(r, c, v) in coo.iter() {
            *row_maps[r].entry(c).or_insert(0.0) += v;
        }
        let counts: Vec<usize> = row_maps.iter().map(|m| m.len()).collect();
        let indptr = counts_to_offsets(&counts);
        let nnz = indptr[rows];
        let mut indices = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        for m in row_maps {
            for (c, v) in m {
                indices.push(c);
                values.push(v);
            }
        }
        CsrMatrix { rows, cols, indptr, indices, values }
    }

    /// Builds a CSR matrix from sorted per-row `(col, value)` lists.
    ///
    /// This is the fast path used by kernels that already produce sorted,
    /// deduplicated rows.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::InvalidStructure`] if any row is unsorted,
    /// contains duplicates, or references a column `>= cols`.
    pub fn from_rows(rows: usize, cols: usize, row_data: Vec<Vec<(usize, f64)>>) -> Result<Self> {
        if row_data.len() != rows {
            return Err(MatrixError::InvalidStructure(format!(
                "expected {rows} rows of data, got {}",
                row_data.len()
            )));
        }
        let counts: Vec<usize> = row_data.iter().map(|r| r.len()).collect();
        let indptr = counts_to_offsets(&counts);
        let nnz = indptr[rows];
        let mut indices = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        for (i, row) in row_data.into_iter().enumerate() {
            let mut prev: Option<usize> = None;
            for (c, v) in row {
                if c >= cols {
                    return Err(MatrixError::InvalidStructure(format!(
                        "row {i} references column {c} >= {cols}"
                    )));
                }
                if let Some(p) = prev {
                    if c <= p {
                        return Err(MatrixError::InvalidStructure(format!(
                            "row {i} is not strictly increasing at column {c}"
                        )));
                    }
                }
                prev = Some(c);
                indices.push(c);
                values.push(v);
            }
        }
        Ok(CsrMatrix { rows, cols, indptr, indices, values })
    }

    /// Builds a CSR matrix from raw buffers, validating every invariant.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::InvalidStructure`] if the buffers are
    /// inconsistent (see the type-level invariants).
    pub fn from_raw(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self> {
        if indptr.len() != rows + 1 {
            return Err(MatrixError::InvalidStructure(format!(
                "indptr length {} != rows + 1 = {}",
                indptr.len(),
                rows + 1
            )));
        }
        if indptr[0] != 0 {
            return Err(MatrixError::InvalidStructure("indptr[0] must be 0".into()));
        }
        if indices.len() != values.len() {
            return Err(MatrixError::InvalidStructure(format!(
                "indices length {} != values length {}",
                indices.len(),
                values.len()
            )));
        }
        if indptr[rows] != indices.len() {
            return Err(MatrixError::InvalidStructure(format!(
                "indptr[rows] = {} != nnz = {}",
                indptr[rows],
                indices.len()
            )));
        }
        for w in indptr.windows(2) {
            if w[0] > w[1] {
                return Err(MatrixError::InvalidStructure("indptr must be non-decreasing".into()));
            }
        }
        for r in 0..rows {
            let row = &indices[indptr[r]..indptr[r + 1]];
            for w in row.windows(2) {
                if w[0] >= w[1] {
                    return Err(MatrixError::InvalidStructure(format!(
                        "row {r} columns are not strictly increasing"
                    )));
                }
            }
            if let Some(&last) = row.last() {
                if last >= cols {
                    return Err(MatrixError::InvalidStructure(format!(
                        "row {r} references column {last} >= {cols}"
                    )));
                }
            }
        }
        Ok(CsrMatrix { rows, cols, indptr, indices, values })
    }

    /// Builds a CSR matrix from raw buffers **without** revalidating the
    /// invariants.  For kernels (gathers, masked filters) whose construction
    /// guarantees them; debug builds still assert.
    pub(crate) fn from_raw_unchecked(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(indptr.len(), rows + 1);
        debug_assert_eq!(indices.len(), values.len());
        debug_assert_eq!(indptr.first().copied(), Some(0));
        debug_assert_eq!(indptr[rows], indices.len());
        debug_assert!(indptr.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!((0..rows).all(|r| {
            let row = &indices[indptr[r]..indptr[r + 1]];
            row.windows(2).all(|w| w[0] < w[1]) && row.last().is_none_or(|&c| c < cols)
        }));
        CsrMatrix { rows, cols, indptr, indices, values }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Number of nonzeros in row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_nnz(&self, r: usize) -> usize {
        assert!(r < self.rows, "row index out of bounds");
        self.indptr[r + 1] - self.indptr[r]
    }

    /// Column indices of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_indices(&self, r: usize) -> &[usize] {
        assert!(r < self.rows, "row index out of bounds");
        &self.indices[self.indptr[r]..self.indptr[r + 1]]
    }

    /// Values of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_values(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index out of bounds");
        &self.values[self.indptr[r]..self.indptr[r + 1]]
    }

    /// Mutable values of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_values_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index out of bounds");
        &mut self.values[self.indptr[r]..self.indptr[r + 1]]
    }

    /// The row pointer array (`rows + 1` entries).
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// All column indices in row-major order.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// All values in row-major order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Returns the stored value at `(r, c)` or `0.0` if absent.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        let row = self.row_indices(r);
        match row.binary_search(&c) {
            Ok(pos) => self.row_values(r)[pos],
            Err(_) => 0.0,
        }
    }

    /// Iterator over `(row, col, value)` triples in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |r| {
            self.row_indices(r).iter().zip(self.row_values(r)).map(move |(&c, &v)| (r, c, v))
        })
    }

    /// Converts back to COO triples.
    pub fn to_coo(&self) -> CooMatrix {
        let mut coo = CooMatrix::with_capacity(self.rows, self.cols, self.nnz());
        for (r, c, v) in self.iter() {
            coo.push(r, c, v).expect("CSR invariants guarantee in-bounds indices");
        }
        coo
    }

    /// Converts to a dense matrix.  Intended for tests and small examples.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            d.set(r, c, v);
        }
        d
    }

    /// Returns the transpose as a new CSR matrix.
    pub fn transpose(&self) -> CsrMatrix {
        // Count nonzeros per output row (= input column).
        let mut counts = vec![0usize; self.cols];
        for &c in &self.indices {
            counts[c] += 1;
        }
        let indptr = counts_to_offsets(&counts);
        let mut next = indptr.clone();
        let mut indices = vec![0usize; self.nnz()];
        let mut values = vec![0.0f64; self.nnz()];
        for r in 0..self.rows {
            for (&c, &v) in self.row_indices(r).iter().zip(self.row_values(r)) {
                let dst = next[c];
                indices[dst] = r;
                values[dst] = v;
                next[c] += 1;
            }
        }
        CsrMatrix { rows: self.cols, cols: self.rows, indptr, indices, values }
    }

    /// Per-row sums of the stored values.
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows).map(|r| self.row_values(r).iter().sum()).collect()
    }

    /// Per-column sums of the stored values.
    pub fn col_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.cols];
        for (_, c, v) in self.iter() {
            sums[c] += v;
        }
        sums
    }

    /// Divides every stored value by its row sum, turning each non-empty row
    /// into a probability distribution.  Rows whose sum is zero are left
    /// unchanged.
    pub fn normalize_rows(&mut self) {
        for r in 0..self.rows {
            let sum: f64 = self.row_values(r).iter().sum();
            if sum != 0.0 {
                for v in self.row_values_mut(r) {
                    *v /= sum;
                }
            }
        }
    }

    /// Applies `f` to every stored value in place.
    pub fn map_values_inplace<F: Fn(f64) -> f64>(&mut self, f: F) {
        for v in &mut self.values {
            *v = f(*v);
        }
    }

    /// Returns a copy with `f` applied to every stored value.
    pub fn map_values<F: Fn(f64) -> f64>(&self, f: F) -> CsrMatrix {
        let mut out = self.clone();
        out.map_values_inplace(f);
        out
    }

    /// Gathers the given rows (in order, duplicates allowed) into a new
    /// matrix with `indices.len()` rows and the same column count.
    ///
    /// This is the "row extraction" primitive: multiplying a selection matrix
    /// `Q_R` with `A` (as the paper does for LADIES row extraction) is exactly
    /// this gather when `Q_R` has one nonzero per row.  Delegates to the
    /// serial form of [`crate::extract::extract_rows`] so the repo has a
    /// single row-gather implementation.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::IndexOutOfBounds`] if any index is out of range.
    pub fn gather_rows(&self, rows: &[usize]) -> Result<CsrMatrix> {
        crate::extract::extract_rows(self, rows, crate::pool::Parallelism::serial())
    }

    /// Keeps only the listed columns, relabelling them `0..cols.len()` in the
    /// given order.  Columns may be listed at most once; entries in columns
    /// not listed are dropped.
    ///
    /// This is the "column extraction" primitive (`A · Q_C` with a one-nonzero
    /// -per-column selection matrix `Q_C`).
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::IndexOutOfBounds`] if any column is out of
    /// range, or [`MatrixError::InvalidStructure`] if a column is repeated.
    pub fn select_columns(&self, cols: &[usize]) -> Result<CsrMatrix> {
        let mut remap: Vec<Option<usize>> = vec![None; self.cols];
        for (new, &old) in cols.iter().enumerate() {
            if old >= self.cols {
                return Err(MatrixError::IndexOutOfBounds {
                    row: 0,
                    col: old,
                    rows: self.rows,
                    cols: self.cols,
                });
            }
            if remap[old].is_some() {
                return Err(MatrixError::InvalidStructure(format!(
                    "column {old} selected more than once"
                )));
            }
            remap[old] = Some(new);
        }
        let mut row_data: Vec<Vec<(usize, f64)>> = Vec::with_capacity(self.rows);
        for r in 0..self.rows {
            let mut row: Vec<(usize, f64)> = self
                .row_indices(r)
                .iter()
                .zip(self.row_values(r))
                .filter_map(|(&c, &v)| remap[c].map(|nc| (nc, v)))
                .collect();
            row.sort_unstable_by_key(|&(c, _)| c);
            row_data.push(row);
        }
        CsrMatrix::from_rows(self.rows, cols.len(), row_data)
    }

    /// Drops every column that contains no nonzero, relabelling the remaining
    /// columns consecutively.  Returns the compacted matrix together with the
    /// original indices of the kept columns (the "frontier" of sampled
    /// vertices in GraphSAGE extraction, §4.1.3).
    ///
    /// Implemented as a marker-array pass, not a hash set or a
    /// [`CsrMatrix::select_columns`] detour: one sweep marks the occupied
    /// columns, one sweep derives the (sorted) kept list and the dense
    /// old→new remap, and one sweep renumbers the indices in place order.
    /// The remap is monotone over the kept columns, so rows stay sorted and
    /// the structure (`indptr`, values, nnz) is reused verbatim — this sits
    /// on the GraphSAGE extraction hot path.
    pub fn compact_columns(&self) -> (CsrMatrix, Vec<usize>) {
        let mut remap = vec![0usize; self.cols];
        for &c in &self.indices {
            remap[c] = 1;
        }
        let mut kept: Vec<usize> = Vec::new();
        for (c, slot) in remap.iter_mut().enumerate() {
            if *slot != 0 {
                *slot = kept.len();
                kept.push(c);
            }
        }
        let indices: Vec<usize> = self.indices.iter().map(|&c| remap[c]).collect();
        let compacted = CsrMatrix {
            rows: self.rows,
            cols: kept.len(),
            indptr: self.indptr.clone(),
            indices,
            values: self.values.clone(),
        };
        (compacted, kept)
    }

    /// Returns the sorted list of distinct column indices that contain at
    /// least one nonzero.
    pub fn nonzero_columns(&self) -> Vec<usize> {
        let mut seen = vec![false; self.cols];
        for &c in &self.indices {
            seen[c] = true;
        }
        (0..self.cols).filter(|&c| seen[c]).collect()
    }

    /// Element-wise sum `self + rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if shapes differ.
    pub fn add(&self, rhs: &CsrMatrix) -> Result<CsrMatrix> {
        if self.shape() != rhs.shape() {
            return Err(MatrixError::DimensionMismatch {
                op: "csr add",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut row_data = Vec::with_capacity(self.rows);
        for r in 0..self.rows {
            let mut merged: BTreeMap<usize, f64> = BTreeMap::new();
            for (&c, &v) in self.row_indices(r).iter().zip(self.row_values(r)) {
                *merged.entry(c).or_insert(0.0) += v;
            }
            for (&c, &v) in rhs.row_indices(r).iter().zip(rhs.row_values(r)) {
                *merged.entry(c).or_insert(0.0) += v;
            }
            row_data.push(merged.into_iter().collect::<Vec<_>>());
        }
        CsrMatrix::from_rows(self.rows, self.cols, row_data)
    }

    /// Extracts the block of rows `[start, end)` as a new matrix with the same
    /// column count.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > rows`.
    pub fn row_block(&self, start: usize, end: usize) -> CsrMatrix {
        assert!(start <= end && end <= self.rows, "row block out of range");
        let rows: Vec<usize> = (start..end).collect();
        self.gather_rows(&rows).expect("range is in bounds")
    }

    /// Approximate equality of structure and values within `tol`.
    pub fn approx_eq(&self, rhs: &CsrMatrix, tol: f64) -> bool {
        self.shape() == rhs.shape()
            && self.indptr == rhs.indptr
            && self.indices == rhs.indices
            && self.values.iter().zip(&rhs.values).all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Number of bytes required to store the CSR arrays.
    pub fn nbytes(&self) -> usize {
        self.indptr.len() * std::mem::size_of::<usize>()
            + self.indices.len() * std::mem::size_of::<usize>()
            + self.values.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// 6-vertex example graph from Figure 1 of the paper (directed both ways).
    /// Neighborhoods: N(1) = {0, 2, 4}, N(5) = {3, 4}, matching the sampling
    /// examples of Figure 2.
    pub(crate) fn figure1_graph() -> CsrMatrix {
        let edges = [
            (0, 1),
            (1, 0),
            (1, 2),
            (1, 4),
            (2, 1),
            (2, 3),
            (3, 2),
            (3, 4),
            (3, 5),
            (4, 1),
            (4, 3),
            (4, 5),
            (5, 3),
            (5, 4),
        ];
        let coo = CooMatrix::from_triples(6, 6, edges.iter().map(|&(r, c)| (r, c, 1.0))).unwrap();
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn zeros_and_identity() {
        let z = CsrMatrix::zeros(3, 4);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.shape(), (3, 4));
        let i = CsrMatrix::identity(3);
        assert_eq!(i.nnz(), 3);
        assert_eq!(i.get(1, 1), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
    }

    #[test]
    fn from_coo_sums_duplicates_and_sorts() {
        let coo =
            CooMatrix::from_triples(2, 4, vec![(0, 3, 1.0), (0, 1, 2.0), (0, 3, 4.0)]).unwrap();
        let csr = CsrMatrix::from_coo(&coo);
        assert_eq!(csr.row_indices(0), &[1, 3]);
        assert_eq!(csr.row_values(0), &[2.0, 5.0]);
        assert_eq!(csr.row_nnz(1), 0);
    }

    #[test]
    fn from_raw_validation() {
        // Valid.
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 2.0]).is_ok());
        // Bad indptr length.
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 2], vec![0, 1], vec![1.0, 2.0]).is_err());
        // Bad nnz.
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1, 3], vec![0, 1], vec![1.0, 2.0]).is_err());
        // Unsorted row.
        assert!(CsrMatrix::from_raw(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]).is_err());
        // Column out of range.
        assert!(CsrMatrix::from_raw(1, 2, vec![0, 1], vec![5], vec![1.0]).is_err());
        // Decreasing indptr.
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn from_rows_validation() {
        assert!(CsrMatrix::from_rows(1, 3, vec![vec![(0, 1.0), (2, 2.0)]]).is_ok());
        assert!(CsrMatrix::from_rows(1, 3, vec![vec![(2, 1.0), (0, 2.0)]]).is_err());
        assert!(CsrMatrix::from_rows(1, 3, vec![vec![(0, 1.0), (0, 2.0)]]).is_err());
        assert!(CsrMatrix::from_rows(1, 3, vec![vec![(3, 1.0)]]).is_err());
        assert!(CsrMatrix::from_rows(2, 3, vec![vec![]]).is_err());
    }

    #[test]
    fn get_and_iter() {
        let a = figure1_graph();
        assert_eq!(a.get(1, 0), 1.0);
        assert_eq!(a.get(1, 1), 0.0);
        assert_eq!(a.get(5, 4), 1.0);
        assert_eq!(a.iter().count(), 14);
        assert_eq!(a.nnz(), 14);
    }

    #[test]
    fn to_dense_roundtrip_via_coo() {
        let a = figure1_graph();
        let d = a.to_dense();
        assert_eq!(d.get(3, 5), 1.0);
        assert_eq!(d.get(5, 5), 0.0);
        let back = CsrMatrix::from_coo(&a.to_coo());
        assert_eq!(back, a);
    }

    #[test]
    fn transpose_involution() {
        let a = figure1_graph();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn transpose_matches_dense() {
        let a = figure1_graph();
        let t = a.transpose();
        assert_eq!(t.to_dense(), a.to_dense().transpose());
    }

    #[test]
    fn row_and_col_sums() {
        let a = figure1_graph();
        assert_eq!(a.row_sums()[1], 3.0); // vertex 1 has out-degree 3
        assert_eq!(a.col_sums()[3], 3.0); // vertex 3 has in-degree 3
    }

    #[test]
    fn normalize_rows_makes_distributions() {
        let mut a = figure1_graph();
        a.normalize_rows();
        for r in 0..a.rows() {
            let s: f64 = a.row_values(r).iter().sum();
            if a.row_nnz(r) > 0 {
                assert!((s - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn normalize_rows_skips_empty() {
        let mut m = CsrMatrix::zeros(2, 2);
        m.normalize_rows();
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn gather_rows_basic() {
        let a = figure1_graph();
        let g = a.gather_rows(&[1, 5]).unwrap();
        assert_eq!(g.shape(), (2, 6));
        assert_eq!(g.row_indices(0), &[0, 2, 4]);
        assert_eq!(g.row_indices(1), &[3, 4]);
        assert!(a.gather_rows(&[9]).is_err());
    }

    #[test]
    fn select_columns_basic() {
        let a = figure1_graph();
        let s = a.select_columns(&[0, 4]).unwrap();
        assert_eq!(s.shape(), (6, 2));
        // Row 1 had neighbors {0, 2, 4}; after selecting columns {0, 4} it has {0 -> 0, 4 -> 1}.
        assert_eq!(s.row_indices(1), &[0, 1]);
        assert!(a.select_columns(&[0, 0]).is_err());
        assert!(a.select_columns(&[7]).is_err());
    }

    #[test]
    fn select_columns_respects_order() {
        let a = figure1_graph();
        // Reversed order: original column 4 becomes new column 0.
        let s = a.select_columns(&[4, 0]).unwrap();
        assert_eq!(s.get(1, 0), a.get(1, 4));
        assert_eq!(s.get(1, 1), a.get(1, 0));
    }

    #[test]
    fn compact_columns_drops_empty() {
        let coo =
            CooMatrix::from_triples(2, 6, vec![(0, 2, 1.0), (1, 4, 1.0), (0, 4, 1.0)]).unwrap();
        let m = CsrMatrix::from_coo(&coo);
        let (compact, kept) = m.compact_columns();
        assert_eq!(kept, vec![2, 4]);
        assert_eq!(compact.shape(), (2, 2));
        assert_eq!(compact.get(0, 0), 1.0);
        assert_eq!(compact.get(1, 1), 1.0);
    }

    #[test]
    fn nonzero_columns_sorted() {
        let coo = CooMatrix::from_triples(2, 6, vec![(0, 5, 1.0), (1, 1, 1.0)]).unwrap();
        let m = CsrMatrix::from_coo(&coo);
        assert_eq!(m.nonzero_columns(), vec![1, 5]);
    }

    #[test]
    fn add_matches_dense() {
        let a = figure1_graph();
        let b = CsrMatrix::identity(6);
        let sum = a.add(&b).unwrap();
        let expected = a.to_dense().add(&b.to_dense()).unwrap();
        assert_eq!(sum.to_dense(), expected);
        assert!(a.add(&CsrMatrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn row_block_extracts_contiguous_rows() {
        let a = figure1_graph();
        let block = a.row_block(2, 4);
        assert_eq!(block.rows(), 2);
        assert_eq!(block.row_indices(0), a.row_indices(2));
        assert_eq!(block.row_indices(1), a.row_indices(3));
    }

    #[test]
    fn map_values() {
        let a = figure1_graph();
        let doubled = a.map_values(|v| v * 2.0);
        assert_eq!(doubled.get(0, 1), 2.0);
        assert_eq!(doubled.nnz(), a.nnz());
    }

    #[test]
    fn nbytes_positive() {
        assert!(figure1_graph().nbytes() > 0);
    }

    fn arb_coo() -> impl Strategy<Value = CooMatrix> {
        (1usize..12, 1usize..12).prop_flat_map(|(rows, cols)| {
            let entry = (0..rows, 0..cols, -5.0f64..5.0);
            proptest::collection::vec(entry, 0..60)
                .prop_map(move |entries| CooMatrix::from_triples(rows, cols, entries).unwrap())
        })
    }

    proptest! {
        #[test]
        fn prop_coo_csr_dense_agree(coo in arb_coo()) {
            let csr = CsrMatrix::from_coo(&coo);
            // Dense accumulation of triples must match the CSR view.
            let mut dense = DenseMatrix::zeros(coo.rows(), coo.cols());
            for &(r, c, v) in coo.iter() {
                dense.set(r, c, dense.get(r, c) + v);
            }
            prop_assert!(csr.to_dense().approx_eq(&dense, 1e-9));
        }

        #[test]
        fn prop_transpose_involution(coo in arb_coo()) {
            let csr = CsrMatrix::from_coo(&coo);
            prop_assert!(csr.transpose().transpose().approx_eq(&csr, 0.0));
        }

        #[test]
        fn prop_row_sums_match_dense(coo in arb_coo()) {
            let csr = CsrMatrix::from_coo(&coo);
            let dense_sums = csr.to_dense().row_sums();
            let sparse_sums = csr.row_sums();
            for (a, b) in dense_sums.iter().zip(&sparse_sums) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }

        #[test]
        fn prop_roundtrip_raw(coo in arb_coo()) {
            let csr = CsrMatrix::from_coo(&coo);
            let rebuilt = CsrMatrix::from_raw(
                csr.rows(), csr.cols(),
                csr.indptr().to_vec(), csr.indices().to_vec(), csr.values().to_vec(),
            ).unwrap();
            prop_assert_eq!(rebuilt, csr);
        }

        #[test]
        fn prop_compact_columns_preserves_nnz(coo in arb_coo()) {
            let csr = CsrMatrix::from_coo(&coo);
            let (compact, kept) = csr.compact_columns();
            prop_assert_eq!(compact.nnz(), csr.nnz());
            prop_assert_eq!(compact.cols(), kept.len());
            // Every kept column must indeed be nonzero in the original.
            let nz = csr.nonzero_columns();
            prop_assert_eq!(kept, nz);
        }
    }
}

//! Shared helpers for the experiment harnesses.
//!
//! Every table and figure of the paper's evaluation has a corresponding
//! binary in `src/bin/`; this library holds the pieces they share: scaled
//! dataset presets, the simulated "GPU count" sweeps, and plain-text table
//! printing.  The harnesses print the same rows/series the paper reports so
//! that `EXPERIMENTS.md` can record paper-vs-measured values side by side.
//!
//! Scale knobs: the full-paper sizes (128 GPUs, 111M-vertex graphs) do not
//! fit a CPU-only reproduction, so the defaults are scaled down.  Setting the
//! environment variable `DMBS_SCALE=large` increases graph sizes and the rank
//! sweep; `DMBS_SCALE=small` (default) keeps every harness under a few
//! minutes.

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

use dmbs_gnn::trainer::SamplerChoice;
use dmbs_gnn::{EpochStats, TrainingConfig, TrainingReport, TrainingSession};
use dmbs_graph::datasets::{build_dataset, Dataset, DatasetConfig, DatasetKind};
use dmbs_sampling::baseline::PerVertexSageSampler;
use dmbs_sampling::{
    BulkSamplerConfig, DistConfig, GraphSageSampler, LocalBackend, ReplicatedBackend,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Scale of a harness run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Fast defaults (seconds to a couple of minutes per harness).
    Small,
    /// Larger graphs and wider rank sweeps (several minutes per harness).
    Large,
}

impl Scale {
    /// Reads the scale from the `DMBS_SCALE` environment variable.
    pub fn from_env() -> Self {
        match std::env::var("DMBS_SCALE").as_deref() {
            Ok("large") | Ok("LARGE") => Scale::Large,
            _ => Scale::Small,
        }
    }

    /// The simulated rank ("GPU") counts swept by the scaling figures.
    pub fn rank_counts(&self) -> Vec<usize> {
        match self {
            Scale::Small => vec![4, 8, 16],
            Scale::Large => vec![4, 8, 16, 32],
        }
    }

    /// log2 of the stand-in graph sizes.
    pub fn dataset_scale(&self) -> u32 {
        match self {
            Scale::Small => 11, // 2048 vertices
            Scale::Large => 13, // 8192 vertices
        }
    }
}

/// Builds the scaled-down stand-in for one of the paper's datasets
/// (Table 3) with a deterministic seed.
pub fn dataset(kind: DatasetKind, scale: Scale) -> Dataset {
    let s = scale.dataset_scale();
    let config = match kind {
        DatasetKind::Products => DatasetConfig::products_like(s),
        DatasetKind::Protein => DatasetConfig::protein_like(s.saturating_sub(1)),
        DatasetKind::Papers => DatasetConfig::papers_like(s),
    };
    build_dataset(&config, &mut StdRng::seed_from_u64(kind_seed(kind))).expect("valid preset")
}

fn kind_seed(kind: DatasetKind) -> u64 {
    match kind {
        DatasetKind::Products => 101,
        DatasetKind::Protein => 202,
        DatasetKind::Papers => 303,
    }
}

/// Scaled-down training hyper-parameters derived from Table 4: the fanout
/// structure and layer count are the paper's, the batch size is shrunk with
/// the graphs.
pub fn sage_training_config(dataset: &Dataset) -> dmbs_gnn::TrainingConfig {
    let batch_size = (dataset.train_set.len() / 8).clamp(8, 256);
    dmbs_gnn::TrainingConfig {
        fanouts: vec![15, 10, 5],
        hidden_dim: 64,
        batch_size,
        bulk_size: 8,
        learning_rate: 0.02,
        epochs: 2,
        seed: 7,
    }
}

/// Trains on a single device through a [`TrainingSession`] with a
/// [`LocalBackend`] (streaming bulk prefetch), mirroring the legacy
/// `train_single_device` harness entry point.
///
/// # Panics
///
/// Panics when the session cannot be built or training fails — harnesses
/// treat that as a fatal setup error.
pub fn train_local(
    dataset: &Arc<Dataset>,
    config: &TrainingConfig,
    choice: SamplerChoice,
) -> TrainingReport {
    let backend = LocalBackend::new(BulkSamplerConfig::new(config.batch_size, config.bulk_size))
        .expect("valid bulk configuration");
    let report = match choice {
        SamplerChoice::MatrixSage => TrainingSession::builder()
            .dataset(Arc::clone(dataset))
            .sampler(GraphSageSampler::new(config.fanouts.clone()).with_self_loops())
            .backend(backend)
            .hidden_dim(config.hidden_dim)
            .learning_rate(config.learning_rate)
            .epochs(config.epochs)
            .seed(config.seed)
            .build()
            .and_then(|s| s.train()),
        SamplerChoice::PerVertexSage => TrainingSession::builder()
            .dataset(Arc::clone(dataset))
            .sampler(PerVertexSageSampler::new(config.fanouts.clone()).with_self_loops())
            .backend(backend)
            .hidden_dim(config.hidden_dim)
            .learning_rate(config.learning_rate)
            .epochs(config.epochs)
            .seed(config.seed)
            .build()
            .and_then(|s| s.train()),
    };
    report.expect("single-device training failed")
}

/// Trains data-parallel over `p` simulated ranks through a
/// [`TrainingSession`] with a [`ReplicatedBackend`], mirroring the legacy
/// `train_distributed` harness entry point.
///
/// # Panics
///
/// Panics when the session cannot be built or training fails.
pub fn train_replicated(
    dataset: &Arc<Dataset>,
    config: &TrainingConfig,
    p: usize,
    c: usize,
    replicate_features: bool,
    choice: SamplerChoice,
) -> Vec<EpochStats> {
    let dist = DistConfig::new(p, c, BulkSamplerConfig::new(config.batch_size, config.bulk_size));
    let backend = ReplicatedBackend::new(dist).expect("valid distribution configuration");
    let report = match choice {
        SamplerChoice::MatrixSage => {
            let builder = TrainingSession::builder()
                .dataset(Arc::clone(dataset))
                .sampler(GraphSageSampler::new(config.fanouts.clone()).with_self_loops())
                .backend(backend)
                .partition(c)
                .hidden_dim(config.hidden_dim)
                .learning_rate(config.learning_rate)
                .epochs(config.epochs)
                .seed(config.seed)
                .without_evaluation();
            let builder =
                if replicate_features { builder } else { builder.without_feature_replication() };
            builder.build().and_then(|s| s.train())
        }
        SamplerChoice::PerVertexSage => {
            let builder = TrainingSession::builder()
                .dataset(Arc::clone(dataset))
                .sampler(PerVertexSageSampler::new(config.fanouts.clone()).with_self_loops())
                .backend(backend)
                .partition(c)
                .hidden_dim(config.hidden_dim)
                .learning_rate(config.learning_rate)
                .epochs(config.epochs)
                .seed(config.seed)
                .without_evaluation();
            let builder =
                if replicate_features { builder } else { builder.without_feature_replication() };
            builder.build().and_then(|s| s.train())
        }
    };
    report.expect("distributed training failed").epochs
}

/// The replication factor used for a given rank count, mirroring the paper's
/// choice of the largest `c` that memory allows (Figure 4 annotations).
pub fn replication_for(p: usize) -> usize {
    if p >= 16 {
        4
    } else if p >= 2 {
        2
    } else {
        1
    }
}

/// Prints a table header followed by aligned rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let widths: Vec<usize> = header
        .iter()
        .enumerate()
        .map(|(i, h)| rows.iter().map(|r| r[i].len()).chain([h.len()]).max().unwrap_or(h.len()))
        .collect();
    let fmt_row = |cells: &[String]| {
        cells.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}")).collect::<Vec<_>>().join("  ")
    };
    println!("{}", fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats seconds with three significant decimals.
pub fn secs(x: f64) -> String {
    format!("{x:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults() {
        assert_eq!(Scale::Small.rank_counts(), vec![4, 8, 16]);
        assert!(Scale::Large.dataset_scale() > Scale::Small.dataset_scale());
    }

    #[test]
    fn dataset_presets_build() {
        let d = dataset(DatasetKind::Products, Scale::Small);
        assert!(d.num_vertices() >= 1024);
        let cfg = sage_training_config(&d);
        assert_eq!(cfg.fanouts.len(), 3);
        assert!(cfg.batch_size >= 8);
    }

    #[test]
    fn replication_choice_is_monotone() {
        assert!(replication_for(4) <= replication_for(16));
        assert_eq!(replication_for(1), 1);
    }

    #[test]
    fn secs_formats() {
        assert_eq!(secs(1.23456), "1.2346");
    }
}

//! The Graph Replicated distributed sampling algorithm (§5.1).
//!
//! The sampler matrix `Q^l` (i.e. the set of minibatches) is partitioned 1D
//! across the `p` ranks while the adjacency matrix `A` is replicated on every
//! rank.  Each rank therefore computes `Q^l_i · A` — and the subsequent
//! normalization, sampling and extraction — entirely locally: **the sampling
//! step involves no communication**, which is why the paper's Figure 4 shows
//! near-linear scaling of sampling time.

use crate::plan::BulkSampleOutput;
use crate::sampler::{BulkSamplerConfig, Sampler};
use crate::{Result, SamplingError};
use dmbs_comm::{RankOutput, Runtime};
use dmbs_matrix::CsrMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Assigns minibatch indices to `p` ranks round-robin (rank `r` owns batches
/// `r, r + p, r + 2p, …`), the way the pipeline divides `k` bulk minibatches
/// so every rank trains `k/p` of them (§6.1).
pub fn assign_batches_round_robin(num_batches: usize, p: usize) -> Vec<Vec<usize>> {
    let mut assignment = vec![Vec::new(); p];
    for i in 0..num_batches {
        assignment[i % p].push(i);
    }
    assignment
}

/// Runs the Graph Replicated algorithm: every rank bulk-samples its share of
/// the minibatches against the fully replicated adjacency matrix, with no
/// communication.
///
/// Returns one [`BulkSampleOutput`] per rank (in rank order).  Ranks that own
/// no minibatches (when `batches.len() < p`) return an empty output.
/// Per-rank RNGs are derived from `seed` and the rank id, so results are
/// deterministic for a fixed seed and rank count.
///
/// # Errors
///
/// Returns an error if the runtime fails, if any rank's sampling fails, or if
/// the adjacency matrix is not square.
#[deprecated(
    since = "0.2.0",
    note = "use `backend::ReplicatedBackend::sample_epoch` through the `SamplingBackend` trait"
)]
pub fn sample_replicated<S>(
    runtime: &Runtime,
    sampler: &S,
    adjacency: &CsrMatrix,
    batches: &[Vec<usize>],
    config: &BulkSamplerConfig,
    seed: u64,
) -> Result<Vec<BulkSampleOutput>>
where
    S: Sampler + Sync,
{
    if adjacency.rows() != adjacency.cols() {
        return Err(SamplingError::InvalidConfig("adjacency matrix must be square".into()));
    }
    let p = runtime.size();
    let assignment = assign_batches_round_robin(batches.len(), p);

    let outputs: Vec<RankOutput<Result<BulkSampleOutput>>> = runtime.run(|comm| {
        let rank = comm.rank();
        let my_batches: Vec<Vec<usize>> =
            assignment[rank].iter().map(|&i| batches[i].clone()).collect();
        if my_batches.is_empty() {
            return Ok(BulkSampleOutput::default());
        }
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(rank as u64));
        sampler.sample_bulk(adjacency, &my_batches, config, &mut rng)
    })?;

    outputs.into_iter().map(|o| o.value).collect()
}

/// Convenience wrapper that flattens the per-rank outputs of
/// [`sample_replicated`] back into a single list of minibatch samples ordered
/// by original batch index, which is what single-device comparisons and the
/// accuracy experiment need.
///
/// # Errors
///
/// Propagates the errors of [`sample_replicated`].
#[deprecated(
    since = "0.2.0",
    note = "use `backend::ReplicatedBackend::sample_epoch` through the `SamplingBackend` trait \
            (its `EpochSamples::output` is already flattened in batch order)"
)]
#[allow(deprecated)]
pub fn sample_replicated_flat<S>(
    runtime: &Runtime,
    sampler: &S,
    adjacency: &CsrMatrix,
    batches: &[Vec<usize>],
    config: &BulkSamplerConfig,
    seed: u64,
) -> Result<BulkSampleOutput>
where
    S: Sampler + Sync,
{
    let p = runtime.size();
    let per_rank = sample_replicated(runtime, sampler, adjacency, batches, config, seed)?;
    let assignment = assign_batches_round_robin(batches.len(), p);

    let mut ordered = vec![None; batches.len()];
    let mut merged = BulkSampleOutput::default();
    for (rank, output) in per_rank.into_iter().enumerate() {
        merged.profile.merge_max(&output.profile);
        merged.comm_stats.merge(&output.comm_stats);
        for (slot, mb) in assignment[rank].iter().zip(output.minibatches) {
            ordered[*slot] = Some(mb);
        }
    }
    merged.minibatches = ordered
        .into_iter()
        .map(|mb| {
            mb.ok_or_else(|| {
                SamplingError::InvalidConfig("a minibatch was not sampled by any rank".into())
            })
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(merged)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::{GraphSageSampler, LadiesSampler};
    use dmbs_graph::generators::figure1_example;

    fn adjacency() -> CsrMatrix {
        figure1_example().adjacency().clone()
    }

    #[test]
    fn round_robin_assignment_balances() {
        let a = assign_batches_round_robin(10, 4);
        assert_eq!(a[0], vec![0, 4, 8]);
        assert_eq!(a[1], vec![1, 5, 9]);
        assert_eq!(a[3], vec![3, 7]);
        let total: usize = a.iter().map(Vec::len).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn replicated_sage_involves_no_communication() {
        let runtime = Runtime::new(4).unwrap();
        let sampler = GraphSageSampler::new(vec![2]);
        let batches: Vec<Vec<usize>> =
            vec![vec![1, 5], vec![0, 3], vec![2, 4], vec![1, 2], vec![3, 5]];
        let outs = sample_replicated(
            &runtime,
            &sampler,
            &adjacency(),
            &batches,
            &BulkSamplerConfig::new(2, batches.len()),
            7,
        )
        .unwrap();
        assert_eq!(outs.len(), 4);
        // 5 batches over 4 ranks: sizes 2,1,1,1.
        assert_eq!(outs[0].num_batches(), 2);
        assert_eq!(outs[1].num_batches(), 1);
        for o in &outs {
            assert_eq!(o.comm_stats.messages, 0, "replicated sampling must not communicate");
        }
    }

    #[test]
    fn replicated_flat_restores_batch_order() {
        let runtime = Runtime::new(3).unwrap();
        let sampler = GraphSageSampler::new(vec![2]);
        let batches: Vec<Vec<usize>> = vec![vec![0], vec![1], vec![2], vec![3], vec![4]];
        let out = sample_replicated_flat(
            &runtime,
            &sampler,
            &adjacency(),
            &batches,
            &BulkSamplerConfig::new(1, batches.len()),
            3,
        )
        .unwrap();
        assert_eq!(out.num_batches(), 5);
        for (mb, batch) in out.minibatches.iter().zip(&batches) {
            assert_eq!(&mb.batch, batch);
        }
    }

    #[test]
    fn replicated_with_more_ranks_than_batches() {
        let runtime = Runtime::new(6).unwrap();
        let sampler = LadiesSampler::new(1, 2);
        let batches: Vec<Vec<usize>> = vec![vec![1, 5], vec![0, 2]];
        let outs = sample_replicated(
            &runtime,
            &sampler,
            &adjacency(),
            &batches,
            &BulkSamplerConfig::new(2, 2),
            11,
        )
        .unwrap();
        assert_eq!(outs.len(), 6);
        assert_eq!(outs[0].num_batches(), 1);
        assert_eq!(outs[1].num_batches(), 1);
        for o in &outs[2..] {
            assert_eq!(o.num_batches(), 0);
        }
    }

    #[test]
    fn replicated_rejects_rectangular_adjacency() {
        let runtime = Runtime::new(2).unwrap();
        let sampler = GraphSageSampler::new(vec![2]);
        let rect = CsrMatrix::zeros(3, 4);
        assert!(sample_replicated(
            &runtime,
            &sampler,
            &rect,
            &[vec![0]],
            &BulkSamplerConfig::default(),
            0,
        )
        .is_err());
    }

    #[test]
    fn replicated_is_deterministic_per_seed_and_rank_count() {
        let runtime = Runtime::new(2).unwrap();
        let sampler = GraphSageSampler::new(vec![2, 2]);
        let batches: Vec<Vec<usize>> = vec![vec![1, 5], vec![0, 3]];
        let cfg = BulkSamplerConfig::new(2, 2);
        let a = adjacency();
        let o1 = sample_replicated_flat(&runtime, &sampler, &a, &batches, &cfg, 99).unwrap();
        let o2 = sample_replicated_flat(&runtime, &sampler, &a, &batches, &cfg, 99).unwrap();
        assert_eq!(o1.minibatches, o2.minibatches);
    }
}

//! The rank runtime: an SPMD execution environment over a pluggable
//! transport.
//!
//! Two backends exist.  The default (what [`Runtime::new`] selects) is the
//! **in-process rank simulator**: [`Runtime::run`] spawns one OS thread per
//! rank and wires communicators over crossbeam channels
//! ([`SimTransport`]), with payloads crossing as boxed
//! values and communication *time* modeled by the α–β [`CostModel`].  The
//! alternative, selected with [`Runtime::with_transport`], is the
//! **Unix-socket multi-process backend**
//! ([`UnixSocketTransport`](crate::UnixSocketTransport)): one OS process per
//! rank, rendezvous via `DMBS_RANK`/`DMBS_SIZE`/`DMBS_SOCKET_DIR`, payloads
//! length-prefix framed over real sockets.  Closures cannot cross process
//! boundaries, so the socket backend runs *named workers* (serializable job
//! in, bytes out) through [`Runtime::run_worker`]; the simulator runs the
//! same workers on threads, which is what the cross-transport equivalence
//! sweep relies on.

use crate::collectives::Communicator;
use crate::cost::{CommStats, CostModel};
use crate::error::CommError;
use crate::process::{self, SocketLaunch, WorkerRegistry};
use crate::transport::{Frame, SimTransport};
use crate::Result;
use crossbeam::channel::unbounded;

/// Which transport a [`Runtime`] executes over.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum TransportSelect {
    /// The in-process rank simulator: threads + channels, no serialization.
    /// This is the default.
    #[default]
    Simulator,
    /// One OS process per rank over Unix domain sockets.  Only
    /// [`Runtime::run_worker`] can execute on this transport (closures do
    /// not cross process boundaries).
    UnixSocket(SocketLaunch),
}

/// The result produced by one rank of a [`Runtime::run`] execution.
#[derive(Debug, Clone)]
pub struct RankOutput<T> {
    /// The rank that produced this output.
    pub rank: usize,
    /// The closure's return value for this rank.
    pub value: T,
    /// Communication statistics accumulated by this rank.
    pub stats: CommStats,
}

/// A distributed execution environment with a fixed number of ranks over a
/// selectable transport (see [`TransportSelect`]; the module docs describe
/// both backends).
///
/// Each call to [`Runtime::run`] spawns one OS thread per rank, hands each a
/// [`Communicator`] wired to all its peers, runs the provided SPMD closure
/// and collects the per-rank results in rank order.  [`Runtime::run_worker`]
/// runs a *named* worker function the same way — or, when the Unix-socket
/// transport is selected, as one OS process per rank.
///
/// # Example
///
/// ```
/// use dmbs_comm::Runtime;
///
/// # fn main() -> Result<(), dmbs_comm::CommError> {
/// let rt = Runtime::new(3)?;
/// let outs = rt.run(|comm| comm.rank() * 10)?;
/// let values: Vec<usize> = outs.into_iter().map(|o| o.value).collect();
/// assert_eq!(values, vec![0, 10, 20]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Runtime {
    size: usize,
    cost: CostModel,
    transport: TransportSelect,
}

impl Runtime {
    /// Creates a runtime with `size` ranks, the default (Slingshot-like)
    /// cost model, and the default in-process simulator transport.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::InvalidConfig`] if `size == 0`.
    pub fn new(size: usize) -> Result<Self> {
        Self::with_cost_model(size, CostModel::default())
    }

    /// Creates a runtime with `size` ranks and an explicit α–β cost model
    /// (simulator transport).
    ///
    /// # Errors
    ///
    /// Returns [`CommError::InvalidConfig`] if `size == 0`.
    pub fn with_cost_model(size: usize, cost: CostModel) -> Result<Self> {
        if size == 0 {
            return Err(CommError::InvalidConfig("runtime requires at least one rank".into()));
        }
        Ok(Runtime { size, cost, transport: TransportSelect::Simulator })
    }

    /// Selects the transport backend for [`Runtime::run_worker`] dispatch.
    pub fn with_transport(mut self, transport: TransportSelect) -> Self {
        self.transport = transport;
        self
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The cost model used by every communicator.
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    /// The transport backend this runtime dispatches workers on.
    pub fn transport(&self) -> &TransportSelect {
        &self.transport
    }

    /// Runs `f` on every rank concurrently **on the in-process simulator**
    /// and returns the per-rank outputs in rank order.  The selected
    /// transport is irrelevant here: closures cannot cross process
    /// boundaries, so `run` always simulates (use [`Runtime::run_worker`]
    /// for transport-dispatched execution).
    ///
    /// The closure receives a mutable [`Communicator`]; its return value is
    /// collected into [`RankOutput::value`].  Closures typically return a
    /// `Result` themselves so that communication errors can be propagated
    /// with `?`.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::RankPanicked`] if any rank's thread panicked.
    /// Errors *returned* by the closure are not treated as runtime errors;
    /// they are delivered in the corresponding [`RankOutput`].
    pub fn run<T, F>(&self, f: F) -> Result<Vec<RankOutput<T>>>
    where
        T: Send + 'static,
        F: Fn(&mut Communicator) -> T + Send + Sync,
    {
        let p = self.size;
        // channels[i][j]: sender transmits from rank i to rank j.
        let mut senders: Vec<Vec<Option<crossbeam::channel::Sender<Frame>>>> =
            (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
        let mut receivers: Vec<Vec<Option<crossbeam::channel::Receiver<Frame>>>> =
            (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
        for (i, sender_row) in senders.iter_mut().enumerate() {
            for (j, slot) in sender_row.iter_mut().enumerate() {
                let (tx, rx) = unbounded();
                *slot = Some(tx);
                receivers[j][i] = Some(rx);
            }
        }

        let mut communicators: Vec<Communicator> = Vec::with_capacity(p);
        for (rank, (sender_row, receiver_row)) in senders.into_iter().zip(receivers).enumerate() {
            let sends: Vec<_> = sender_row.into_iter().map(|s| s.expect("filled above")).collect();
            let recvs: Vec<_> =
                receiver_row.into_iter().map(|r| r.expect("filled above")).collect();
            let transport = SimTransport::new(rank, p, sends, recvs);
            communicators.push(Communicator::from_transport(Box::new(transport), self.cost));
        }

        let f = &f;
        let results: Vec<std::thread::Result<(usize, T, CommStats)>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = communicators
                    .into_iter()
                    .enumerate()
                    .map(|(rank, mut comm)| {
                        scope.spawn(move || {
                            let value = f(&mut comm);
                            (rank, value, comm.stats())
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join()).collect()
            });

        let mut outputs = Vec::with_capacity(p);
        for (rank, result) in results.into_iter().enumerate() {
            match result {
                Ok((r, value, stats)) => outputs.push(RankOutput { rank: r, value, stats }),
                Err(payload) => {
                    // Carry the panic payload into the error so a CI failure
                    // in the rank simulator is diagnosable from the log alone
                    // (`panic!` payloads are `&str` or `String` in practice).
                    let message = payload
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                        .unwrap_or_else(|| "<non-string panic payload>".to_string());
                    return Err(CommError::RankPanicked { rank, message });
                }
            }
        }
        outputs.sort_by_key(|o| o.rank);
        Ok(outputs)
    }

    /// Runs the named worker from `registry` on every rank, dispatched over
    /// the selected transport: threads on the simulator, one OS process per
    /// rank on the Unix-socket backend.  `job` is the serialized work
    /// description every rank receives; each rank's returned bytes arrive in
    /// [`RankOutput::value`] along with its [`CommStats`].
    ///
    /// # Errors
    ///
    /// Returns [`CommError::InvalidConfig`] for an unregistered worker name,
    /// [`CommError::WorkerFailed`] if any rank's worker returns an error,
    /// [`CommError::RankPanicked`] if a rank thread panics or a rank process
    /// dies, and the socket setup/timeout errors of the process backend.
    pub fn run_worker(
        &self,
        registry: &WorkerRegistry,
        name: &str,
        job: &[u8],
    ) -> Result<Vec<RankOutput<Vec<u8>>>> {
        let worker = registry.find(name).ok_or_else(|| {
            CommError::InvalidConfig(format!("worker '{name}' is not registered"))
        })?;
        match &self.transport {
            TransportSelect::Simulator => {
                let outputs = self.run(|comm| worker(comm, job))?;
                let mut out = Vec::with_capacity(outputs.len());
                for o in outputs {
                    match o.value {
                        Ok(bytes) => {
                            out.push(RankOutput { rank: o.rank, value: bytes, stats: o.stats })
                        }
                        Err(message) => {
                            return Err(CommError::WorkerFailed { rank: o.rank, message })
                        }
                    }
                }
                Ok(out)
            }
            TransportSelect::UnixSocket(launch) => {
                process::run_socket_workers(self.size, self.cost, launch, name, job)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::Group;
    use crate::grid::ProcessGrid;

    #[test]
    fn runtime_requires_ranks() {
        assert!(Runtime::new(0).is_err());
        assert_eq!(Runtime::new(4).unwrap().size(), 4);
    }

    #[test]
    fn default_transport_is_the_simulator() {
        let rt = Runtime::new(2).unwrap();
        assert_eq!(rt.transport(), &TransportSelect::Simulator);
        let rt = rt.with_transport(TransportSelect::UnixSocket(SocketLaunch::default()));
        assert!(matches!(rt.transport(), TransportSelect::UnixSocket(_)));
    }

    #[test]
    fn single_rank_runs_locally() {
        let rt = Runtime::new(1).unwrap();
        let out = rt
            .run(|comm| {
                let g = comm.allgather(comm.rank()).unwrap();
                let r = comm.allreduce(5.0f64, |a, b| a + b).unwrap();
                comm.barrier().unwrap();
                (g, r)
            })
            .unwrap();
        assert_eq!(out[0].value.0, vec![0]);
        assert_eq!(out[0].value.1, 5.0);
        assert_eq!(out[0].stats.messages, 0);
    }

    #[test]
    fn point_to_point_ring() {
        let rt = Runtime::new(4).unwrap();
        let outs = rt
            .run(|comm| {
                let next = (comm.rank() + 1) % comm.size();
                let prev = (comm.rank() + comm.size() - 1) % comm.size();
                comm.send(next, comm.rank()).unwrap();
                comm.recv::<usize>(prev).unwrap()
            })
            .unwrap();
        let values: Vec<usize> = outs.iter().map(|o| o.value).collect();
        assert_eq!(values, vec![3, 0, 1, 2]);
        // Each rank sent exactly one single-word message.
        assert!(outs.iter().all(|o| o.stats.messages == 1 && o.stats.words_sent == 1));
    }

    #[test]
    fn broadcast_from_nonzero_root() {
        let rt = Runtime::new(4).unwrap();
        let outs = rt
            .run(|comm| {
                let value = if comm.rank() == 2 { Some(vec![1.0f64, 2.0, 3.0]) } else { None };
                comm.broadcast(2, value).unwrap()
            })
            .unwrap();
        for o in outs {
            assert_eq!(o.value, vec![1.0, 2.0, 3.0]);
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let rt = Runtime::new(5).unwrap();
        let outs = rt.run(|comm| comm.gather(0, comm.rank() * 2).unwrap()).unwrap();
        assert_eq!(outs[0].value, Some(vec![0, 2, 4, 6, 8]));
        for o in &outs[1..] {
            assert_eq!(o.value, None);
        }
    }

    #[test]
    fn allgather_and_allreduce() {
        let rt = Runtime::new(4).unwrap();
        let outs = rt
            .run(|comm| {
                let all = comm.allgather(comm.rank()).unwrap();
                let sum = comm
                    .allreduce(vec![comm.rank() as f64, 1.0], |a, b| {
                        a.iter().zip(b).map(|(x, y)| x + y).collect()
                    })
                    .unwrap();
                (all, sum)
            })
            .unwrap();
        for o in outs {
            assert_eq!(o.value.0, vec![0, 1, 2, 3]);
            assert_eq!(o.value.1, vec![6.0, 4.0]);
        }
    }

    #[test]
    fn all_to_allv_exchanges_personalized_data() {
        let rt = Runtime::new(3).unwrap();
        let outs = rt
            .run(|comm| {
                // Rank r sends the value r*10 + destination to each destination.
                let sends: Vec<usize> = (0..comm.size()).map(|d| comm.rank() * 10 + d).collect();
                comm.all_to_allv(sends).unwrap()
            })
            .unwrap();
        assert_eq!(outs[0].value, vec![0, 10, 20]);
        assert_eq!(outs[1].value, vec![1, 11, 21]);
        assert_eq!(outs[2].value, vec![2, 12, 22]);
    }

    #[test]
    fn group_collectives_follow_grid_rows_and_cols() {
        let rt = Runtime::new(4).unwrap();
        let outs = rt
            .run(|comm| {
                let grid = ProcessGrid::new(comm.size(), 2).unwrap();
                let row = Group::new(&grid.row_ranks(comm.rank())).unwrap();
                let col = Group::new(&grid.col_ranks(comm.rank())).unwrap();
                let row_sum = comm.group_allreduce(&row, comm.rank(), |a, b| a + b).unwrap();
                let col_members = comm.group_allgather(&col, comm.rank()).unwrap();
                (row_sum, col_members)
            })
            .unwrap();
        // Grid 2x2: rows {0,1}, {2,3}; cols {0,2}, {1,3}.
        assert_eq!(outs[0].value.0, 1);
        assert_eq!(outs[3].value.0, 5);
        assert_eq!(outs[0].value.1, vec![0, 2]);
        assert_eq!(outs[3].value.1, vec![1, 3]);
    }

    #[test]
    fn group_all_to_allv_within_column() {
        let rt = Runtime::new(4).unwrap();
        let outs = rt
            .run(|comm| {
                let grid = ProcessGrid::new(comm.size(), 2).unwrap();
                let col = Group::new(&grid.col_ranks(comm.rank())).unwrap();
                let sends: Vec<Vec<usize>> = (0..col.len()).map(|i| vec![comm.rank(), i]).collect();
                comm.group_all_to_allv(&col, sends).unwrap()
            })
            .unwrap();
        // Column {0, 2}: rank 0 receives from itself and rank 2.
        assert_eq!(outs[0].value, vec![vec![0, 0], vec![2, 0]]);
        assert_eq!(outs[2].value, vec![vec![0, 1], vec![2, 1]]);
    }

    #[test]
    fn stats_accumulate_modeled_time() {
        let rt = Runtime::with_cost_model(2, CostModel::new(1.0, 0.5)).unwrap();
        let outs = rt
            .run(|comm| {
                if comm.rank() == 0 {
                    comm.send(1, vec![0.0f64; 10]).unwrap();
                    0.0
                } else {
                    comm.recv::<Vec<f64>>(0).unwrap();
                    comm.stats().modeled_time
                }
            })
            .unwrap();
        // Rank 0 sent 10 words: modeled time = 1 + 0.5 * 10 = 6.
        assert!((outs[0].stats.modeled_time - 6.0).abs() < 1e-12);
        assert_eq!(outs[0].stats.words_sent, 10);
        // Rank 1 sent nothing.
        assert_eq!(outs[1].stats.messages, 0);
    }

    #[test]
    fn type_mismatch_is_detected() {
        let rt = Runtime::new(2).unwrap();
        let outs = rt
            .run(|comm| {
                if comm.rank() == 0 {
                    comm.send(1, 42usize).unwrap();
                    Ok(())
                } else {
                    match comm.recv::<f64>(0) {
                        Err(CommError::TypeMismatch { from: 0 }) => Err("mismatch detected"),
                        other => panic!("expected type mismatch, got {other:?}"),
                    }
                }
            })
            .unwrap();
        assert_eq!(outs[1].value, Err("mismatch detected"));
    }

    #[test]
    fn invalid_destination_is_rejected() {
        let rt = Runtime::new(2).unwrap();
        let outs = rt
            .run(|comm| {
                if comm.rank() == 0 {
                    matches!(
                        comm.send(5, 1usize),
                        Err(CommError::RankOutOfRange { rank: 5, size: 2 })
                    )
                } else {
                    true
                }
            })
            .unwrap();
        assert!(outs.iter().all(|o| o.value));
    }

    #[test]
    fn rank_panic_carries_its_payload_message() {
        let rt = Runtime::new(2).unwrap();
        let err = rt
            .run(|comm| {
                if comm.rank() == 1 {
                    panic!("rank 1 exploded at step {}", 7);
                }
                comm.rank()
            })
            .unwrap_err();
        match err {
            CommError::RankPanicked { rank, message } => {
                assert_eq!(rank, 1);
                assert_eq!(message, "rank 1 exploded at step 7");
            }
            other => panic!("expected RankPanicked, got {other:?}"),
        }
    }

    #[test]
    fn barrier_synchronizes_without_error() {
        let rt = Runtime::new(6).unwrap();
        let outs = rt
            .run(|comm| {
                for _ in 0..3 {
                    comm.barrier().unwrap();
                }
                true
            })
            .unwrap();
        assert!(outs.iter().all(|o| o.value));
    }

    #[test]
    fn reset_stats_clears_counters() {
        let rt = Runtime::new(2).unwrap();
        let outs = rt
            .run(|comm| {
                comm.allgather(comm.rank()).unwrap();
                let before = comm.reset_stats();
                let after = comm.stats();
                (before.messages, after.messages)
            })
            .unwrap();
        for o in outs {
            assert_eq!(o.value.1, 0);
        }
    }

    #[test]
    fn run_worker_on_simulator_dispatches_registered_fn() {
        fn sum_ranks(comm: &mut Communicator, job: &[u8]) -> std::result::Result<Vec<u8>, String> {
            let offset = job.first().copied().unwrap_or(0) as usize;
            let total =
                comm.allreduce(comm.rank() + offset, |a, b| a + b).map_err(|e| e.to_string())?;
            Ok(vec![total as u8])
        }
        let mut registry = WorkerRegistry::new();
        registry.register("test.sum", sum_ranks);
        let rt = Runtime::new(3).unwrap();
        let outs = rt.run_worker(&registry, "test.sum", &[10]).unwrap();
        // Sum of (rank + 10) over 3 ranks = 0+1+2 + 30 = 33.
        assert!(outs.iter().all(|o| o.value == vec![33]));
        assert!(matches!(
            rt.run_worker(&registry, "missing", &[]),
            Err(CommError::InvalidConfig(_))
        ));
    }

    #[test]
    fn run_worker_surfaces_worker_errors_with_rank() {
        fn fail_on_one(
            comm: &mut Communicator,
            _job: &[u8],
        ) -> std::result::Result<Vec<u8>, String> {
            if comm.rank() == 1 {
                Err("spec rejected".to_string())
            } else {
                Ok(Vec::new())
            }
        }
        let mut registry = WorkerRegistry::new();
        registry.register("test.fail", fail_on_one);
        let rt = Runtime::new(2).unwrap();
        match rt.run_worker(&registry, "test.fail", &[]) {
            Err(CommError::WorkerFailed { rank: 1, message }) => {
                assert!(message.contains("spec rejected"));
            }
            other => panic!("expected WorkerFailed, got {other:?}"),
        }
    }
}

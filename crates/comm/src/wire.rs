//! Byte-level wire codec shared by the Unix-socket transport.
//!
//! The in-process simulator moves payloads as `Box<dyn Any>` and never
//! serializes anything; the socket backend moves the same payloads between
//! OS processes, which requires a concrete byte encoding.  This module keeps
//! that encoding deliberately boring and bit-exact:
//!
//! * all integers are little-endian `u64` (usize values are widened, which
//!   is lossless on every supported target);
//! * `f64` travels as its IEEE-754 bit pattern via [`f64::to_bits`], so a
//!   value round-trips to the *identical* bits — the property the
//!   cross-transport equivalence sweep pins (loss bits must match the
//!   simulator exactly);
//! * containers are length-prefixed, elements in order.
//!
//! Every [`Payload`](crate::Payload) type carries a structural
//! [`type_code`](crate::Payload::type_code) that the receiving side checks
//! before decoding, so mismatched collectives across ranks surface as
//! [`CommError::TypeMismatch`](crate::CommError::TypeMismatch) on the wire
//! exactly as they do in-process.

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `usize` widened to `u64`.
pub fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_u64(out, v as u64);
}

/// Appends an `i64` via its two's-complement bit pattern.
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    put_u64(out, v as u64);
}

/// Appends an `f64` as its exact IEEE-754 bit pattern.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Appends a length-prefixed byte slice.
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_usize(out, bytes.len());
    out.extend_from_slice(bytes);
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

/// Reads a little-endian `u64`, advancing the slice.  `None` on underrun.
pub fn get_u64(input: &mut &[u8]) -> Option<u64> {
    let (head, rest) = input.split_first_chunk::<8>()?;
    *input = rest;
    Some(u64::from_le_bytes(*head))
}

/// Reads a `u64` and narrows it to `usize`.  `None` on underrun or if the
/// value does not fit (a corrupt frame, not a platform we support).
pub fn get_usize(input: &mut &[u8]) -> Option<usize> {
    usize::try_from(get_u64(input)?).ok()
}

/// Reads an `i64`.
pub fn get_i64(input: &mut &[u8]) -> Option<i64> {
    get_u64(input).map(|v| v as i64)
}

/// Reads an `f64` from its bit pattern — the exact inverse of [`put_f64`].
pub fn get_f64(input: &mut &[u8]) -> Option<f64> {
    get_u64(input).map(f64::from_bits)
}

/// Reads a length-prefixed byte slice as an owned vector.
pub fn get_bytes(input: &mut &[u8]) -> Option<Vec<u8>> {
    let len = get_usize(input)?;
    if input.len() < len {
        return None;
    }
    let (head, rest) = input.split_at(len);
    let out = head.to_vec();
    *input = rest;
    Some(out)
}

/// Reads a length-prefixed UTF-8 string.
pub fn get_str(input: &mut &[u8]) -> Option<String> {
    String::from_utf8(get_bytes(input)?).ok()
}

/// Appends a length-prefixed `Vec<u64>`.
pub fn put_u64s(out: &mut Vec<u8>, vs: &[u64]) {
    put_usize(out, vs.len());
    for &v in vs {
        put_u64(out, v);
    }
}

/// Reads a length-prefixed `Vec<u64>`.
pub fn get_u64s(input: &mut &[u8]) -> Option<Vec<u64>> {
    let len = get_usize(input)?;
    if input.len() < len.checked_mul(8)? {
        return None;
    }
    (0..len).map(|_| get_u64(input)).collect()
}

/// Appends a length-prefixed `Vec<usize>`.
pub fn put_usizes(out: &mut Vec<u8>, vs: &[usize]) {
    put_usize(out, vs.len());
    for &v in vs {
        put_usize(out, v);
    }
}

/// Reads a length-prefixed `Vec<usize>`.
pub fn get_usizes(input: &mut &[u8]) -> Option<Vec<usize>> {
    let len = get_usize(input)?;
    if input.len() < len.checked_mul(8)? {
        return None;
    }
    (0..len).map(|_| get_usize(input)).collect()
}

/// Appends a length-prefixed `Vec<f64>` (bit patterns, see [`put_f64`]).
pub fn put_f64s(out: &mut Vec<u8>, vs: &[f64]) {
    put_usize(out, vs.len());
    for &v in vs {
        put_f64(out, v);
    }
}

/// Reads a length-prefixed `Vec<f64>`.
pub fn get_f64s(input: &mut &[u8]) -> Option<Vec<f64>> {
    let len = get_usize(input)?;
    if input.len() < len.checked_mul(8)? {
        return None;
    }
    (0..len).map(|_| get_f64(input)).collect()
}

/// Combines a container/constructor code with element codes into one `u64`.
///
/// The mixing is a Fowler–Noll–Vo style fold: cheap, deterministic, and with
/// enough spread that distinct payload compositions (e.g. `Vec<f64>` vs
/// `Vec<Vec<f64>>` vs `(usize, Vec<f64>)`) get distinct codes.  Codes are a
/// *consistency check* between two builds of the same binary, not a
/// cross-version schema, so structural hashing is exactly enough.
pub fn compose_type_code(constructor: u64, parts: &[u64]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64 ^ constructor;
    for &p in parts {
        h ^= p;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip_bit_exactly() {
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::MAX);
        put_usize(&mut buf, 42);
        put_i64(&mut buf, -7);
        put_f64(&mut buf, -0.0);
        put_f64(&mut buf, f64::NAN);
        put_f64(&mut buf, 1.0e-300);
        let mut s = buf.as_slice();
        assert_eq!(get_u64(&mut s), Some(u64::MAX));
        assert_eq!(get_usize(&mut s), Some(42));
        assert_eq!(get_i64(&mut s), Some(-7));
        // -0.0 and NaN keep their exact bit patterns.
        assert_eq!(get_f64(&mut s).unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(get_f64(&mut s).unwrap().is_nan());
        assert_eq!(get_f64(&mut s), Some(1.0e-300));
        assert!(s.is_empty());
    }

    #[test]
    fn containers_round_trip() {
        let mut buf = Vec::new();
        put_bytes(&mut buf, b"abc");
        put_str(&mut buf, "hello");
        put_usizes(&mut buf, &[1, 2, 3]);
        put_f64s(&mut buf, &[0.5, -0.25]);
        put_u64s(&mut buf, &[9, 8]);
        let mut s = buf.as_slice();
        assert_eq!(get_bytes(&mut s).unwrap(), b"abc");
        assert_eq!(get_str(&mut s).unwrap(), "hello");
        assert_eq!(get_usizes(&mut s).unwrap(), vec![1, 2, 3]);
        assert_eq!(get_f64s(&mut s).unwrap(), vec![0.5, -0.25]);
        assert_eq!(get_u64s(&mut s).unwrap(), vec![9, 8]);
        assert!(s.is_empty());
    }

    #[test]
    fn underruns_are_none_not_panics() {
        let mut s: &[u8] = &[1, 2, 3];
        assert_eq!(get_u64(&mut s), None);
        // Length prefix claims more bytes than remain.
        let mut buf = Vec::new();
        put_usize(&mut buf, 100);
        let mut s = buf.as_slice();
        assert_eq!(get_bytes(&mut s), None);
        let mut buf = Vec::new();
        put_usize(&mut buf, usize::MAX); // overflow-bait length
        let mut s = buf.as_slice();
        assert_eq!(get_f64s(&mut s), None);
    }

    #[test]
    fn type_codes_distinguish_compositions() {
        let f = compose_type_code(1, &[]);
        let vf = compose_type_code(10, &[f]);
        let vvf = compose_type_code(10, &[vf]);
        let pair = compose_type_code(20, &[f, vf]);
        let codes = [f, vf, vvf, pair];
        for (i, a) in codes.iter().enumerate() {
            for (j, b) in codes.iter().enumerate() {
                assert_eq!(i == j, a == b, "codes must be pairwise distinct");
            }
        }
    }
}

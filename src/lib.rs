//! # dmbs — Distributed Matrix-Based Sampling for GNN Training
//!
//! Umbrella crate re-exporting the full public API of the `dmbs` workspace, a
//! from-scratch Rust reproduction of *Distributed Matrix-Based Sampling for
//! Graph Neural Network Training* (Tripathy, Yelick, Buluç — MLSys 2024).
//!
//! The workspace is organised as:
//!
//! * [`matrix`] — sparse (COO/CSR/CSC) and dense matrices, SpGEMM, SpMM;
//! * [`graph`] — synthetic graph generators, OGB-like dataset stand-ins,
//!   1D / 1.5D partitioning and minibatch construction;
//! * [`comm`] — a simulated multi-rank runtime (threads + channels) with
//!   collectives and an α–β communication cost model;
//! * [`sampling`] — the paper's contribution: matrix-based bulk minibatch
//!   sampling (GraphSAGE, LADIES, FastGCN) with graph-replicated and 1.5D
//!   graph-partitioned distributed algorithms, plus per-vertex baselines;
//! * [`gnn`] — GraphSAGE layers with explicit gradients, losses, optimizers,
//!   distributed feature fetching and the end-to-end training pipeline.
//!
//! # Quickstart
//!
//! ```
//! use dmbs::graph::generators::{rmat, RmatConfig};
//! use dmbs::sampling::{BulkSamplerConfig, GraphSageSampler, Sampler};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = StdRng::seed_from_u64(0);
//! // A small synthetic power-law graph.
//! let graph = rmat(&RmatConfig::new(10, 8), &mut rng)?;
//!
//! // Sample two minibatches of 16 vertices with fanout (5, 5) in bulk.
//! let sampler = GraphSageSampler::new(vec![5, 5]);
//! let config = BulkSamplerConfig::new(16, 2);
//! let batches: Vec<Vec<usize>> = (0..2)
//!     .map(|b| (b * 16..(b + 1) * 16).collect())
//!     .collect();
//! let output = sampler.sample_bulk(graph.adjacency(), &batches, &config, &mut rng)?;
//! assert_eq!(output.num_batches(), 2);
//! # Ok(())
//! # }
//! ```

pub use dmbs_comm as comm;
pub use dmbs_gnn as gnn;
pub use dmbs_graph as graph;
pub use dmbs_matrix as matrix;
pub use dmbs_sampling as sampling;

//! Sparse × dense matrix multiplication (SpMM).
//!
//! Neighborhood aggregation in forward propagation multiplies a sampled
//! adjacency matrix (CSR) by a sampled feature/embedding matrix (dense):
//! `Z = A_S · H`.  The backward pass needs the transposed product
//! `A_S^T · G`.  Both kernels live here.

use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;
use crate::error::MatrixError;
use crate::pool::{block_ranges, Parallelism};
use crate::Result;

/// Computes `sparse * dense`.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] if `sparse.cols() != dense.rows()`.
///
/// # Example
///
/// ```
/// use dmbs_matrix::{CooMatrix, CsrMatrix, DenseMatrix, spmm::spmm};
///
/// # fn main() -> Result<(), dmbs_matrix::MatrixError> {
/// let a = CsrMatrix::from_coo(&CooMatrix::from_triples(2, 3, vec![(0, 1, 2.0), (1, 2, 1.0)])?);
/// let h = DenseMatrix::from_rows(&[vec![1.0], vec![10.0], vec![100.0]])?;
/// let z = spmm(&a, &h)?;
/// assert_eq!(z.get(0, 0), 20.0);
/// assert_eq!(z.get(1, 0), 100.0);
/// # Ok(())
/// # }
/// ```
pub fn spmm(sparse: &CsrMatrix, dense: &DenseMatrix) -> Result<DenseMatrix> {
    if sparse.cols() != dense.rows() {
        return Err(MatrixError::DimensionMismatch {
            op: "spmm",
            lhs: sparse.shape(),
            rhs: dense.shape(),
        });
    }
    let cols = dense.cols();
    let mut out = DenseMatrix::zeros(sparse.rows(), cols);
    for r in 0..sparse.rows() {
        // Accumulate the linear combination of dense rows into the output row.
        let mut acc = vec![0.0f64; cols];
        for (&c, &v) in sparse.row_indices(r).iter().zip(sparse.row_values(r)) {
            let drow = dense.row(c);
            for (a, d) in acc.iter_mut().zip(drow) {
                *a += v * d;
            }
        }
        out.row_mut(r).copy_from_slice(&acc);
    }
    Ok(out)
}

/// Computes `sparse * dense` on a scoped worker pool, row-blocking the
/// output across `parallelism` threads.
///
/// Every output row is the same linear combination the serial kernel
/// computes, in the same order, so the result is **byte-identical to
/// [`spmm`] at any thread count**.  With a single effective block this
/// delegates to [`spmm`].
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] if `sparse.cols() != dense.rows()`.
///
/// # Example
///
/// ```
/// use dmbs_matrix::pool::Parallelism;
/// use dmbs_matrix::spmm::{spmm, spmm_parallel};
/// use dmbs_matrix::{CooMatrix, CsrMatrix, DenseMatrix};
///
/// # fn main() -> Result<(), dmbs_matrix::MatrixError> {
/// let a = CsrMatrix::from_coo(&CooMatrix::from_triples(2, 3, vec![(0, 1, 2.0), (1, 2, 1.0)])?);
/// let h = DenseMatrix::from_rows(&[vec![1.0], vec![10.0], vec![100.0]])?;
/// assert_eq!(spmm_parallel(&a, &h, Parallelism::new(2))?, spmm(&a, &h)?);
/// # Ok(())
/// # }
/// ```
pub fn spmm_parallel(
    sparse: &CsrMatrix,
    dense: &DenseMatrix,
    parallelism: Parallelism,
) -> Result<DenseMatrix> {
    if sparse.cols() != dense.rows() {
        return Err(MatrixError::DimensionMismatch {
            op: "spmm_parallel",
            lhs: sparse.shape(),
            rhs: dense.shape(),
        });
    }
    let rows = sparse.rows();
    let cols = dense.cols();
    let blocks = block_ranges(rows, parallelism.effective_blocks(rows));
    if blocks.len() <= 1 {
        return spmm(sparse, dense);
    }
    let mut out = DenseMatrix::zeros(rows, cols);
    let fill = crossbeam::thread::scope(|scope| {
        let mut tail = out.as_mut_slice();
        let mut handles = Vec::with_capacity(blocks.len());
        for range in blocks {
            let (head, rest) = std::mem::take(&mut tail).split_at_mut(range.len() * cols);
            tail = rest;
            handles.push(scope.spawn(move || {
                for (local, r) in range.enumerate() {
                    let acc = &mut head[local * cols..(local + 1) * cols];
                    for (&c, &v) in sparse.row_indices(r).iter().zip(sparse.row_values(r)) {
                        for (a, d) in acc.iter_mut().zip(dense.row(c)) {
                            *a += v * d;
                        }
                    }
                }
            }));
        }
        for handle in handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    if let Err(payload) = fill {
        std::panic::resume_unwind(payload);
    }
    Ok(out)
}

/// Computes `sparse^T * dense` on a scoped worker pool without materialising
/// the transpose.
///
/// The transposed product scatters into output rows, so row-blocking the
/// *output* would race; instead the **columns** of `dense` are blocked: each
/// worker computes the full scatter restricted to its column slice, which
/// touches a disjoint set of output entries and accumulates every entry in
/// the serial kernel's input-row order.  The result is therefore
/// byte-identical to [`spmm_transpose`] at any thread count.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] if `sparse.rows() != dense.rows()`.
pub fn spmm_transpose_parallel(
    sparse: &CsrMatrix,
    dense: &DenseMatrix,
    parallelism: Parallelism,
) -> Result<DenseMatrix> {
    if sparse.rows() != dense.rows() {
        return Err(MatrixError::DimensionMismatch {
            op: "spmm_transpose_parallel",
            lhs: sparse.shape(),
            rhs: dense.shape(),
        });
    }
    let cols = dense.cols();
    let col_blocks = block_ranges(cols, parallelism.effective_blocks(cols));
    if col_blocks.len() <= 1 {
        return spmm_transpose(sparse, dense);
    }
    // Each worker fills a (sparse.cols() × block) slab over its column range.
    let slabs: Vec<(std::ops::Range<usize>, Vec<f64>)> = parallelism.map_blocks(cols, |range| {
        let width = range.len();
        let mut slab = vec![0.0f64; sparse.cols() * width];
        for r in 0..sparse.rows() {
            let drow = &dense.row(r)[range.clone()];
            for (&c, &v) in sparse.row_indices(r).iter().zip(sparse.row_values(r)) {
                let orow = &mut slab[c * width..(c + 1) * width];
                for (o, d) in orow.iter_mut().zip(drow) {
                    *o += v * d;
                }
            }
        }
        (range, slab)
    });
    let mut out = DenseMatrix::zeros(sparse.cols(), cols);
    for (range, slab) in slabs {
        let width = range.len();
        for r in 0..sparse.cols() {
            out.row_mut(r)[range.clone()].copy_from_slice(&slab[r * width..(r + 1) * width]);
        }
    }
    Ok(out)
}

/// Computes `sparse^T * dense` without materialising the transpose.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] if `sparse.rows() != dense.rows()`.
pub fn spmm_transpose(sparse: &CsrMatrix, dense: &DenseMatrix) -> Result<DenseMatrix> {
    if sparse.rows() != dense.rows() {
        return Err(MatrixError::DimensionMismatch {
            op: "spmm_transpose",
            lhs: sparse.shape(),
            rhs: dense.shape(),
        });
    }
    let cols = dense.cols();
    let mut out = DenseMatrix::zeros(sparse.cols(), cols);
    for r in 0..sparse.rows() {
        let drow = dense.row(r);
        for (&c, &v) in sparse.row_indices(r).iter().zip(sparse.row_values(r)) {
            let orow = out.row_mut(c);
            for (o, d) in orow.iter_mut().zip(drow) {
                *o += v * d;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;
    use proptest::prelude::*;

    fn small_sparse() -> CsrMatrix {
        CsrMatrix::from_coo(
            &CooMatrix::from_triples(3, 4, vec![(0, 0, 1.0), (0, 3, 2.0), (2, 1, -1.0)]).unwrap(),
        )
    }

    #[test]
    fn spmm_known_values() {
        let a = small_sparse();
        let h = DenseMatrix::from_rows(&[
            vec![1.0, 2.0],
            vec![3.0, 4.0],
            vec![5.0, 6.0],
            vec![7.0, 8.0],
        ])
        .unwrap();
        let z = spmm(&a, &h).unwrap();
        assert_eq!(z.get(0, 0), 15.0);
        assert_eq!(z.get(0, 1), 18.0);
        assert_eq!(z.get(1, 0), 0.0);
        assert_eq!(z.get(2, 0), -3.0);
    }

    #[test]
    fn spmm_dimension_mismatch() {
        let a = small_sparse();
        let h = DenseMatrix::zeros(3, 2);
        assert!(spmm(&a, &h).is_err());
    }

    #[test]
    fn spmm_transpose_matches_explicit_transpose() {
        let a = small_sparse();
        let g = DenseMatrix::from_rows(&[vec![1.0, 0.5], vec![2.0, -1.0], vec![0.0, 3.0]]).unwrap();
        let fused = spmm_transpose(&a, &g).unwrap();
        let explicit = spmm(&a.transpose(), &g).unwrap();
        assert!(fused.approx_eq(&explicit, 1e-12));
    }

    #[test]
    fn spmm_transpose_dimension_mismatch() {
        let a = small_sparse();
        let g = DenseMatrix::zeros(4, 2);
        assert!(spmm_transpose(&a, &g).is_err());
    }

    #[test]
    fn parallel_variants_match_serial_byte_identical() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let mut coo = CooMatrix::new(40, 32);
        for _ in 0..300 {
            coo.push(rng.gen_range(0..40), rng.gen_range(0..32), rng.gen_range(-2.0..2.0)).unwrap();
        }
        let sparse = CsrMatrix::from_coo(&coo);
        let dense = DenseMatrix::random_uniform(32, 9, 1.5, &mut rng);
        let dense_t = DenseMatrix::random_uniform(40, 9, 1.5, &mut rng);
        let serial = spmm(&sparse, &dense).unwrap();
        let serial_t = spmm_transpose(&sparse, &dense_t).unwrap();
        for threads in [1usize, 2, 8] {
            let par = Parallelism::new(threads);
            assert_eq!(spmm_parallel(&sparse, &dense, par).unwrap(), serial);
            assert_eq!(spmm_transpose_parallel(&sparse, &dense_t, par).unwrap(), serial_t);
        }
    }

    #[test]
    fn parallel_variants_validate_dimensions() {
        let sparse = small_sparse();
        let par = Parallelism::new(4);
        assert!(spmm_parallel(&sparse, &DenseMatrix::zeros(3, 2), par).is_err());
        assert!(spmm_transpose_parallel(&sparse, &DenseMatrix::zeros(4, 2), par).is_err());
    }

    proptest! {
        #[test]
        fn prop_spmm_parallel_byte_identical(
            entries in proptest::collection::vec((0usize..6, 0usize..7, -2.0f64..2.0), 0..30),
            dense_vals in proptest::collection::vec(-2.0f64..2.0, 7 * 3),
            thread_choice in 0usize..3,
        ) {
            let sparse = CsrMatrix::from_coo(&CooMatrix::from_triples(6, 7, entries).unwrap());
            let dense = DenseMatrix::from_vec(7, 3, dense_vals).unwrap();
            let par = Parallelism::new([1usize, 2, 8][thread_choice]);
            prop_assert_eq!(spmm_parallel(&sparse, &dense, par).unwrap(), spmm(&sparse, &dense).unwrap());
        }
    }

    proptest! {
        #[test]
        fn prop_spmm_matches_dense(
            entries in proptest::collection::vec((0usize..6, 0usize..7, -2.0f64..2.0), 0..30),
            dense_vals in proptest::collection::vec(-2.0f64..2.0, 7 * 3),
        ) {
            let sparse = CsrMatrix::from_coo(&CooMatrix::from_triples(6, 7, entries).unwrap());
            let dense = DenseMatrix::from_vec(7, 3, dense_vals).unwrap();
            let sp = spmm(&sparse, &dense).unwrap();
            let reference = sparse.to_dense().matmul(&dense).unwrap();
            prop_assert!(sp.approx_eq(&reference, 1e-9));
        }

        #[test]
        fn prop_spmm_transpose_matches_dense(
            entries in proptest::collection::vec((0usize..6, 0usize..7, -2.0f64..2.0), 0..30),
            dense_vals in proptest::collection::vec(-2.0f64..2.0, 6 * 2),
        ) {
            let sparse = CsrMatrix::from_coo(&CooMatrix::from_triples(6, 7, entries).unwrap());
            let dense = DenseMatrix::from_vec(6, 2, dense_vals).unwrap();
            let sp = spmm_transpose(&sparse, &dense).unwrap();
            let reference = sparse.to_dense().transpose().matmul(&dense).unwrap();
            prop_assert!(sp.approx_eq(&reference, 1e-9));
        }
    }
}

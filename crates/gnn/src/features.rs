//! The distributed feature store, its all-to-allv fetching step (§6.2), and
//! the communication-avoiding per-rank feature cache layered on top of it.
//!
//! The input feature matrix `H` is partitioned into block rows.  With the
//! paper's 1.5D scheme, `H` is split into `p/c` block rows, each replicated
//! on the `c` ranks of its process row; a rank then fetches the rows it needs
//! with an all-to-allv **within its process column**, which contains exactly
//! one replica of every block row.  The larger the replication factor `c`,
//! the fewer ranks each fetch touches — the mechanism behind the Figure 4/6
//! scaling of the feature-fetching phase.  Setting the number of blocks to
//! `p` (one block per rank, `c = 1` for features) gives the "NoRep"
//! configuration of Figure 6.
//!
//! # The communication-avoiding tier
//!
//! Feature fetching is the dominant communication cost of minibatch training,
//! yet bulk sampling (§4) materializes *every* frontier of a bulk group
//! before the first gradient step — exactly the information needed to move
//! each remote feature row at most once.  [`FeatureCache`] exploits that in
//! two modes:
//!
//! * [`FeatureCacheConfig::EpochPinned`] — a
//!   [`FetchPlan`](dmbs_sampling::FetchPlan) built from the sampled
//!   minibatches is prefetched with **one** all-to-allv round
//!   ([`FeatureCache::prefetch`]) and pinned; per-step gathers
//!   ([`FeatureCache::gather_pinned`]) are then purely local, so the
//!   per-step collectives disappear entirely (α *and* β savings);
//! * [`FeatureCacheConfig::Lru`] — a byte-budgeted read-through cache for
//!   the streaming path ([`FeatureCache::fetch_through`]): the per-step
//!   all-to-allv still runs on every rank (keeping collectives matched), but
//!   only cache *misses* cross the wire, and resident rows are evicted
//!   least-recently-used.
//!
//! Both modes are pure work avoidance: the rows a cache serves are exact
//! copies of what [`FeatureStore::fetch`] would have returned, so cached and
//! uncached training are byte-identical (pinned by the
//! `tests/backend_equivalence.rs` sweep).  Hits, misses and the α–β words
//! kept off the wire are recorded in [`CommStats`].

use crate::error::GnnError;
use crate::Result;
use dmbs_comm::{Codec, CommStats, Communicator, Group, PendingCollective, WireRows};
use dmbs_graph::partition::OneDPartition;
use dmbs_matrix::DenseMatrix;
use std::collections::{BTreeMap, HashMap, HashSet};

/// One rank's shard of the vertex feature matrix.
#[derive(Debug, Clone)]
pub struct FeatureStore {
    partition: OneDPartition,
    block_index: usize,
    block: DenseMatrix,
    feature_dim: usize,
    /// How reply rows travel on the fetch lanes (requests stay exact ids).
    codec: Codec,
}

impl FeatureStore {
    /// Builds the shard for `block_index` out of the full feature matrix.
    ///
    /// `num_blocks` is the number of block rows `H` is split into (the number
    /// of process rows in the 1.5D layout, or `p` for NoRep).
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::InvalidConfig`] if `block_index >= num_blocks` or
    /// the partition cannot be built.
    pub fn from_full(
        features: &DenseMatrix,
        num_blocks: usize,
        block_index: usize,
    ) -> Result<Self> {
        if block_index >= num_blocks {
            return Err(GnnError::InvalidConfig(format!(
                "block index {block_index} out of range for {num_blocks} blocks"
            )));
        }
        let partition = OneDPartition::new(features.rows(), num_blocks)?;
        let range = partition.range(block_index);
        let rows: Vec<usize> = range.collect();
        let block = features.gather_rows(&rows)?;
        Ok(FeatureStore {
            partition,
            block_index,
            block,
            feature_dim: features.cols(),
            codec: Codec::Exact,
        })
    }

    /// Sets the wire codec for the reply rounds of
    /// [`FeatureStore::fetch`] / [`FeatureStore::post_fetch`]: reply rows are
    /// encoded once at the serving rank and decoded at the requester, so
    /// every consumer of fetched rows — including the [`FeatureCache`], which
    /// stores *decoded* rows — sees the same values on every transport.
    /// Request ids always travel exact.  All ranks of a fetch group must
    /// agree on the codec (the session builder guarantees this).
    pub fn with_codec(mut self, codec: Codec) -> Self {
        self.codec = codec;
        self
    }

    /// The wire codec in effect for reply rows.
    pub fn codec(&self) -> Codec {
        self.codec
    }

    /// Feature dimension.
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// Number of vertex rows stored locally.
    pub fn local_rows(&self) -> usize {
        self.block.rows()
    }

    /// The vertex partition over all blocks.
    pub fn partition(&self) -> &OneDPartition {
        &self.partition
    }

    /// The block row this shard holds.
    pub fn block_index(&self) -> usize {
        self.block_index
    }

    /// True when `vertex` is owned by this shard's block, i.e. a fetch for it
    /// never crosses the wire.
    pub fn is_locally_owned(&self, vertex: usize) -> bool {
        vertex < self.partition.len() && self.partition.owner_of(vertex) == self.block_index
    }

    /// Reads the features of vertices that are stored locally.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::InvalidConfig`] if any vertex is not owned by this
    /// block.
    pub fn local_features(&self, vertices: &[usize]) -> Result<DenseMatrix> {
        let range = self.partition.range(self.block_index);
        let locals: Vec<usize> = vertices
            .iter()
            .map(|&v| {
                if range.contains(&v) {
                    Ok(v - range.start)
                } else {
                    Err(GnnError::InvalidConfig(format!(
                        "vertex {v} is not stored in block {}",
                        self.block_index
                    )))
                }
            })
            .collect::<Result<_>>()?;
        Ok(self.block.gather_rows(&locals)?)
    }

    /// Fetches the features of arbitrary vertices with an all-to-allv across
    /// `group`, where the member at position `i` of the group owns block `i`
    /// (in the 1.5D layout this is the caller's process column; for NoRep it
    /// is the whole world).  Every member of the group must call this the
    /// same number of times per training step, even with an empty request.
    ///
    /// Returns the requested rows in the order of `vertices`.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::FetchGroupMismatch`] if the group size does not
    /// match the number of blocks, [`GnnError::VertexOutOfRange`] for a
    /// vertex id outside the partition, or a communication error if a
    /// collective fails.
    pub fn fetch(
        &self,
        comm: &mut Communicator,
        group: &Group,
        vertices: &[usize],
    ) -> Result<DenseMatrix> {
        let (requests, origin) = self.bucket_requests(group, vertices)?;
        // Exchange requests, serve them from the local block, exchange rows
        // (encoded under the store's wire codec).
        let incoming = comm.group_all_to_allv(group, requests)?;
        let replies = self.serve_requests(&incoming);
        let received = comm.group_all_to_allv(group, replies)?;
        let decoded: Vec<Vec<f64>> = received.iter().map(WireRows::rows).collect();
        Ok(self.assemble_rows(&origin, &decoded))
    }

    /// Posts the fetch of `vertices` nonblocking: the request round's
    /// messages leave immediately (on the tagged nonblocking lane, so any
    /// amount of blocking traffic may run in between) and the returned
    /// [`PendingFetch`] completes the exchange when waited.  The traffic —
    /// message counts, words, α–β modeled time — is identical to
    /// [`FeatureStore::fetch`]; only the schedule moves.
    ///
    /// Every rank of `group` must post at the same pipeline point and wait at
    /// the same later point (the reply round runs inside
    /// [`PendingFetch::wait`], modeling an asynchronous progress engine that
    /// serves requests while the poster computes).
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::FetchGroupMismatch`] /
    /// [`GnnError::VertexOutOfRange`] exactly like [`FeatureStore::fetch`],
    /// plus any communication error from posting.
    pub fn post_fetch(
        &self,
        comm: &mut Communicator,
        group: &Group,
        vertices: &[usize],
    ) -> Result<PendingFetch> {
        let (requests, origin) = self.bucket_requests(group, vertices)?;
        let pending_requests = comm.post_group_all_to_allv(group, requests)?;
        Ok(PendingFetch { pending_requests, origin })
    }

    /// Buckets `vertices` by owning block; returns the per-member request
    /// lists and, for each requested vertex, its `(owner, slot)` origin.
    #[allow(clippy::type_complexity)]
    fn bucket_requests(
        &self,
        group: &Group,
        vertices: &[usize],
    ) -> Result<(Vec<Vec<usize>>, Vec<(usize, usize)>)> {
        if group.len() != self.partition.num_parts() {
            return Err(GnnError::FetchGroupMismatch {
                blocks: self.partition.num_parts(),
                group: group.len(),
            });
        }
        let mut requests: Vec<Vec<usize>> = vec![Vec::new(); group.len()];
        let mut origin: Vec<(usize, usize)> = Vec::with_capacity(vertices.len());
        for &v in vertices {
            if v >= self.partition.len() {
                return Err(GnnError::VertexOutOfRange { vertex: v, limit: self.partition.len() });
            }
            let owner = self.partition.owner_of(v);
            origin.push((owner, requests[owner].len()));
            requests[owner].push(v);
        }
        Ok((requests, origin))
    }

    /// Serves incoming per-member request lists from the local block,
    /// encoding each member's reply rows under the store's wire codec (the
    /// lossy quantization — if any — happens exactly once, here).
    fn serve_requests(&self, incoming: &[Vec<usize>]) -> Vec<WireRows> {
        let my_range = self.partition.range(self.block_index);
        incoming
            .iter()
            .map(|wanted| {
                let mut flat = Vec::with_capacity(wanted.len() * self.feature_dim);
                for &v in wanted {
                    let local = v - my_range.start;
                    flat.extend_from_slice(self.block.row(local));
                }
                WireRows::from_rows(self.codec, self.feature_dim, &flat)
            })
            .collect()
    }

    /// Reassembles the received per-owner reply rows in request order.
    fn assemble_rows(&self, origin: &[(usize, usize)], received: &[Vec<f64>]) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(origin.len(), self.feature_dim);
        for (i, &(owner, slot)) in origin.iter().enumerate() {
            let start = slot * self.feature_dim;
            out.row_mut(i).copy_from_slice(&received[owner][start..start + self.feature_dim]);
        }
        out
    }
}

/// An in-flight [`FeatureCache::post_prefetch`]: the posted fetch plus the
/// rows it will pin when completed.
#[must_use = "a posted prefetch does nothing until completed"]
#[derive(Debug)]
pub struct PendingPrefetch {
    fetch: PendingFetch,
    missing: Vec<usize>,
}

impl PendingPrefetch {
    /// The vertices this prefetch requested (will be pinned on completion).
    pub fn requested(&self) -> &[usize] {
        &self.missing
    }
}

/// An in-flight [`FeatureStore::post_fetch`].  Must be waited by every rank
/// of the fetch group at the same pipeline point.
#[must_use = "a posted fetch does nothing until waited"]
#[derive(Debug)]
pub struct PendingFetch {
    pending_requests: PendingCollective<Vec<usize>>,
    origin: Vec<(usize, usize)>,
}

impl PendingFetch {
    /// Completes the fetch: receives the in-flight requests, serves them from
    /// the local block and exchanges the reply rows.  Returns the requested
    /// rows in the order they were passed to [`FeatureStore::post_fetch`],
    /// byte-identical to a blocking [`FeatureStore::fetch`].
    ///
    /// # Errors
    ///
    /// Propagates communication errors from the reply exchange.
    pub fn wait(
        self,
        store: &FeatureStore,
        comm: &mut Communicator,
        group: &Group,
    ) -> Result<DenseMatrix> {
        let incoming = self.pending_requests.wait(comm)?;
        let replies = store.serve_requests(&incoming);
        let received = comm.group_all_to_allv(group, replies)?;
        let decoded: Vec<Vec<f64>> = received.iter().map(WireRows::rows).collect();
        Ok(store.assemble_rows(&self.origin, &decoded))
    }
}

/// Configuration of the per-rank [`FeatureCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureCacheConfig {
    /// No caching: every minibatch re-fetches its full frontier (the
    /// baseline all-to-allv pipeline).
    Off,
    /// Epoch-static pinning: the union of the planned frontiers is
    /// prefetched once per bulk group and stays resident until
    /// [`FeatureCache::clear`], so each remote row crosses the wire at most
    /// once per epoch and the per-step collectives vanish.
    EpochPinned,
    /// A bounded read-through cache for the streaming path: resident rows up
    /// to the byte budget, least-recently-used eviction.  The per-step
    /// collective still runs (so ranks stay matched), but only misses cross
    /// the wire.
    Lru {
        /// Maximum resident feature bytes (8 bytes per `f64` word).
        byte_budget: usize,
    },
}

impl FeatureCacheConfig {
    /// True unless the mode is [`FeatureCacheConfig::Off`].
    pub fn is_enabled(&self) -> bool {
        !matches!(self, FeatureCacheConfig::Off)
    }
}

/// How cached feature state reacts to a graph ingest
/// ([`dmbs_graph::ingest::GraphIngest`]).
///
/// Edge batches never change *feature rows* — features live on vertices — so
/// invalidation here is about derived state: fetch plans computed against the
/// old adjacency and the rows they pinned.  Both policies leave training
/// byte-identical (the rows a refetch returns are the rows the cache held);
/// they differ only in the refetch bill, which the
/// [`CommStats`] invalidation books account for exactly:
/// `invalidation_words(FlushAll) == invalidation_words(Precise) +
/// retained_words(Precise)` for the same ingest schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InvalidationPolicy {
    /// Evict exactly the resident rows whose vertex lies in the ingest's
    /// dirty set, and book every survivor as retained (the default).
    #[default]
    Precise,
    /// Evict everything resident, booking it all as invalidated — the
    /// brute-force baseline precise invalidation is measured against.
    FlushAll,
}

/// Checks a [`FetchPlan`](dmbs_sampling::FetchPlan) against the current
/// graph version: a plan computed before the last ingest must be recomputed,
/// not served.
///
/// # Errors
///
/// Returns [`GnnError::StalePlan`] when `plan.version() < graph_version`.
pub fn ensure_plan_fresh(plan: &dmbs_sampling::FetchPlan, graph_version: u64) -> Result<()> {
    if plan.version() < graph_version {
        return Err(GnnError::StalePlan { plan_version: plan.version(), graph_version });
    }
    Ok(())
}

/// One resident feature row.
#[derive(Debug, Clone)]
struct CachedRow {
    data: Vec<f64>,
    /// Last-use tick, mirrored in the LRU index.
    tick: u64,
    /// True while the wire cost of this row has been paid (by a prefetch)
    /// but not yet consumed by a lookup.  The first hit on a charged row
    /// saves nothing — the baseline would have paid the same single
    /// transfer — every later hit saves the full request + reply.
    charged: bool,
}

/// A per-rank feature cache layered on a [`FeatureStore`] — the
/// communication-avoiding tier of the §6.2 feature pipeline (see the module
/// docs for the two modes).
///
/// All accounting flows into a [`CommStats`] whose cache counters obey the
/// invariant that, summed across ranks,
/// `words_sent(cached run) + words_saved == words_sent(uncached run)` for
/// the feature-fetch phase.
#[derive(Debug, Clone)]
pub struct FeatureCache {
    config: FeatureCacheConfig,
    feature_dim: usize,
    rows: HashMap<usize, CachedRow>,
    /// LRU index: last-use tick → vertex.  Ticks are unique, so eviction
    /// (pop the smallest tick) is deterministic.
    by_tick: BTreeMap<u64, usize>,
    /// Vertices requested by a posted-but-not-yet-completed prefetch
    /// ([`FeatureCache::post_prefetch`]).  A later post must not re-request
    /// them — that keeps the overlapped schedule's per-epoch word counts
    /// byte-identical to the synchronous schedule's.
    in_flight: HashSet<usize>,
    /// Maximum resident rows (`usize::MAX` when pinned, 0 when off).
    max_rows: usize,
    tick: u64,
    stats: CommStats,
}

impl FeatureCache {
    /// Creates a cache for rows of width `feature_dim`.
    ///
    /// An [`FeatureCacheConfig::Lru`] budget smaller than one row yields a
    /// cache that stores nothing (every lookup misses); this is well-defined
    /// and still byte-identical, just save-free.
    pub fn new(config: FeatureCacheConfig, feature_dim: usize) -> Self {
        let max_rows = match config {
            FeatureCacheConfig::Off => 0,
            FeatureCacheConfig::EpochPinned => usize::MAX,
            FeatureCacheConfig::Lru { byte_budget } => {
                byte_budget / (feature_dim.max(1) * std::mem::size_of::<f64>())
            }
        };
        FeatureCache {
            config,
            feature_dim,
            rows: HashMap::new(),
            by_tick: BTreeMap::new(),
            in_flight: HashSet::new(),
            max_rows,
            tick: 0,
            stats: CommStats::default(),
        }
    }

    /// The configured mode.
    pub fn config(&self) -> FeatureCacheConfig {
        self.config
    }

    /// Number of rows currently resident.
    pub fn resident_rows(&self) -> usize {
        self.rows.len()
    }

    /// Bytes currently resident (feature data only).
    pub fn resident_bytes(&self) -> usize {
        self.rows.len() * self.feature_dim * std::mem::size_of::<f64>()
    }

    /// Accumulated hit/miss/words-saved counters (the wire counters of the
    /// returned [`CommStats`] are always zero — actual traffic is recorded
    /// by the [`Communicator`]).
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// Returns and resets the accumulated counters.
    pub fn take_stats(&mut self) -> CommStats {
        std::mem::take(&mut self.stats)
    }

    /// Drops every resident row (epoch boundary for the pinned mode); the
    /// stats counters are kept.  Any in-flight posted prefetch is forgotten —
    /// the pipelined trainer drains its pipeline before the epoch boundary,
    /// so nothing is in flight when this runs.
    pub fn clear(&mut self) {
        self.rows.clear();
        self.by_tick.clear();
        self.in_flight.clear();
    }

    /// Evicts exactly the resident rows whose vertex lies in `dirty` (the
    /// [`InvalidationPolicy::Precise`] reaction to a graph ingest), books
    /// each eviction's refetch words into the
    /// [`CommStats::rows_invalidated`] /
    /// [`CommStats::invalidation_words`] books, and books every surviving
    /// resident row as retained.  Pending in-flight requests for dirty
    /// vertices are forgotten too.  Returns the number of rows evicted.
    pub fn invalidate(&mut self, store: &FeatureStore, dirty: &[usize]) -> usize {
        let mut evicted = 0;
        for &v in dirty {
            if let Some(row) = self.rows.remove(&v) {
                self.by_tick.remove(&row.tick);
                let words = self.words_for_remote(store, v);
                self.stats.record_invalidation(words);
                evicted += 1;
            }
            self.in_flight.remove(&v);
        }
        let survivors: Vec<usize> = self.rows.keys().copied().collect();
        for v in survivors {
            let words = self.words_for_remote(store, v);
            self.stats.record_retention(words);
        }
        evicted
    }

    /// Evicts everything resident (the [`InvalidationPolicy::FlushAll`]
    /// reaction to a graph ingest), booking every row as invalidated.
    /// Returns the number of rows evicted.
    pub fn invalidate_all(&mut self, store: &FeatureStore) -> usize {
        let vertices: Vec<usize> = self.rows.keys().copied().collect();
        for &v in &vertices {
            let words = self.words_for_remote(store, v);
            self.stats.record_invalidation(words);
        }
        self.clear();
        vertices.len()
    }

    /// Words a hit on `vertex` keeps off the wire: one request id plus one
    /// feature row for remote-owned vertices, nothing for locally-owned ones
    /// (they never travel in the baseline either).
    fn words_for_remote(&self, store: &FeatureStore, vertex: usize) -> usize {
        if store.is_locally_owned(vertex) {
            0
        } else {
            self.feature_dim + 1
        }
    }

    /// Bumps `vertex` to most-recently-used.
    fn touch(&mut self, vertex: usize) {
        if let Some(row) = self.rows.get_mut(&vertex) {
            self.by_tick.remove(&row.tick);
            self.tick += 1;
            row.tick = self.tick;
            self.by_tick.insert(self.tick, vertex);
        }
    }

    /// Inserts a row, evicting least-recently-used entries beyond the
    /// capacity.  `charged` marks a prefetched row whose first lookup must
    /// not count as a saving.
    fn insert(&mut self, vertex: usize, data: &[f64], charged: bool) {
        if self.max_rows == 0 {
            return;
        }
        self.tick += 1;
        if let Some(old) =
            self.rows.insert(vertex, CachedRow { data: data.to_vec(), tick: self.tick, charged })
        {
            self.by_tick.remove(&old.tick);
        }
        self.by_tick.insert(self.tick, vertex);
        while self.rows.len() > self.max_rows {
            let (_, evicted) = self.by_tick.pop_first().expect("rows and index stay in sync");
            self.rows.remove(&evicted);
        }
    }

    /// Prefetches the missing subset of `plan_vertices` with **one**
    /// collective [`FeatureStore::fetch`] round and pins the rows.  Every
    /// rank of `group` must call this collectively (with its own plan); a
    /// rank whose plan is fully resident still participates with an empty
    /// request, which is what keeps the collectives matched.
    ///
    /// Returns the number of rows that were actually fetched.
    ///
    /// # Errors
    ///
    /// Propagates [`FeatureStore::fetch`] errors (group mismatch, vertex out
    /// of range, collective failures).
    pub fn prefetch(
        &mut self,
        store: &FeatureStore,
        comm: &mut Communicator,
        group: &Group,
        plan_vertices: &[usize],
    ) -> Result<usize> {
        let missing: Vec<usize> =
            plan_vertices.iter().copied().filter(|v| !self.rows.contains_key(v)).collect();
        let fetched = store.fetch(comm, group, &missing)?;
        for (i, &v) in missing.iter().enumerate() {
            // A prefetched row is a cache *miss* — it was fetched fresh —
            // exactly as `prime_local` counts on the streaming path, so hit
            // rates are comparable across the two paths and a cold cache is
            // visible in the counters.
            self.stats.record_cache_miss();
            self.insert(v, fetched.row(i), true);
        }
        Ok(missing.len())
    }

    /// Posts the prefetch of `plan_vertices` nonblocking — the overlapped
    /// pipeline's version of [`FeatureCache::prefetch`].  The missing set
    /// excludes both resident rows *and* rows already requested by an earlier
    /// still-pending post, so a software-pipelined schedule (post group
    /// `k + 1` before group `k`'s rows have landed) requests exactly the rows
    /// the synchronous schedule would: per-epoch words stay byte-identical.
    ///
    /// Complete with [`FeatureCache::complete_prefetch`] before the first
    /// [`FeatureCache::gather_pinned`] that needs the rows.
    ///
    /// # Errors
    ///
    /// Propagates [`FeatureStore::post_fetch`] errors.
    pub fn post_prefetch(
        &mut self,
        store: &FeatureStore,
        comm: &mut Communicator,
        group: &Group,
        plan_vertices: &[usize],
    ) -> Result<PendingPrefetch> {
        let missing: Vec<usize> = plan_vertices
            .iter()
            .copied()
            .filter(|v| !self.rows.contains_key(v) && !self.in_flight.contains(v))
            .collect();
        // Mark rows in flight only once the post succeeded: a failed post
        // (group mismatch, out-of-range vertex) must leave the cache exactly
        // as it found it, so a corrected retry re-requests the same rows.
        let fetch = store.post_fetch(comm, group, &missing)?;
        self.in_flight.extend(missing.iter().copied());
        Ok(PendingPrefetch { fetch, missing })
    }

    /// Completes a posted prefetch: waits the in-flight exchange, pins the
    /// fetched rows and records them as the misses that paid for the
    /// transfer (the same accounting as [`FeatureCache::prefetch`]).
    /// Returns the number of rows that crossed the wire.
    ///
    /// # Errors
    ///
    /// Propagates [`PendingFetch::wait`] errors.
    pub fn complete_prefetch(
        &mut self,
        store: &FeatureStore,
        comm: &mut Communicator,
        group: &Group,
        pending: PendingPrefetch,
    ) -> Result<usize> {
        let PendingPrefetch { fetch, missing } = pending;
        let fetched = fetch.wait(store, comm, group)?;
        for (i, &v) in missing.iter().enumerate() {
            self.in_flight.remove(&v);
            self.stats.record_cache_miss();
            self.insert(v, fetched.row(i), true);
        }
        Ok(missing.len())
    }

    /// Serves `vertices` purely from resident rows — the per-step gather of
    /// the pinned mode, after [`FeatureCache::prefetch`] covered the plan.
    /// No collective is issued, so **every** rank must be in pinned mode for
    /// the pipeline to stay matched (the session builder guarantees this).
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::CacheMiss`] if a vertex was never prefetched —
    /// an invariant violation, since the plan is computed from the same
    /// samples that are being trained.
    pub fn gather_pinned(
        &mut self,
        store: &FeatureStore,
        vertices: &[usize],
    ) -> Result<DenseMatrix> {
        let mut out = DenseMatrix::zeros(vertices.len(), self.feature_dim);
        for (i, &v) in vertices.iter().enumerate() {
            let row = self.rows.get_mut(&v).ok_or(GnnError::CacheMiss { vertex: v })?;
            out.row_mut(i).copy_from_slice(&row.data);
            let first_use_of_charged = std::mem::replace(&mut row.charged, false);
            let saved = if first_use_of_charged { 0 } else { self.words_for_remote(store, v) };
            self.stats.record_cache_hit(saved);
        }
        Ok(out)
    }

    /// Read-through fetch for the LRU mode: the collective
    /// [`FeatureStore::fetch`] is **always** issued (so ranks stay matched),
    /// but it carries only the deduplicated cache misses; hits are served
    /// from resident rows and the fetched rows are inserted (evicting LRU
    /// entries beyond the byte budget).
    ///
    /// Returns the rows in the order of `vertices`, byte-identical to an
    /// uncached [`FeatureStore::fetch`] of the full list.
    ///
    /// # Errors
    ///
    /// Propagates [`FeatureStore::fetch`] errors.
    pub fn fetch_through(
        &mut self,
        store: &FeatureStore,
        comm: &mut Communicator,
        group: &Group,
        vertices: &[usize],
    ) -> Result<DenseMatrix> {
        // Deduplicated misses: even within one call, a repeated vertex
        // crosses the wire once.
        let mut missing: Vec<usize> = Vec::new();
        let mut seen_missing: HashMap<usize, usize> = HashMap::new();
        for &v in vertices {
            if !self.rows.contains_key(&v) && !seen_missing.contains_key(&v) {
                seen_missing.insert(v, missing.len());
                missing.push(v);
            }
        }
        let fetched = store.fetch(comm, group, &missing)?;

        let mut out = DenseMatrix::zeros(vertices.len(), self.feature_dim);
        let mut first_use: Vec<bool> = vec![true; missing.len()];
        for (i, &v) in vertices.iter().enumerate() {
            if let Some(&slot) = seen_missing.get(&v) {
                out.row_mut(i).copy_from_slice(fetched.row(slot));
                if first_use[slot] {
                    // The use that paid for the transfer.
                    first_use[slot] = false;
                    self.stats.record_cache_miss();
                } else {
                    // A duplicate of a miss within the same call: the
                    // baseline would have shipped the row again.
                    let saved = self.words_for_remote(store, v);
                    self.stats.record_cache_hit(saved);
                }
            } else {
                let row = self.rows.get(&v).expect("resident: not in the miss set");
                out.row_mut(i).copy_from_slice(&row.data);
                self.touch(v);
                let saved = self.words_for_remote(store, v);
                self.stats.record_cache_hit(saved);
            }
        }
        // Insert after assembly: the inserting use is the one that paid.
        for (slot, &v) in missing.iter().enumerate() {
            self.insert(v, fetched.row(slot), false);
        }
        Ok(out)
    }

    /// Primes the cache from a *local* full feature matrix — the streaming
    /// analogue of [`FeatureCache::prefetch`]: every not-yet-resident vertex
    /// of `vertices` (typically a bulk group's
    /// [`FetchPlan`](dmbs_sampling::FetchPlan) union) is copied in, so the
    /// per-minibatch [`FeatureCache::gather_local`] calls all hit.  Returns
    /// the number of rows inserted.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::VertexOutOfRange`] for vertices outside
    /// `features`.
    pub fn prime_local(&mut self, features: &DenseMatrix, vertices: &[usize]) -> Result<usize> {
        let mut inserted = 0;
        for &v in vertices {
            if self.rows.contains_key(&v) {
                continue;
            }
            if v >= features.rows() {
                return Err(GnnError::VertexOutOfRange { vertex: v, limit: features.rows() });
            }
            self.stats.record_cache_miss();
            self.insert(v, features.row(v), false);
            inserted += 1;
        }
        Ok(inserted)
    }

    /// Read-through gather against a *local* full feature matrix — the
    /// single-device streaming path.  Nothing crosses a wire here, so hits
    /// save no α–β words; they only avoid re-copying rows (and exercise the
    /// same cache machinery the distributed path relies on).
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::VertexOutOfRange`] for vertices outside
    /// `features`.
    pub fn gather_local(
        &mut self,
        features: &DenseMatrix,
        vertices: &[usize],
    ) -> Result<DenseMatrix> {
        let mut out = DenseMatrix::zeros(vertices.len(), self.feature_dim);
        for (i, &v) in vertices.iter().enumerate() {
            if let Some(row) = self.rows.get(&v) {
                out.row_mut(i).copy_from_slice(&row.data);
                self.touch(v);
                self.stats.record_cache_hit(0);
            } else {
                if v >= features.rows() {
                    return Err(GnnError::VertexOutOfRange { vertex: v, limit: features.rows() });
                }
                out.row_mut(i).copy_from_slice(features.row(v));
                self.stats.record_cache_miss();
                self.insert(v, features.row(v), false);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmbs_comm::{ProcessGrid, Runtime};

    fn full_features(n: usize, f: usize) -> DenseMatrix {
        // Row v = [v, v+0.5, v+1.0, ...] so fetched rows are easy to verify.
        DenseMatrix::from_rows(
            &(0..n)
                .map(|v| (0..f).map(|j| v as f64 + j as f64 * 0.5).collect())
                .collect::<Vec<_>>(),
        )
        .unwrap()
    }

    #[test]
    fn shard_construction_and_local_reads() {
        let h = full_features(10, 3);
        let store = FeatureStore::from_full(&h, 3, 1).unwrap();
        assert_eq!(store.feature_dim(), 3);
        assert_eq!(store.local_rows(), 3); // rows 4..7
        let local = store.local_features(&[4, 6]).unwrap();
        assert_eq!(local.get(0, 0), 4.0);
        assert_eq!(local.get(1, 0), 6.0);
        assert!(store.local_features(&[0]).is_err());
        assert!(FeatureStore::from_full(&h, 3, 3).is_err());
    }

    #[test]
    fn fetch_within_process_column_matches_full_matrix() {
        // 4 ranks, c = 2: feature matrix split into 2 block rows; each process
        // column {0,2} / {1,3} holds one full copy.
        let n = 12;
        let h = full_features(n, 4);
        let runtime = Runtime::new(4).unwrap();
        let outs = runtime
            .run(|comm| {
                let grid = ProcessGrid::new(comm.size(), 2).unwrap();
                let (my_row, _) = grid.coords(comm.rank());
                let store = FeatureStore::from_full(&h, grid.rows(), my_row).unwrap();
                let col_group = Group::new(&grid.col_ranks(comm.rank())).unwrap();
                // Each rank wants a different scattered set of vertices.
                let wanted: Vec<usize> = vec![comm.rank(), 11 - comm.rank(), 5];
                let fetched = store.fetch(comm, &col_group, &wanted).unwrap();
                (wanted, fetched)
            })
            .unwrap();
        for out in outs {
            let (wanted, fetched) = out.value;
            for (i, &v) in wanted.iter().enumerate() {
                assert_eq!(fetched.row(i), h.row(v), "vertex {v} features mismatch");
            }
            // Fetching moved data between ranks.
            assert!(out.stats.messages > 0);
        }
    }

    #[test]
    fn norep_fetch_uses_whole_world_and_costs_more_messages() {
        let n = 16;
        let h = full_features(n, 2);
        let runtime = Runtime::new(4).unwrap();

        // Replicated (c = 4 → a single block, fetches are local).
        let rep = runtime
            .run(|comm| {
                let store = FeatureStore::from_full(&h, 1, 0).unwrap();
                let group = Group::new(&[comm.rank()]).unwrap();
                let fetched = store.fetch(comm, &group, &[1, 7, 13]).unwrap();
                (fetched.get(2, 0), comm.stats().words_sent)
            })
            .unwrap();
        // NoRep (one block per rank, fetch across the whole world).
        let norep = runtime
            .run(|comm| {
                let store = FeatureStore::from_full(&h, comm.size(), comm.rank()).unwrap();
                let world = comm.world();
                let fetched = store.fetch(comm, &world, &[1, 7, 13]).unwrap();
                (fetched.get(2, 0), comm.stats().words_sent)
            })
            .unwrap();
        for (r, n_) in rep.iter().zip(&norep) {
            assert_eq!(r.value.0, 13.0);
            assert_eq!(n_.value.0, 13.0);
            // NoRep ships feature rows over the (simulated) network; the fully
            // replicated store ships nothing.
            assert_eq!(r.value.1, 0);
            assert!(n_.value.1 > 0);
        }
    }

    #[test]
    fn fetch_under_compressed_codecs_balances_the_byte_book() {
        let n = 16;
        let f = 8;
        let h = full_features(n, f);
        let runtime = Runtime::new(4).unwrap();
        let wanted: Vec<usize> = vec![1, 7, 13, 2, 11, 5];
        let run = |codec: Codec| {
            runtime
                .run(|comm| {
                    let store = FeatureStore::from_full(&h, comm.size(), comm.rank())
                        .unwrap()
                        .with_codec(codec);
                    assert_eq!(store.codec(), codec);
                    let world = comm.world();
                    let fetched = store.fetch(comm, &world, &wanted).unwrap();
                    (fetched, comm.stats())
                })
                .unwrap()
        };
        let exact = run(Codec::Exact);
        for e in &exact {
            // Exact: the byte book is exactly 8 × words, nothing saved.
            assert_eq!(e.value.1.bytes_on_wire, e.value.1.words_sent * 8);
            assert_eq!(e.value.1.bytes_saved, 0);
            for (i, &v) in wanted.iter().enumerate() {
                assert_eq!(e.value.0.row(i), h.row(v));
            }
        }
        for codec in [Codec::Fp16, Codec::Int8] {
            let out = run(codec);
            for (e, o) in exact.iter().zip(&out) {
                // Identical logical traffic; strictly fewer wire bytes; the
                // balance identity holds per rank.
                assert_eq!(e.value.1.words_sent, o.value.1.words_sent);
                assert_eq!(e.value.1.messages, o.value.1.messages);
                assert!(o.value.1.bytes_on_wire < e.value.1.bytes_on_wire, "{codec}");
                assert_eq!(
                    o.value.1.bytes_on_wire + o.value.1.bytes_saved,
                    e.value.1.bytes_on_wire,
                    "{codec}: byte books must balance"
                );
                // Decoded rows stay within the codec's error bound.
                for (i, &v) in wanted.iter().enumerate() {
                    let max_abs = h.row(v).iter().fold(0.0f64, |m, &x| m.max(x.abs()));
                    for (a, b) in h.row(v).iter().zip(o.value.0.row(i)) {
                        let tol = match codec {
                            Codec::Exact => 0.0,
                            Codec::Fp16 => a.abs() / 1024.0 + 1e-12,
                            Codec::Int8 => max_abs / 254.0 + 1e-12,
                        };
                        assert!((a - b).abs() <= tol, "{codec}: {a} vs {b}");
                    }
                }
            }
        }
    }

    #[test]
    fn fetch_validates_group_and_vertices() {
        let h = full_features(8, 2);
        let runtime = Runtime::new(2).unwrap();
        let outs = runtime
            .run(|comm| {
                let store = FeatureStore::from_full(&h, 2, comm.rank()).unwrap();
                let wrong_group = Group::new(&[comm.rank()]).unwrap();
                let bad_group = store.fetch(comm, &wrong_group, &[0]).is_err();
                let world = comm.world();
                let bad_vertex = store.fetch(comm, &world, &[99]).is_err();
                bad_group && bad_vertex
            })
            .unwrap();
        assert!(outs.iter().all(|o| o.value));
    }

    #[test]
    fn pinned_prefetch_then_gather_matches_direct_fetch_and_saves_words() {
        let n = 16;
        let f = 4;
        let h = full_features(n, f);
        let runtime = Runtime::new(4).unwrap();
        // Each rank wants the same scattered list twice (two "steps").
        let wanted: Vec<usize> = vec![1, 7, 13, 7, 2];
        let uncached = runtime
            .run(|comm| {
                let store = FeatureStore::from_full(&h, comm.size(), comm.rank()).unwrap();
                let world = comm.world();
                let a = store.fetch(comm, &world, &wanted).unwrap();
                let b = store.fetch(comm, &world, &wanted).unwrap();
                (a, b, comm.stats().words_sent)
            })
            .unwrap();
        let cached = runtime
            .run(|comm| {
                let store = FeatureStore::from_full(&h, comm.size(), comm.rank()).unwrap();
                let world = comm.world();
                let mut cache = FeatureCache::new(FeatureCacheConfig::EpochPinned, f);
                let mut plan = wanted.clone();
                plan.sort_unstable();
                plan.dedup();
                cache.prefetch(&store, comm, &world, &plan).unwrap();
                let a = cache.gather_pinned(&store, &wanted).unwrap();
                let b = cache.gather_pinned(&store, &wanted).unwrap();
                (a, b, comm.stats().words_sent, *cache.stats())
            })
            .unwrap();
        let mut words_uncached = 0;
        let mut words_cached = 0;
        let mut words_saved = 0;
        for (u, c) in uncached.iter().zip(&cached) {
            assert_eq!(u.value.0, c.value.0, "first gather diverged");
            assert_eq!(u.value.1, c.value.1, "second gather diverged");
            words_uncached += u.value.2;
            words_cached += c.value.2;
            words_saved += c.value.3.words_saved;
            // Ten lookups per rank, all hits after the prefetch; the four
            // unique prefetched rows count as the misses that paid.
            assert_eq!(c.value.3.cache_hits, 10);
            assert_eq!(c.value.3.cache_misses, 4);
        }
        assert!(words_cached < words_uncached, "{words_cached} !< {words_uncached}");
        // The cache's books balance: saved + sent == the uncached bill.
        assert_eq!(words_cached + words_saved, words_uncached);
    }

    #[test]
    fn posted_fetch_matches_blocking_fetch_and_traffic() {
        let n = 16;
        let f = 4;
        let h = full_features(n, f);
        let runtime = Runtime::new(4).unwrap();
        let wanted: Vec<usize> = vec![3, 14, 9, 14, 0];
        let outs = runtime
            .run(|comm| {
                let store = FeatureStore::from_full(&h, comm.size(), comm.rank()).unwrap();
                let world = comm.world();
                let blocking = store.fetch(comm, &world, &wanted).unwrap();
                let words_blocking = comm.stats().words_sent;
                let pending = store.post_fetch(comm, &world, &wanted).unwrap();
                let after_post = comm.stats().words_sent;
                // Blocking traffic runs while the fetch is in flight.
                comm.barrier().unwrap();
                let _ = comm.allreduce(comm.rank(), |a, b| a + b).unwrap();
                let before_wait = comm.stats().words_sent;
                let posted = pending.wait(&store, comm, &world).unwrap();
                let words_posted =
                    (after_post - words_blocking) + (comm.stats().words_sent - before_wait);
                (blocking == posted, words_blocking, words_posted)
            })
            .unwrap();
        for o in &outs {
            assert!(o.value.0, "posted fetch diverged from blocking fetch");
        }
        // Identical traffic, summed across ranks (per-rank request volume is
        // owner-dependent, but the collective's bill is schedule-invariant).
        let blocking_total: usize = outs.iter().map(|o| o.value.1).sum();
        let posted_total: usize = outs.iter().map(|o| o.value.2).sum();
        assert_eq!(blocking_total, posted_total);
    }

    #[test]
    fn pipelined_posted_prefetches_request_exactly_the_synchronous_rows() {
        // Two bulk groups with overlapping plans: posting group 1's prefetch
        // before group 0's rows have landed must still request exactly what
        // the synchronous schedule would (the in-flight set dedups), so the
        // per-epoch words match bit for bit.
        let n = 16;
        let f = 3;
        let h = full_features(n, f);
        let runtime = Runtime::new(2).unwrap();
        let plan0: Vec<usize> = vec![1, 5, 9, 13];
        let plan1: Vec<usize> = vec![5, 9, 2, 6]; // overlaps plan0 on {5, 9}
        let sync = runtime
            .run(|comm| {
                let store = FeatureStore::from_full(&h, comm.size(), comm.rank()).unwrap();
                let world = comm.world();
                let mut cache = FeatureCache::new(FeatureCacheConfig::EpochPinned, f);
                cache.prefetch(&store, comm, &world, &plan0).unwrap();
                let a = cache.gather_pinned(&store, &plan0).unwrap();
                cache.prefetch(&store, comm, &world, &plan1).unwrap();
                let b = cache.gather_pinned(&store, &plan1).unwrap();
                (a, b, comm.stats().words_sent, *cache.stats())
            })
            .unwrap();
        let pipelined = runtime
            .run(|comm| {
                let store = FeatureStore::from_full(&h, comm.size(), comm.rank()).unwrap();
                let world = comm.world();
                let mut cache = FeatureCache::new(FeatureCacheConfig::EpochPinned, f);
                // Software pipeline: both posts in flight before either wait.
                let p0 = cache.post_prefetch(&store, comm, &world, &plan0).unwrap();
                let p1 = cache.post_prefetch(&store, comm, &world, &plan1).unwrap();
                assert_eq!(p1.requested(), &[2, 6], "in-flight rows must not re-travel");
                cache.complete_prefetch(&store, comm, &world, p0).unwrap();
                let a = cache.gather_pinned(&store, &plan0).unwrap();
                cache.complete_prefetch(&store, comm, &world, p1).unwrap();
                let b = cache.gather_pinned(&store, &plan1).unwrap();
                (a, b, comm.stats().words_sent, *cache.stats())
            })
            .unwrap();
        for (s, p) in sync.iter().zip(&pipelined) {
            assert_eq!(s.value.0, p.value.0, "group 0 rows diverged");
            assert_eq!(s.value.1, p.value.1, "group 1 rows diverged");
            assert_eq!(s.value.2, p.value.2, "pipelined words diverged from synchronous");
            assert_eq!(s.value.3, p.value.3, "cache counters diverged");
        }
    }

    #[test]
    fn pinned_gather_misses_are_typed() {
        let h = full_features(8, 2);
        let runtime = Runtime::new(1).unwrap();
        let outs = runtime
            .run(|comm| {
                let store = FeatureStore::from_full(&h, 1, 0).unwrap();
                let world = comm.world();
                let mut cache = FeatureCache::new(FeatureCacheConfig::EpochPinned, 2);
                cache.prefetch(&store, comm, &world, &[1, 2]).unwrap();
                cache.gather_pinned(&store, &[1, 5]).unwrap_err()
            })
            .unwrap();
        assert_eq!(outs[0].value, GnnError::CacheMiss { vertex: 5 });
    }

    #[test]
    fn lru_fetch_through_matches_direct_fetch_and_respects_budget() {
        let n = 12;
        let f = 3;
        let h = full_features(n, f);
        let runtime = Runtime::new(2).unwrap();
        let steps: Vec<Vec<usize>> = vec![vec![0, 5, 5, 9], vec![5, 9, 1], vec![0, 1, 11]];
        let outs = runtime
            .run(|comm| {
                let store = FeatureStore::from_full(&h, comm.size(), comm.rank()).unwrap();
                let world = comm.world();
                // Budget for exactly two rows of 3 f64 words.
                let budget = 2 * f * std::mem::size_of::<f64>();
                let mut cache =
                    FeatureCache::new(FeatureCacheConfig::Lru { byte_budget: budget }, f);
                let mut outputs = Vec::new();
                for wanted in &steps {
                    let via_cache = cache.fetch_through(&store, comm, &world, wanted).unwrap();
                    outputs.push(via_cache);
                    assert!(cache.resident_rows() <= 2, "budget exceeded");
                }
                (outputs, *cache.stats())
            })
            .unwrap();
        // Reference without any cache.
        let reference = runtime
            .run(|comm| {
                let store = FeatureStore::from_full(&h, comm.size(), comm.rank()).unwrap();
                let world = comm.world();
                steps.iter().map(|w| store.fetch(comm, &world, w).unwrap()).collect::<Vec<_>>()
            })
            .unwrap();
        for (o, r) in outs.iter().zip(&reference) {
            assert_eq!(o.value.0, r.value, "LRU read-through diverged from direct fetch");
            // The duplicate 5 in step one is served without a second transfer.
            assert!(o.value.1.cache_hits > 0);
            assert!(o.value.1.cache_misses > 0);
        }
    }

    #[test]
    fn zero_budget_lru_caches_nothing_but_stays_correct() {
        let h = full_features(8, 2);
        let runtime = Runtime::new(2).unwrap();
        let outs = runtime
            .run(|comm| {
                let store = FeatureStore::from_full(&h, comm.size(), comm.rank()).unwrap();
                let world = comm.world();
                let mut cache = FeatureCache::new(FeatureCacheConfig::Lru { byte_budget: 0 }, 2);
                let a = cache.fetch_through(&store, comm, &world, &[3, 3, 6]).unwrap();
                let direct = store.fetch(comm, &world, &[3, 3, 6]).unwrap();
                assert_eq!(cache.resident_rows(), 0);
                a == direct
            })
            .unwrap();
        assert!(outs.iter().all(|o| o.value));
    }

    #[test]
    fn gather_local_read_through_matches_gather_rows() {
        let h = full_features(10, 3);
        let mut cache = FeatureCache::new(FeatureCacheConfig::EpochPinned, 3);
        let wanted = vec![2, 7, 2, 9, 7];
        let via_cache = cache.gather_local(&h, &wanted).unwrap();
        let direct = h.gather_rows(&wanted).unwrap();
        assert_eq!(via_cache, direct);
        assert_eq!(cache.stats().cache_misses, 3); // 2, 7, 9
        assert_eq!(cache.stats().cache_hits, 2); // the repeats
        assert_eq!(cache.stats().words_saved, 0); // nothing crosses a wire
        assert_eq!(
            cache.gather_local(&h, &[99]).unwrap_err(),
            GnnError::VertexOutOfRange { vertex: 99, limit: 10 }
        );
        assert!(FeatureCacheConfig::EpochPinned.is_enabled());
        assert!(!FeatureCacheConfig::Off.is_enabled());
        cache.clear();
        assert_eq!(cache.resident_rows(), 0);
    }
}

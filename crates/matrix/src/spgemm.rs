//! Sparse general matrix-matrix multiplication (SpGEMM) — the *general* tier
//! of the three-tier kernel story.
//!
//! The central kernel of the paper: sampling probability distributions are
//! produced by `P ← Q^l · A` and LADIES extraction by `Q_R · A · Q_C`, all of
//! which are sparse × sparse products.  The paper uses nsparse / cuSPARSE on
//! GPU; here we implement the same row-wise (Gustavson) formulation with a
//! dense-accumulator or hash-map accumulator chosen per row.
//!
//! Not every product needs the general machinery, though.  The extraction
//! operands are selection matrices with one nonzero per row/column, and for
//! those the [`crate::extract`] kernels compute the identical result as a
//! row gather ([`crate::extract::extract_rows`]) or a masked column filter
//! ([`crate::extract::extract_columns_masked`]) with no accumulation at all.
//! The tiers, from general to structure-exploiting:
//!
//! 1. **Gustavson SpGEMM** (this module) — arbitrary operands: the LADIES
//!    indicator probability step (several nonzeros per `Q` row) and the
//!    distributed 1.5D multiplies;
//! 2. **masked column filter** — `A · Q_C` with one nonzero per column of
//!    `Q_C`;
//! 3. **row gather** — `Q_R · A` with one nonzero per row of `Q_R`
//!    (GraphSAGE's entire probability step and LADIES row extraction).
//!
//! The serial kernels ([`spgemm`]) are deliberately kept as an *independent
//! reference implementation* of the two-pass kernel
//! ([`spgemm_parallel`] / [`spgemm_parallel_with`]): the inner Gustavson
//! loops exist in both, and the byte-identity contract between them is
//! pinned by `prop_spgemm_parallel_byte_identical_to_serial` (random inputs,
//! 1/2/8 threads, including cancellation zeros).  When editing either copy,
//! keep the accumulation order, the dense/hash `DENSE_ACCUM_MAX_COLS`
//! dispatch and the explicit-zero retention in sync — the proptests will
//! fail loudly if they drift.
//!
//! The two-pass kernel draws its dense accumulators, marker arrays and
//! symbolic-count scratch from a [`SpgemmWorkspace`] (thread-local by
//! default), so repeated probability steps stop reallocating their scratch
//! on every call — see [`crate::workspace`].

use crate::csr::CsrMatrix;
use crate::error::MatrixError;
use crate::pool::{block_ranges, Parallelism};
use crate::prefix::counts_to_offsets;
use crate::workspace::{with_workspace, SpgemmWorkspace, WorkerScratch};
use crate::Result;
use std::collections::{HashMap, HashSet};
use std::ops::Range;

/// Threshold on the number of columns below which a dense accumulator row is
/// used instead of a hash map.  Dense accumulation is faster but costs
/// `O(cols)` scratch per call.
const DENSE_ACCUM_MAX_COLS: usize = 1 << 16;

/// Computes the sparse product `lhs * rhs` of two CSR matrices.
///
/// Uses Gustavson's row-wise algorithm: row `i` of the output is the linear
/// combination of the rows of `rhs` selected by the nonzeros of row `i` of
/// `lhs`.  Numerically zero entries produced by cancellation are kept (they
/// are structurally meaningful for sampling masks).
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] if `lhs.cols() != rhs.rows()`.
///
/// # Example
///
/// ```
/// use dmbs_matrix::{CooMatrix, CsrMatrix, spgemm::spgemm};
///
/// # fn main() -> Result<(), dmbs_matrix::MatrixError> {
/// let a = CsrMatrix::from_coo(&CooMatrix::from_triples(2, 2, vec![(0, 1, 2.0)])?);
/// let b = CsrMatrix::from_coo(&CooMatrix::from_triples(2, 2, vec![(1, 0, 3.0)])?);
/// let c = spgemm(&a, &b)?;
/// assert_eq!(c.get(0, 0), 6.0);
/// # Ok(())
/// # }
/// ```
pub fn spgemm(lhs: &CsrMatrix, rhs: &CsrMatrix) -> Result<CsrMatrix> {
    if lhs.cols() != rhs.rows() {
        return Err(MatrixError::DimensionMismatch {
            op: "spgemm",
            lhs: lhs.shape(),
            rhs: rhs.shape(),
        });
    }
    if rhs.cols() <= DENSE_ACCUM_MAX_COLS {
        spgemm_dense_accum(lhs, rhs)
    } else {
        spgemm_hash_accum(lhs, rhs)
    }
}

/// Computes the sparse product `lhs * rhs` on a scoped worker pool.
///
/// Row-blocked Gustavson SpGEMM in two passes: a **symbolic** pass counts the
/// output nonzeros of every row (parallel over contiguous row blocks, one
/// dense/hash scratch per worker), a prefix sum turns the counts into CSR
/// offsets, and a **numeric** pass fills each block's disjoint slice of the
/// output `indices`/`values` buffers in place.  Because every output row is
/// computed exactly as the serial kernel computes it (same accumulation
/// order, same sort), the result is **byte-identical to [`spgemm`] at any
/// thread count** — see the determinism proptests.
///
/// Scratch (dense accumulators, markers, symbolic counts) comes from this
/// thread's reusable [`SpgemmWorkspace`], so back-to-back products — the
/// per-layer probability steps of a bulk sampling epoch — allocate nothing
/// but their output buffers.  Use [`spgemm_parallel_with`] to supply an
/// explicit workspace instead.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] if `lhs.cols() != rhs.rows()`.
///
/// # Example
///
/// ```
/// use dmbs_matrix::pool::Parallelism;
/// use dmbs_matrix::spgemm::{spgemm, spgemm_parallel};
/// use dmbs_matrix::{CooMatrix, CsrMatrix};
///
/// # fn main() -> Result<(), dmbs_matrix::MatrixError> {
/// let a = CsrMatrix::from_coo(&CooMatrix::from_triples(
///     3, 3, vec![(0, 1, 2.0), (1, 2, 0.5), (2, 0, -1.0)],
/// )?);
/// let serial = spgemm(&a, &a)?;
/// let parallel = spgemm_parallel(&a, &a, Parallelism::new(4))?;
/// assert_eq!(parallel, serial); // byte-identical, not just approximately
/// # Ok(())
/// # }
/// ```
pub fn spgemm_parallel(
    lhs: &CsrMatrix,
    rhs: &CsrMatrix,
    parallelism: Parallelism,
) -> Result<CsrMatrix> {
    with_workspace(true, |ws| spgemm_parallel_with(lhs, rhs, parallelism, ws))
}

/// [`spgemm_parallel`] with an explicit scratch workspace.
///
/// Runs the two-pass kernel at any block count (including one, where the
/// preallocated-buffer fill still beats the serial `from_rows` path), and is
/// byte-identical to [`spgemm`] regardless of `parallelism` or the state of
/// `ws`.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] if `lhs.cols() != rhs.rows()`.
pub fn spgemm_parallel_with(
    lhs: &CsrMatrix,
    rhs: &CsrMatrix,
    parallelism: Parallelism,
    ws: &mut SpgemmWorkspace,
) -> Result<CsrMatrix> {
    if lhs.cols() != rhs.rows() {
        return Err(MatrixError::DimensionMismatch {
            op: "spgemm_parallel",
            lhs: lhs.shape(),
            rhs: rhs.shape(),
        });
    }
    let rows = lhs.rows();
    if rows == 0 {
        return Ok(CsrMatrix::zeros(0, rhs.cols()));
    }
    let blocks = block_ranges(rows, parallelism.effective_blocks(rows));
    let use_dense = rhs.cols() <= DENSE_ACCUM_MAX_COLS;
    let dense_cols = if use_dense { rhs.cols() } else { 0 };

    // Disjoint borrows of the workspace fields used by the two passes.
    let counts = &mut ws.counts;
    counts.clear();
    counts.resize(rows, 0);
    if ws.workers.len() < blocks.len() {
        ws.workers.resize_with(blocks.len(), WorkerScratch::default);
    }
    let workers = &mut ws.workers[..blocks.len()];
    for w in workers.iter_mut() {
        w.ensure_cols(dense_cols);
    }

    // Pass 1 (symbolic): per-row output nnz, computed block-parallel with
    // one reusable scratch set per block.
    if blocks.len() <= 1 {
        symbolic_count_block(lhs, rhs, blocks[0].clone(), counts, &mut workers[0], use_dense);
    } else {
        let pass = crossbeam::thread::scope(|scope| {
            let mut counts_tail = counts.as_mut_slice();
            let mut workers_tail = &mut workers[..];
            let mut handles = Vec::with_capacity(blocks.len());
            for range in &blocks {
                let (counts_head, rest) =
                    std::mem::take(&mut counts_tail).split_at_mut(range.len());
                counts_tail = rest;
                let (scratch, rest) = std::mem::take(&mut workers_tail).split_at_mut(1);
                workers_tail = rest;
                let range = range.clone();
                handles.push(scope.spawn(move || {
                    symbolic_count_block(lhs, rhs, range, counts_head, &mut scratch[0], use_dense)
                }));
            }
            for handle in handles {
                if let Err(payload) = handle.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        });
        if let Err(payload) = pass {
            std::panic::resume_unwind(payload);
        }
    }

    // Prefix: counts -> CSR row offsets.
    let indptr = counts_to_offsets(counts);
    let total = indptr[rows];

    // Pass 2 (numeric): every block fills its disjoint slice of the output.
    let mut indices = vec![0usize; total];
    let mut values = vec![0.0f64; total];
    if blocks.len() <= 1 {
        numeric_fill_block(
            lhs,
            rhs,
            blocks[0].clone(),
            &indptr,
            &mut indices,
            &mut values,
            &mut workers[0],
            use_dense,
        );
    } else {
        let fill = crossbeam::thread::scope(|scope| {
            let mut idx_tail = indices.as_mut_slice();
            let mut val_tail = values.as_mut_slice();
            let mut workers_tail = &mut workers[..];
            let mut handles = Vec::with_capacity(blocks.len());
            for range in blocks {
                let len = indptr[range.end] - indptr[range.start];
                let (idx_head, rest) = std::mem::take(&mut idx_tail).split_at_mut(len);
                idx_tail = rest;
                let (val_head, rest) = std::mem::take(&mut val_tail).split_at_mut(len);
                val_tail = rest;
                let (scratch, rest) = std::mem::take(&mut workers_tail).split_at_mut(1);
                workers_tail = rest;
                let indptr = &indptr;
                handles.push(scope.spawn(move || {
                    numeric_fill_block(
                        lhs,
                        rhs,
                        range,
                        indptr,
                        idx_head,
                        val_head,
                        &mut scratch[0],
                        use_dense,
                    )
                }));
            }
            for handle in handles {
                if let Err(payload) = handle.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        });
        if let Err(payload) = fill {
            std::panic::resume_unwind(payload);
        }
    }
    CsrMatrix::from_raw(rows, rhs.cols(), indptr, indices, values)
}

/// Symbolic pass: writes the number of distinct output columns of every row
/// in `range` into `counts` (one slot per row of the range), using the
/// worker's reusable dense mark vector or a hash set.
fn symbolic_count_block(
    lhs: &CsrMatrix,
    rhs: &CsrMatrix,
    range: Range<usize>,
    counts: &mut [usize],
    scratch: &mut WorkerScratch,
    use_dense: bool,
) {
    let start = range.start;
    if use_dense {
        let marked = &mut scratch.marked;
        let touched = &mut scratch.touched;
        for i in range {
            for &k in lhs.row_indices(i) {
                for &j in rhs.row_indices(k) {
                    if !marked[j] {
                        marked[j] = true;
                        touched.push(j);
                    }
                }
            }
            counts[i - start] = touched.len();
            for &j in touched.iter() {
                marked[j] = false;
            }
            touched.clear();
        }
    } else {
        let mut seen: HashSet<usize> = HashSet::new();
        for i in range {
            for &k in lhs.row_indices(i) {
                seen.extend(rhs.row_indices(k).iter().copied());
            }
            counts[i - start] = seen.len();
            seen.clear();
        }
    }
}

/// Numeric pass: recomputes the rows of `range` with the same accumulation
/// order as the serial kernel and writes them into this block's slice of the
/// output buffers (`indices`/`values` start at `indptr[range.start]`).
#[allow(clippy::too_many_arguments)]
fn numeric_fill_block(
    lhs: &CsrMatrix,
    rhs: &CsrMatrix,
    range: Range<usize>,
    indptr: &[usize],
    indices: &mut [usize],
    values: &mut [f64],
    scratch: &mut WorkerScratch,
    use_dense: bool,
) {
    let base = indptr[range.start];
    if use_dense {
        let accum = &mut scratch.accum;
        let marked = &mut scratch.marked;
        let touched = &mut scratch.touched;
        for i in range {
            for (&k, &lv) in lhs.row_indices(i).iter().zip(lhs.row_values(i)) {
                for (&j, &rv) in rhs.row_indices(k).iter().zip(rhs.row_values(k)) {
                    if !marked[j] {
                        marked[j] = true;
                        touched.push(j);
                    }
                    accum[j] += lv * rv;
                }
            }
            touched.sort_unstable();
            let start = indptr[i] - base;
            for (slot, &j) in touched.iter().enumerate() {
                indices[start + slot] = j;
                values[start + slot] = accum[j];
                accum[j] = 0.0;
                marked[j] = false;
            }
            touched.clear();
        }
    } else {
        for i in range {
            let mut accum: HashMap<usize, f64> = HashMap::new();
            for (&k, &lv) in lhs.row_indices(i).iter().zip(lhs.row_values(i)) {
                for (&j, &rv) in rhs.row_indices(k).iter().zip(rhs.row_values(k)) {
                    *accum.entry(j).or_insert(0.0) += lv * rv;
                }
            }
            let mut row: Vec<(usize, f64)> = accum.into_iter().collect();
            row.sort_unstable_by_key(|&(c, _)| c);
            let start = indptr[i] - base;
            for (slot, (j, v)) in row.into_iter().enumerate() {
                indices[start + slot] = j;
                values[start + slot] = v;
            }
        }
    }
}

/// Row-wise SpGEMM using a dense accumulator of length `rhs.cols()`.
fn spgemm_dense_accum(lhs: &CsrMatrix, rhs: &CsrMatrix) -> Result<CsrMatrix> {
    let out_cols = rhs.cols();
    let mut accum: Vec<f64> = vec![0.0; out_cols];
    let mut touched: Vec<usize> = Vec::new();
    let mut marked: Vec<bool> = vec![false; out_cols];
    let mut row_data: Vec<Vec<(usize, f64)>> = Vec::with_capacity(lhs.rows());

    for i in 0..lhs.rows() {
        for (&k, &lv) in lhs.row_indices(i).iter().zip(lhs.row_values(i)) {
            for (&j, &rv) in rhs.row_indices(k).iter().zip(rhs.row_values(k)) {
                if !marked[j] {
                    marked[j] = true;
                    touched.push(j);
                }
                accum[j] += lv * rv;
            }
        }
        touched.sort_unstable();
        let row: Vec<(usize, f64)> = touched.iter().map(|&j| (j, accum[j])).collect();
        for &j in &touched {
            accum[j] = 0.0;
            marked[j] = false;
        }
        touched.clear();
        row_data.push(row);
    }
    CsrMatrix::from_rows(lhs.rows(), out_cols, row_data)
}

/// Row-wise SpGEMM using a hash-map accumulator; used for very wide outputs
/// where a dense scratch row would be wasteful.
fn spgemm_hash_accum(lhs: &CsrMatrix, rhs: &CsrMatrix) -> Result<CsrMatrix> {
    let out_cols = rhs.cols();
    let mut row_data: Vec<Vec<(usize, f64)>> = Vec::with_capacity(lhs.rows());
    for i in 0..lhs.rows() {
        let mut accum: HashMap<usize, f64> = HashMap::new();
        for (&k, &lv) in lhs.row_indices(i).iter().zip(lhs.row_values(i)) {
            for (&j, &rv) in rhs.row_indices(k).iter().zip(rhs.row_values(k)) {
                *accum.entry(j).or_insert(0.0) += lv * rv;
            }
        }
        let mut row: Vec<(usize, f64)> = accum.into_iter().collect();
        row.sort_unstable_by_key(|&(c, _)| c);
        row_data.push(row);
    }
    CsrMatrix::from_rows(lhs.rows(), out_cols, row_data)
}

/// Computes `lhs * rhs` where `rhs` is given as a *set of rows* of a larger
/// matrix (a "fetched" sub-matrix): `rhs_rows[k]` holds the sparse row of the
/// logical right operand for global row index `row_ids[k]`.
///
/// This is the local multiply used by the sparsity-aware 1.5D algorithm
/// (Algorithm 2 in the paper): the left block `Q^l_{ik}` only needs the rows
/// of `A_k` matching its nonzero columns, which are delivered by
/// communication and passed here without materialising the full block.
///
/// Rows of the right operand that were not supplied are treated as empty.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] if `row_ids` and `rhs_rows`
/// have different lengths.
pub fn spgemm_with_fetched_rows(
    lhs: &CsrMatrix,
    row_ids: &[usize],
    rhs_rows: &[Vec<(usize, f64)>],
    out_cols: usize,
) -> Result<CsrMatrix> {
    if row_ids.len() != rhs_rows.len() {
        return Err(MatrixError::DimensionMismatch {
            op: "spgemm_with_fetched_rows",
            lhs: (row_ids.len(), 0),
            rhs: (rhs_rows.len(), 0),
        });
    }
    // Map global row id -> position in rhs_rows.
    let lookup: HashMap<usize, usize> = row_ids.iter().enumerate().map(|(i, &r)| (r, i)).collect();
    let mut row_data: Vec<Vec<(usize, f64)>> = Vec::with_capacity(lhs.rows());
    for i in 0..lhs.rows() {
        let mut accum: HashMap<usize, f64> = HashMap::new();
        for (&k, &lv) in lhs.row_indices(i).iter().zip(lhs.row_values(i)) {
            if let Some(&pos) = lookup.get(&k) {
                for &(j, rv) in &rhs_rows[pos] {
                    *accum.entry(j).or_insert(0.0) += lv * rv;
                }
            }
        }
        let mut row: Vec<(usize, f64)> = accum.into_iter().collect();
        row.sort_unstable_by_key(|&(c, _)| c);
        row_data.push(row);
    }
    CsrMatrix::from_rows(lhs.rows(), out_cols, row_data)
}

/// Reference SpGEMM that multiplies via dense matrices.  Only for testing the
/// sparse kernels on small inputs.
pub fn spgemm_dense_reference(lhs: &CsrMatrix, rhs: &CsrMatrix) -> Result<CsrMatrix> {
    if lhs.cols() != rhs.rows() {
        return Err(MatrixError::DimensionMismatch {
            op: "spgemm_dense_reference",
            lhs: lhs.shape(),
            rhs: rhs.shape(),
        });
    }
    let dense = lhs.to_dense().matmul(&rhs.to_dense())?;
    let mut coo = crate::CooMatrix::new(lhs.rows(), rhs.cols());
    for r in 0..lhs.rows() {
        for c in 0..rhs.cols() {
            let v = dense.get(r, c);
            if v != 0.0 {
                coo.push(r, c, v)?;
            }
        }
    }
    Ok(CsrMatrix::from_coo(&coo))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn figure1_graph() -> CsrMatrix {
        let edges = [
            (0, 1),
            (1, 0),
            (1, 2),
            (1, 4),
            (2, 1),
            (2, 3),
            (3, 2),
            (3, 4),
            (3, 5),
            (4, 1),
            (4, 3),
            (4, 5),
            (5, 3),
            (5, 4),
        ];
        let coo = CooMatrix::from_triples(6, 6, edges.iter().map(|&(r, c)| (r, c, 1.0))).unwrap();
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn identity_is_neutral() {
        let a = figure1_graph();
        let i = CsrMatrix::identity(6);
        assert_eq!(spgemm(&i, &a).unwrap(), a);
        assert_eq!(spgemm(&a, &i).unwrap(), a);
    }

    #[test]
    fn dimension_mismatch() {
        let a = CsrMatrix::zeros(2, 3);
        let b = CsrMatrix::zeros(2, 3);
        assert!(matches!(spgemm(&a, &b), Err(MatrixError::DimensionMismatch { .. })));
    }

    #[test]
    fn graphsage_probability_rows_from_paper() {
        // Q^L for batch {1, 5} (GraphSAGE construction) times A gives the
        // neighborhoods of vertices 1 and 5 — the example in Figure 2a.
        let a = figure1_graph();
        let q = CsrMatrix::from_coo(
            &CooMatrix::from_triples(2, 6, vec![(0, 1, 1.0), (1, 5, 1.0)]).unwrap(),
        );
        let p = spgemm(&q, &a).unwrap();
        assert_eq!(p.row_indices(0), &[0, 2, 4]);
        assert_eq!(p.row_indices(1), &[3, 4]);
    }

    #[test]
    fn ladies_probability_row_from_paper() {
        // Q^L for LADIES is a single row with nonzeros at the batch vertices
        // {1, 5}; P = Q A counts, per column, how many batch vertices point to
        // it — the example in Figure 2b gives [1, 0, 1, 1, 2, 0], which after
        // the LADIES squared normalization becomes [1/7, 0, 1/7, 1/7, 4/7, 0].
        let a = figure1_graph();
        let q = CsrMatrix::from_coo(
            &CooMatrix::from_triples(1, 6, vec![(0, 1, 1.0), (0, 5, 1.0)]).unwrap(),
        );
        let p = spgemm(&q, &a).unwrap();
        assert_eq!(p.get(0, 0), 1.0);
        assert_eq!(p.get(0, 1), 0.0);
        assert_eq!(p.get(0, 2), 1.0);
        assert_eq!(p.get(0, 3), 1.0);
        assert_eq!(p.get(0, 4), 2.0);
        assert_eq!(p.get(0, 5), 0.0);
    }

    #[test]
    fn hash_and_dense_accumulators_agree() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut coo_a = CooMatrix::new(30, 40);
        let mut coo_b = CooMatrix::new(40, 25);
        for _ in 0..200 {
            coo_a
                .push(rng.gen_range(0..30), rng.gen_range(0..40), rng.gen_range(-2.0..2.0))
                .unwrap();
            coo_b
                .push(rng.gen_range(0..40), rng.gen_range(0..25), rng.gen_range(-2.0..2.0))
                .unwrap();
        }
        let a = CsrMatrix::from_coo(&coo_a);
        let b = CsrMatrix::from_coo(&coo_b);
        let dense = spgemm_dense_accum(&a, &b).unwrap();
        let hash = spgemm_hash_accum(&a, &b).unwrap();
        assert!(dense.approx_eq(&hash, 1e-9));
    }

    #[test]
    fn fetched_rows_matches_full_spgemm() {
        let a = figure1_graph();
        let q = CsrMatrix::from_coo(
            &CooMatrix::from_triples(2, 6, vec![(0, 1, 1.0), (1, 5, 1.0)]).unwrap(),
        );
        // Supply only the rows of A that q actually needs (rows 1 and 5).
        let needed = vec![1usize, 5usize];
        let rows: Vec<Vec<(usize, f64)>> = needed
            .iter()
            .map(|&r| a.row_indices(r).iter().zip(a.row_values(r)).map(|(&c, &v)| (c, v)).collect())
            .collect();
        let partial = spgemm_with_fetched_rows(&q, &needed, &rows, 6).unwrap();
        let full = spgemm(&q, &a).unwrap();
        assert_eq!(partial, full);
    }

    #[test]
    fn fetched_rows_missing_rows_are_empty() {
        let a = figure1_graph();
        let q = CsrMatrix::from_coo(
            &CooMatrix::from_triples(2, 6, vec![(0, 1, 1.0), (1, 5, 1.0)]).unwrap(),
        );
        // Supply only row 1; row 5 contributions are dropped.
        let rows: Vec<Vec<(usize, f64)>> =
            vec![a.row_indices(1).iter().zip(a.row_values(1)).map(|(&c, &v)| (c, v)).collect()];
        let partial = spgemm_with_fetched_rows(&q, &[1], &rows, 6).unwrap();
        assert_eq!(partial.row_nnz(0), 3);
        assert_eq!(partial.row_nnz(1), 0);
    }

    #[test]
    fn fetched_rows_length_mismatch() {
        let q = CsrMatrix::identity(2);
        assert!(spgemm_with_fetched_rows(&q, &[0, 1], &[vec![]], 2).is_err());
    }

    fn arb_pair() -> impl Strategy<Value = (CsrMatrix, CsrMatrix)> {
        (1usize..10, 1usize..10, 1usize..10).prop_flat_map(|(m, k, n)| {
            let lhs_entries = proptest::collection::vec((0..m, 0..k, -3.0f64..3.0), 0..40);
            let rhs_entries = proptest::collection::vec((0..k, 0..n, -3.0f64..3.0), 0..40);
            (lhs_entries, rhs_entries).prop_map(move |(le, re)| {
                (
                    CsrMatrix::from_coo(&CooMatrix::from_triples(m, k, le).unwrap()),
                    CsrMatrix::from_coo(&CooMatrix::from_triples(k, n, re).unwrap()),
                )
            })
        })
    }

    #[test]
    fn parallel_matches_serial_byte_identical() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut coo_a = CooMatrix::new(64, 48);
        let mut coo_b = CooMatrix::new(48, 57);
        for _ in 0..600 {
            coo_a
                .push(rng.gen_range(0..64), rng.gen_range(0..48), rng.gen_range(-2.0..2.0))
                .unwrap();
            coo_b
                .push(rng.gen_range(0..48), rng.gen_range(0..57), rng.gen_range(-2.0..2.0))
                .unwrap();
        }
        let a = CsrMatrix::from_coo(&coo_a);
        let b = CsrMatrix::from_coo(&coo_b);
        let serial = spgemm(&a, &b).unwrap();
        for threads in [1usize, 2, 8] {
            let parallel = spgemm_parallel(&a, &b, Parallelism::new(threads)).unwrap();
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_hash_path_matches_serial() {
        // Force the hash accumulator by exceeding the dense-column threshold.
        let wide = DENSE_ACCUM_MAX_COLS + 10;
        let mut rng = StdRng::seed_from_u64(8);
        let mut coo_a = CooMatrix::new(20, 30);
        let mut coo_b = CooMatrix::new(30, wide);
        for _ in 0..200 {
            coo_a
                .push(rng.gen_range(0..20), rng.gen_range(0..30), rng.gen_range(-2.0..2.0))
                .unwrap();
            coo_b
                .push(rng.gen_range(0..30), rng.gen_range(0..wide), rng.gen_range(-2.0..2.0))
                .unwrap();
        }
        let a = CsrMatrix::from_coo(&coo_a);
        let b = CsrMatrix::from_coo(&coo_b);
        let serial = spgemm(&a, &b).unwrap();
        for threads in [2usize, 8] {
            assert_eq!(spgemm_parallel(&a, &b, Parallelism::new(threads)).unwrap(), serial);
        }
    }

    #[test]
    fn parallel_dimension_mismatch_and_empty() {
        let a = CsrMatrix::zeros(2, 3);
        assert!(matches!(
            spgemm_parallel(&a, &a, Parallelism::new(4)),
            Err(MatrixError::DimensionMismatch { .. })
        ));
        let empty = CsrMatrix::zeros(0, 0);
        let c = spgemm_parallel(&empty, &empty, Parallelism::new(4)).unwrap();
        assert_eq!(c.shape(), (0, 0));
    }

    proptest! {
        #[test]
        fn prop_spgemm_parallel_byte_identical_to_serial(
            (a, b) in arb_pair(),
            thread_choice in 0usize..3,
        ) {
            let threads = [1usize, 2, 8][thread_choice];
            let serial = spgemm(&a, &b).unwrap();
            let parallel = spgemm_parallel(&a, &b, Parallelism::new(threads)).unwrap();
            // Structural and value equality must be exact (not approximate).
            prop_assert_eq!(parallel, serial);
        }
    }

    proptest! {
        #[test]
        fn prop_spgemm_matches_dense((a, b) in arb_pair()) {
            let sparse = spgemm(&a, &b).unwrap();
            let dense = a.to_dense().matmul(&b.to_dense()).unwrap();
            prop_assert!(sparse.to_dense().approx_eq(&dense, 1e-9));
        }

        #[test]
        fn prop_spgemm_associative_shapes((a, b) in arb_pair()) {
            let c = spgemm(&a, &b).unwrap();
            prop_assert_eq!(c.rows(), a.rows());
            prop_assert_eq!(c.cols(), b.cols());
        }
    }
}

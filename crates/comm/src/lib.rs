//! # dmbs-comm
//!
//! The distributed runtime for the `dmbs` reproduction of *Distributed
//! Matrix-Based Sampling for Graph Neural Network Training* (MLSys 2024).
//!
//! The paper runs on 4–128 GPUs with NCCL collectives.  This crate provides
//! the same collective surface (broadcast, gather, all-gather, all-reduce,
//! all-to-allv, barrier — blocking and nonblocking — over the full world and
//! over arbitrary sub-groups such as process rows / columns of the 1.5D
//! grid) on top of a pluggable [`Transport`]:
//!
//! * the default **in-process rank simulator** — [`Runtime::run`] spawns one
//!   OS thread per rank, each executing the same closure over a
//!   [`Communicator`]; payloads cross as boxed values, never serialized;
//! * the **Unix-socket multi-process backend** — one OS process per rank
//!   ([`UnixSocketTransport`]), rendezvous via
//!   `DMBS_RANK`/`DMBS_SIZE`/`DMBS_SOCKET_DIR`, length-prefixed framed
//!   messages, dispatched through [`Runtime::run_worker`] with named
//!   [`WorkerRegistry`] workers because closures cannot cross process
//!   boundaries.
//!
//! Correctness of the distributed algorithms is independent of the
//! interconnect, so both transports exercise exactly the same collective
//! code paths — and the deterministic counters agree by construction,
//! because every message records its word count and α–β modeled cost
//! ([`CostModel`], per-rank [`CommStats`]) *before* the frame reaches any
//! transport.  The benchmark harnesses use those books to reproduce the
//! paper's communication/computation breakdowns (Figure 7) and its
//! analytical cost model (§5.2.1), and `perf_baseline --calibrate` closes
//! the loop by fitting α/β from measured socket-transport probes.
//!
//! # Example
//!
//! ```
//! use dmbs_comm::{Runtime, Payload};
//!
//! # fn main() -> Result<(), dmbs_comm::CommError> {
//! let runtime = Runtime::new(4)?;
//! let outputs = runtime.run(|comm| {
//!     // Every rank contributes its rank id; the all-reduce sums them.
//!     let local = vec![comm.rank() as f64];
//!     let total = comm.allreduce(local, |a, b| {
//!         a.iter().zip(b).map(|(x, y)| x + y).collect()
//!     })?;
//!     Ok::<f64, dmbs_comm::CommError>(total[0])
//! })?;
//! for out in &outputs {
//!     assert_eq!(out.value.as_ref().unwrap(), &6.0);
//! }
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod codec;
pub mod collectives;
pub mod cost;
pub mod error;
pub mod grid;
pub mod nonblocking;
pub mod process;
pub mod profile;
pub mod runtime;
pub mod socket;
pub mod transport;
pub mod tune;
pub mod wire;

pub use codec::{Codec, WireRows};
pub use collectives::{Communicator, Group, Payload};
pub use cost::{CommStats, CostModel};
pub use error::CommError;
pub use grid::ProcessGrid;
pub use nonblocking::{PendingCollective, PendingResult};
pub use process::{run_if_worker, SocketLaunch, WorkerFn, WorkerRegistry};
pub use profile::{Phase, PhaseProfile};
pub use runtime::{RankOutput, Runtime, TransportSelect};
pub use socket::{SocketConfig, UnixSocketTransport};
pub use transport::{Frame, FrameBody, SimTransport, Transport, TransportMode};
pub use tune::{
    CacheKnob, CostBreakdown, ProbeEpoch, ProbeSet, ScoredChoice, TuningChoice, TuningGrid,
    TuningModel, TuningOutcome,
};

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, CommError>;

//! Nonblocking (posted) collectives: `post → PendingCollective → wait`.
//!
//! The paper's pipeline breakdowns (Figures 4/6/7) show epoch time split
//! between sampling, feature fetching and propagation; the communication of
//! one pipeline stage can be hidden behind the computation of another, but
//! only if the collectives have an `MPI_Ialltoallv`-style handle API.  This
//! module provides that API on the rank simulator: `post_*` sends a
//! collective's outgoing messages immediately (channel sends never block) and
//! returns a [`PendingCollective`] handle; `wait` completes the receives and
//! returns the result.
//!
//! Each posted round reserves a fresh message tag, so in-flight rounds can
//! interleave arbitrarily with blocking traffic (and with each other): a
//! receive for one tag stashes messages of other tags instead of
//! mis-matching them — the simulator's equivalent of MPI tag matching.
//! Because every rank runs the same SPMD program, tag reservation happens in
//! lockstep and a round's tag agrees across the world.  Misuse (posting on
//! some ranks but not others) surfaces as
//! [`TypeMismatch`](crate::CommError::TypeMismatch) or a hang, exactly like
//! mismatched blocking collectives.
//!
//! Word counts, message counts and α–β modeled time of a posted collective
//! are **identical** to its blocking form — the same messages travel, only
//! the schedule differs.  What changes under overlap is how the modeled
//! communication time is *charged*: see
//! [`CostModel::overlapped_cost`](crate::CostModel::overlapped_cost) and the
//! overlapped-seconds counters on [`CommStats`](crate::CommStats) /
//! [`PhaseProfile`](crate::PhaseProfile).
//!
//! # Example
//!
//! ```
//! use dmbs_comm::Runtime;
//!
//! # fn main() -> Result<(), dmbs_comm::CommError> {
//! let rt = Runtime::new(3)?;
//! let outs = rt.run(|comm| -> Result<Vec<usize>, dmbs_comm::CommError> {
//!     let sends: Vec<usize> = (0..comm.size()).map(|d| comm.rank() * 10 + d).collect();
//!     let pending = comm.post_all_to_allv(sends)?;
//!     // ... compute overlaps the in-flight exchange here ...
//!     pending.wait(comm)
//! })?;
//! assert_eq!(outs[1].value.as_ref().unwrap(), &vec![1, 11, 21]);
//! # Ok(())
//! # }
//! ```

use crate::collectives::{Communicator, Group, Payload};
use crate::error::CommError;
use crate::Result;

/// An in-flight posted collective; call [`PendingCollective::wait`] to
/// complete it and obtain the result.
///
/// Because every round owns a fresh tag, a rank may wait its outstanding
/// handles in **any** order — receives for one tag stash other-tag messages
/// instead of consuming them (the software-pipelined trainer exploits this:
/// a prefetch posted before a training step is waited after the step's own
/// posted reduces).  What must agree is the *post* order across ranks: tags
/// are reserved in SPMD program order, so all ranks must post the same
/// rounds in the same sequence.  Dropping a handle without waiting leaves
/// its peers' messages stashed until the rank terminates — legal, but the
/// collective never completes on the other ranks, so treat handles as
/// must-use.
#[must_use = "a posted collective does nothing until waited"]
#[derive(Debug)]
pub struct PendingCollective<T> {
    kind: PendingKind<T>,
}

#[derive(Debug)]
enum PendingKind<T> {
    /// All-to-allv: everything was sent at post time; wait only receives.
    AllToAllv {
        group: Group,
        tag: u64,
        /// The caller's own contribution (never travels).
        own: Option<T>,
    },
    /// Root-gather + broadcast rounds (allgather / allreduce).  Non-roots
    /// sent their value at post time; the root's fan-out happens at wait.
    Rooted {
        group: Group,
        gather_tag: u64,
        bcast_tag: u64,
        /// The root's own contribution (`None` on non-roots, which already
        /// sent theirs at post time).
        own: Option<T>,
        /// How the root combines the gathered values before fanning out.
        combine: RootCombine<T>,
    },
}

/// A boxed associative combiner for posted all-reduces.
type ReduceFn<T> = Box<dyn Fn(&T, &T) -> T + Send>;

/// What the root does with the gathered per-member values.
enum RootCombine<T> {
    /// All-gather: broadcast the whole vector (boxed up as `Vec<T>`).
    Concat,
    /// All-reduce: fold with the supplied associative combiner.
    Reduce(ReduceFn<T>),
}

impl<T> std::fmt::Debug for RootCombine<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RootCombine::Concat => f.write_str("Concat"),
            RootCombine::Reduce(_) => f.write_str("Reduce(..)"),
        }
    }
}

impl<T: Payload + Clone> PendingCollective<T> {
    /// Completes the collective: receives the peers' in-flight messages (and,
    /// for rooted collectives, performs the root's fan-out) and returns the
    /// result — element-per-member for all-to-allv and all-gather (as
    /// [`PendingResult::Many`]), a single value for all-reduce
    /// ([`PendingResult::One`]).
    ///
    /// # Errors
    ///
    /// Propagates point-to-point errors ([`CommError::Disconnected`],
    /// [`CommError::TypeMismatch`] on mismatched post/wait schedules).
    pub fn wait_result(self, comm: &mut Communicator) -> Result<PendingResult<T>> {
        match self.kind {
            PendingKind::AllToAllv { group, tag, own } => {
                let my_pos = group.position_of(comm.rank()).expect("poster was a member");
                let mut received: Vec<Option<T>> = Vec::with_capacity(group.len());
                for _ in 0..group.len() {
                    received.push(None);
                }
                received[my_pos] = own;
                for (pos, &peer) in group.ranks().iter().enumerate() {
                    if peer != comm.rank() {
                        received[pos] = Some(comm.recv_tagged(peer, tag)?);
                    }
                }
                Ok(PendingResult::Many(
                    received
                        .into_iter()
                        .map(|v| v.expect("every member sends exactly one value"))
                        .collect(),
                ))
            }
            PendingKind::Rooted { group, gather_tag, bcast_tag, own, combine } => {
                let root = group.ranks()[0];
                if comm.rank() == root {
                    let own = own.expect("root keeps its own value at post time");
                    let mut gathered: Vec<T> = Vec::with_capacity(group.len());
                    for &peer in group.ranks() {
                        if peer == root {
                            gathered.push(own.clone());
                        } else {
                            gathered.push(comm.recv_tagged(peer, gather_tag)?);
                        }
                    }
                    match combine {
                        RootCombine::Concat => {
                            for &peer in group.ranks() {
                                if peer != root {
                                    comm.send_tagged(peer, bcast_tag, gathered.clone())?;
                                }
                            }
                            Ok(PendingResult::Many(gathered))
                        }
                        RootCombine::Reduce(f) => {
                            let mut iter = gathered.into_iter();
                            let first = iter.next().expect("group is non-empty");
                            let reduced = iter.fold(first, |acc, v| f(&acc, &v));
                            for &peer in group.ranks() {
                                if peer != root {
                                    comm.send_tagged(peer, bcast_tag, reduced.clone())?;
                                }
                            }
                            Ok(PendingResult::One(reduced))
                        }
                    }
                } else {
                    match combine {
                        RootCombine::Concat => {
                            Ok(PendingResult::Many(comm.recv_tagged(root, bcast_tag)?))
                        }
                        RootCombine::Reduce(_) => {
                            Ok(PendingResult::One(comm.recv_tagged(root, bcast_tag)?))
                        }
                    }
                }
            }
        }
    }

    /// [`PendingCollective::wait_result`] for vector-shaped collectives
    /// (all-to-allv, all-gather): returns one value per group member.
    ///
    /// # Errors
    ///
    /// Propagates [`PendingCollective::wait_result`] errors.
    ///
    /// # Panics
    ///
    /// Panics if called on an all-reduce handle (use
    /// [`PendingCollective::wait_reduced`]).
    pub fn wait(self, comm: &mut Communicator) -> Result<Vec<T>> {
        match self.wait_result(comm)? {
            PendingResult::Many(v) => Ok(v),
            PendingResult::One(_) => panic!("wait() on an all-reduce handle; use wait_reduced()"),
        }
    }

    /// [`PendingCollective::wait_result`] for all-reduce handles: returns the
    /// single reduced value.
    ///
    /// # Errors
    ///
    /// Propagates [`PendingCollective::wait_result`] errors.
    ///
    /// # Panics
    ///
    /// Panics if called on an all-to-allv / all-gather handle (use
    /// [`PendingCollective::wait`]).
    pub fn wait_reduced(self, comm: &mut Communicator) -> Result<T> {
        match self.wait_result(comm)? {
            PendingResult::One(v) => Ok(v),
            PendingResult::Many(_) => {
                panic!("wait_reduced() on a vector-shaped handle; use wait()")
            }
        }
    }
}

/// The completed value of a [`PendingCollective`].
#[derive(Debug)]
pub enum PendingResult<T> {
    /// One value per group member (all-to-allv, all-gather).
    Many(Vec<T>),
    /// A single reduced value (all-reduce).
    One(T),
}

impl Communicator {
    /// Posts an all-to-allv over the whole world: `sends[j]` goes out to
    /// rank `j` immediately; receive with [`PendingCollective::wait`].
    ///
    /// # Errors
    ///
    /// Returns [`CommError::InvalidConfig`] if `sends.len() != size`, plus
    /// any point-to-point send error.
    pub fn post_all_to_allv<T: Payload>(&mut self, sends: Vec<T>) -> Result<PendingCollective<T>> {
        let world = self.world();
        self.post_group_all_to_allv(&world, sends)
    }

    /// Posts an all-to-allv within `group` (`sends[i]` to the `i`-th member
    /// in ascending rank order).  The outgoing messages — identical in count,
    /// words and modeled time to [`Communicator::group_all_to_allv`] — leave
    /// at post time; [`PendingCollective::wait`] completes the receives.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::NotInGroup`] if the caller is not a member,
    /// [`CommError::InvalidConfig`] on a send-count mismatch, plus any
    /// point-to-point send error.
    pub fn post_group_all_to_allv<T: Payload>(
        &mut self,
        group: &Group,
        sends: Vec<T>,
    ) -> Result<PendingCollective<T>> {
        if !group.contains(self.rank()) {
            return Err(CommError::NotInGroup { rank: self.rank() });
        }
        if sends.len() != group.len() {
            return Err(CommError::InvalidConfig(format!(
                "all_to_allv requires one send per group member ({} != {})",
                sends.len(),
                group.len()
            )));
        }
        let tag = self.fresh_round_tag();
        let mut own = None;
        for (pos, value) in sends.into_iter().enumerate() {
            let peer = group.ranks()[pos];
            if peer == self.rank() {
                own = Some(value);
            } else {
                self.send_tagged(peer, tag, value)?;
            }
        }
        Ok(PendingCollective { kind: PendingKind::AllToAllv { group: group.clone(), tag, own } })
    }

    /// Posts an all-gather within `group`; complete with
    /// [`PendingCollective::wait`], which returns the member values in
    /// ascending rank order.  Identical traffic to
    /// [`Communicator::group_allgather`].
    ///
    /// # Errors
    ///
    /// Returns [`CommError::NotInGroup`] if the caller is not a member, plus
    /// any point-to-point send error.
    pub fn post_group_allgather<T: Payload + Clone>(
        &mut self,
        group: &Group,
        value: T,
    ) -> Result<PendingCollective<T>> {
        self.post_rooted(group, value, RootCombine::Concat)
    }

    /// Posts an all-reduce within `group` with an associative `combine`;
    /// complete with [`PendingCollective::wait_reduced`].  Identical traffic
    /// to [`Communicator::group_allreduce`].
    ///
    /// # Errors
    ///
    /// Returns [`CommError::NotInGroup`] if the caller is not a member, plus
    /// any point-to-point send error.
    pub fn post_group_allreduce<T, F>(
        &mut self,
        group: &Group,
        value: T,
        combine: F,
    ) -> Result<PendingCollective<T>>
    where
        T: Payload + Clone,
        F: Fn(&T, &T) -> T + Send + 'static,
    {
        self.post_rooted(group, value, RootCombine::Reduce(Box::new(combine)))
    }

    /// Posts an all-reduce over the whole world; complete with
    /// [`PendingCollective::wait_reduced`].
    ///
    /// # Errors
    ///
    /// Propagates [`Communicator::post_group_allreduce`] errors.
    pub fn post_allreduce<T, F>(&mut self, value: T, combine: F) -> Result<PendingCollective<T>>
    where
        T: Payload + Clone,
        F: Fn(&T, &T) -> T + Send + 'static,
    {
        let world = self.world();
        self.post_group_allreduce(&world, value, combine)
    }

    fn post_rooted<T: Payload + Clone>(
        &mut self,
        group: &Group,
        value: T,
        combine: RootCombine<T>,
    ) -> Result<PendingCollective<T>> {
        if !group.contains(self.rank()) {
            return Err(CommError::NotInGroup { rank: self.rank() });
        }
        let root = group.ranks()[0];
        let gather_tag = self.fresh_round_tag();
        let bcast_tag = self.fresh_round_tag();
        let own = if self.rank() == root {
            Some(value)
        } else {
            self.send_tagged(root, gather_tag, value)?;
            None
        };
        Ok(PendingCollective {
            kind: PendingKind::Rooted { group: group.clone(), gather_tag, bcast_tag, own, combine },
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::{CostModel, Runtime};

    #[test]
    fn posted_all_to_allv_matches_blocking() {
        let rt = Runtime::new(4).unwrap();
        let outs = rt
            .run(|comm| {
                let sends: Vec<usize> = (0..comm.size()).map(|d| comm.rank() * 10 + d).collect();
                let blocking = comm.all_to_allv(sends.clone()).unwrap();
                let words_blocking = comm.stats().words_sent;
                let pending = comm.post_all_to_allv(sends).unwrap();
                let posted = pending.wait(comm).unwrap();
                let words_posted = comm.stats().words_sent - words_blocking;
                (blocking == posted, words_blocking == words_posted)
            })
            .unwrap();
        assert!(outs.iter().all(|o| o.value.0), "posted result diverged from blocking");
        assert!(outs.iter().all(|o| o.value.1), "posted traffic diverged from blocking");
    }

    #[test]
    fn posted_collective_survives_interleaved_blocking_traffic() {
        // The regression the tag lanes exist for: blocking collectives run
        // while an all-to-allv is in flight, and FIFO channels must not
        // mis-match the two streams.
        let rt = Runtime::new(3).unwrap();
        let outs = rt
            .run(|comm| {
                let sends: Vec<usize> = (0..comm.size()).map(|d| comm.rank() * 100 + d).collect();
                let pending = comm.post_all_to_allv(sends).unwrap();
                // Blocking traffic while the round is in flight.
                let sum = comm.allreduce(comm.rank(), |a, b| a + b).unwrap();
                let all = comm.allgather(comm.rank() * 2).unwrap();
                comm.barrier().unwrap();
                let exchanged = pending.wait(comm).unwrap();
                (sum, all, exchanged)
            })
            .unwrap();
        for (r, o) in outs.iter().enumerate() {
            assert_eq!(o.value.0, 3);
            assert_eq!(o.value.1, vec![0, 2, 4]);
            assert_eq!(o.value.2, vec![r, 100 + r, 200 + r]);
        }
    }

    #[test]
    fn two_rounds_in_flight_complete_in_post_order() {
        let rt = Runtime::new(2).unwrap();
        let outs = rt
            .run(|comm| {
                let a = comm.post_all_to_allv(vec![comm.rank(), comm.rank()]).unwrap();
                let b = comm.post_all_to_allv(vec![10 + comm.rank(), 10 + comm.rank()]).unwrap();
                let first = a.wait(comm).unwrap();
                let second = b.wait(comm).unwrap();
                (first, second)
            })
            .unwrap();
        assert_eq!(outs[0].value.0, vec![0, 1]);
        assert_eq!(outs[0].value.1, vec![10, 11]);
    }

    #[test]
    fn posted_allreduce_and_allgather_match_blocking() {
        let rt = Runtime::new(4).unwrap();
        let outs = rt
            .run(|comm| {
                let pr = comm.post_allreduce(comm.rank() + 1, |a, b| a + b).unwrap();
                let world = comm.world();
                let pg = comm.post_group_allgather(&world, comm.rank() * 3).unwrap();
                // Interleave blocking traffic between post and wait.
                comm.barrier().unwrap();
                let reduced = pr.wait_reduced(comm).unwrap();
                let gathered = pg.wait(comm).unwrap();
                (reduced, gathered)
            })
            .unwrap();
        for o in outs {
            assert_eq!(o.value.0, 10);
            assert_eq!(o.value.1, vec![0, 3, 6, 9]);
        }
    }

    #[test]
    fn posted_traffic_costs_the_same_as_blocking() {
        // Same messages, same words, same α–β time — only the schedule moves.
        let model = CostModel::new(1.0, 0.5);
        let rt = Runtime::with_cost_model(3, model).unwrap();
        let blocking = rt
            .run(|comm| {
                let sends: Vec<Vec<f64>> =
                    (0..comm.size()).map(|d| vec![d as f64; comm.rank() + 1]).collect();
                comm.all_to_allv(sends).unwrap();
                comm.stats()
            })
            .unwrap();
        let posted = rt
            .run(|comm| {
                let sends: Vec<Vec<f64>> =
                    (0..comm.size()).map(|d| vec![d as f64; comm.rank() + 1]).collect();
                let pending = comm.post_all_to_allv(sends).unwrap();
                pending.wait(comm).unwrap();
                comm.stats()
            })
            .unwrap();
        for (b, p) in blocking.iter().zip(&posted) {
            assert_eq!(b.stats.messages, p.stats.messages);
            assert_eq!(b.stats.words_sent, p.stats.words_sent);
            assert!((b.stats.modeled_time - p.stats.modeled_time).abs() < 1e-12);
        }
    }

    #[test]
    fn post_validates_group_and_send_count() {
        let rt = Runtime::new(2).unwrap();
        let outs = rt
            .run(|comm| {
                let wrong_len = comm.post_all_to_allv(vec![1usize]).is_err();
                let other = crate::Group::new(&[(comm.rank() + 1) % comm.size()]).unwrap();
                let not_member = comm.post_group_all_to_allv(&other, vec![1usize]).is_err();
                let not_member_reduce =
                    comm.post_group_allreduce(&other, 1usize, |a, b| a + b).is_err();
                wrong_len && not_member && not_member_reduce
            })
            .unwrap();
        assert!(outs.iter().all(|o| o.value));
    }
}

//! Output types of the sampling step.
//!
//! Sampling a minibatch for an `L`-layer GNN produces one sampled adjacency
//! matrix per layer (§4, Algorithm 1).  In this reproduction each layer's
//! matrix is kept together with the *global vertex ids* of its rows and
//! columns, which downstream feature fetching (§6.2) needs to know which rows
//! of the feature matrix `H` to gather.

use dmbs_comm::{CommStats, PhaseProfile};
use dmbs_matrix::CsrMatrix;
use serde::{Deserialize, Serialize};

/// One layer's sampled adjacency matrix together with the global vertex ids
/// of its rows and columns.
///
/// `adjacency` has shape `rows.len() x cols.len()`; entry `(i, j)` is an edge
/// from global vertex `rows[i]` to global vertex `cols[j]` that survived
/// sampling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerSample {
    /// Global vertex ids of the adjacency rows (the layer-`l` frontier).
    pub rows: Vec<usize>,
    /// Global vertex ids of the adjacency columns (the layer-`l-1` frontier).
    pub cols: Vec<usize>,
    /// The sampled adjacency matrix for this layer.
    pub adjacency: CsrMatrix,
}

impl LayerSample {
    /// Creates a layer sample, checking that the matrix shape matches the
    /// vertex id lists.
    ///
    /// # Panics
    ///
    /// Panics if `adjacency.shape() != (rows.len(), cols.len())`.
    pub fn new(rows: Vec<usize>, cols: Vec<usize>, adjacency: CsrMatrix) -> Self {
        assert_eq!(
            adjacency.shape(),
            (rows.len(), cols.len()),
            "sampled adjacency shape must match frontier sizes"
        );
        LayerSample { rows, cols, adjacency }
    }

    /// Number of sampled edges in this layer.
    pub fn num_edges(&self) -> usize {
        self.adjacency.nnz()
    }
}

/// The complete sample for one minibatch: one [`LayerSample`] per GNN layer.
///
/// `layers[0]` is the **innermost** layer (layer 1 in the paper's numbering:
/// the one whose columns are furthest from the batch) and
/// `layers.last()` is the outermost layer `L`, whose rows are exactly the
/// batch vertices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MinibatchSample {
    /// The batch vertices this sample was drawn for.
    pub batch: Vec<usize>,
    /// Per-layer samples, innermost first.
    pub layers: Vec<LayerSample>,
}

impl MinibatchSample {
    /// Number of GNN layers covered by the sample.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Global vertex ids whose input features are needed to train this
    /// minibatch: the columns of the innermost layer.
    pub fn input_vertices(&self) -> &[usize] {
        self.layers.first().map(|l| l.cols.as_slice()).unwrap_or(&[])
    }

    /// Total number of sampled edges across all layers.
    pub fn total_edges(&self) -> usize {
        self.layers.iter().map(LayerSample::num_edges).sum()
    }

    /// Checks the frontier chaining invariant: the rows of layer `l` equal
    /// the columns of layer `l+1`, and the rows of the outermost layer equal
    /// the batch.  Returns `true` when the invariant holds.
    pub fn frontiers_are_chained(&self) -> bool {
        if let Some(last) = self.layers.last() {
            if last.rows != self.batch {
                return false;
            }
        }
        self.layers.windows(2).all(|pair| pair[0].rows == pair[1].cols)
    }
}

/// The result of bulk-sampling `k` minibatches, together with the phase
/// breakdown and communication statistics the benchmark harnesses report.
#[derive(Debug, Clone, Default)]
pub struct BulkSampleOutput {
    /// The sampled minibatches, in the order the batches were supplied.
    pub minibatches: Vec<MinibatchSample>,
    /// Per-phase timing breakdown (probability / sampling / extraction).
    pub profile: PhaseProfile,
    /// Communication volume and modeled time spent during sampling (zero for
    /// single-device and graph-replicated sampling).
    pub comm_stats: CommStats,
}

impl BulkSampleOutput {
    /// Number of minibatches sampled.
    pub fn num_batches(&self) -> usize {
        self.minibatches.len()
    }

    /// Total number of sampled edges across all minibatches and layers.
    pub fn total_edges(&self) -> usize {
        self.minibatches.iter().map(MinibatchSample::total_edges).sum()
    }

    /// Concatenates another bulk output (e.g. the next bulk group of `k`
    /// minibatches), summing profiles and communication statistics.
    pub fn merge(&mut self, other: BulkSampleOutput) {
        self.minibatches.extend(other.minibatches);
        self.profile.merge_sum(&other.profile);
        self.comm_stats.merge(&other.comm_stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmbs_matrix::CooMatrix;

    fn layer(rows: Vec<usize>, cols: Vec<usize>, edges: &[(usize, usize)]) -> LayerSample {
        let coo = CooMatrix::from_triples(
            rows.len(),
            cols.len(),
            edges.iter().map(|&(r, c)| (r, c, 1.0)),
        )
        .unwrap();
        LayerSample::new(rows, cols, CsrMatrix::from_coo(&coo))
    }

    #[test]
    fn layer_sample_counts_edges() {
        let l = layer(vec![1, 5], vec![0, 4], &[(0, 0), (0, 1), (1, 1)]);
        assert_eq!(l.num_edges(), 3);
        assert_eq!(l.rows, vec![1, 5]);
    }

    #[test]
    #[should_panic(expected = "shape must match")]
    fn layer_sample_shape_mismatch_panics() {
        let m = CsrMatrix::zeros(2, 3);
        LayerSample::new(vec![0], vec![1, 2, 3], m);
    }

    #[test]
    fn minibatch_invariants() {
        let inner = layer(vec![0, 4], vec![2, 3], &[(0, 0), (1, 1)]);
        let outer = layer(vec![1, 5], vec![0, 4], &[(0, 0), (1, 1)]);
        let mb = MinibatchSample { batch: vec![1, 5], layers: vec![inner.clone(), outer.clone()] };
        assert_eq!(mb.num_layers(), 2);
        assert_eq!(mb.input_vertices(), &[2, 3]);
        assert_eq!(mb.total_edges(), 4);
        assert!(mb.frontiers_are_chained());

        // Break the chain: outer cols no longer match inner rows.
        let bad_outer = layer(vec![1, 5], vec![9, 4], &[(0, 0)]);
        let bad = MinibatchSample { batch: vec![1, 5], layers: vec![inner, bad_outer] };
        assert!(!bad.frontiers_are_chained());

        // Batch mismatch.
        let outer2 = layer(vec![1, 5], vec![0, 4], &[(0, 0)]);
        let bad2 = MinibatchSample { batch: vec![2, 5], layers: vec![outer2] };
        assert!(!bad2.frontiers_are_chained());
    }

    #[test]
    fn empty_minibatch_is_consistent() {
        let mb = MinibatchSample { batch: vec![3], layers: vec![] };
        assert_eq!(mb.input_vertices(), &[] as &[usize]);
        assert!(mb.frontiers_are_chained());
    }

    #[test]
    fn bulk_output_merge() {
        let l = layer(vec![0], vec![1], &[(0, 0)]);
        let mb = MinibatchSample { batch: vec![0], layers: vec![l] };
        let mut a = BulkSampleOutput { minibatches: vec![mb.clone()], ..Default::default() };
        let b = BulkSampleOutput { minibatches: vec![mb.clone(), mb], ..Default::default() };
        a.merge(b);
        assert_eq!(a.num_batches(), 3);
        assert_eq!(a.total_edges(), 3);
    }
}

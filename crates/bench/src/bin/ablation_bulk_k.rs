//! Ablation: bulk size `k`.
//!
//! The core claim behind bulk sampling is amortization: sampling `k`
//! minibatches with one sequence of stacked matrix operations is cheaper than
//! `k` separate sampling calls.  This harness fixes the total number of
//! minibatches and sweeps the bulk size.

use dmbs_bench::{dataset, print_table, secs, Scale};
use dmbs_graph::datasets::DatasetKind;
use dmbs_graph::minibatch::MinibatchPlan;
use dmbs_sampling::{BulkSamplerConfig, GraphSageSampler, Sampler};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    let ds = dataset(DatasetKind::Products, scale);
    let batch_size = (ds.train_set.len() / 32).clamp(8, 64);
    let plan =
        MinibatchPlan::sequential(&ds.train_set, batch_size).expect("non-empty training set");
    let batches = plan.batches().to_vec();
    let sampler = GraphSageSampler::new(vec![15, 10, 5]);

    let mut rows = Vec::new();
    for &k in &[1usize, 2, 4, 8, 16, 32] {
        let k = k.min(batches.len());
        let mut rng = StdRng::seed_from_u64(3);
        let start = std::time::Instant::now();
        for group in batches.chunks(k) {
            let config = BulkSamplerConfig::new(batch_size, group.len());
            sampler
                .sample_bulk(ds.graph.adjacency(), group, &config, &mut rng)
                .expect("bulk sampling failed");
        }
        let elapsed = start.elapsed().as_secs_f64();
        rows.push(vec![
            format!("{k}"),
            format!("{}", batches.len()),
            secs(elapsed),
            secs(elapsed / batches.len() as f64),
        ]);
        if k == batches.len() {
            break;
        }
    }
    print_table(
        "Ablation — bulk size k (Products stand-in, all minibatches sampled)",
        &["k", "total batches", "total sampling time", "time per batch"],
        &rows,
    );
    println!("\nNote: on GPUs the gain comes from amortizing fixed per-call overheads (kernel launches, CPU-GPU synchronization); the CPU rank simulator has no such fixed cost, so the per-batch time here stays roughly flat instead of dropping (see EXPERIMENTS.md).");
}

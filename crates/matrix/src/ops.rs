//! Structural operators used by bulk sampling.
//!
//! Bulk sampling (§4.1.4, §4.2.4 of the paper) vertically stacks the per-batch
//! sampler matrices `Q^l_i`, probability matrices `P_i` and sampled adjacency
//! matrices `A^l_i` into single tall matrices, and LADIES bulk column
//! extraction multiplies a *block-diagonal* matrix of per-batch row
//! extractions by a stacked column-selection matrix.  The operators in this
//! module implement those compositions for CSR matrices.
//!
//! The selection-matrix *constructors* here ([`row_selection_matrix`],
//! [`indicator_row`]) sit at the boundary of the three-tier kernel story
//! (see [`crate::spgemm`]): a product against a [`row_selection_matrix`]
//! never needs to be materialised as an SpGEMM — the row gather
//! [`crate::extract::extract_rows`] computes the byte-identical result in
//! `O(nnz of the selected rows)` — whereas an [`indicator_row`] product has
//! several nonzeros per `Q` row and genuinely requires the general Gustavson
//! kernel.  The constructors remain for the distributed 1.5D path (which
//! ships `Q` blocks between ranks) and as the reference formulation the
//! extraction proptests pin against.

use crate::csr::CsrMatrix;
use crate::error::MatrixError;
use crate::prefix::counts_to_offsets;
use crate::Result;

/// Vertically stacks matrices with identical column counts:
/// `[A_1; A_2; ...; A_k]`.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] if column counts differ.
///
/// # Example
///
/// ```
/// use dmbs_matrix::{CsrMatrix, ops::vstack};
///
/// # fn main() -> Result<(), dmbs_matrix::MatrixError> {
/// let i = CsrMatrix::identity(2);
/// let stacked = vstack(&[i.clone(), i])?;
/// assert_eq!(stacked.shape(), (4, 2));
/// assert_eq!(stacked.nnz(), 4);
/// # Ok(())
/// # }
/// ```
pub fn vstack(parts: &[CsrMatrix]) -> Result<CsrMatrix> {
    if parts.is_empty() {
        return Ok(CsrMatrix::zeros(0, 0));
    }
    let cols = parts[0].cols();
    for p in parts {
        if p.cols() != cols {
            return Err(MatrixError::DimensionMismatch {
                op: "vstack",
                lhs: (0, cols),
                rhs: p.shape(),
            });
        }
    }
    let rows: usize = parts.iter().map(|p| p.rows()).sum();
    let mut row_data: Vec<Vec<(usize, f64)>> = Vec::with_capacity(rows);
    for p in parts {
        for r in 0..p.rows() {
            row_data.push(
                p.row_indices(r).iter().zip(p.row_values(r)).map(|(&c, &v)| (c, v)).collect(),
            );
        }
    }
    CsrMatrix::from_rows(rows, cols, row_data)
}

/// Horizontally concatenates matrices with identical row counts:
/// `[A_1 | A_2 | ... | A_k]`.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] if row counts differ.
pub fn hstack(parts: &[CsrMatrix]) -> Result<CsrMatrix> {
    if parts.is_empty() {
        return Ok(CsrMatrix::zeros(0, 0));
    }
    let rows = parts[0].rows();
    for p in parts {
        if p.rows() != rows {
            return Err(MatrixError::DimensionMismatch {
                op: "hstack",
                lhs: (rows, 0),
                rhs: p.shape(),
            });
        }
    }
    let cols: usize = parts.iter().map(|p| p.cols()).sum();
    let mut row_data: Vec<Vec<(usize, f64)>> = vec![Vec::new(); rows];
    let mut col_offset = 0usize;
    for p in parts {
        for (r, row) in row_data.iter_mut().enumerate() {
            for (&c, &v) in p.row_indices(r).iter().zip(p.row_values(r)) {
                row.push((c + col_offset, v));
            }
        }
        col_offset += p.cols();
    }
    CsrMatrix::from_rows(rows, cols, row_data)
}

/// Builds the block-diagonal matrix `diag(A_1, ..., A_k)`.
///
/// Used by bulk LADIES column extraction, where each per-batch row-extraction
/// product `A_{R_i}` must only multiply its own column-selection block
/// (§4.2.4).
pub fn block_diag(blocks: &[CsrMatrix]) -> CsrMatrix {
    let rows: usize = blocks.iter().map(|b| b.rows()).sum();
    let cols: usize = blocks.iter().map(|b| b.cols()).sum();
    let mut row_data: Vec<Vec<(usize, f64)>> = Vec::with_capacity(rows);
    let mut col_offset = 0usize;
    for b in blocks {
        for r in 0..b.rows() {
            row_data.push(
                b.row_indices(r)
                    .iter()
                    .zip(b.row_values(r))
                    .map(|(&c, &v)| (c + col_offset, v))
                    .collect(),
            );
        }
        col_offset += b.cols();
    }
    CsrMatrix::from_rows(rows, cols, row_data).expect("block offsets preserve CSR invariants")
}

/// Splits a tall stacked matrix into `k` equal-height blocks.
///
/// This is the inverse of [`vstack`] for equally sized parts: a bulk sampled
/// adjacency matrix with `k` minibatches of `rows_per_block` rows each is
/// unstacked back into per-minibatch matrices before training.
///
/// # Errors
///
/// Returns [`MatrixError::InvalidStructure`] if `matrix.rows()` is not
/// divisible by `k`.
pub fn split_rows(matrix: &CsrMatrix, k: usize) -> Result<Vec<CsrMatrix>> {
    if k == 0 {
        return Err(MatrixError::InvalidStructure("cannot split into 0 blocks".into()));
    }
    if !matrix.rows().is_multiple_of(k) {
        return Err(MatrixError::InvalidStructure(format!(
            "{} rows are not divisible into {k} equal blocks",
            matrix.rows()
        )));
    }
    let per = matrix.rows() / k;
    Ok((0..k).map(|i| matrix.row_block(i * per, (i + 1) * per)).collect())
}

/// Builds a row-selection matrix `Q ∈ {0,1}^{b×n}` with one nonzero per row:
/// row `i` selects column `selected[i]`.  Multiplying `Q · A` gathers the rows
/// of `A` listed in `selected` — the GraphSAGE `Q^L` construction (§4.1.1)
/// and the LADIES row-extraction matrix `Q_R` (§4.2.3).
///
/// # Errors
///
/// Returns [`MatrixError::InvalidStructure`] if any selected index is `>= n`.
pub fn row_selection_matrix(selected: &[usize], n: usize) -> Result<CsrMatrix> {
    let rows = selected.len();
    for &s in selected {
        if s >= n {
            return Err(MatrixError::InvalidStructure(format!(
                "selected vertex {s} out of range for n = {n}"
            )));
        }
    }
    let indptr = counts_to_offsets(&vec![1usize; rows]);
    CsrMatrix::from_raw(rows, n, indptr, selected.to_vec(), vec![1.0; rows])
}

/// Builds the single-row indicator matrix `Q ∈ {0,1}^{1×n}` whose nonzero
/// columns are the given (unique) vertices — the LADIES `Q^L` construction
/// (§4.2.1).
///
/// # Errors
///
/// Returns [`MatrixError::InvalidStructure`] if any vertex is `>= n` or the
/// list contains duplicates.
pub fn indicator_row(vertices: &[usize], n: usize) -> Result<CsrMatrix> {
    let mut sorted = vertices.to_vec();
    sorted.sort_unstable();
    for w in sorted.windows(2) {
        if w[0] == w[1] {
            return Err(MatrixError::InvalidStructure(format!(
                "duplicate vertex {} in indicator row",
                w[0]
            )));
        }
    }
    if let Some(&max) = sorted.last() {
        if max >= n {
            return Err(MatrixError::InvalidStructure(format!(
                "vertex {max} out of range for n = {n}"
            )));
        }
    }
    let nnz = sorted.len();
    CsrMatrix::from_raw(1, n, vec![0, nnz], sorted, vec![1.0; nnz])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spgemm::spgemm;
    use crate::CooMatrix;
    use proptest::prelude::*;

    fn figure1_graph() -> CsrMatrix {
        let edges = [
            (0, 1),
            (1, 0),
            (1, 2),
            (1, 4),
            (2, 1),
            (2, 3),
            (3, 2),
            (3, 4),
            (3, 5),
            (4, 1),
            (4, 3),
            (4, 5),
            (5, 3),
            (5, 4),
        ];
        let coo = CooMatrix::from_triples(6, 6, edges.iter().map(|&(r, c)| (r, c, 1.0))).unwrap();
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn vstack_empty_and_mismatch() {
        assert_eq!(vstack(&[]).unwrap().shape(), (0, 0));
        let a = CsrMatrix::zeros(2, 3);
        let b = CsrMatrix::zeros(2, 4);
        assert!(vstack(&[a, b]).is_err());
    }

    #[test]
    fn vstack_preserves_rows() {
        let a = figure1_graph();
        let stacked = vstack(&[a.clone(), a.clone()]).unwrap();
        assert_eq!(stacked.shape(), (12, 6));
        assert_eq!(stacked.nnz(), 2 * a.nnz());
        assert_eq!(stacked.row_indices(7), a.row_indices(1));
    }

    #[test]
    fn hstack_offsets_columns() {
        let a = CsrMatrix::identity(2);
        let h = hstack(&[a.clone(), a]).unwrap();
        assert_eq!(h.shape(), (2, 4));
        assert_eq!(h.row_indices(0), &[0, 2]);
        assert_eq!(h.row_indices(1), &[1, 3]);
        let bad = CsrMatrix::zeros(3, 1);
        assert!(hstack(&[CsrMatrix::identity(2), bad]).is_err());
        assert_eq!(hstack(&[]).unwrap().shape(), (0, 0));
    }

    #[test]
    fn block_diag_structure() {
        let a = CsrMatrix::identity(2);
        let b = CsrMatrix::from_coo(&CooMatrix::from_triples(1, 3, vec![(0, 2, 5.0)]).unwrap());
        let d = block_diag(&[a, b]);
        assert_eq!(d.shape(), (3, 5));
        assert_eq!(d.get(0, 0), 1.0);
        assert_eq!(d.get(1, 1), 1.0);
        assert_eq!(d.get(2, 4), 5.0);
        assert_eq!(d.nnz(), 3);
    }

    #[test]
    fn block_diag_empty() {
        assert_eq!(block_diag(&[]).shape(), (0, 0));
    }

    #[test]
    fn split_rows_inverts_vstack() {
        let a = figure1_graph();
        let stacked = vstack(&[a.clone(), a.clone(), a.clone()]).unwrap();
        let parts = split_rows(&stacked, 3).unwrap();
        assert_eq!(parts.len(), 3);
        for p in parts {
            assert_eq!(p, a);
        }
        assert!(split_rows(&stacked, 5).is_err());
        assert!(split_rows(&stacked, 0).is_err());
    }

    #[test]
    fn row_selection_matrix_gathers_rows() {
        let a = figure1_graph();
        let q = row_selection_matrix(&[1, 5], 6).unwrap();
        let p = spgemm(&q, &a).unwrap();
        assert_eq!(p, a.gather_rows(&[1, 5]).unwrap());
        assert!(row_selection_matrix(&[6], 6).is_err());
    }

    #[test]
    fn row_selection_allows_duplicates() {
        let a = figure1_graph();
        let q = row_selection_matrix(&[3, 3], 6).unwrap();
        let p = spgemm(&q, &a).unwrap();
        assert_eq!(p.row_indices(0), p.row_indices(1));
    }

    #[test]
    fn indicator_row_counts_neighbors() {
        let a = figure1_graph();
        let q = indicator_row(&[1, 5], 6).unwrap();
        assert_eq!(q.shape(), (1, 6));
        let p = spgemm(&q, &a).unwrap();
        // Aggregated neighborhood multiplicities of {1, 5}: [1, 0, 1, 1, 2, 0].
        assert_eq!(p.get(0, 0), 1.0);
        assert_eq!(p.get(0, 2), 1.0);
        assert_eq!(p.get(0, 3), 1.0);
        assert_eq!(p.get(0, 4), 2.0);
        assert!(indicator_row(&[0, 0], 6).is_err());
        assert!(indicator_row(&[9], 6).is_err());
    }

    #[test]
    fn indicator_row_sorts_input() {
        let q = indicator_row(&[5, 1, 3], 6).unwrap();
        assert_eq!(q.row_indices(0), &[1, 3, 5]);
    }

    proptest! {
        #[test]
        fn prop_vstack_then_split_roundtrip(
            entries in proptest::collection::vec((0usize..4, 0usize..5, -2.0f64..2.0), 0..20),
            k in 1usize..5,
        ) {
            let block = CsrMatrix::from_coo(&CooMatrix::from_triples(4, 5, entries).unwrap());
            let blocks: Vec<CsrMatrix> = (0..k).map(|_| block.clone()).collect();
            let stacked = vstack(&blocks).unwrap();
            prop_assert_eq!(stacked.rows(), 4 * k);
            let parts = split_rows(&stacked, k).unwrap();
            for p in parts {
                prop_assert_eq!(p, block.clone());
            }
        }

        #[test]
        fn prop_block_diag_nnz_and_shape(sizes in proptest::collection::vec((1usize..4, 1usize..4), 1..5)) {
            let blocks: Vec<CsrMatrix> = sizes.iter().map(|&(r, c)| {
                // Dense-ish block of ones.
                let mut coo = CooMatrix::new(r, c);
                for i in 0..r {
                    for j in 0..c {
                        coo.push(i, j, 1.0).unwrap();
                    }
                }
                CsrMatrix::from_coo(&coo)
            }).collect();
            let d = block_diag(&blocks);
            let total_rows: usize = sizes.iter().map(|s| s.0).sum();
            let total_cols: usize = sizes.iter().map(|s| s.1).sum();
            let total_nnz: usize = sizes.iter().map(|s| s.0 * s.1).sum();
            prop_assert_eq!(d.shape(), (total_rows, total_cols));
            prop_assert_eq!(d.nnz(), total_nnz);
        }
    }
}

//! Table 4: GNN architecture parameters used by the experiments.

use dmbs_bench::print_table;

fn main() {
    let rows = vec![
        vec![
            "SAGE".to_string(),
            "1024".to_string(),
            "(15,10,5)".to_string(),
            "256".to_string(),
            "3".to_string(),
        ],
        vec![
            "LADIES".to_string(),
            "512".to_string(),
            "512".to_string(),
            "256".to_string(),
            "1".to_string(),
        ],
    ];
    print_table(
        "Table 4 — architecture parameters (as in the paper)",
        &["GNN", "batch size", "fanout / s", "hidden", "layers"],
        &rows,
    );
    println!(
        "\nScaled-down harness runs shrink the batch size with the graphs (see dmbs_bench::sage_training_config)\nbut keep the layer structure and fanout shape."
    );
}

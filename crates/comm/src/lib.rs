//! # dmbs-comm
//!
//! A simulated distributed runtime for the `dmbs` reproduction of
//! *Distributed Matrix-Based Sampling for Graph Neural Network Training*
//! (MLSys 2024).
//!
//! The paper runs on 4–128 GPUs with NCCL collectives.  This crate replaces
//! that hardware with an SPMD **rank simulator**: [`Runtime::run`] spawns one
//! OS thread per rank, each executing the same closure over a
//! [`Communicator`] that provides point-to-point messaging and the
//! collectives the paper's algorithms need (broadcast, gather, all-gather,
//! all-reduce, all-to-allv, barrier), both over the full world and over
//! arbitrary sub-groups (process rows / columns of the 1.5D grid).
//!
//! Correctness of the distributed algorithms is independent of the
//! interconnect, so thread ranks exercise exactly the same code paths as GPU
//! ranks.  What *does* depend on the interconnect — communication time — is
//! captured by an α–β [`CostModel`]: every message records its word count and
//! modeled latency/bandwidth cost into per-rank [`CommStats`], which the
//! benchmark harnesses use to reproduce the paper's communication/computation
//! breakdowns (Figure 7) and its analytical cost model (§5.2.1).
//!
//! # Example
//!
//! ```
//! use dmbs_comm::{Runtime, Payload};
//!
//! # fn main() -> Result<(), dmbs_comm::CommError> {
//! let runtime = Runtime::new(4)?;
//! let outputs = runtime.run(|comm| {
//!     // Every rank contributes its rank id; the all-reduce sums them.
//!     let local = vec![comm.rank() as f64];
//!     let total = comm.allreduce(local, |a, b| {
//!         a.iter().zip(b).map(|(x, y)| x + y).collect()
//!     })?;
//!     Ok::<f64, dmbs_comm::CommError>(total[0])
//! })?;
//! for out in &outputs {
//!     assert_eq!(out.value.as_ref().unwrap(), &6.0);
//! }
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod collectives;
pub mod cost;
pub mod error;
pub mod grid;
pub mod nonblocking;
pub mod profile;
pub mod runtime;

pub use collectives::{Communicator, Group, Payload};
pub use cost::{CommStats, CostModel};
pub use error::CommError;
pub use grid::ProcessGrid;
pub use nonblocking::{PendingCollective, PendingResult};
pub use profile::{Phase, PhaseProfile};
pub use runtime::{RankOutput, Runtime};

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, CommError>;

//! Synthetic stand-ins for the paper's evaluation datasets.
//!
//! Table 3 of the paper lists three datasets:
//!
//! | Name     | Vertices | Edges | Avg. degree | Features |
//! |----------|----------|-------|-------------|----------|
//! | Products | 2.4M     | 126M  | ~53         | 100      |
//! | Protein  | 8.7M     | 1.3B  | ~241        | 128      |
//! | Papers   | 111M     | 1.6B  | ~29         | 128      |
//!
//! None of these are redistributable here, and the full sizes exceed a
//! single-machine CPU budget, so [`DatasetConfig`] builds scaled-down R-MAT
//! graphs that preserve the *average degree*, the *relative size ordering*
//! and the *feature dimension* of each dataset.  Class labels follow a
//! planted-partition model with homophilous edges added, so that a GraphSAGE
//! model can actually learn (needed for the §8.1.3 accuracy experiment);
//! the Protein stand-in keeps random features like the original.

use crate::generators::{rmat, RmatConfig};
use crate::graph::{Graph, GraphError};
use dmbs_matrix::{CooMatrix, CsrMatrix, DenseMatrix};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which of the paper's datasets a configuration imitates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// OGB `ogbn-products` stand-in: average degree ≈ 53, 100 features.
    Products,
    /// HipMCL `protein` stand-in: average degree ≈ 241, 128 random features.
    Protein,
    /// OGB `ogbn-papers100M` stand-in: average degree ≈ 29, 128 features.
    Papers,
}

impl DatasetKind {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Products => "Products",
            DatasetKind::Protein => "Protein",
            DatasetKind::Papers => "Papers",
        }
    }

    /// Average degree of the full-scale dataset in the paper.
    pub fn paper_average_degree(&self) -> usize {
        match self {
            DatasetKind::Products => 53,
            DatasetKind::Protein => 241,
            DatasetKind::Papers => 29,
        }
    }

    /// Vertex count of the full-scale dataset in the paper.
    pub fn paper_num_vertices(&self) -> usize {
        match self {
            DatasetKind::Products => 2_400_000,
            DatasetKind::Protein => 8_700_000,
            DatasetKind::Papers => 111_000_000,
        }
    }

    /// Feature dimension used by the paper.
    pub fn feature_dim(&self) -> usize {
        match self {
            DatasetKind::Products => 100,
            DatasetKind::Protein => 128,
            DatasetKind::Papers => 128,
        }
    }

    /// Whether the dataset's features are informative (Protein's are random
    /// in the paper, used only for performance measurement).
    pub fn has_informative_features(&self) -> bool {
        !matches!(self, DatasetKind::Protein)
    }
}

/// Configuration for building a scaled-down synthetic dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Which dataset to imitate.
    pub kind: DatasetKind,
    /// log2 of the number of vertices in the stand-in graph.
    pub scale: u32,
    /// Average degree; defaults to (a scaled-down cap of) the paper's value.
    pub average_degree: usize,
    /// Feature vector length.
    pub feature_dim: usize,
    /// Number of label classes.
    pub num_classes: usize,
    /// Fraction of vertices placed in the training set.
    pub train_fraction: f64,
    /// Strength of the homophily signal (0 = pure R-MAT, larger = more
    /// intra-class edges and more separable features).
    pub homophily: f64,
}

impl DatasetConfig {
    /// Default stand-in for OGB Products at the given scale
    /// (`2^scale` vertices).
    pub fn products_like(scale: u32) -> Self {
        DatasetConfig {
            kind: DatasetKind::Products,
            scale,
            average_degree: 53.min(1 << scale.saturating_sub(2)),
            feature_dim: 100,
            num_classes: 16,
            train_fraction: 0.1,
            homophily: 0.3,
        }
    }

    /// Default stand-in for the Protein graph at the given scale.  Features
    /// are random (as in the paper) and the degree is the highest of the
    /// three datasets.
    pub fn protein_like(scale: u32) -> Self {
        DatasetConfig {
            kind: DatasetKind::Protein,
            scale,
            average_degree: 241.min(1 << scale.saturating_sub(1)),
            feature_dim: 128,
            num_classes: 8,
            train_fraction: 0.5,
            homophily: 0.0,
        }
    }

    /// Default stand-in for OGB Papers100M at the given scale.
    pub fn papers_like(scale: u32) -> Self {
        DatasetConfig {
            kind: DatasetKind::Papers,
            scale,
            average_degree: 29.min(1 << scale.saturating_sub(2)),
            feature_dim: 128,
            num_classes: 32,
            train_fraction: 0.01,
            homophily: 0.3,
        }
    }

    /// Number of vertices the configuration generates.
    pub fn num_vertices(&self) -> usize {
        1usize << self.scale
    }
}

/// A generated dataset: graph + features + labels + train/val/test split.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Which dataset this imitates.
    pub kind: DatasetKind,
    /// The graph, with features and labels attached.
    pub graph: Graph,
    /// Vertex ids in the training set.
    pub train_set: Vec<usize>,
    /// Vertex ids in the validation set.
    pub val_set: Vec<usize>,
    /// Vertex ids in the test set.
    pub test_set: Vec<usize>,
}

impl Dataset {
    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// Number of minibatches of size `batch_size` in the training set
    /// (rounded up), matching the "Batches" column of Table 3.
    pub fn num_batches(&self, batch_size: usize) -> usize {
        self.train_set.len().div_ceil(batch_size)
    }
}

/// Builds a synthetic dataset according to `config`.
///
/// The graph is an R-MAT graph with the configured average degree, augmented
/// with homophilous intra-class edges when `homophily > 0`.  Features are the
/// class centroid (a sparse ±1 pattern) plus Gaussian-ish noise for
/// informative datasets, or pure noise for Protein.
///
/// # Errors
///
/// Returns [`GraphError::InvalidConfig`] for degenerate configurations
/// (scale 0, zero classes, train fraction outside `(0, 1]`).
pub fn build_dataset<R: Rng + ?Sized>(
    config: &DatasetConfig,
    rng: &mut R,
) -> Result<Dataset, GraphError> {
    if config.num_classes == 0 {
        return Err(GraphError::InvalidConfig("num_classes must be positive".into()));
    }
    if config.train_fraction <= 0.0 || config.train_fraction > 1.0 {
        return Err(GraphError::InvalidConfig("train_fraction must be in (0, 1]".into()));
    }
    if config.feature_dim == 0 {
        return Err(GraphError::InvalidConfig("feature_dim must be positive".into()));
    }
    let n = config.num_vertices();
    let base = rmat(&RmatConfig::new(config.scale, config.average_degree.max(1)), rng)?;

    // Assign labels uniformly at random.
    let labels: Vec<usize> = (0..n).map(|_| rng.gen_range(0..config.num_classes)).collect();

    // Homophily: add intra-class edges so that neighborhood aggregation is
    // informative about the label.
    let adjacency = if config.homophily > 0.0 {
        let extra_per_vertex = (config.average_degree as f64 * config.homophily).ceil() as usize;
        let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); config.num_classes];
        for (v, &c) in labels.iter().enumerate() {
            by_class[c].push(v);
        }
        let mut coo = CooMatrix::with_capacity(n, n, base.num_edges() + n * extra_per_vertex);
        for (r, c, v) in base.adjacency().iter() {
            coo.push(r, c, v)?;
        }
        for (v, &class) in labels.iter().enumerate() {
            let peers = &by_class[class];
            if peers.len() < 2 {
                continue;
            }
            for _ in 0..extra_per_vertex {
                let peer = peers[rng.gen_range(0..peers.len())];
                if peer != v {
                    coo.push(v, peer, 1.0)?;
                }
            }
        }
        let mut merged = CsrMatrix::from_coo(&coo);
        merged.map_values_inplace(|_| 1.0);
        merged
    } else {
        base.adjacency().clone()
    };

    // Features: class centroid pattern + noise, or pure noise.
    let mut features = DenseMatrix::zeros(n, config.feature_dim);
    let signal = if config.kind.has_informative_features() { 1.0 } else { 0.0 };
    for (v, &class) in labels.iter().enumerate() {
        let row = features.row_mut(v);
        for (j, value) in row.iter_mut().enumerate() {
            let centroid = if (j + class).is_multiple_of(config.num_classes) { 1.0 } else { -0.1 };
            let noise: f64 = rng.gen_range(-0.5..0.5);
            *value = signal * centroid * (1.0 + config.homophily) + noise;
        }
    }

    let graph = Graph::from_adjacency(adjacency)?
        .with_features(features)?
        .with_labels(labels, config.num_classes)?;

    // Split: shuffle vertex ids, take train_fraction for training and split
    // the remainder evenly between validation and test.
    let mut ids: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        ids.swap(i, j);
    }
    let train_len = ((n as f64) * config.train_fraction).round().max(1.0) as usize;
    let train_len = train_len.min(n);
    let rest = n - train_len;
    let val_len = rest / 2;
    let train_set = ids[..train_len].to_vec();
    let val_set = ids[train_len..train_len + val_len].to_vec();
    let test_set = ids[train_len + val_len..].to_vec();

    Ok(Dataset { kind: config.kind, graph, train_set, val_set, test_set })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kind_metadata_matches_paper_table3() {
        assert_eq!(DatasetKind::Products.paper_average_degree(), 53);
        assert_eq!(DatasetKind::Protein.paper_average_degree(), 241);
        assert_eq!(DatasetKind::Papers.paper_average_degree(), 29);
        assert_eq!(DatasetKind::Products.feature_dim(), 100);
        assert_eq!(DatasetKind::Papers.paper_num_vertices(), 111_000_000);
        assert!(!DatasetKind::Protein.has_informative_features());
        assert_eq!(DatasetKind::Papers.name(), "Papers");
    }

    #[test]
    fn build_products_like_small() {
        let cfg = DatasetConfig::products_like(8);
        let mut rng = StdRng::seed_from_u64(42);
        let ds = build_dataset(&cfg, &mut rng).unwrap();
        assert_eq!(ds.num_vertices(), 256);
        assert!(ds.num_edges() > 0);
        assert_eq!(ds.graph.features().unwrap().cols(), 100);
        assert_eq!(ds.graph.num_classes(), 16);
        // Split partitions the vertex set.
        assert_eq!(ds.train_set.len() + ds.val_set.len() + ds.test_set.len(), 256);
        assert!(!ds.train_set.is_empty());
    }

    #[test]
    fn relative_degrees_are_ordered_like_the_paper() {
        let mut rng = StdRng::seed_from_u64(1);
        let products = build_dataset(&DatasetConfig::products_like(9), &mut rng).unwrap();
        let protein = build_dataset(&DatasetConfig::protein_like(9), &mut rng).unwrap();
        let papers = build_dataset(&DatasetConfig::papers_like(9), &mut rng).unwrap();
        // Protein is densest, Papers sparsest — same ordering as Table 3.
        assert!(protein.graph.average_degree() > products.graph.average_degree());
        assert!(products.graph.average_degree() > papers.graph.average_degree());
    }

    #[test]
    fn determinism_with_seed() {
        let cfg = DatasetConfig::papers_like(7);
        let a = build_dataset(&cfg, &mut StdRng::seed_from_u64(9)).unwrap();
        let b = build_dataset(&cfg, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(a.graph.adjacency(), b.graph.adjacency());
        assert_eq!(a.train_set, b.train_set);
    }

    #[test]
    fn num_batches_rounds_up() {
        let cfg = DatasetConfig::products_like(8);
        let ds = build_dataset(&cfg, &mut StdRng::seed_from_u64(3)).unwrap();
        let b = ds.num_batches(10);
        assert_eq!(b, ds.train_set.len().div_ceil(10));
        assert!(b >= 1);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut cfg = DatasetConfig::products_like(6);
        cfg.num_classes = 0;
        assert!(build_dataset(&cfg, &mut rng).is_err());
        let mut cfg = DatasetConfig::products_like(6);
        cfg.train_fraction = 0.0;
        assert!(build_dataset(&cfg, &mut rng).is_err());
        let mut cfg = DatasetConfig::products_like(6);
        cfg.feature_dim = 0;
        assert!(build_dataset(&cfg, &mut rng).is_err());
    }

    #[test]
    fn protein_features_are_uninformative_noise() {
        let cfg = DatasetConfig::protein_like(7);
        let ds = build_dataset(&cfg, &mut StdRng::seed_from_u64(5)).unwrap();
        // Pure noise features have near-zero column means.
        let means = ds.graph.features().unwrap().col_means();
        assert!(means.iter().all(|m| m.abs() < 0.2));
    }
}

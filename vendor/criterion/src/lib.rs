//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! Implements just the surface the dmbs bench targets use — groups,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `iter` — with a small
//! fixed measurement budget instead of criterion's statistical machinery.
//! Results are printed as `group/name[/param]: mean <time> (<iters> iters)`.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing a benchmarked value away.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifies one benchmark within a group, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A benchmark named `name` with parameter `parameter`.
    pub fn new<N: Display, P: Display>(name: N, parameter: P) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    /// A benchmark identified by its parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Passed to the benchmark closure; runs and times the measured routine.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly within a small time budget and records the
    /// mean wall-clock duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up call, then measure until the budget is spent.
        black_box(routine());
        let budget = Duration::from_millis(200);
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < budget && iters < 1000 {
            black_box(routine());
            iters += 1;
        }
        self.iters = iters.max(1);
        self.elapsed = start.elapsed();
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness sizes runs by time
    /// budget, not sample count.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut bencher = Bencher { iters: 0, elapsed: Duration::ZERO };
        f(&mut bencher);
        let mean = bencher.elapsed.as_secs_f64() / bencher.iters.max(1) as f64;
        println!("{}/{id}: mean {mean:.6}s ({} iters)", self.name, bencher.iters);
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run(id, f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through to the closure.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(&id.id, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a benchmark group named `name`.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _criterion: self }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group("bench");
        group.run(id, f);
        self
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

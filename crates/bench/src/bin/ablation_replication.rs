//! Ablation: replication factor `c` in the Graph-Partitioned algorithm.
//!
//! Sweeps `c` for a fixed rank count and reports the probability-phase
//! communication volume and modeled time, which the paper's §5.2.1 analysis
//! predicts should improve as `c` grows (the k·b·d/c row-data term shrinks).

use dmbs_bench::{dataset, print_table, secs, Scale};
use dmbs_comm::{CostModel, Phase};
use dmbs_graph::datasets::DatasetKind;
use dmbs_graph::minibatch::MinibatchPlan;
use dmbs_sampling::{
    BulkSamplerConfig, DistConfig, GraphSageSampler, Partitioned1p5dBackend, SamplingBackend,
};

fn main() {
    let scale = Scale::from_env();
    let ds = dataset(DatasetKind::Papers, scale);
    let a = ds.graph.adjacency();
    let batch_size = (ds.train_set.len() / 16).clamp(8, 128);
    let plan =
        MinibatchPlan::sequential(&ds.train_set, batch_size).expect("non-empty training set");
    let batches = plan.batches().to_vec();
    let p = *scale.rank_counts().last().unwrap_or(&16);
    let model = CostModel::default();
    let avg_degree = ds.graph.average_degree();

    let mut rows = Vec::new();
    for &c in &[1usize, 2, 4, 8] {
        if !p.is_multiple_of(c) || c > p {
            continue;
        }
        let backend = Partitioned1p5dBackend::new(DistConfig::new(
            p,
            c,
            BulkSamplerConfig::new(batch_size, batches.len()),
        ))
        .expect("valid distribution configuration");
        let epoch = backend
            .sample_epoch(&GraphSageSampler::new(vec![15, 10, 5]), a, &batches, 29)
            .expect("partitioned sampling failed");
        let comm_time: f64 = epoch.max_total_comm();
        let prob_comm: f64 =
            epoch.per_unit.iter().map(|u| u.profile.comm(Phase::Probability)).fold(0.0, f64::max);
        let words: usize = epoch.total_words_sent();
        let predicted = model.predict_prob_cost(p, c, batches.len(), batch_size, avg_degree);
        rows.push(vec![
            format!("{c}"),
            format!("{words}"),
            secs(prob_comm),
            secs(comm_time),
            secs(predicted),
        ]);
    }
    print_table(
        &format!("Ablation — replication factor c (Papers stand-in, p = {p})"),
        &[
            "c",
            "words sent (all rows)",
            "prob comm (modeled)",
            "total comm (modeled)",
            "T_prob predicted (§5.2.1)",
        ],
        &rows,
    );
    println!("\nExpected shape: the measured probability-phase communication follows the analytical T_prob trend — improving with c until the c·k·b·d/p all-reduce term takes over.");
}

//! Offline stand-in for the `proptest` crate.
//!
//! Provides deterministic seeded random-case testing with the subset of the
//! real API the dmbs workspace uses: range strategies, tuple strategies,
//! `proptest::collection::vec`, the [`proptest!`] macro and
//! `prop_assert!`/`prop_assert_eq!`.  No shrinking — failures report the
//! case seed instead.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform};
use std::ops::Range;

/// Re-export used by the [`proptest!`] macro so dependent crates do not need
/// their own `rand` dependency.
pub use rand as rand_shim;

/// Number of random cases each `proptest!` test runs.
pub const CASES: u64 = 64;

/// A generator of random values for one test argument.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// Strategy adapter produced by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
    }
}

/// Length specifications accepted by [`collection::vec`].
pub trait IntoSizeRange {
    /// Draws a concrete length.
    fn draw_len(&self, rng: &mut StdRng) -> usize;
}

impl IntoSizeRange for usize {
    fn draw_len(&self, _rng: &mut StdRng) -> usize {
        *self
    }
}

impl IntoSizeRange for Range<usize> {
    fn draw_len(&self, rng: &mut StdRng) -> usize {
        if self.start >= self.end {
            self.start
        } else {
            rng.gen_range(self.start..self.end)
        }
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{IntoSizeRange, Strategy};
    use rand::rngs::StdRng;

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Generates vectors whose length is drawn from `len` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = self.len.draw_len(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Derives the per-case RNG seed from the test name and case index, so every
/// test draws an independent, reproducible stream.
pub fn case_seed(test_name: &str, case: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares seeded random-case tests: each `fn` runs [`CASES`] times with
/// arguments drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block)+) => {$(
        $(#[$attr])*
        fn $name() {
            use $crate::Strategy as _;
            for __case in 0..$crate::CASES {
                let __seed = $crate::case_seed(stringify!($name), __case);
                let mut __rng = <$crate::rand_shim::rngs::StdRng as $crate::rand_shim::SeedableRng>::seed_from_u64(__seed);
                $(let $arg = ($strategy).generate(&mut __rng);)+
                $body
            }
        }
    )+};
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs(x in 3usize..9, v in collection::vec(0.0f64..1.0, 1..5)) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|f| (0.0..1.0).contains(f)));
        }

        #[test]
        fn tuples_and_exact_len(t in (0usize..4, -1.0f64..1.0), v in collection::vec(0u64..10, 6)) {
            prop_assert!(t.0 < 4);
            prop_assert_eq!(v.len(), 6);
        }
    }
}

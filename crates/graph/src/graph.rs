//! The [`Graph`] type: a CSR adjacency matrix plus optional features/labels.

use dmbs_matrix::{CooMatrix, CsrMatrix, DenseMatrix, MatrixError};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Errors produced by graph construction and dataset generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge referenced a vertex outside `0..num_vertices`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: usize,
        /// Number of vertices in the graph.
        num_vertices: usize,
    },
    /// The requested configuration is invalid (e.g. zero vertices, a feature
    /// matrix whose row count does not match the vertex count).
    InvalidConfig(String),
    /// An underlying matrix operation failed.
    Matrix(MatrixError),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, num_vertices } => {
                write!(f, "vertex {vertex} out of range for graph with {num_vertices} vertices")
            }
            GraphError::InvalidConfig(msg) => write!(f, "invalid graph configuration: {msg}"),
            GraphError::Matrix(e) => write!(f, "matrix error: {e}"),
        }
    }
}

impl Error for GraphError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GraphError::Matrix(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MatrixError> for GraphError {
    fn from(e: MatrixError) -> Self {
        GraphError::Matrix(e)
    }
}

/// A directed graph stored as a CSR adjacency matrix, with optional per-vertex
/// feature vectors and class labels.
///
/// Row `v` of the adjacency matrix lists the out-neighbors of vertex `v`,
/// matching the paper's convention where `Q^l · A` expands a frontier along
/// out-edges.
///
/// # Example
///
/// ```
/// use dmbs_graph::Graph;
///
/// # fn main() -> Result<(), dmbs_graph::GraphError> {
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)])?;
/// assert_eq!(g.num_vertices(), 3);
/// assert_eq!(g.num_edges(), 3);
/// assert_eq!(g.out_degree(0), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Graph {
    adjacency: CsrMatrix,
    features: Option<DenseMatrix>,
    labels: Option<Vec<usize>>,
    num_classes: usize,
}

impl Graph {
    /// Builds a graph from a directed edge list.  Duplicate edges are merged.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if an edge endpoint is
    /// `>= num_vertices`, or [`GraphError::InvalidConfig`] if
    /// `num_vertices == 0`.
    pub fn from_edges(num_vertices: usize, edges: &[(usize, usize)]) -> Result<Self, GraphError> {
        if num_vertices == 0 {
            return Err(GraphError::InvalidConfig("graph must have at least one vertex".into()));
        }
        let mut coo = CooMatrix::with_capacity(num_vertices, num_vertices, edges.len());
        for &(u, v) in edges {
            if u >= num_vertices || v >= num_vertices {
                return Err(GraphError::VertexOutOfRange { vertex: u.max(v), num_vertices });
            }
            coo.push(u, v, 1.0)?;
        }
        let mut adjacency = CsrMatrix::from_coo(&coo);
        // Merge duplicate edges into weight 1 (unweighted simple digraph).
        adjacency.map_values_inplace(|_| 1.0);
        Ok(Graph { adjacency, features: None, labels: None, num_classes: 0 })
    }

    /// Wraps an existing adjacency matrix.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidConfig`] if the matrix is not square.
    pub fn from_adjacency(adjacency: CsrMatrix) -> Result<Self, GraphError> {
        if adjacency.rows() != adjacency.cols() {
            return Err(GraphError::InvalidConfig(format!(
                "adjacency matrix must be square, got {}x{}",
                adjacency.rows(),
                adjacency.cols()
            )));
        }
        Ok(Graph { adjacency, features: None, labels: None, num_classes: 0 })
    }

    /// Attaches a per-vertex feature matrix (`num_vertices x f`).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidConfig`] if the row count does not match
    /// the number of vertices.
    pub fn with_features(mut self, features: DenseMatrix) -> Result<Self, GraphError> {
        if features.rows() != self.num_vertices() {
            return Err(GraphError::InvalidConfig(format!(
                "feature matrix has {} rows but the graph has {} vertices",
                features.rows(),
                self.num_vertices()
            )));
        }
        self.features = Some(features);
        Ok(self)
    }

    /// Attaches per-vertex class labels.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidConfig`] if the label count does not match
    /// the number of vertices or `num_classes == 0`.
    pub fn with_labels(
        mut self,
        labels: Vec<usize>,
        num_classes: usize,
    ) -> Result<Self, GraphError> {
        if labels.len() != self.num_vertices() {
            return Err(GraphError::InvalidConfig(format!(
                "label vector has {} entries but the graph has {} vertices",
                labels.len(),
                self.num_vertices()
            )));
        }
        if num_classes == 0 {
            return Err(GraphError::InvalidConfig("num_classes must be positive".into()));
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= num_classes) {
            return Err(GraphError::InvalidConfig(format!(
                "label {bad} out of range for {num_classes} classes"
            )));
        }
        self.labels = Some(labels);
        self.num_classes = num_classes;
        Ok(self)
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.adjacency.rows()
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.adjacency.nnz()
    }

    /// Average out-degree.
    pub fn average_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_vertices() as f64
        }
    }

    /// Out-degree of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_vertices`.
    pub fn out_degree(&self, v: usize) -> usize {
        self.adjacency.row_nnz(v)
    }

    /// Out-neighbors of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_vertices`.
    pub fn neighbors(&self, v: usize) -> &[usize] {
        self.adjacency.row_indices(v)
    }

    /// Borrow of the adjacency matrix.
    pub fn adjacency(&self) -> &CsrMatrix {
        &self.adjacency
    }

    /// Borrow of the feature matrix, if attached.
    pub fn features(&self) -> Option<&DenseMatrix> {
        self.features.as_ref()
    }

    /// Borrow of the label vector, if attached.
    pub fn labels(&self) -> Option<&[usize]> {
        self.labels.as_deref()
    }

    /// Number of label classes (0 if no labels attached).
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Out-degree of every vertex.
    pub fn degrees(&self) -> Vec<usize> {
        (0..self.num_vertices()).map(|v| self.out_degree(v)).collect()
    }

    /// Maximum out-degree.
    pub fn max_degree(&self) -> usize {
        self.degrees().into_iter().max().unwrap_or(0)
    }

    /// Number of vertices with no out-edges.
    pub fn num_isolated(&self) -> usize {
        (0..self.num_vertices()).filter(|&v| self.out_degree(v) == 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_basic() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 1)]).unwrap();
        assert_eq!(g.num_vertices(), 4);
        // Duplicate edge merged.
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.average_degree(), 1.0);
    }

    #[test]
    fn from_edges_rejects_bad_input() {
        assert!(Graph::from_edges(0, &[]).is_err());
        assert!(matches!(
            Graph::from_edges(2, &[(0, 5)]),
            Err(GraphError::VertexOutOfRange { vertex: 5, .. })
        ));
    }

    #[test]
    fn from_adjacency_requires_square() {
        let rect = CsrMatrix::zeros(2, 3);
        assert!(Graph::from_adjacency(rect).is_err());
        let square = CsrMatrix::identity(3);
        assert!(Graph::from_adjacency(square).is_ok());
    }

    #[test]
    fn features_and_labels_validation() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let feats = DenseMatrix::zeros(3, 4);
        let g = g.with_features(feats).unwrap();
        assert_eq!(g.features().unwrap().cols(), 4);

        let bad_feats = DenseMatrix::zeros(2, 4);
        assert!(Graph::from_edges(3, &[]).unwrap().with_features(bad_feats).is_err());

        let g = g.with_labels(vec![0, 1, 1], 2).unwrap();
        assert_eq!(g.num_classes(), 2);
        assert_eq!(g.labels().unwrap()[2], 1);

        let g2 = Graph::from_edges(3, &[]).unwrap();
        assert!(g2.clone().with_labels(vec![0, 1], 2).is_err());
        assert!(g2.clone().with_labels(vec![0, 1, 5], 2).is_err());
        assert!(g2.with_labels(vec![0, 0, 0], 0).is_err());
    }

    #[test]
    fn degree_statistics() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (1, 0)]).unwrap();
        assert_eq!(g.degrees(), vec![3, 1, 0, 0, 0]);
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.num_isolated(), 3);
    }

    #[test]
    fn error_display_and_source() {
        let e = GraphError::VertexOutOfRange { vertex: 9, num_vertices: 4 };
        assert!(e.to_string().contains("vertex 9"));
        let m = GraphError::Matrix(MatrixError::Empty("row"));
        assert!(m.source().is_some());
    }
}

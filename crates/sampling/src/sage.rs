//! GraphSAGE node-wise sampling expressed as matrix operations (§4.1).
//!
//! For one minibatch of `b` vertices, `Q^L ∈ {0,1}^{b×n}` has one nonzero per
//! row at the batch vertex.  `P ← Q^L A` then contains each batch vertex's
//! neighborhood as a row; row-normalizing turns each row into the uniform
//! distribution over its neighbors, ITS draws `s` of them, and removing the
//! empty columns of the sampled matrix yields the layer's sampled adjacency
//! matrix.  Deeper layers repeat the process with the newly sampled frontier
//! as the row set, and bulk sampling vertically stacks the matrices of `k`
//! minibatches (Equation 1).

use crate::its::sample_rows_par;
use crate::plan::{BulkSampleOutput, LayerSample, MinibatchSample};
use crate::sampler::{validate_batches, BulkSamplerConfig, PartitionedContext, Sampler};
use crate::{Result, SamplingError};
use dmbs_comm::{Phase, PhaseProfile};
use dmbs_matrix::extract::extract_rows_with;
use dmbs_matrix::workspace::with_workspace;
use dmbs_matrix::{CooMatrix, CsrMatrix};
use rand::RngCore;

/// The GraphSAGE node-wise sampler.
///
/// # Example
///
/// ```
/// use dmbs_sampling::{GraphSageSampler, Sampler, BulkSamplerConfig};
/// use dmbs_graph::generators::figure1_example;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), dmbs_sampling::SamplingError> {
/// let sampler = GraphSageSampler::new(vec![2, 2]);
/// let graph = figure1_example();
/// let mut rng = StdRng::seed_from_u64(0);
/// let sample = sampler.sample_minibatch(graph.adjacency(), &[1, 5], &mut rng)?;
/// assert_eq!(sample.num_layers(), 2);
/// // The outermost layer's rows are the batch vertices.
/// assert_eq!(sample.layers.last().unwrap().rows, vec![1, 5]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphSageSampler {
    /// Fanout per sampling step, outermost (batch) step first — e.g.
    /// `(15, 10, 5)` for the paper's 3-layer SAGE architecture.
    fanouts: Vec<usize>,
    include_self_loops: bool,
}

impl GraphSageSampler {
    /// Creates a sampler with the given per-step fanouts (outermost first).
    ///
    /// # Panics
    ///
    /// Panics if `fanouts` is empty or contains a zero (checked eagerly
    /// because these are programmer errors, not data errors).
    pub fn new(fanouts: Vec<usize>) -> Self {
        assert!(!fanouts.is_empty(), "GraphSAGE needs at least one layer fanout");
        assert!(fanouts.iter().all(|&s| s > 0), "fanouts must be positive");
        GraphSageSampler { fanouts, include_self_loops: false }
    }

    /// Enables self-loops: every frontier vertex is added to its own sampled
    /// neighbor set.  This guarantees that each layer's rows are a subset of
    /// its columns, which the GNN training substrate relies on for the
    /// self-connection of the SAGE aggregator.  It is a standard practical
    /// extension (DGL/PyG do the same) and does not change the matrix
    /// formulation.
    pub fn with_self_loops(mut self) -> Self {
        self.include_self_loops = true;
        self
    }

    /// The configured fanouts, outermost step first.
    pub fn fanouts(&self) -> &[usize] {
        &self.fanouts
    }

    /// Whether self-loops are added during extraction.
    pub fn includes_self_loops(&self) -> bool {
        self.include_self_loops
    }

    /// Extraction step for one minibatch block: optionally add self-loops,
    /// then drop the empty columns of the block of `Q^{l-1}` (§4.1.3).
    fn extract_block(
        &self,
        block: &CsrMatrix,
        frontier: &[usize],
    ) -> Result<(CsrMatrix, Vec<usize>)> {
        let block = if self.include_self_loops {
            let mut coo =
                CooMatrix::with_capacity(block.rows(), block.cols(), block.nnz() + frontier.len());
            for (r, c, v) in block.iter() {
                coo.push(r, c, v)?;
            }
            for (i, &v) in frontier.iter().enumerate() {
                coo.push(i, v, 1.0)?;
            }
            let mut merged = CsrMatrix::from_coo(&coo);
            merged.map_values_inplace(|_| 1.0);
            merged
        } else {
            block.clone()
        };
        let (compacted, kept) = block.compact_columns();
        Ok((compacted, kept))
    }
}

impl Sampler for GraphSageSampler {
    fn spec(&self) -> Option<crate::spec::SamplerSpec> {
        Some(crate::spec::SamplerSpec::GraphSage {
            fanouts: self.fanouts.clone(),
            self_loops: self.include_self_loops,
        })
    }

    fn name(&self) -> &'static str {
        "graphsage"
    }

    fn num_layers(&self) -> usize {
        self.fanouts.len()
    }

    fn fanout(&self, step: usize) -> usize {
        self.fanouts[step]
    }

    fn sample_minibatch(
        &self,
        adjacency: &CsrMatrix,
        batch: &[usize],
        rng: &mut dyn RngCore,
    ) -> Result<MinibatchSample> {
        let config = BulkSamplerConfig::new(batch.len(), 1);
        let mut out = self.sample_bulk(adjacency, &[batch.to_vec()], &config, rng)?;
        Ok(out.minibatches.remove(0))
    }

    fn sample_bulk(
        &self,
        adjacency: &CsrMatrix,
        batches: &[Vec<usize>],
        config: &BulkSamplerConfig,
        rng: &mut dyn RngCore,
    ) -> Result<BulkSampleOutput> {
        config.validate()?;
        let n = adjacency.rows();
        if adjacency.cols() != n {
            return Err(SamplingError::InvalidConfig("adjacency matrix must be square".into()));
        }
        validate_batches(batches, n)?;

        let k = batches.len();
        let parallelism = config.parallelism;
        let mut profile = PhaseProfile::new();
        // Per-batch frontier (row vertex ids) for the current sampling step.
        let mut frontiers: Vec<Vec<usize>> = batches.to_vec();
        // Per-batch layers collected outermost-first.
        let mut layers: Vec<Vec<LayerSample>> = vec![Vec::new(); k];

        for step in 0..self.num_layers() {
            let s = self.fanouts[step];

            // ---- Generate probability distributions: P = Q^l A, normalized.
            // Q^l is a row-selection matrix (one nonzero per stacked frontier
            // vertex), so the product is a structure-aware row gather rather
            // than a general SpGEMM — byte-identical, O(nnz of the gathered
            // rows), no accumulation (see dmbs_matrix::extract).
            let (p, offsets) = profile.time_compute(Phase::Probability, || -> Result<_> {
                let mut stacked: Vec<usize> = Vec::new();
                let mut offsets: Vec<usize> = Vec::with_capacity(k + 1);
                offsets.push(0);
                for frontier in &frontiers {
                    stacked.extend_from_slice(frontier);
                    offsets.push(stacked.len());
                }
                let mut p = with_workspace(config.workspace_reuse, |ws| {
                    extract_rows_with(adjacency, &stacked, parallelism, ws)
                })?;
                p.normalize_rows();
                Ok((p, offsets))
            })?;

            // ---- Sample s columns per row with ITS, one seeded RNG stream
            // per row (reproducible at any thread count).
            let step_seed = rng.next_u64();
            let q_next = profile
                .time_compute(Phase::Sampling, || sample_rows_par(&p, s, step_seed, parallelism))?;

            // ---- Extraction: per minibatch block, drop empty columns.
            profile.time_compute(Phase::Extraction, || -> Result<()> {
                for (i, frontier) in frontiers.iter_mut().enumerate() {
                    let block = q_next.row_block(offsets[i], offsets[i + 1]);
                    let (compacted, kept) = self.extract_block(&block, frontier)?;
                    layers[i].push(LayerSample::new(frontier.clone(), kept.clone(), compacted));
                    *frontier = kept;
                }
                Ok(())
            })?;
        }

        let minibatches = batches
            .iter()
            .zip(layers)
            .map(|(batch, mut batch_layers)| {
                batch_layers.reverse(); // innermost first
                MinibatchSample { batch: batch.clone(), layers: batch_layers }
            })
            .collect();

        Ok(BulkSampleOutput { minibatches, profile, comm_stats: Default::default() })
    }

    fn sample_partitioned(&self, ctx: &mut PartitionedContext<'_>) -> Result<BulkSampleOutput> {
        crate::partitioned::sage_on_rank(
            ctx.comm,
            ctx.grid,
            ctx.my_a_block,
            ctx.vertex_partition,
            ctx.my_batches,
            &self.fanouts,
            self.include_self_loops,
            ctx.seed,
            ctx.parallelism,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmbs_graph::generators::{complete, figure1_example, star};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn adjacency() -> CsrMatrix {
        figure1_example().adjacency().clone()
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_fanouts_panic() {
        GraphSageSampler::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_fanout_panics() {
        GraphSageSampler::new(vec![2, 0]);
    }

    #[test]
    fn single_layer_sample_matches_paper_example() {
        // Batch {1, 5} with s = 2: vertex 1 samples 2 of {0, 2, 4}; vertex 5
        // keeps its whole neighborhood {3, 4}.
        let sampler = GraphSageSampler::new(vec![2]);
        let a = adjacency();
        let mut rng = StdRng::seed_from_u64(1);
        let sample = sampler.sample_minibatch(&a, &[1, 5], &mut rng).unwrap();
        assert_eq!(sample.num_layers(), 1);
        let layer = &sample.layers[0];
        assert_eq!(layer.rows, vec![1, 5]);
        // Row 0 (vertex 1) has exactly 2 sampled neighbors from {0, 2, 4}.
        assert_eq!(layer.adjacency.row_nnz(0), 2);
        // Row 1 (vertex 5) has both of its neighbors {3, 4}.
        assert_eq!(layer.adjacency.row_nnz(1), 2);
        // Columns are global ids of sampled vertices.
        for &c in &layer.cols {
            assert!(c < 6);
        }
        // Every sampled edge exists in the original graph.
        for (r, c, _) in layer.adjacency.iter() {
            assert_eq!(a.get(layer.rows[r], layer.cols[c]), 1.0);
        }
        assert!(sample.frontiers_are_chained());
    }

    #[test]
    fn multi_layer_frontiers_chain() {
        let sampler = GraphSageSampler::new(vec![2, 2, 2]);
        let a = adjacency();
        let mut rng = StdRng::seed_from_u64(3);
        let sample = sampler.sample_minibatch(&a, &[1, 5], &mut rng).unwrap();
        assert_eq!(sample.num_layers(), 3);
        assert!(sample.frontiers_are_chained());
        // Frontier sizes never exceed b * s^depth.
        let mut bound = 2usize;
        for layer in sample.layers.iter().rev() {
            assert!(layer.rows.len() <= bound);
            bound *= 2;
            assert!(layer.cols.len() <= bound);
        }
    }

    #[test]
    fn fanout_larger_than_degree_keeps_whole_neighborhood() {
        let sampler = GraphSageSampler::new(vec![100]);
        let a = adjacency();
        let mut rng = StdRng::seed_from_u64(4);
        let sample = sampler.sample_minibatch(&a, &[1], &mut rng).unwrap();
        let layer = &sample.layers[0];
        assert_eq!(layer.cols, vec![0, 2, 4]);
        assert_eq!(layer.adjacency.row_nnz(0), 3);
    }

    #[test]
    fn self_loops_put_rows_into_cols() {
        let sampler = GraphSageSampler::new(vec![1, 1]).with_self_loops();
        assert!(sampler.includes_self_loops());
        let a = adjacency();
        let mut rng = StdRng::seed_from_u64(5);
        let sample = sampler.sample_minibatch(&a, &[1, 5], &mut rng).unwrap();
        for layer in &sample.layers {
            for r in &layer.rows {
                assert!(layer.cols.contains(r), "row vertex {r} missing from cols");
            }
        }
    }

    #[test]
    fn bulk_sampling_keeps_batches_independent() {
        let sampler = GraphSageSampler::new(vec![2]);
        let a = adjacency();
        let batches = vec![vec![1, 5], vec![0, 3], vec![2, 4]];
        let config = BulkSamplerConfig::new(2, 3);
        let mut rng = StdRng::seed_from_u64(6);
        let out = sampler.sample_bulk(&a, &batches, &config, &mut rng).unwrap();
        assert_eq!(out.num_batches(), 3);
        for (mb, batch) in out.minibatches.iter().zip(&batches) {
            assert_eq!(&mb.batch, batch);
            assert_eq!(&mb.layers.last().unwrap().rows, batch);
            assert!(mb.frontiers_are_chained());
            assert!(mb.total_edges() > 0);
        }
        // Profile recorded all three sampling phases.
        assert!(out.profile.compute(Phase::Probability) >= 0.0);
        assert!(out.profile.total_compute() > 0.0);
        assert_eq!(out.comm_stats.messages, 0);
    }

    #[test]
    fn sampled_edges_subset_of_graph_on_random_graphs() {
        let g = complete(12).unwrap();
        let sampler = GraphSageSampler::new(vec![3, 2]);
        let mut rng = StdRng::seed_from_u64(7);
        let out = sampler
            .sample_bulk(
                g.adjacency(),
                &[vec![0, 1, 2], vec![3, 4, 5]],
                &BulkSamplerConfig::new(3, 2),
                &mut rng,
            )
            .unwrap();
        for mb in &out.minibatches {
            for layer in &mb.layers {
                assert!(layer.adjacency.rows() == layer.rows.len());
                for (r, c, _) in layer.adjacency.iter() {
                    assert_eq!(g.adjacency().get(layer.rows[r], layer.cols[c]), 1.0);
                }
                // Fanout respected.
                for r in 0..layer.adjacency.rows() {
                    assert!(layer.adjacency.row_nnz(r) <= 3);
                }
            }
        }
    }

    #[test]
    fn star_graph_low_degree_vertices() {
        // Leaves have degree 1; sampling keeps their single neighbor.
        let g = star(8).unwrap();
        let sampler = GraphSageSampler::new(vec![3]);
        let mut rng = StdRng::seed_from_u64(8);
        let sample = sampler.sample_minibatch(g.adjacency(), &[3, 5], &mut rng).unwrap();
        let layer = &sample.layers[0];
        assert_eq!(layer.cols, vec![0]);
        assert_eq!(layer.adjacency.row_nnz(0), 1);
        assert_eq!(layer.adjacency.row_nnz(1), 1);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let sampler = GraphSageSampler::new(vec![2]);
        let a = adjacency();
        let mut rng = StdRng::seed_from_u64(9);
        assert!(sampler.sample_bulk(&a, &[], &BulkSamplerConfig::default(), &mut rng).is_err());
        assert!(sampler
            .sample_bulk(&a, &[vec![]], &BulkSamplerConfig::default(), &mut rng)
            .is_err());
        assert!(sampler
            .sample_bulk(&a, &[vec![17]], &BulkSamplerConfig::default(), &mut rng)
            .is_err());
        let rect = CsrMatrix::zeros(3, 4);
        assert!(sampler
            .sample_bulk(&rect, &[vec![0]], &BulkSamplerConfig::default(), &mut rng)
            .is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let sampler = GraphSageSampler::new(vec![2, 2]);
        let a = adjacency();
        let s1 = sampler.sample_minibatch(&a, &[1, 5], &mut StdRng::seed_from_u64(42)).unwrap();
        let s2 = sampler.sample_minibatch(&a, &[1, 5], &mut StdRng::seed_from_u64(42)).unwrap();
        assert_eq!(s1, s2);
    }

    #[test]
    fn trait_metadata() {
        let sampler = GraphSageSampler::new(vec![15, 10, 5]);
        assert_eq!(sampler.name(), "graphsage");
        assert_eq!(sampler.num_layers(), 3);
        assert_eq!(sampler.fanout(0), 15);
        assert_eq!(sampler.fanout(2), 5);
        assert_eq!(sampler.fanouts(), &[15, 10, 5]);
    }
}

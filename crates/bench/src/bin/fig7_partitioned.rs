//! Figure 7: the Graph-Partitioned algorithm — sampling-time breakdown
//! (probability / sampling / extraction and computation / communication) for
//! GraphSAGE (top row of the figure) and LADIES (bottom row), across rank
//! counts and replication factors.  Also prints the reference CPU LADIES time
//! the paper compares against (§8.2.2).

use dmbs_bench::{dataset, print_table, secs, Scale};
use dmbs_comm::Phase;
use dmbs_graph::datasets::DatasetKind;
use dmbs_graph::minibatch::MinibatchPlan;
use dmbs_sampling::baseline::ladies_reference;
use dmbs_sampling::{
    BulkSamplerConfig, DistConfig, EpochSamples, GraphSageSampler, LadiesSampler,
    Partitioned1p5dBackend, SamplingBackend,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn breakdown_row(p: usize, c: usize, epoch: &EpochSamples) -> Vec<String> {
    // Bulk-synchronous: each phase is as slow as the slowest process row.
    let comp = epoch.max_total_compute();
    let comm = epoch.max_total_comm();
    vec![
        format!("{p}"),
        format!("{c}"),
        secs(epoch.max_phase_total(Phase::Probability)),
        secs(epoch.max_phase_total(Phase::Sampling)),
        secs(epoch.max_phase_total(Phase::Extraction)),
        secs(comp),
        secs(comm),
        secs(comp + comm),
    ]
}

fn main() {
    let scale = Scale::from_env();
    let header = [
        "ranks",
        "c",
        "probability",
        "sampling",
        "extraction",
        "computation",
        "communication",
        "total",
    ];
    for kind in [DatasetKind::Protein, DatasetKind::Papers] {
        let ds = dataset(kind, scale);
        let a = ds.graph.adjacency();
        let batch_size = (ds.train_set.len() / 16).clamp(8, 128);
        let plan =
            MinibatchPlan::sequential(&ds.train_set, batch_size).expect("non-empty training set");
        let batches = plan.batches().to_vec();

        // --- GraphSAGE (fanout 15,10,5) on the partitioned graph.
        let mut sage_rows = Vec::new();
        for &p in &scale.rank_counts() {
            for &c in &[1usize, 2, 4] {
                if p % c != 0 || c > p {
                    continue;
                }
                let backend = Partitioned1p5dBackend::new(DistConfig::new(
                    p,
                    c,
                    BulkSamplerConfig::new(batch_size, batches.len()),
                ))
                .expect("valid distribution configuration");
                let epoch = backend
                    .sample_epoch(&GraphSageSampler::new(vec![15, 10, 5]), a, &batches, 13)
                    .expect("partitioned GraphSAGE failed");
                sage_rows.push(breakdown_row(p, c, &epoch));
            }
        }
        print_table(
            &format!("Figure 7 (top) — {} GraphSAGE partitioned sampling breakdown", kind.name()),
            &header,
            &sage_rows,
        );

        // --- LADIES (1 layer, s = 512 scaled down) on the partitioned graph.
        let s = 64.min(ds.num_vertices() / 4);
        let mut ladies_rows = Vec::new();
        for &p in &scale.rank_counts() {
            for &c in &[1usize, 2, 4] {
                if p % c != 0 || c > p {
                    continue;
                }
                let backend = Partitioned1p5dBackend::new(DistConfig::new(
                    p,
                    c,
                    BulkSamplerConfig::new(batch_size, batches.len()),
                ))
                .expect("valid distribution configuration");
                let epoch = backend
                    .sample_epoch(&LadiesSampler::new(1, s), a, &batches, 13)
                    .expect("partitioned LADIES failed");
                ladies_rows.push(breakdown_row(p, c, &epoch));
            }
        }
        print_table(
            &format!(
                "Figure 7 (bottom) — {} LADIES partitioned sampling breakdown (s = {s})",
                kind.name()
            ),
            &header,
            &ladies_rows,
        );

        // --- Reference CPU LADIES (§8.2.2).
        let start = std::time::Instant::now();
        let mut rng = StdRng::seed_from_u64(13);
        ladies_reference(a, &batches, 1, s, &mut rng).expect("reference LADIES failed");
        println!(
            "Reference single-device CPU LADIES on {}: {} s for all {} minibatches",
            kind.name(),
            secs(start.elapsed().as_secs_f64()),
            batches.len()
        );
    }
    println!("\nPaper reference: probability generation dominates GraphSAGE; column extraction dominates LADIES; increasing c shrinks communication.");
}

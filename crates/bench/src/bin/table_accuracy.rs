//! §8.1.3 — model accuracy: bulk matrix sampling does not change accuracy.
//!
//! Trains the same GraphSAGE model with (a) the matrix-based bulk sampler and
//! (b) the conventional per-vertex sampler on the Products stand-in, and
//! reports test accuracy for both, plus the chance level.

use dmbs_bench::{dataset, print_table, sage_training_config, train_local, Scale};
use dmbs_gnn::trainer::SamplerChoice;
use dmbs_graph::datasets::DatasetKind;

fn main() {
    let scale = Scale::from_env();
    let ds = std::sync::Arc::new(dataset(DatasetKind::Products, scale));
    let mut config = sage_training_config(&ds);
    config.epochs = 5;

    let matrix = train_local(&ds, &config, SamplerChoice::MatrixSage);
    let pervertex = train_local(&ds, &config, SamplerChoice::PerVertexSage);

    let rows = vec![
        vec![
            "matrix bulk sampling (this work)".to_string(),
            format!("{:.3}", matrix.test_accuracy.unwrap_or(0.0)),
            format!("{:.3}", matrix.epochs.last().map(|e| e.mean_loss).unwrap_or(f64::NAN)),
        ],
        vec![
            "per-vertex sampling (baseline)".to_string(),
            format!("{:.3}", pervertex.test_accuracy.unwrap_or(0.0)),
            format!("{:.3}", pervertex.epochs.last().map(|e| e.mean_loss).unwrap_or(f64::NAN)),
        ],
        vec![
            "chance level".to_string(),
            format!("{:.3}", 1.0 / ds.graph.num_classes() as f64),
            "-".to_string(),
        ],
    ];
    print_table(
        "Accuracy (§8.1.3) — Products stand-in, 3-layer SAGE",
        &["sampler", "test accuracy", "final train loss"],
        &rows,
    );
    println!("\nPaper reference: 77.8% on OGB Products (within 1% of the OGB leaderboard SAGE result); the claim reproduced here is that bulk matrix sampling matches conventional sampling, not the absolute number (the stand-in dataset is synthetic).");
}

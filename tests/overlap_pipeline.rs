//! Equivalence and negative-path tests for the overlapped (software-
//! pipelined) distributed training schedule.
//!
//! The overlap knob must be **pure schedule**: while bulk group `k` trains,
//! group `k + 1`'s sampling and pinned prefetch are in flight, but nothing
//! about *what* is computed may change — losses, accuracy, fetched rows and
//! per-epoch communication word counts are byte-identical to the synchronous
//! schedule for every grid shape `p × c` and every cache mode.  What does
//! change is the *charging*: the α–β bill of the hoisted communication is
//! recorded as overlapped seconds (`max(comm, compute)` instead of
//! `comm + compute`), and those books must balance exactly.

mod common;

use dmbs::gnn::{EpochStats, FeatureCacheConfig, TrainingReport, TrainingSession};
use dmbs::graph::datasets::Dataset;
use dmbs::sampling::{
    BulkSamplerConfig, DistConfig, GraphSageSampler, Partitioned1p5dBackend, ReplicatedBackend,
    SamplingBackend,
};
use std::sync::Arc;

fn tiny_dataset(seed: u64) -> Arc<Dataset> {
    common::arc_products_dataset(7, 16, 4, 0.5, Some(0.6), seed) // 128 vertices
}

/// Trains one replicated session; `overlap` toggles the pipelined schedule.
/// Batch 16 over 64 train vertices with bulk k = 2 gives two bulk groups per
/// epoch, so the pipeline has something to hoist.
fn train<B: SamplingBackend + Send + Sync + 'static>(
    dataset: &Arc<Dataset>,
    backend: B,
    cache: FeatureCacheConfig,
    overlap: bool,
) -> TrainingReport {
    TrainingSession::builder()
        .dataset(Arc::clone(dataset))
        .sampler(GraphSageSampler::new(vec![5, 5]).with_self_loops())
        .backend(backend)
        .hidden_dim(16)
        .learning_rate(0.05)
        .epochs(2)
        .seed(42)
        .feature_cache(cache)
        .overlap(overlap)
        .build()
        .unwrap()
        .train()
        .unwrap()
}

fn assert_schedules_match(sync: &EpochStats, pipelined: &EpochStats, label: &str) {
    assert_eq!(
        sync.mean_loss.to_bits(),
        pipelined.mean_loss.to_bits(),
        "{label}: losses diverged between schedules"
    );
    assert_eq!(
        sync.comm.words_sent, pipelined.comm.words_sent,
        "{label}: per-epoch word counts diverged"
    );
    assert_eq!(
        sync.comm.messages, pipelined.comm.messages,
        "{label}: per-epoch message counts diverged"
    );
    // The α–β bill is schedule-independent: same messages, same words, same
    // per-message costs.  Only the *summation order* differs (costs accrue
    // in send order), so allow float-accumulation slack of a few ULPs.
    assert!(
        (sync.comm.modeled_time - pipelined.comm.modeled_time).abs()
            <= 1e-12 * sync.comm.modeled_time.abs().max(1.0),
        "{label}: the α–β bill diverged beyond reordering noise ({} vs {})",
        sync.comm.modeled_time,
        pipelined.comm.modeled_time
    );
    assert_eq!(sync.comm.cache_hits, pipelined.comm.cache_hits, "{label}: cache hits diverged");
    assert_eq!(
        sync.comm.cache_misses, pipelined.comm.cache_misses,
        "{label}: cache misses diverged"
    );
    assert_eq!(sync.comm.words_saved, pipelined.comm.words_saved, "{label}: saved words diverged");
    // The synchronous schedule hides nothing; the pipelined schedule may,
    // but never more than the bill itself — the books balance exactly.
    assert_eq!(sync.overlapped_time(), 0.0, "{label}: sync run must not record overlap");
    assert!(
        pipelined.comm.overlapped_time <= pipelined.comm.modeled_time + 1e-12,
        "{label}: overlapped more than the bill"
    );
    assert!(
        (pipelined.modeled_epoch_seconds()
            - (pipelined.total_time() - pipelined.overlapped_time()))
        .abs()
            < 1e-12,
        "{label}: effective = total - overlapped must hold exactly"
    );
}

#[test]
fn overlap_is_byte_identical_across_p_c_and_cache_modes() {
    let dataset = tiny_dataset(9);
    for &p in &[1usize, 2, 4] {
        for c in (1..=p).filter(|c| p % c == 0) {
            for cache in common::cache_modes(1 << 16) {
                let label = format!("p={p} c={c} cache={cache:?}");
                let make = || {
                    ReplicatedBackend::new(DistConfig::new(p, c, BulkSamplerConfig::new(16, 2)))
                        .unwrap()
                };
                let sync = train(&dataset, make(), cache, false);
                let pipelined = train(&dataset, make(), cache, true);
                assert_eq!(sync.epochs.len(), pipelined.epochs.len());
                for (s, o) in sync.epochs.iter().zip(&pipelined.epochs) {
                    assert_schedules_match(s, o, &label);
                }
                assert_eq!(
                    sync.test_accuracy.unwrap().to_bits(),
                    pipelined.test_accuracy.unwrap().to_bits(),
                    "{label}: accuracy diverged"
                );
            }
        }
    }
}

#[test]
fn overlap_hides_prefetch_comm_on_communicating_shapes() {
    // With the pinned cache on a shape whose fetch group spans ranks
    // (c < p), the posted prefetch of group k+1 really is in flight while
    // group k trains, so the pipelined run must record hidden seconds.
    let dataset = tiny_dataset(11);
    let backend =
        ReplicatedBackend::new(DistConfig::new(4, 2, BulkSamplerConfig::new(16, 2))).unwrap();
    let pipelined = train(&dataset, backend, FeatureCacheConfig::EpochPinned, true);
    for e in &pipelined.epochs {
        assert!(
            e.comm.overlapped_time > 0.0,
            "epoch {}: nothing was hidden despite a communicating prefetch",
            e.epoch
        );
        assert!(e.modeled_epoch_seconds() < e.total_time());
    }
}

#[test]
fn overlap_on_partitioned_backend_matches_synchronous() {
    // The 1.5D-partitioned backend samples *with* collectives, which the
    // pipeline hoists ahead of the previous group's training — results and
    // word counts must still match the synchronous schedule exactly.
    let dataset = tiny_dataset(13);
    let make = || {
        Partitioned1p5dBackend::new(DistConfig::new(4, 2, BulkSamplerConfig::new(16, 2))).unwrap()
    };
    for cache in [FeatureCacheConfig::Off, FeatureCacheConfig::EpochPinned] {
        let sync = train(&dataset, make(), cache, false);
        let pipelined = train(&dataset, make(), cache, true);
        for (s, o) in sync.epochs.iter().zip(&pipelined.epochs) {
            assert_schedules_match(s, o, &format!("partitioned cache={cache:?}"));
        }
    }
}

#[test]
fn overlap_with_c_equal_one_replication_degrades_gracefully() {
    // c = 1: the feature matrix is split into p blocks and every fetch spans
    // the whole world — the NoRep-shaped negative path.  Overlap must not
    // error and must stay byte-identical.
    let dataset = tiny_dataset(17);
    let make =
        || ReplicatedBackend::new(DistConfig::new(2, 1, BulkSamplerConfig::new(16, 2))).unwrap();
    let sync = train(&dataset, make(), FeatureCacheConfig::EpochPinned, false);
    let pipelined = train(&dataset, make(), FeatureCacheConfig::EpochPinned, true);
    for (s, o) in sync.epochs.iter().zip(&pipelined.epochs) {
        assert_schedules_match(s, o, "c=1");
    }
}

#[test]
fn overlap_with_lru_cache_keeps_per_step_collectives_synchronous() {
    // The LRU cache's per-step fetch is demand-driven, so the pipelined
    // schedule must leave it synchronous (only sampling is hoisted): ranks
    // stay matched — the run completes without collective mismatches — and
    // the message/word counts equal the synchronous schedule's exactly.
    let dataset = tiny_dataset(19);
    let make =
        || ReplicatedBackend::new(DistConfig::new(4, 2, BulkSamplerConfig::new(16, 2))).unwrap();
    let cache = FeatureCacheConfig::Lru { byte_budget: 1 << 14 };
    let sync = train(&dataset, make(), cache, false);
    let pipelined = train(&dataset, make(), cache, true);
    for (s, o) in sync.epochs.iter().zip(&pipelined.epochs) {
        assert_schedules_match(s, o, "overlap+lru");
        // The LRU collectives really ran (and really cached) in both runs.
        assert!(o.comm.messages > 0);
        assert!(o.cache_hit_rate().is_some());
    }
}

#[test]
fn overlap_two_runs_same_seed_are_bitwise_deterministic() {
    // Flaky-guard: the pipelined schedule posts collectives across bulk-group
    // boundaries, so a scheduling race would show up as run-to-run drift in
    // losses or comm counters.  Two same-seed runs must agree bit for bit
    // (overlapped *seconds* are measured wall-clock and may differ; every
    // deterministic counter must not).
    let dataset = tiny_dataset(23);
    for cache in common::cache_modes(1 << 15) {
        let make = || {
            ReplicatedBackend::new(DistConfig::new(4, 2, BulkSamplerConfig::new(16, 2))).unwrap()
        };
        let a = train(&dataset, make(), cache, true);
        let b = train(&dataset, make(), cache, true);
        assert_eq!(a.epochs.len(), b.epochs.len());
        for (x, y) in a.epochs.iter().zip(&b.epochs) {
            assert_eq!(x.mean_loss.to_bits(), y.mean_loss.to_bits(), "{cache:?}");
            assert_eq!(x.comm.words_sent, y.comm.words_sent, "{cache:?}");
            assert_eq!(x.comm.messages, y.comm.messages, "{cache:?}");
            assert_eq!(x.comm.modeled_time.to_bits(), y.comm.modeled_time.to_bits(), "{cache:?}");
            assert_eq!(x.comm.cache_hits, y.comm.cache_hits, "{cache:?}");
            assert_eq!(x.comm.cache_misses, y.comm.cache_misses, "{cache:?}");
            assert_eq!(x.comm.words_saved, y.comm.words_saved, "{cache:?}");
        }
        assert_eq!(a.test_accuracy.unwrap().to_bits(), b.test_accuracy.unwrap().to_bits());
    }
}

//! The Unix-socket multi-process transport.
//!
//! One OS process per rank.  Rendezvous happens through a shared directory
//! (conveyed in `DMBS_SOCKET_DIR`): rank `r` binds `rank-<r>.sock`, then
//! *connects* to every lower rank (retrying until the peer's listener is
//! bound, up to the timeout) and *accepts* one connection from every higher
//! rank.  Each connection starts with an 8-byte hello carrying the
//! connecting rank, which pins streams to peers regardless of accept order.
//!
//! On the wire, every message is one length-prefixed frame:
//!
//! ```text
//! [u32 len] [u64 tag] [u64 type_code] [len - 16 payload bytes]
//! ```
//!
//! Failure surfaces as **typed errors, never hangs**: a socket file left
//! behind by a previous run fails the bind with
//! [`CommError::StaleSocket`]; a peer closing its stream mid-frame is
//! [`CommError::TruncatedFrame`]; a clean close (peer process exited) is
//! [`CommError::Disconnected`]; and every blocking wait is bounded by the
//! transport timeout, yielding [`CommError::Timeout`].
//!
//! Deadlock freedom: the collectives post *all* their sends before their
//! receives (all-to-allv does), which over real sockets with bounded kernel
//! buffers could wedge two mutual writers.  The transport therefore spawns
//! one reader thread per peer that always drains the stream into an
//! unbounded in-process queue — writers can never block on a full buffer
//! for more than the instant it takes the peer's reader to drain it.

use std::collections::VecDeque;
use std::fmt;
use std::io::{Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use crate::error::CommError;
use crate::transport::{Frame, FrameBody, Transport, TransportMode};
use crate::Result;

/// Default bound on every blocking wait (rendezvous, receive) of the socket
/// transport.  Override per-transport via [`SocketConfig::timeout`].
pub const DEFAULT_SOCKET_TIMEOUT: Duration = Duration::from_secs(30);

/// How long a reader-side failure is distinguished: a clean end-of-stream at
/// a frame boundary (peer exited) versus bytes missing mid-frame (peer died
/// while sending).
enum ReadFailure {
    Closed,
    Truncated,
}

/// Configuration of one socket-transport endpoint.
#[derive(Debug, Clone)]
pub struct SocketConfig {
    /// This endpoint's rank.
    pub rank: usize,
    /// World size.
    pub size: usize,
    /// Rendezvous directory holding `rank-<r>.sock` files.
    pub dir: PathBuf,
    /// Bound on every blocking wait.
    pub timeout: Duration,
}

impl SocketConfig {
    /// Builds a config with the default timeout.
    pub fn new(rank: usize, size: usize, dir: impl Into<PathBuf>) -> Self {
        SocketConfig { rank, size, dir: dir.into(), timeout: DEFAULT_SOCKET_TIMEOUT }
    }

    /// Overrides the blocking-wait bound.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }
}

/// Writes one frame: `[u32 len][u64 tag][u64 type_code][payload]`.
pub(crate) fn write_frame(
    w: &mut impl Write,
    tag: u64,
    type_code: u64,
    payload: &[u8],
) -> std::io::Result<()> {
    let len = u32::try_from(16 + payload.len()).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame exceeds u32 length")
    })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&tag.to_le_bytes())?;
    w.write_all(&type_code.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads exactly `buf.len()` bytes; `Ok(false)` on a clean EOF *before the
/// first byte*, an `UnexpectedEof` error on EOF mid-buffer.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> std::io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "stream closed mid-read",
                ));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Reads one frame.  `Ok(None)` means the peer closed cleanly at a frame
/// boundary; `Err` means the stream died mid-frame (truncation).
pub(crate) fn read_frame(r: &mut impl Read) -> std::io::Result<Option<(u64, u64, Vec<u8>)>> {
    let mut len_buf = [0u8; 4];
    if !read_exact_or_eof(r, &mut len_buf)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len < 16 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} below the 16-byte header"),
        ));
    }
    let mut header = [0u8; 16];
    if !read_exact_or_eof(r, &mut header)? {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "stream closed after length prefix",
        ));
    }
    let tag = u64::from_le_bytes(header[..8].try_into().expect("8 bytes"));
    let type_code = u64::from_le_bytes(header[8..].try_into().expect("8 bytes"));
    let mut payload = vec![0u8; len - 16];
    if !payload.is_empty() && !read_exact_or_eof(r, &mut payload)? {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "stream closed inside the payload",
        ));
    }
    Ok(Some((tag, type_code, payload)))
}

/// The per-peer receive side: a queue fed by the peer's reader thread.
struct PeerInbox {
    frames: mpsc::Receiver<std::result::Result<Frame, ReadFailure>>,
    /// Set once the reader thread delivered its terminal failure, so later
    /// receives keep reporting the same typed error instead of a queue
    /// disconnect.
    failed: Option<CommError>,
}

/// One endpoint of the Unix-socket mesh.  See the module docs for the
/// rendezvous protocol and failure semantics.
pub struct UnixSocketTransport {
    rank: usize,
    size: usize,
    timeout: Duration,
    /// Write side per peer (`None` at our own rank).
    writers: Vec<Option<UnixStream>>,
    /// Read side per peer, drained by reader threads.
    inboxes: Vec<Option<PeerInbox>>,
    /// Loopback queue: sends to self never touch a socket.
    self_queue: VecDeque<Frame>,
    /// Our own socket path, unlinked on drop.
    own_path: PathBuf,
}

impl fmt::Debug for UnixSocketTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UnixSocketTransport")
            .field("rank", &self.rank)
            .field("size", &self.size)
            .field("timeout", &self.timeout)
            .finish()
    }
}

fn socket_path(dir: &Path, rank: usize) -> PathBuf {
    dir.join(format!("rank-{rank}.sock"))
}

fn setup_err(step: &str, err: impl fmt::Display) -> CommError {
    CommError::SocketSetup { message: format!("{step}: {err}") }
}

impl UnixSocketTransport {
    /// Performs the full-mesh rendezvous described in the module docs and
    /// returns a connected endpoint.
    ///
    /// # Errors
    ///
    /// [`CommError::StaleSocket`] if `rank-<rank>.sock` already exists in
    /// the rendezvous directory, [`CommError::Timeout`] if a peer does not
    /// show up within the timeout, [`CommError::SocketSetup`] for other OS
    /// errors, [`CommError::InvalidConfig`] for a malformed config.
    pub fn connect(config: &SocketConfig) -> Result<Self> {
        let SocketConfig { rank, size, ref dir, timeout } = *config;
        if size == 0 || rank >= size {
            return Err(CommError::InvalidConfig(format!(
                "socket transport rank {rank} out of range for size {size}"
            )));
        }
        let own_path = socket_path(dir, rank);
        if own_path.exists() {
            return Err(CommError::StaleSocket { path: own_path.display().to_string() });
        }
        let listener = UnixListener::bind(&own_path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::AddrInUse {
                CommError::StaleSocket { path: own_path.display().to_string() }
            } else {
                setup_err(&format!("bind {}", own_path.display()), e)
            }
        })?;

        let deadline = Instant::now() + timeout;
        let mut streams: Vec<Option<UnixStream>> = (0..size).map(|_| None).collect();

        // Connect to every lower rank, retrying until its listener is bound.
        for (peer, slot) in streams.iter_mut().enumerate().take(rank) {
            let peer_path = socket_path(dir, peer);
            let stream = loop {
                match UnixStream::connect(&peer_path) {
                    Ok(s) => break s,
                    Err(_) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(e) => {
                        return Err(if Instant::now() >= deadline {
                            CommError::Timeout {
                                rank,
                                waiting_for: peer,
                                millis: timeout.as_millis() as u64,
                            }
                        } else {
                            setup_err(&format!("connect {}", peer_path.display()), e)
                        });
                    }
                }
            };
            let mut stream = stream;
            stream
                .write_all(&(rank as u64).to_le_bytes())
                .map_err(|e| setup_err("send hello", e))?;
            *slot = Some(stream);
        }

        // Accept one connection from every higher rank; the hello byte order
        // tells us who is who regardless of accept order.
        listener.set_nonblocking(true).map_err(|e| setup_err("listener nonblocking", e))?;
        let mut expected = size - rank - 1;
        while expected > 0 {
            match listener.accept() {
                Ok((mut stream, _)) => {
                    stream.set_nonblocking(false).map_err(|e| setup_err("stream blocking", e))?;
                    let mut hello = [0u8; 8];
                    stream
                        .set_read_timeout(Some(timeout))
                        .map_err(|e| setup_err("hello timeout", e))?;
                    stream.read_exact(&mut hello).map_err(|e| setup_err("read hello", e))?;
                    stream.set_read_timeout(None).map_err(|e| setup_err("clear timeout", e))?;
                    let peer = u64::from_le_bytes(hello) as usize;
                    if peer <= rank || peer >= size || streams[peer].is_some() {
                        return Err(CommError::InvalidConfig(format!(
                            "unexpected hello from rank {peer} at rank {rank}"
                        )));
                    }
                    streams[peer] = Some(stream);
                    expected -= 1;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(CommError::Timeout {
                            rank,
                            waiting_for: usize::MAX,
                            millis: timeout.as_millis() as u64,
                        });
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(setup_err("accept", e)),
            }
        }

        // Split each stream: keep the write half, hand a clone to a reader
        // thread that drains frames into an unbounded queue.
        let mut writers: Vec<Option<UnixStream>> = (0..size).map(|_| None).collect();
        let mut inboxes: Vec<Option<PeerInbox>> = (0..size).map(|_| None).collect();
        for (peer, slot) in streams.into_iter().enumerate() {
            let Some(stream) = slot else { continue };
            let mut read_half =
                stream.try_clone().map_err(|e| setup_err("clone stream for reader", e))?;
            let (tx, rx) = mpsc::channel();
            std::thread::Builder::new()
                .name(format!("dmbs-sock-r{rank}-p{peer}"))
                .spawn(move || loop {
                    match read_frame(&mut read_half) {
                        Ok(Some((tag, type_code, bytes))) => {
                            let frame = Frame { tag, body: FrameBody::Bytes { type_code, bytes } };
                            if tx.send(Ok(frame)).is_err() {
                                return; // transport dropped
                            }
                        }
                        Ok(None) => {
                            let _ = tx.send(Err(ReadFailure::Closed));
                            return;
                        }
                        Err(e) => {
                            let failure = if e.kind() == std::io::ErrorKind::UnexpectedEof {
                                ReadFailure::Truncated
                            } else {
                                ReadFailure::Closed
                            };
                            let _ = tx.send(Err(failure));
                            return;
                        }
                    }
                })
                .map_err(|e| setup_err("spawn reader thread", e))?;
            writers[peer] = Some(stream);
            inboxes[peer] = Some(PeerInbox { frames: rx, failed: None });
        }

        Ok(UnixSocketTransport {
            rank,
            size,
            timeout,
            writers,
            inboxes,
            self_queue: VecDeque::new(),
            own_path,
        })
    }
}

impl Drop for UnixSocketTransport {
    fn drop(&mut self) {
        // Shut down write halves so peer readers see clean EOFs, then remove
        // our rendezvous socket so the directory can be reused.
        for w in self.writers.iter().flatten() {
            let _ = w.shutdown(std::net::Shutdown::Both);
        }
        let _ = std::fs::remove_file(&self.own_path);
    }
}

impl Transport for UnixSocketTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn mode(&self) -> TransportMode {
        TransportMode::Wire
    }

    fn send(&mut self, to: usize, frame: Frame) -> Result<()> {
        if to == self.rank {
            self.self_queue.push_back(frame);
            return Ok(());
        }
        let FrameBody::Bytes { type_code, bytes } = frame.body else {
            return Err(CommError::InvalidConfig(
                "wire transport received an in-process frame body".into(),
            ));
        };
        let writer = self.writers[to].as_mut().expect("mesh is fully connected");
        write_frame(writer, frame.tag, type_code, &bytes)
            .map_err(|_| CommError::Disconnected { from: to })
    }

    fn recv(&mut self, from: usize) -> Result<Frame> {
        if from == self.rank {
            return self.self_queue.pop_front().ok_or_else(|| {
                CommError::InvalidConfig("receive from self with an empty loopback queue".into())
            });
        }
        let rank = self.rank;
        let timeout = self.timeout;
        let inbox = self.inboxes[from].as_mut().expect("mesh is fully connected");
        if let Some(err) = &inbox.failed {
            return Err(err.clone());
        }
        match inbox.frames.recv_timeout(timeout) {
            Ok(Ok(frame)) => Ok(frame),
            Ok(Err(ReadFailure::Closed)) => {
                let err = CommError::Disconnected { from };
                inbox.failed = Some(err.clone());
                Err(err)
            }
            Ok(Err(ReadFailure::Truncated)) => {
                let err = CommError::TruncatedFrame { from };
                inbox.failed = Some(err.clone());
                Err(err)
            }
            Err(mpsc::RecvTimeoutError::Timeout) => Err(CommError::Timeout {
                rank,
                waiting_for: from,
                millis: timeout.as_millis() as u64,
            }),
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                let err = CommError::Disconnected { from };
                inbox.failed = Some(err.clone());
                Err(err)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::{Communicator, Payload};
    use crate::cost::CostModel;

    fn temp_dir(label: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dmbs-sock-test-{label}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Connects a full in-process mesh (threads, not processes) — the
    /// transport itself does not care whether peers live in other processes.
    fn connect_mesh(dir: &Path, size: usize, timeout: Duration) -> Vec<UnixSocketTransport> {
        let handles: Vec<_> = (0..size)
            .map(|rank| {
                let config = SocketConfig::new(rank, size, dir).timeout(timeout);
                std::thread::spawn(move || UnixSocketTransport::connect(&config).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn frames_cross_processes_boundary_free() {
        let dir = temp_dir("frames");
        let mut mesh = connect_mesh(&dir, 2, Duration::from_secs(5));
        let t1 = mesh.pop().unwrap();
        let t0 = mesh.pop().unwrap();
        let h = std::thread::spawn(move || {
            let mut t1 = t1;
            let f = t1.recv(0).unwrap();
            assert_eq!(f.tag, 7);
            let FrameBody::Bytes { type_code, bytes } = f.body else { panic!("wire body") };
            assert_eq!(type_code, 99);
            assert_eq!(bytes, vec![1, 2, 3]);
            // Reply with an empty payload.
            t1.send(0, Frame { tag: 8, body: FrameBody::Bytes { type_code: 5, bytes: vec![] } })
                .unwrap();
        });
        let mut t0 = t0;
        t0.send(
            1,
            Frame { tag: 7, body: FrameBody::Bytes { type_code: 99, bytes: vec![1, 2, 3] } },
        )
        .unwrap();
        let reply = t0.recv(1).unwrap();
        assert_eq!(reply.tag, 8);
        h.join().unwrap();
        drop(t0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_socket_file_is_a_typed_error() {
        let dir = temp_dir("stale");
        // Simulate a previous run's leftovers.
        std::fs::write(socket_path(&dir, 0), b"").unwrap();
        let config = SocketConfig::new(0, 2, &dir).timeout(Duration::from_millis(200));
        match UnixSocketTransport::connect(&config) {
            Err(CommError::StaleSocket { path }) => assert!(path.contains("rank-0.sock")),
            other => panic!("expected StaleSocket, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_peer_times_out_instead_of_hanging() {
        let dir = temp_dir("lonely");
        // Rank 1 of 2 connects; rank 0 never shows up.
        let config = SocketConfig::new(1, 2, &dir).timeout(Duration::from_millis(150));
        let start = Instant::now();
        match UnixSocketTransport::connect(&config) {
            Err(CommError::Timeout { rank: 1, waiting_for: 0, .. }) => {}
            other => panic!("expected Timeout, got {other:?}"),
        }
        assert!(start.elapsed() < Duration::from_secs(5));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn peer_exit_mid_collective_is_disconnected_not_a_hang() {
        let dir = temp_dir("exit");
        let mut mesh = connect_mesh(&dir, 2, Duration::from_secs(5));
        let t1 = mesh.pop().unwrap();
        let t0 = mesh.pop().unwrap();
        // Rank 1 "exits" (drops its transport, closing the streams) while
        // rank 0 is waiting inside a receive — exactly the rank-died-
        // mid-collective scenario, at the transport level.
        drop(t1);
        let mut t0 = t0;
        match t0.recv(1) {
            Err(CommError::Disconnected { from: 1 }) => {}
            other => panic!("expected Disconnected, got {other:?}"),
        }
        // The failure is sticky: later receives keep reporting it.
        match t0.recv(1) {
            Err(CommError::Disconnected { from: 1 }) => {}
            other => panic!("expected sticky Disconnected, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_frame_is_a_typed_error() {
        let dir = temp_dir("trunc");
        let mut mesh = connect_mesh(&dir, 2, Duration::from_secs(5));
        let t1 = mesh.pop().unwrap();
        let t0 = mesh.pop().unwrap();
        // Rank 1 writes a frame header promising 100 payload bytes, then
        // dies after delivering only 3.
        let mut writer = t1.writers[0].as_ref().unwrap().try_clone().unwrap();
        let len = (16u32 + 100).to_le_bytes();
        writer.write_all(&len).unwrap();
        writer.write_all(&7u64.to_le_bytes()).unwrap();
        writer.write_all(&1u64.to_le_bytes()).unwrap();
        writer.write_all(&[1, 2, 3]).unwrap();
        writer.flush().unwrap();
        drop(writer);
        drop(t1);
        let mut t0 = t0;
        match t0.recv(1) {
            Err(CommError::TruncatedFrame { from: 1 }) => {}
            other => panic!("expected TruncatedFrame, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wedged_peer_receive_times_out() {
        let dir = temp_dir("wedge");
        let mut mesh = connect_mesh(&dir, 2, Duration::from_millis(150));
        let _t1 = mesh.pop().unwrap(); // alive but silent
        let mut t0 = mesh.remove(0);
        let start = Instant::now();
        match t0.recv(1) {
            Err(CommError::Timeout { rank: 0, waiting_for: 1, millis }) => {
                assert_eq!(millis, 150);
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
        assert!(start.elapsed() < Duration::from_secs(5));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn frame_codec_round_trips_and_rejects_short_frames() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 42, 7, &[9, 8, 7]).unwrap();
        let mut cursor = buf.as_slice();
        let (tag, code, payload) = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!((tag, code, payload), (42, 7, vec![9, 8, 7]));
        // Clean EOF at the boundary.
        assert!(read_frame(&mut cursor).unwrap().is_none());
        // A length below the header size is corrupt.
        let bad = 3u32.to_le_bytes();
        assert!(read_frame(&mut bad.as_slice()).is_err());
        // EOF inside the header is truncation.
        let partial = &buf[..6];
        assert!(read_frame(&mut &partial[..]).is_err());
    }

    #[test]
    fn collectives_run_bit_identically_over_sockets() {
        // Full Communicator stack over a 3-rank socket mesh on threads:
        // allreduce must produce the simulator's exact result and counters.
        let dir = temp_dir("collective");
        let size = 3;
        let cost = CostModel::default();
        let handles: Vec<_> = (0..size)
            .map(|rank| {
                let dir = dir.clone();
                std::thread::spawn(move || {
                    let config =
                        SocketConfig::new(rank, size, &dir).timeout(Duration::from_secs(5));
                    let transport = UnixSocketTransport::connect(&config).unwrap();
                    let mut comm = Communicator::from_transport(Box::new(transport), cost);
                    let sum = comm
                        .allreduce(vec![comm.rank() as f64, 1.0], |a, b| {
                            a.iter().zip(b).map(|(x, y)| x + y).collect()
                        })
                        .unwrap();
                    comm.barrier().unwrap();
                    (sum, comm.stats())
                })
            })
            .collect();
        let socket_outs: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

        let rt = crate::Runtime::with_cost_model(size, cost).unwrap();
        let sim_outs = rt
            .run(|comm| {
                let sum = comm
                    .allreduce(vec![comm.rank() as f64, 1.0], |a, b| {
                        a.iter().zip(b).map(|(x, y)| x + y).collect()
                    })
                    .unwrap();
                comm.barrier().unwrap();
                sum
            })
            .unwrap();
        for (rank, (sum, stats)) in socket_outs.iter().enumerate() {
            assert_eq!(sum, &sim_outs[rank].value, "allreduce value at rank {rank}");
            assert_eq!(stats.words_sent, sim_outs[rank].stats.words_sent, "words at rank {rank}");
            assert_eq!(stats.messages, sim_outs[rank].stats.messages, "messages at rank {rank}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn type_mismatch_crosses_the_wire_as_a_typed_error() {
        let dir = temp_dir("mismatch");
        let cost = CostModel::default();
        let handles: Vec<_> = (0..2)
            .map(|rank| {
                let dir = dir.clone();
                std::thread::spawn(move || {
                    let config = SocketConfig::new(rank, 2, &dir).timeout(Duration::from_secs(5));
                    let transport = UnixSocketTransport::connect(&config).unwrap();
                    let mut comm = Communicator::from_transport(Box::new(transport), cost);
                    if rank == 0 {
                        comm.send(1, 42usize).unwrap();
                        Ok(())
                    } else {
                        match comm.recv::<f64>(0) {
                            Err(CommError::TypeMismatch { from: 0 }) => Err("mismatch"),
                            other => panic!("expected TypeMismatch, got {other:?}"),
                        }
                    }
                })
            })
            .collect();
        let outs: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(outs[1], Err("mismatch"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn payload_word_count_matches_wire_volume_proportionally() {
        // Sanity: the α–β word count of a Vec<f64> equals its element count,
        // and the wire encoding is 8 bytes per word plus one length word —
        // the counters stay proportional to real bytes on the wire.
        let v = vec![1.0f64; 32];
        assert_eq!(v.word_count(), 32);
        let mut bytes = Vec::new();
        v.encode(&mut bytes);
        assert_eq!(bytes.len(), 8 + 32 * 8);
    }
}

//! Wire codecs for feature rows: the β-bill compression layer.
//!
//! The feature-fetch replies of the training pipeline move dense `f64` rows
//! across the all-to-allv lanes — the dominant β (per-word) term of the
//! modeled communication bill.  A [`Codec`] picks how those rows travel:
//!
//! | codec           | bytes/value | loss                                     |
//! |-----------------|-------------|------------------------------------------|
//! | [`Codec::Exact`]| 8           | none (bit-exact, the default)            |
//! | [`Codec::Fp16`] | 2           | round-to-nearest-even to IEEE-754 half   |
//! | [`Codec::Int8`] | ~1 (+9/row) | per-row linear quantization, `max/127` scale |
//!
//! A [`WireRows`] value is the unit that crosses the wire: its **canonical
//! form is the encoded bytes**, produced once at the sender.  Both transports
//! carry that same byte string (the in-process simulator boxes the struct,
//! the socket backend frames it via [`Payload::encode`]), and the receiver
//! decodes with the same deterministic little-endian routines — so sim and
//! socket stay bit-identical to each other under every codec, and the lossy
//! quantization is applied exactly once.
//!
//! Non-finite policy (stated, and pinned by tests): under [`Codec::Fp16`],
//! values whose magnitude exceeds the half-precision range overflow to ±∞
//! and NaN is canonicalized to a quiet half NaN; under [`Codec::Int8`], any
//! row containing a non-finite value is escaped and shipped bit-exactly, so
//! quantization never manufactures finite values from infinities.
//!
//! Accounting: [`WireRows::word_count`] stays the *logical* row volume
//! (`rows × dim` words) so word-level books are comparable across codecs,
//! while [`WireRows::wire_bytes`] reports the encoded size — the
//! communicator books the difference into
//! [`CommStats::bytes_saved`](crate::CommStats::bytes_saved) and charges β
//! on the real bytes.

use crate::collectives::Payload;
use crate::wire;
use serde::{Deserialize, Serialize};

/// How feature rows are encoded on the wire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Codec {
    /// Bit-exact `f64` (8 bytes/value) — the default; byte-identical to the
    /// uncompressed pipeline.
    #[default]
    Exact,
    /// IEEE-754 half precision (2 bytes/value), round-to-nearest-even.
    Fp16,
    /// Per-row linear quantization to `i8` with an `f64` scale (`max_abs /
    /// 127`) per row; rows containing non-finite values escape to exact.
    Int8,
}

impl Codec {
    /// All codecs, in sweep order.
    pub const ALL: [Codec; 3] = [Codec::Exact, Codec::Fp16, Codec::Int8];

    /// Stable wire tag of this codec.
    pub fn tag(self) -> u64 {
        match self {
            Codec::Exact => 0,
            Codec::Fp16 => 1,
            Codec::Int8 => 2,
        }
    }

    /// Inverse of [`Codec::tag`].
    pub fn from_tag(tag: u64) -> Option<Codec> {
        match tag {
            0 => Some(Codec::Exact),
            1 => Some(Codec::Fp16),
            2 => Some(Codec::Int8),
            _ => None,
        }
    }

    /// Lower-case name used by harness CLI flags and JSON records.
    pub fn name(self) -> &'static str {
        match self {
            Codec::Exact => "exact",
            Codec::Fp16 => "fp16",
            Codec::Int8 => "int8",
        }
    }

    /// Inverse of [`Codec::name`].
    pub fn from_name(name: &str) -> Option<Codec> {
        match name {
            "exact" => Some(Codec::Exact),
            "fp16" => Some(Codec::Fp16),
            "int8" => Some(Codec::Int8),
            _ => None,
        }
    }

    /// Whether decoding returns the encoded values bit-exactly.
    pub fn is_exact(self) -> bool {
        self == Codec::Exact
    }
}

impl std::fmt::Display for Codec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Converts `v` to IEEE-754 half-precision bits (round-to-nearest-even via
/// `f32`; overflow saturates to ±∞, NaN canonicalizes to a quiet half NaN,
/// subnormal halves are produced for small magnitudes).
pub fn f64_to_f16_bits(v: f64) -> u16 {
    let bits = (v as f32).to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let man = bits & 0x007F_FFFF;
    if exp == 0xFF {
        // ±∞ keeps a zero mantissa; NaN keeps a quiet-bit payload.
        return sign | 0x7C00 | if man != 0 { 0x0200 } else { 0 };
    }
    let unbiased = exp - 127;
    if unbiased >= 16 {
        return sign | 0x7C00; // overflow → ±∞
    }
    if unbiased >= -14 {
        // Normal half: keep 10 mantissa bits, round to nearest even.  The
        // round-up may carry into the exponent (and up to ∞), which is the
        // correct RNE result.
        let mant = man >> 13;
        let rest = man & 0x1FFF;
        let mut h = sign as u32 | (((unbiased + 15) as u32) << 10) | mant;
        if rest > 0x1000 || (rest == 0x1000 && (mant & 1) == 1) {
            h += 1;
        }
        return h as u16;
    }
    if unbiased >= -25 {
        // Subnormal half.
        let full = man | 0x0080_0000;
        let shift = (-14 - unbiased) as u32 + 13;
        let mant = full >> shift;
        let rest = full & ((1u32 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let mut h = sign as u32 | mant;
        if rest > halfway || (rest == halfway && (mant & 1) == 1) {
            h += 1;
        }
        return h as u16;
    }
    sign // underflow → ±0
}

/// Converts IEEE-754 half-precision bits back to `f64` (exact: every half
/// value is representable in `f64`).
pub fn f16_bits_to_f64(h: u16) -> f64 {
    let sign = ((h as u32) & 0x8000) << 16;
    let exp = ((h >> 10) & 0x1F) as u32;
    let man = ((h & 0x3FF) as u32) << 13;
    let bits = if exp == 0x1F {
        sign | 0x7F80_0000 | man // ±∞ / NaN
    } else if exp == 0 {
        if man == 0 {
            sign // ±0
        } else {
            // Subnormal half → normal f32: shift the mantissa up to the
            // implicit bit, decrementing the exponent per shift.
            let mut exp32: u32 = 113; // 127 - 15 + 1
            let mut m = (h & 0x3FF) as u32;
            while m & 0x0400 == 0 {
                m <<= 1;
                exp32 -= 1;
            }
            sign | (exp32 << 23) | ((m & 0x3FF) << 13)
        }
    } else {
        sign | ((exp + 112) << 23) | man
    };
    f32::from_bits(bits) as f64
}

/// Per-row escape tag of the int8 codec: 0 = quantized, 1 = exact row.
const INT8_ROW_QUANTIZED: u8 = 0;
const INT8_ROW_EXACT: u8 = 1;

/// A batch of dense feature rows in wire form — the payload of the
/// feature-fetch reply lanes.
///
/// The canonical form is the encoded byte string (built once by
/// [`WireRows::from_rows`]); [`WireRows::rows`] decodes it.  Equality is
/// byte equality, so two `WireRows` that compare equal decode identically on
/// every transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireRows {
    codec: Codec,
    dim: usize,
    num_rows: usize,
    bytes: Vec<u8>,
}

impl WireRows {
    /// Encodes `flat` (row-major, `flat.len() == num_rows × dim`) under
    /// `codec`.
    ///
    /// # Panics
    ///
    /// Panics if `flat.len()` is not a multiple of `dim` (or non-empty while
    /// `dim == 0`) — an internal-invariant violation, not a wire condition.
    pub fn from_rows(codec: Codec, dim: usize, flat: &[f64]) -> Self {
        let num_rows = if dim == 0 {
            assert!(flat.is_empty(), "rows with dim 0 must be empty");
            0
        } else {
            assert_eq!(flat.len() % dim, 0, "flat length must be a multiple of dim");
            flat.len() / dim
        };
        let bytes = match codec {
            Codec::Exact => {
                let mut out = Vec::with_capacity(8 * flat.len());
                for &v in flat {
                    out.extend_from_slice(&v.to_bits().to_le_bytes());
                }
                out
            }
            Codec::Fp16 => {
                let mut out = Vec::with_capacity(2 * flat.len());
                for &v in flat {
                    out.extend_from_slice(&f64_to_f16_bits(v).to_le_bytes());
                }
                out
            }
            Codec::Int8 => {
                let mut out = Vec::with_capacity(num_rows * (10 + dim));
                for row in flat.chunks_exact(dim.max(1)) {
                    if row.iter().any(|v| !v.is_finite()) {
                        out.push(INT8_ROW_EXACT);
                        for &v in row {
                            out.extend_from_slice(&v.to_bits().to_le_bytes());
                        }
                    } else {
                        let max_abs = row.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
                        let scale = max_abs / 127.0;
                        out.push(INT8_ROW_QUANTIZED);
                        out.extend_from_slice(&scale.to_bits().to_le_bytes());
                        for &v in row {
                            let q = if scale == 0.0 {
                                0.0
                            } else {
                                (v / scale).round().clamp(-127.0, 127.0)
                            };
                            out.push((q as i8) as u8);
                        }
                    }
                }
                out
            }
        };
        WireRows { codec, dim, num_rows, bytes }
    }

    /// The codec the rows were encoded under.
    pub fn codec(&self) -> Codec {
        self.codec
    }

    /// Values per row.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Decodes the rows back to a flat row-major `f64` vector of length
    /// `num_rows × dim` — deterministic, and bit-exact under
    /// [`Codec::Exact`].
    pub fn rows(&self) -> Vec<f64> {
        self.decode_checked().expect("canonical bytes always decode")
    }

    /// Decodes the canonical bytes, or `None` if they are malformed (only
    /// reachable via a corrupt wire frame; values built by
    /// [`WireRows::from_rows`] always decode).
    fn decode_checked(&self) -> Option<Vec<f64>> {
        let n = self.num_rows.checked_mul(self.dim)?;
        let mut out = Vec::with_capacity(n);
        let mut input = self.bytes.as_slice();
        let mut take = |len: usize| -> Option<&[u8]> {
            if input.len() < len {
                return None;
            }
            let (head, tail) = input.split_at(len);
            input = tail;
            Some(head)
        };
        match self.codec {
            Codec::Exact => {
                for _ in 0..n {
                    let b = take(8)?;
                    out.push(f64::from_bits(u64::from_le_bytes(b.try_into().ok()?)));
                }
            }
            Codec::Fp16 => {
                for _ in 0..n {
                    let b = take(2)?;
                    out.push(f16_bits_to_f64(u16::from_le_bytes(b.try_into().ok()?)));
                }
            }
            Codec::Int8 => {
                for _ in 0..self.num_rows {
                    match *take(1)?.first()? {
                        INT8_ROW_EXACT => {
                            for _ in 0..self.dim {
                                let b = take(8)?;
                                out.push(f64::from_bits(u64::from_le_bytes(b.try_into().ok()?)));
                            }
                        }
                        INT8_ROW_QUANTIZED => {
                            let b = take(8)?;
                            let scale = f64::from_bits(u64::from_le_bytes(b.try_into().ok()?));
                            if !scale.is_finite() || scale < 0.0 {
                                return None;
                            }
                            for &q in take(self.dim)? {
                                out.push((q as i8) as f64 * scale);
                            }
                        }
                        _ => return None,
                    }
                }
            }
        }
        if !input.is_empty() {
            return None;
        }
        Some(out)
    }
}

impl Payload for WireRows {
    /// The *logical* volume — `rows × dim` f64 words — so word-level books
    /// stay comparable across codecs (compression shrinks
    /// [`WireRows::wire_bytes`], never the word count).
    fn word_count(&self) -> usize {
        self.num_rows * self.dim
    }

    /// The encoded size: exactly `8 × word_count` under [`Codec::Exact`],
    /// smaller under the compressed codecs.
    fn wire_bytes(&self) -> usize {
        self.bytes.len()
    }

    fn type_code() -> u64 {
        wire::compose_type_code(40, &[])
    }

    fn encode(&self, out: &mut Vec<u8>) {
        wire::put_u64(out, self.codec.tag());
        wire::put_usize(out, self.dim);
        wire::put_usize(out, self.num_rows);
        wire::put_bytes(out, &self.bytes);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        let codec = Codec::from_tag(wire::get_u64(input)?)?;
        let dim = wire::get_usize(input)?;
        let num_rows = wire::get_usize(input)?;
        let bytes = wire::get_bytes(input)?;
        let value = WireRows { codec, dim, num_rows, bytes };
        // Reject malformed bodies on receive, like every other payload.
        value.decode_checked()?;
        Some(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(codec: Codec, dim: usize, flat: &[f64]) -> Vec<f64> {
        let w = WireRows::from_rows(codec, dim, flat);
        // Wire round-trip (socket path) must reproduce the same value.
        let mut bytes = Vec::new();
        w.encode(&mut bytes);
        let mut input = bytes.as_slice();
        let back = WireRows::decode(&mut input).expect("decodes");
        assert!(input.is_empty());
        assert_eq!(back, w);
        w.rows()
    }

    #[test]
    fn exact_is_bit_exact() {
        let flat = [1.5, -0.0, f64::MIN_POSITIVE, 1e300, -7.25, f64::INFINITY];
        let out = round_trip(Codec::Exact, 3, &flat);
        for (a, b) in flat.iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let w = WireRows::from_rows(Codec::Exact, 3, &flat);
        assert_eq!(w.word_count(), 6);
        assert_eq!(w.wire_bytes(), 48);
    }

    #[test]
    fn fp16_bounds_relative_error_for_normals() {
        let mut vals = vec![0.0, -0.0, 1.0, -1.0, 0.5, 65504.0, 6.1e-5];
        for i in 0..100 {
            vals.push((i as f64 * 0.731 - 36.0) * 1.37);
        }
        let out = round_trip(Codec::Fp16, 1, &vals);
        for (&v, &d) in vals.iter().zip(&out) {
            if v != 0.0 {
                assert!((d - v).abs() <= v.abs() / 1024.0, "v={v} decoded={d}");
            } else {
                assert_eq!(d, 0.0);
            }
        }
        let w = WireRows::from_rows(Codec::Fp16, 1, &vals);
        assert_eq!(w.wire_bytes(), 2 * vals.len());
    }

    #[test]
    fn fp16_nonfinite_policy() {
        // Overflow saturates to ±∞; ∞ and NaN survive as themselves.
        let out =
            round_trip(Codec::Fp16, 1, &[1e10, -1e10, f64::INFINITY, f64::NEG_INFINITY, f64::NAN]);
        assert_eq!(out[0], f64::INFINITY);
        assert_eq!(out[1], f64::NEG_INFINITY);
        assert_eq!(out[2], f64::INFINITY);
        assert_eq!(out[3], f64::NEG_INFINITY);
        assert!(out[4].is_nan());
    }

    #[test]
    fn fp16_round_trips_every_finite_half_exactly() {
        for h in 0u16..=0xFFFF {
            let v = f16_bits_to_f64(h);
            if v.is_finite() {
                let back = f64_to_f16_bits(v);
                // ±0 canonicalize to themselves; every half is a fixpoint.
                assert_eq!(back, h, "h={h:#06x} v={v}");
            }
        }
    }

    #[test]
    fn int8_bounds_absolute_error_by_row_max() {
        let rows = [vec![1.0, -0.5, 0.25, 100.0], vec![-3.0, 3.0, 0.0, 1.5]];
        let flat: Vec<f64> = rows.iter().flatten().copied().collect();
        let out = round_trip(Codec::Int8, 4, &flat);
        for (r, row) in rows.iter().enumerate() {
            let max_abs = row.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
            for (j, &v) in row.iter().enumerate() {
                let d = out[r * 4 + j];
                assert!(
                    (d - v).abs() <= max_abs / 254.0 + 1e-12,
                    "row {r} col {j}: v={v} decoded={d}"
                );
            }
        }
    }

    #[test]
    fn int8_all_zero_row_is_exact_and_nonfinite_rows_escape() {
        let out = round_trip(Codec::Int8, 2, &[0.0, 0.0]);
        assert_eq!(out, vec![0.0, 0.0]);
        // A row with a NaN or ∞ ships bit-exactly (escape tag).
        let flat = [f64::NAN, 42.125, 1.0, 2.0];
        let out = round_trip(Codec::Int8, 2, &flat);
        assert!(out[0].is_nan());
        assert_eq!(out[1].to_bits(), 42.125f64.to_bits());
        // The finite row still quantizes.
        assert!((out[2] - 1.0).abs() <= 2.0 / 254.0 + 1e-12);
        let w = WireRows::from_rows(Codec::Int8, 2, &flat);
        assert_eq!(w.wire_bytes(), (1 + 16) + (1 + 8 + 2));
    }

    #[test]
    fn empty_and_degenerate_shapes() {
        for codec in Codec::ALL {
            let w = WireRows::from_rows(codec, 5, &[]);
            assert_eq!(w.num_rows(), 0);
            assert_eq!(w.word_count(), 0);
            assert_eq!(w.wire_bytes(), 0);
            assert!(round_trip(codec, 5, &[]).is_empty());
            // Single-value row.
            let out = round_trip(codec, 1, &[2.0]);
            assert_eq!(out, vec![2.0]);
            // dim == 0 is the empty batch.
            assert!(round_trip(codec, 0, &[]).is_empty());
        }
    }

    #[test]
    fn corrupt_frames_decode_to_none() {
        let w = WireRows::from_rows(Codec::Int8, 2, &[1.0, 2.0]);
        let mut bytes = Vec::new();
        w.encode(&mut bytes);
        // Unknown codec tag.
        let mut bad = bytes.clone();
        bad[0] = 9;
        assert!(WireRows::decode(&mut bad.as_slice()).is_none());
        // Truncated body.
        let mut input = &bytes[..bytes.len() - 1];
        assert!(WireRows::decode(&mut input).is_none());
        // Bad row tag inside the body: the first body byte sits after the
        // codec/dim/rows header words and the 8-byte length prefix.
        let body_start = 8 * 4;
        let mut bad = bytes.clone();
        bad[body_start] = 9;
        assert!(WireRows::decode(&mut bad.as_slice()).is_none());
    }

    #[test]
    fn codec_names_and_tags_round_trip() {
        for codec in Codec::ALL {
            assert_eq!(Codec::from_tag(codec.tag()), Some(codec));
            assert_eq!(Codec::from_name(codec.name()), Some(codec));
            assert_eq!(format!("{codec}"), codec.name());
        }
        assert_eq!(Codec::from_tag(3), None);
        assert_eq!(Codec::from_name("lz4"), None);
        assert_eq!(Codec::default(), Codec::Exact);
        assert!(Codec::Exact.is_exact() && !Codec::Fp16.is_exact());
    }

    use proptest::prelude::*;

    proptest! {
        #[test]
        fn prop_codecs_round_trip_within_stated_bounds(
            values in proptest::collection::vec(-60000.0f64..60000.0, 0..64),
            dim in 1usize..8,
        ) {
            // Truncate to a whole number of rows (covers the empty frame).
            let mut flat = values;
            flat.truncate(flat.len() - flat.len() % dim);
            let num_rows = flat.len() / dim;

            // Exact: bit-for-bit, 8 bytes per value on the wire.
            let exact = WireRows::from_rows(Codec::Exact, dim, &flat);
            prop_assert_eq!(exact.wire_bytes(), flat.len() * 8);
            let back = exact.rows();
            prop_assert_eq!(back.len(), flat.len());
            for (a, b) in flat.iter().zip(&back) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }

            // Fp16: 2 bytes per value; relative error ≤ 2⁻¹⁰ for normals,
            // absolute ≤ 2⁻²⁵ in the subnormal range — and quantizing an
            // already-quantized row is a fixed point (bit-exact).
            let wire = WireRows::from_rows(Codec::Fp16, dim, &flat);
            prop_assert_eq!(wire.wire_bytes(), flat.len() * 2);
            let half = wire.rows();
            for (v, d) in flat.iter().zip(&half) {
                prop_assert!((v - d).abs() <= (v.abs() / 1024.0).max(6e-8));
            }
            let again = WireRows::from_rows(Codec::Fp16, dim, &half).rows();
            for (a, b) in half.iter().zip(&again) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }

            // Int8: 1 tag + 8-byte scale + dim quants per (finite) row;
            // absolute error ≤ row_max/254 per value.
            let wire = WireRows::from_rows(Codec::Int8, dim, &flat);
            prop_assert_eq!(wire.wire_bytes(), num_rows * (1 + 8 + dim));
            let int8 = wire.rows();
            for (row, drow) in flat.chunks(dim).zip(int8.chunks(dim)) {
                let max = row.iter().fold(0.0f64, |m, v| m.max(v.abs()));
                for (v, d) in row.iter().zip(drow) {
                    prop_assert!((v - d).abs() <= max / 254.0 + 1e-12);
                }
            }
        }

        #[test]
        fn prop_wire_frames_survive_the_payload_codec(
            values in proptest::collection::vec(-1e6f64..1e6, 0..36),
            dim in 1usize..6,
            which in 0usize..3,
        ) {
            // encode → decode over the tagged-frame codec (what actually
            // crosses the socket transport) preserves the encoded bytes
            // exactly, for every wire codec.
            let mut flat = values;
            flat.truncate(flat.len() - flat.len() % dim);
            let wire = WireRows::from_rows(Codec::ALL[which], dim, &flat);
            let mut bytes = Vec::new();
            wire.encode(&mut bytes);
            let back = WireRows::decode(&mut bytes.as_slice()).expect("frame decodes");
            prop_assert_eq!(back.codec(), wire.codec());
            prop_assert_eq!(back.wire_bytes(), wire.wire_bytes());
            let (a, b) = (wire.rows(), back.rows());
            for (x, y) in a.iter().zip(&b) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
}

//! Builders shared by the integration suites.
//!
//! Every `tests/*.rs` binary is its own crate, so before this module each
//! suite grew a private copy of the same synthetic-dataset builder, grid
//! sweep and batch generator.  The copies are hoisted here **byte for
//! byte**: each helper reproduces exactly what the suites built inline, so
//! migrating a suite onto `common` is a pure refactor — every seeded
//! assertion (loss bits, comm counters) pins the same values as before.
//!
//! Not every suite uses every helper; each binary compiles its own copy of
//! this module, hence the blanket `dead_code` allowance.

#![allow(dead_code)]

use dmbs::comm::SocketLaunch;
use dmbs::gnn::FeatureCacheConfig;
use dmbs::graph::datasets::{build_dataset, Dataset, DatasetConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Every (ranks, replication) grid shape the distributed sweeps cover:
/// p ∈ {1, 2, 4}, all c dividing p.
pub const GRID_SHAPES: [(usize, usize); 6] = [(1, 1), (2, 1), (2, 2), (4, 1), (4, 2), (4, 4)];

/// A products-like synthetic dataset of `2^scale` vertices, fully seeded.
/// `homophily` of `None` keeps [`DatasetConfig::products_like`]'s default.
pub fn products_dataset(
    scale: u32,
    feature_dim: usize,
    num_classes: usize,
    train_fraction: f64,
    homophily: Option<f64>,
    seed: u64,
) -> Dataset {
    let mut cfg = DatasetConfig::products_like(scale);
    cfg.feature_dim = feature_dim;
    cfg.num_classes = num_classes;
    cfg.train_fraction = train_fraction;
    if let Some(h) = homophily {
        cfg.homophily = h;
    }
    build_dataset(&cfg, &mut StdRng::seed_from_u64(seed)).expect("dataset")
}

/// [`products_dataset`] shared across sessions.
pub fn arc_products_dataset(
    scale: u32,
    feature_dim: usize,
    num_classes: usize,
    train_fraction: f64,
    homophily: Option<f64>,
    seed: u64,
) -> Arc<Dataset> {
    Arc::new(products_dataset(scale, feature_dim, num_classes, train_fraction, homophily, seed))
}

/// The three feature-cache modes the equivalence sweeps cross: off,
/// epoch-pinned prefetch, and byte-budgeted LRU.
pub fn cache_modes(lru_byte_budget: usize) -> [FeatureCacheConfig; 3] {
    [
        FeatureCacheConfig::Off,
        FeatureCacheConfig::EpochPinned,
        FeatureCacheConfig::Lru { byte_budget: lru_byte_budget },
    ]
}

/// Deterministic pseudo-random batches: batch `i`'s `j`-th vertex is
/// `(i·mul_i + j·mul_j) mod n`.  The multiplier pair selects the suite's
/// historical stream.
pub fn strided_batches(
    n: usize,
    k: usize,
    b: usize,
    mul_i: usize,
    mul_j: usize,
) -> Vec<Vec<usize>> {
    (0..k).map(|i| (0..b).map(|j| (i * mul_i + j * mul_j) % n).collect()).collect()
}

/// The (131, 17) batch stream most suites draw from.
pub fn random_batches(n: usize, k: usize, b: usize) -> Vec<Vec<usize>> {
    strided_batches(n, k, b, 131, 17)
}

/// Launch descriptor for the Unix-socket transport when the rank worker is a
/// test named `socket_worker_shim` in the calling test binary (the
/// `run_if_worker` re-exec pattern; see `tests/transport_equivalence.rs`).
pub fn socket_launch() -> SocketLaunch {
    SocketLaunch::for_test_binary("socket_worker_shim").timeout_ms(120_000)
}

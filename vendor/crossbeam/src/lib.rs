//! Offline stand-in for the `crossbeam` crate.
//!
//! `dmbs-comm` uses only `crossbeam::channel::{unbounded, Sender, Receiver}`
//! in a strictly point-to-point pattern (one dedicated channel per ordered
//! rank pair), so `std::sync::mpsc` provides identical semantics.

#![warn(missing_docs)]

/// Multi-producer channels, mirroring `crossbeam::channel`.
pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// The sending half of an unbounded channel.
    #[derive(Debug, Clone)]
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    /// The receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Sender<T> {
        /// Sends `value`, failing only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives, failing if every sender was dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Returns a pending value if one is ready.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.inner.try_recv()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(41usize).unwrap();
            let tx2 = tx.clone();
            tx2.send(1).unwrap();
            assert_eq!(rx.recv().unwrap(), 41);
            assert_eq!(rx.recv().unwrap(), 1);
        }

        #[test]
        fn disconnect_is_reported() {
            let (tx, rx) = unbounded::<usize>();
            drop(rx);
            assert!(tx.send(1).is_err());
            let (tx, rx) = unbounded::<usize>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let handle = std::thread::spawn(move || tx.send(7usize).unwrap());
            assert_eq!(rx.recv().unwrap(), 7);
            handle.join().unwrap();
        }
    }
}

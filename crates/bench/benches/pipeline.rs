//! Criterion benchmark: one epoch of the end-to-end pipeline (sampling +
//! feature fetch + propagation) on a small synthetic dataset, single device
//! and distributed over 4 simulated ranks.

use criterion::{criterion_group, criterion_main, Criterion};
use dmbs_bench::{train_local, train_replicated};
use dmbs_gnn::trainer::SamplerChoice;
use dmbs_gnn::TrainingConfig;
use dmbs_graph::datasets::{build_dataset, DatasetConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_pipeline(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("pipeline");
    group.sample_size(10);

    let mut cfg = DatasetConfig::products_like(9); // 512 vertices
    cfg.feature_dim = 32;
    cfg.num_classes = 8;
    cfg.train_fraction = 0.5;
    let dataset =
        std::sync::Arc::new(build_dataset(&cfg, &mut StdRng::seed_from_u64(7)).expect("dataset"));
    let config = TrainingConfig {
        fanouts: vec![10, 5],
        hidden_dim: 32,
        batch_size: 32,
        bulk_size: 4,
        learning_rate: 0.05,
        epochs: 1,
        seed: 1,
    };

    group.bench_function("single_device_epoch", |bench| {
        bench.iter(|| train_local(&dataset, &config, SamplerChoice::MatrixSage));
    });

    group.bench_function("distributed_epoch_4ranks_c2", |bench| {
        bench.iter(|| train_replicated(&dataset, &config, 4, 2, true, SamplerChoice::MatrixSage));
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);

//! Ablation: the analytical cost model of §5.2.1.
//!
//! Evaluates `T_prob = α(p/c² + log c) + β(k·b·d/c + c·k·b·d/p)` over the
//! paper's (p, c) operating points and checks the qualitative claims: for a
//! fixed p the cost improves with c, and the algorithm scales with the
//! harmonic mean of p/c and c.

use dmbs_bench::{print_table, secs};
use dmbs_comm::CostModel;

fn main() {
    let model = CostModel::slingshot();
    // Table 4 GraphSAGE operating point: b = 1024, fanout 15 (first layer),
    // k = all batches of Papers (1172), d = 29.
    let (k, b, d) = (1172usize, 1024usize, 29.0f64);

    let mut rows = Vec::new();
    for &p in &[16usize, 32, 64, 128] {
        for &c in &[1usize, 2, 4, 8] {
            if c * c > p {
                continue;
            }
            rows.push(vec![
                format!("{p}"),
                format!("{c}"),
                secs(model.predict_prob_cost(p, c, k, b, d)),
            ]);
        }
    }
    print_table(
        "Cost model — predicted T_prob for the Papers workload (seconds)",
        &["p", "c", "T_prob"],
        &rows,
    );
    println!("\nReading guide: within each p, larger c lowers T_prob (row-data term k·b·d/c dominates); at fixed c, larger p lowers only the all-reduce term, matching the paper's harmonic-mean scaling statement.");
}

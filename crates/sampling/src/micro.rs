//! Micro-bulk sampling for the low-latency serving tier.
//!
//! Inference requests ask for the `L`-hop neighborhood of a *single* seed
//! vertex.  The serving tier batches requests that arrive close together into
//! one **micro-bulk** so the downstream feature gather and α–β fetch round
//! are shared; the sampling step itself runs through the same bulk machinery
//! as training ([`Sampler::sample_bulk`] with a one-vertex batch), so the
//! `extract_rows` kernels and the reusable SpGEMM workspace serve the request
//! path too.
//!
//! The crucial twist mirrors [`crate::its::row_stream_seed`]: every request
//! draws from its **own** seeded RNG stream, derived from `(base seed,
//! request id)` by [`request_stream_seed`].  Just as per-row streams make
//! parallel ITS byte-identical at any thread count, per-request streams make
//! coalescing **byte-transparent**: the sample drawn for a request does not
//! depend on which other requests happen to share its micro-bulk, so a bulk
//! of `k` coalesced requests is bit-for-bit the sample of `k` singletons.
//! (Stacking the requests into one RNG stream — as training's bulk groups do
//! — would tie each request's draws to its position in the batch and break
//! that identity.)

use crate::plan::FetchPlan;
use crate::sampler::{BulkSamplerConfig, Sampler};
use crate::{MinibatchSample, Result};
use dmbs_comm::PhaseProfile;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One serving request in a micro-bulk: a seed vertex plus the private RNG
/// stream seed its neighborhood is drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroRequest {
    /// The seed vertex whose `L`-hop neighborhood is requested.
    pub vertex: usize,
    /// Seed of this request's private sampling stream — derive it with
    /// [`request_stream_seed`] so batching stays byte-transparent.
    pub seed: u64,
}

/// The RNG stream seed of request `request_id` under `base_seed` — the same
/// splitmix64 finalizer as [`crate::its::row_stream_seed`], so adjacent
/// request ids get decorrelated streams and the draw for a request depends
/// only on `(base_seed, request_id)`, never on its micro-bulk.
pub fn request_stream_seed(base_seed: u64, request_id: u64) -> u64 {
    crate::seed::stream_seed(base_seed, request_id)
}

/// A sampled micro-bulk: one [`MinibatchSample`] per request (in request
/// order), the coalesced [`FetchPlan`] over their input frontiers, and the
/// accumulated sampling-phase timings.
#[derive(Debug, Clone)]
pub struct MicroBulkSample {
    /// Per-request samples, in the order the requests were supplied.
    pub samples: Vec<MinibatchSample>,
    /// Deduplicated union of the requests' input vertices — the single
    /// feature gather that serves the whole micro-bulk.
    pub plan: FetchPlan,
    /// Sampling-phase timing summed over the requests.
    pub profile: PhaseProfile,
}

impl MicroBulkSample {
    /// Number of requests in the micro-bulk.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when the micro-bulk holds no requests.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total sampled edges across every request (the deterministic compute
    /// volume of the micro-bulk, which the serving cost model bills).
    pub fn total_edges(&self) -> usize {
        self.samples.iter().map(MinibatchSample::total_edges).sum()
    }
}

/// Samples a micro-bulk of single-seed requests through the bulk sampler.
///
/// Each request runs as a one-batch [`Sampler::sample_bulk`] call seeded by
/// its own [`MicroRequest::seed`], with `config`'s parallelism and workspace
/// reuse (the thread-local SpGEMM/extraction scratch is shared across the
/// whole micro-bulk — and across micro-bulks on a long-lived serving
/// thread).  `config.batch_size` / `config.bulk_size` are ignored; the
/// request path is always `b = k = 1` per request.
///
/// The output for each request is byte-identical to sampling it alone — see
/// the module docs and the `coalescing_is_byte_transparent` test.
///
/// # Errors
///
/// Returns [`crate::SamplingError::InvalidConfig`] if `requests` is empty or
/// any seed vertex lies outside the graph.
pub fn sample_micro_bulk<S: Sampler + ?Sized>(
    sampler: &S,
    adjacency: &dmbs_matrix::CsrMatrix,
    requests: &[MicroRequest],
    config: &BulkSamplerConfig,
) -> Result<MicroBulkSample> {
    if requests.is_empty() {
        return Err(crate::SamplingError::InvalidConfig(
            "a micro-bulk needs at least one request".into(),
        ));
    }
    let one = BulkSamplerConfig {
        batch_size: 1,
        bulk_size: 1,
        parallelism: config.parallelism,
        workspace_reuse: config.workspace_reuse,
    };
    let mut samples = Vec::with_capacity(requests.len());
    let mut profile = PhaseProfile::new();
    for request in requests {
        let mut rng = StdRng::seed_from_u64(request.seed);
        let mut out = sampler.sample_bulk(adjacency, &[vec![request.vertex]], &one, &mut rng)?;
        profile.merge_sum(&out.profile);
        samples.push(out.minibatches.remove(0));
    }
    let plan = FetchPlan::from_minibatches(&samples);
    Ok(MicroBulkSample { samples, plan, profile })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphSageSampler;
    use dmbs_graph::generators::figure1_example;

    fn requests(base: u64, vertices: &[usize]) -> Vec<MicroRequest> {
        vertices
            .iter()
            .enumerate()
            .map(|(id, &vertex)| MicroRequest {
                vertex,
                seed: request_stream_seed(base, id as u64),
            })
            .collect()
    }

    #[test]
    fn coalescing_is_byte_transparent() {
        // A micro-bulk of k requests equals the k singletons, bit for bit,
        // regardless of how the requests are grouped.
        let g = figure1_example();
        let sampler = GraphSageSampler::new(vec![2, 2]).with_self_loops();
        let config = BulkSamplerConfig::new(1, 1);
        let reqs = requests(7, &[1, 5, 0, 3, 4]);
        let bulk = sample_micro_bulk(&sampler, g.adjacency(), &reqs, &config).unwrap();
        assert_eq!(bulk.len(), 5);
        assert!(!bulk.is_empty());
        for (i, req) in reqs.iter().enumerate() {
            let single = sample_micro_bulk(&sampler, g.adjacency(), &[*req], &config).unwrap();
            assert_eq!(single.samples[0], bulk.samples[i], "request {i} diverged");
        }
        // Grouping differently changes nothing either.
        let halves = [
            sample_micro_bulk(&sampler, g.adjacency(), &reqs[..2], &config).unwrap(),
            sample_micro_bulk(&sampler, g.adjacency(), &reqs[2..], &config).unwrap(),
        ];
        let regrouped: Vec<_> = halves.iter().flat_map(|h| h.samples.iter().cloned()).collect();
        assert_eq!(regrouped, bulk.samples);
    }

    #[test]
    fn plan_covers_the_union_and_edges_are_counted() {
        let g = figure1_example();
        let sampler = GraphSageSampler::new(vec![2]).with_self_loops();
        let config = BulkSamplerConfig::new(1, 1);
        let reqs = requests(3, &[1, 1, 5]);
        let bulk = sample_micro_bulk(&sampler, g.adjacency(), &reqs, &config).unwrap();
        assert!(bulk.total_edges() > 0);
        // Every sample's input vertices appear in the plan union.
        for sample in &bulk.samples {
            for v in sample.input_vertices() {
                assert!(bulk.plan.unique_vertices().contains(v));
            }
        }
        // The duplicate request deduplicates in the plan.
        assert!(bulk.plan.unique_len() <= bulk.plan.total_requests());
    }

    #[test]
    fn request_seeds_are_decorrelated_and_inputs_validated() {
        assert_ne!(request_stream_seed(1, 0), request_stream_seed(1, 1));
        assert_ne!(request_stream_seed(1, 0), request_stream_seed(2, 0));
        let g = figure1_example();
        let sampler = GraphSageSampler::new(vec![2]);
        let config = BulkSamplerConfig::new(1, 1);
        assert!(sample_micro_bulk(&sampler, g.adjacency(), &[], &config).is_err());
        let bad = [MicroRequest { vertex: 99, seed: 0 }];
        assert!(sample_micro_bulk(&sampler, g.adjacency(), &bad, &config).is_err());
    }

    #[test]
    fn knobs_do_not_change_what_is_sampled() {
        use dmbs_matrix::pool::Parallelism;
        let g = figure1_example();
        let sampler = GraphSageSampler::new(vec![2, 2]).with_self_loops();
        let reqs = requests(11, &[0, 2, 4]);
        let base = sample_micro_bulk(&sampler, g.adjacency(), &reqs, &BulkSamplerConfig::new(1, 1))
            .unwrap();
        let tuned = sample_micro_bulk(
            &sampler,
            g.adjacency(),
            &reqs,
            &BulkSamplerConfig::new(1, 1)
                .with_parallelism(Parallelism::new(4))
                .with_workspace_reuse(false),
        )
        .unwrap();
        assert_eq!(base.samples, tuned.samples);
        assert_eq!(base.plan, tuned.plan);
    }
}

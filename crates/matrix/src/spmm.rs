//! Sparse × dense matrix multiplication (SpMM).
//!
//! Neighborhood aggregation in forward propagation multiplies a sampled
//! adjacency matrix (CSR) by a sampled feature/embedding matrix (dense):
//! `Z = A_S · H`.  The backward pass needs the transposed product
//! `A_S^T · G`.  Both kernels live here.

use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;
use crate::error::MatrixError;
use crate::Result;

/// Computes `sparse * dense`.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] if `sparse.cols() != dense.rows()`.
///
/// # Example
///
/// ```
/// use dmbs_matrix::{CooMatrix, CsrMatrix, DenseMatrix, spmm::spmm};
///
/// # fn main() -> Result<(), dmbs_matrix::MatrixError> {
/// let a = CsrMatrix::from_coo(&CooMatrix::from_triples(2, 3, vec![(0, 1, 2.0), (1, 2, 1.0)])?);
/// let h = DenseMatrix::from_rows(&[vec![1.0], vec![10.0], vec![100.0]])?;
/// let z = spmm(&a, &h)?;
/// assert_eq!(z.get(0, 0), 20.0);
/// assert_eq!(z.get(1, 0), 100.0);
/// # Ok(())
/// # }
/// ```
pub fn spmm(sparse: &CsrMatrix, dense: &DenseMatrix) -> Result<DenseMatrix> {
    if sparse.cols() != dense.rows() {
        return Err(MatrixError::DimensionMismatch {
            op: "spmm",
            lhs: sparse.shape(),
            rhs: dense.shape(),
        });
    }
    let cols = dense.cols();
    let mut out = DenseMatrix::zeros(sparse.rows(), cols);
    for r in 0..sparse.rows() {
        // Accumulate the linear combination of dense rows into the output row.
        let mut acc = vec![0.0f64; cols];
        for (&c, &v) in sparse.row_indices(r).iter().zip(sparse.row_values(r)) {
            let drow = dense.row(c);
            for (a, d) in acc.iter_mut().zip(drow) {
                *a += v * d;
            }
        }
        out.row_mut(r).copy_from_slice(&acc);
    }
    Ok(out)
}

/// Computes `sparse^T * dense` without materialising the transpose.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] if `sparse.rows() != dense.rows()`.
pub fn spmm_transpose(sparse: &CsrMatrix, dense: &DenseMatrix) -> Result<DenseMatrix> {
    if sparse.rows() != dense.rows() {
        return Err(MatrixError::DimensionMismatch {
            op: "spmm_transpose",
            lhs: sparse.shape(),
            rhs: dense.shape(),
        });
    }
    let cols = dense.cols();
    let mut out = DenseMatrix::zeros(sparse.cols(), cols);
    for r in 0..sparse.rows() {
        let drow = dense.row(r);
        for (&c, &v) in sparse.row_indices(r).iter().zip(sparse.row_values(r)) {
            let orow = out.row_mut(c);
            for (o, d) in orow.iter_mut().zip(drow) {
                *o += v * d;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;
    use proptest::prelude::*;

    fn small_sparse() -> CsrMatrix {
        CsrMatrix::from_coo(
            &CooMatrix::from_triples(3, 4, vec![(0, 0, 1.0), (0, 3, 2.0), (2, 1, -1.0)]).unwrap(),
        )
    }

    #[test]
    fn spmm_known_values() {
        let a = small_sparse();
        let h = DenseMatrix::from_rows(&[
            vec![1.0, 2.0],
            vec![3.0, 4.0],
            vec![5.0, 6.0],
            vec![7.0, 8.0],
        ])
        .unwrap();
        let z = spmm(&a, &h).unwrap();
        assert_eq!(z.get(0, 0), 15.0);
        assert_eq!(z.get(0, 1), 18.0);
        assert_eq!(z.get(1, 0), 0.0);
        assert_eq!(z.get(2, 0), -3.0);
    }

    #[test]
    fn spmm_dimension_mismatch() {
        let a = small_sparse();
        let h = DenseMatrix::zeros(3, 2);
        assert!(spmm(&a, &h).is_err());
    }

    #[test]
    fn spmm_transpose_matches_explicit_transpose() {
        let a = small_sparse();
        let g = DenseMatrix::from_rows(&[vec![1.0, 0.5], vec![2.0, -1.0], vec![0.0, 3.0]]).unwrap();
        let fused = spmm_transpose(&a, &g).unwrap();
        let explicit = spmm(&a.transpose(), &g).unwrap();
        assert!(fused.approx_eq(&explicit, 1e-12));
    }

    #[test]
    fn spmm_transpose_dimension_mismatch() {
        let a = small_sparse();
        let g = DenseMatrix::zeros(4, 2);
        assert!(spmm_transpose(&a, &g).is_err());
    }

    proptest! {
        #[test]
        fn prop_spmm_matches_dense(
            entries in proptest::collection::vec((0usize..6, 0usize..7, -2.0f64..2.0), 0..30),
            dense_vals in proptest::collection::vec(-2.0f64..2.0, 7 * 3),
        ) {
            let sparse = CsrMatrix::from_coo(&CooMatrix::from_triples(6, 7, entries).unwrap());
            let dense = DenseMatrix::from_vec(7, 3, dense_vals).unwrap();
            let sp = spmm(&sparse, &dense).unwrap();
            let reference = sparse.to_dense().matmul(&dense).unwrap();
            prop_assert!(sp.approx_eq(&reference, 1e-9));
        }

        #[test]
        fn prop_spmm_transpose_matches_dense(
            entries in proptest::collection::vec((0usize..6, 0usize..7, -2.0f64..2.0), 0..30),
            dense_vals in proptest::collection::vec(-2.0f64..2.0, 6 * 2),
        ) {
            let sparse = CsrMatrix::from_coo(&CooMatrix::from_triples(6, 7, entries).unwrap());
            let dense = DenseMatrix::from_vec(6, 2, dense_vals).unwrap();
            let sp = spmm_transpose(&sparse, &dense).unwrap();
            let reference = sparse.to_dense().transpose().matmul(&dense).unwrap();
            prop_assert!(sp.approx_eq(&reference, 1e-9));
        }
    }
}

//! Error types for the GNN training substrate.

use dmbs_comm::CommError;
use dmbs_graph::GraphError;
use dmbs_matrix::MatrixError;
use dmbs_sampling::SamplingError;
use std::error::Error;
use std::fmt;

/// Errors produced by GNN layers, the feature store and the trainer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GnnError {
    /// The model or trainer was configured inconsistently (dimension
    /// mismatches, missing labels/features, zero epochs, …).
    InvalidConfig(String),
    /// A feature fetch was issued over a group whose size does not match the
    /// number of blocks the feature matrix is split into (§6.2: the fetch
    /// group must hold exactly one replica of every block row).
    FetchGroupMismatch {
        /// Number of block rows of the feature matrix.
        blocks: usize,
        /// Size of the group the fetch was issued over.
        group: usize,
    },
    /// A feature fetch or cache prefetch referenced a vertex id outside the
    /// feature partition.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: usize,
        /// Number of vertices in the feature partition.
        limit: usize,
    },
    /// A pinned feature cache was asked for a row its prefetch plan never
    /// covered — an invariant violation of the communication-avoiding
    /// pipeline (the plan is computed from the same samples that are later
    /// trained, so every lookup must hit).
    CacheMiss {
        /// The vertex whose features were not resident.
        vertex: usize,
    },
    /// A fetch plan (or pinned serving tier) computed against an older graph
    /// version was used after an ingest dirtied its rows.  Stale plans must
    /// be recomputed, never silently served — the dynamic-graph counterpart
    /// of [`GnnError::CacheMiss`].
    StalePlan {
        /// Graph version the plan was computed against.
        plan_version: u64,
        /// Graph version after the ingest that invalidated it.
        graph_version: u64,
    },
    /// An underlying matrix kernel failed.
    Matrix(MatrixError),
    /// An underlying graph/dataset operation failed.
    Graph(GraphError),
    /// The sampling step failed.
    Sampling(SamplingError),
    /// A distributed collective failed.
    Comm(CommError),
}

impl fmt::Display for GnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GnnError::InvalidConfig(msg) => write!(f, "invalid training configuration: {msg}"),
            GnnError::FetchGroupMismatch { blocks, group } => write!(
                f,
                "feature matrix is split into {blocks} blocks but the fetch group has {group} \
                 members"
            ),
            GnnError::VertexOutOfRange { vertex, limit } => {
                write!(f, "vertex {vertex} out of range for a feature partition of {limit} rows")
            }
            GnnError::CacheMiss { vertex } => {
                write!(f, "pinned feature cache has no row for vertex {vertex}")
            }
            GnnError::StalePlan { plan_version, graph_version } => write!(
                f,
                "fetch plan was computed against graph version {plan_version} but the graph has \
                 ingested to version {graph_version}; recompute the plan"
            ),
            GnnError::Matrix(e) => write!(f, "matrix error during training: {e}"),
            GnnError::Graph(e) => write!(f, "graph error during training: {e}"),
            GnnError::Sampling(e) => write!(f, "sampling error during training: {e}"),
            GnnError::Comm(e) => write!(f, "communication error during training: {e}"),
        }
    }
}

impl Error for GnnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GnnError::Matrix(e) => Some(e),
            GnnError::Graph(e) => Some(e),
            GnnError::Sampling(e) => Some(e),
            GnnError::Comm(e) => Some(e),
            GnnError::InvalidConfig(_)
            | GnnError::FetchGroupMismatch { .. }
            | GnnError::VertexOutOfRange { .. }
            | GnnError::CacheMiss { .. }
            | GnnError::StalePlan { .. } => None,
        }
    }
}

impl From<MatrixError> for GnnError {
    fn from(e: MatrixError) -> Self {
        GnnError::Matrix(e)
    }
}

impl From<GraphError> for GnnError {
    fn from(e: GraphError) -> Self {
        GnnError::Graph(e)
    }
}

impl From<SamplingError> for GnnError {
    fn from(e: SamplingError) -> Self {
        GnnError::Sampling(e)
    }
}

impl From<CommError> for GnnError {
    fn from(e: CommError) -> Self {
        GnnError::Comm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: GnnError = MatrixError::Empty("row").into();
        assert!(e.to_string().contains("matrix error"));
        assert!(e.source().is_some());
        let e: GnnError = GraphError::InvalidConfig("x".into()).into();
        assert!(e.to_string().contains("graph error"));
        let e: GnnError = SamplingError::InvalidConfig("y".into()).into();
        assert!(e.to_string().contains("sampling error"));
        let e: GnnError = CommError::RankPanicked { rank: 0, message: "boom".into() }.into();
        assert!(e.to_string().contains("communication error"));
        let e = GnnError::InvalidConfig("bad".into());
        assert!(e.source().is_none());
        let e = GnnError::FetchGroupMismatch { blocks: 2, group: 3 };
        assert!(e.to_string().contains("2 blocks") && e.to_string().contains("3 members"));
        assert!(e.source().is_none());
        let e = GnnError::VertexOutOfRange { vertex: 99, limit: 8 };
        assert!(e.to_string().contains("vertex 99") && e.to_string().contains("8 rows"));
        let e = GnnError::CacheMiss { vertex: 5 };
        assert!(e.to_string().contains("no row for vertex 5"));
        let e = GnnError::StalePlan { plan_version: 1, graph_version: 3 };
        assert!(e.to_string().contains("version 1") && e.to_string().contains("version 3"));
        assert!(e.source().is_none());
    }
}
